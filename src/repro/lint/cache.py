"""The incremental lint cache: content-hash-keyed per-file results.

Whole-program analysis is too slow to rerun from scratch on every CI
matrix entry, but its expensive half is embarrassingly per-file: parse,
local rules, fact extraction.  The cache persists each file's
:class:`~repro.lint.engine.FileAnalysis` keyed by the source's sha256;
a warm run re-analyzes only files whose bytes changed and replays the
cheap whole-program pass (RPL005 kind table, RPL101/RPL103 call-graph
walks) over the mixed cached/fresh summaries — so cross-file findings
are always computed against the *current* import graph and can never be
served stale, which is the import-graph-invalidation half of the
design: facts are per-file, conclusions are per-program.

The cache file is deterministic: one schema/fingerprint header line
plus one compact key-sorted JSON line per file in path order (the same
house style as the metric exports and the lint report itself).  The
fingerprint covers the engine version, the Python minor version (AST
shapes differ) and the rule selection; any mismatch — or any parse
error — degrades to a cold run, never to wrong results.

``--changed`` mode additionally narrows the *reported* findings to the
changed files plus their reverse-import cone (everything whose analysis
a change could affect), which is the review-friendly view: "what did my
edit break", not "what is broken".
"""

from __future__ import annotations

import hashlib
import json
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.lint.callgraph import dependency_cone
from repro.lint.config import LintConfig, normalize_path
from repro.lint.engine import (
    ENGINE_VERSION,
    FileAnalysis,
    LintResult,
    analyze_module,
    discover_files,
    finish_program,
    read_source,
)

#: Cache file schema identifier, bumped on incompatible changes.
CACHE_SCHEMA = "reprolint-cache/1"


def _fingerprint(config: LintConfig) -> str:
    """What must match for cached per-file analyses to be reusable."""
    select = sorted(config.select) if config.select is not None else None
    doc = {
        "engine": ENGINE_VERSION,
        "python": f"{sys.version_info[0]}.{sys.version_info[1]}",
        "select": select,
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


@dataclass
class CacheFile:
    """In-memory view of one cache file: path → (sha256, analysis doc)."""

    fingerprint: str
    entries: dict[str, tuple[str, dict]]

    @classmethod
    def load(cls, path: Path, config: LintConfig) -> "CacheFile":
        """Read a cache file; any mismatch or damage yields an empty
        (cold) cache rather than an error — the cache is an
        accelerator, never a correctness input."""
        fingerprint = _fingerprint(config)
        empty = cls(fingerprint=fingerprint, entries={})
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return empty
        if not lines:
            return empty
        try:
            head = json.loads(lines[0])
            if head.get("schema") != CACHE_SCHEMA:
                return empty
            if head.get("fingerprint") != fingerprint:
                return empty
            entries: dict[str, tuple[str, dict]] = {}
            for line in lines[1:]:
                doc = json.loads(line)
                entries[doc["path"]] = (doc["sha256"], doc["analysis"])
        except (ValueError, KeyError, TypeError):
            return empty
        return cls(fingerprint=fingerprint, entries=entries)

    def save(self, path: Path,
             analyses: dict[str, tuple[str, FileAnalysis]]) -> None:
        """Write the cache deterministically (header + path-sorted rows)."""
        head = {
            "schema": CACHE_SCHEMA,
            "fingerprint": self.fingerprint,
            "files": len(analyses),
        }
        lines = [json.dumps(head, sort_keys=True, separators=(",", ":"))]
        for display in sorted(analyses):
            sha, analysis = analyses[display]
            lines.append(json.dumps(
                {"path": display, "sha256": sha,
                 "analysis": analysis.to_doc()},
                sort_keys=True, separators=(",", ":")))
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def lint_paths_cached(paths, cache_path: str | Path,
                      config: LintConfig | None = None,
                      changed_only: bool = False) -> LintResult:
    """:func:`repro.lint.engine.lint_paths` with the per-file cache.

    Returns the same :class:`LintResult`, with ``files_reanalyzed``
    reporting how many files missed the cache.  With ``changed_only``
    the reported findings are narrowed to the changed files plus their
    reverse-import cone (``files_checked`` still counts everything —
    the whole-program pass always runs over the full tree).
    """
    config = config if config is not None else LintConfig()
    cache_path = Path(cache_path)
    prior = CacheFile.load(cache_path, config)

    fresh: dict[str, tuple[str, FileAnalysis]] = {}
    analyses: list[FileAnalysis] = []
    changed: set[str] = set()
    for file_path in discover_files(paths):
        source = read_source(file_path)
        display = normalize_path(str(file_path))
        sha = hashlib.sha256(source.encode("utf-8")).hexdigest()
        hit = prior.entries.get(display)
        if hit is not None and hit[0] == sha:
            analysis = FileAnalysis.from_doc(hit[1])
        else:
            analysis = analyze_module(str(file_path), source, config)
            changed.add(display)
        fresh[display] = (sha, analysis)
        analyses.append(analysis)

    result = finish_program(analyses, config)
    result.files_reanalyzed = len(changed)
    prior.save(cache_path, fresh)

    if changed_only:
        cone = dependency_cone([a.summary for a in analyses], changed)
        result.findings = [f for f in result.findings if f.path in cone]
        result.suppressed = [f for f in result.suppressed
                             if f.path in cone]
    return result
