"""Unit tests for ranking and Spearman correlation, validated vs scipy."""

import numpy as np
import pytest
import scipy.stats

from repro.errors import InsufficientDataError
from repro.stats.ranking import fractional_ranks, fractional_ranks_array
from repro.stats.spearman import (
    p_value_for_rho,
    spearman,
    spearman_matrix,
)


class TestFractionalRanks:
    def test_no_ties(self):
        assert fractional_ranks([30, 10, 20]) == [3.0, 1.0, 2.0]

    def test_ties_average(self):
        assert fractional_ranks([10, 20, 20, 30]) == [1.0, 2.5, 2.5, 4.0]

    def test_all_tied(self):
        assert fractional_ranks([5, 5, 5]) == [2.0, 2.0, 2.0]

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_scipy_rankdata(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 5, size=50).tolist()
        ours = fractional_ranks(data)
        theirs = scipy.stats.rankdata(data, method="average")
        assert ours == pytest.approx(theirs.tolist())

    @pytest.mark.parametrize("seed", range(3))
    def test_array_version_matches_scalar(self, seed):
        rng = np.random.default_rng(seed + 10)
        matrix = rng.integers(-1, 2, size=(40, 6))
        ranked = fractional_ranks_array(matrix)
        for col in range(6):
            assert ranked[:, col].tolist() == pytest.approx(
                fractional_ranks(matrix[:, col].tolist())
            )

    def test_array_rejects_1d(self):
        with pytest.raises(ValueError):
            fractional_ranks_array(np.array([1, 2, 3]))


class TestSpearmanPair:
    def test_perfect_positive(self):
        result = spearman([1, 2, 3, 4], [10, 20, 30, 40])
        assert result.rho == pytest.approx(1.0)
        assert result.p_value == pytest.approx(0.0, abs=1e-12)

    def test_perfect_negative(self):
        assert spearman([1, 2, 3], [3, 2, 1]).rho == pytest.approx(-1.0)

    def test_constant_input_gives_nan(self):
        import math

        assert math.isnan(spearman([1, 1, 1], [1, 2, 3]).rho)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            spearman([1, 2], [1, 2, 3])

    def test_too_short(self):
        with pytest.raises(InsufficientDataError):
            spearman([1, 2], [2, 1])

    @pytest.mark.parametrize("seed", range(8))
    def test_rho_matches_scipy(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.integers(-1, 2, size=60).tolist()
        y = (rng.integers(-1, 2, size=60) + np.array(x)).tolist()
        ours = spearman(x, y)
        theirs = scipy.stats.spearmanr(x, y)
        assert ours.rho == pytest.approx(theirs.statistic, abs=1e-12)

    @pytest.mark.parametrize("seed", range(8))
    def test_p_value_matches_scipy(self, seed):
        rng = np.random.default_rng(seed + 100)
        x = rng.normal(size=40)
        y = 0.4 * x + rng.normal(size=40)
        ours = spearman(x.tolist(), y.tolist())
        theirs = scipy.stats.spearmanr(x, y)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-6)

    def test_strong_threshold(self):
        result = spearman([1, 2, 3, 4, 5], [1, 2, 3, 5, 4])
        assert result.strong(0.8)
        assert not result.strong(0.95)


class TestPValueHelper:
    def test_extreme_rho(self):
        assert p_value_for_rho(1.0, 100) == 0.0

    def test_too_few_points_is_nan(self):
        import math

        assert math.isnan(p_value_for_rho(0.5, 2))

    @pytest.mark.parametrize("rho,n", [(0.3, 30), (0.7, 10), (-0.5, 50)])
    def test_matches_scipy_t_sf(self, rho, n):
        import math

        df = n - 2
        t = rho * math.sqrt(df / (1 - rho * rho))
        expected = 2 * scipy.stats.t.sf(abs(t), df)
        assert p_value_for_rho(rho, n) == pytest.approx(expected, rel=1e-8)


class TestSpearmanMatrix:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_pairwise(self, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.integers(-1, 2, size=(80, 5))
        rho = spearman_matrix(matrix)
        for i in range(5):
            for j in range(i + 1, 5):
                expected = spearman(
                    matrix[:, i].tolist(), matrix[:, j].tolist()
                ).rho
                assert rho[i, j] == pytest.approx(expected, abs=1e-10)

    def test_diagonal_is_one(self):
        rng = np.random.default_rng(3)
        rho = spearman_matrix(rng.integers(0, 3, size=(50, 4)))
        assert np.allclose(np.diag(rho), 1.0)

    def test_constant_column_yields_nan(self):
        matrix = np.array([[0, 1], [0, 2], [0, 3]])
        rho = spearman_matrix(matrix)
        assert np.isnan(rho[0, 1])

    def test_symmetry(self):
        rng = np.random.default_rng(5)
        rho = spearman_matrix(rng.integers(-1, 2, size=(60, 6)))
        assert np.allclose(rho, rho.T, equal_nan=True)

    def test_too_few_rows(self):
        with pytest.raises(InsufficientDataError):
            spearman_matrix(np.zeros((2, 3)))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            spearman_matrix(np.zeros(5))


class TestKSTest:
    """Validation of the from-scratch KS test (repro.stats.kstest)."""

    def test_identical_samples_have_zero_statistic(self):
        from repro.stats.kstest import ks_two_sample

        data = [1, 2, 2, 3, 5, 8]
        result = ks_two_sample(data, data)
        assert result.statistic == 0.0
        assert result.p_value == pytest.approx(1.0)
        assert result.similar()

    def test_disjoint_samples_have_statistic_one(self):
        from repro.stats.kstest import ks_two_sample

        result = ks_two_sample([1, 2, 3], [10, 11, 12])
        assert result.statistic == 1.0
        assert not result.similar()

    @pytest.mark.parametrize("seed", range(6))
    def test_statistic_matches_scipy(self, seed):
        from repro.stats.kstest import ks_two_sample

        rng = np.random.default_rng(seed)
        a = rng.integers(1, 20, size=80).tolist()
        b = (rng.integers(1, 20, size=60) + seed % 3).tolist()
        ours = ks_two_sample(a, b)
        theirs = scipy.stats.ks_2samp(a, b, method="asymp")
        assert ours.statistic == pytest.approx(theirs.statistic, abs=1e-12)

    @pytest.mark.parametrize("seed", range(6))
    def test_p_value_close_to_scipy(self, seed):
        from repro.stats.kstest import ks_two_sample

        rng = np.random.default_rng(seed + 50)
        a = rng.normal(size=120).tolist()
        b = rng.normal(loc=0.2, size=90).tolist()
        ours = ks_two_sample(a, b)
        theirs = scipy.stats.ks_2samp(a, b, method="asymp")
        # Different finite-sample corrections: agree loosely.
        assert ours.p_value == pytest.approx(theirs.pvalue, abs=0.08)

    def test_empty_sample_rejected(self):
        from repro.errors import InsufficientDataError
        from repro.stats.kstest import ks_two_sample

        with pytest.raises(InsufficientDataError):
            ks_two_sample([], [1, 2])

    def test_fig2_similarity_on_experiment(self, experiment):
        """The stable/dynamic report-count distributions should be far
        more similar to each other than to a shifted control."""
        from repro.analysis.dynamics import stable_dynamic_split
        from repro.stats.kstest import ks_two_sample

        split = stable_dynamic_split(experiment.series())
        result = split.report_count_ks()
        control = ks_two_sample(
            split.stable_report_cdf._sorted,
            [n + 3 for n in split.dynamic_report_cdf._sorted],
        )
        assert result.statistic < control.statistic
