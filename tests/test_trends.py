"""Tests for trajectory-shape classification (repro.core.trends)."""

import pytest

from repro.core.trends import (
    Trend,
    TrendParams,
    classify_trend,
    dominant_dynamic_trend,
    summarize_trends,
    trend_distribution,
    trends_by_file_type,
)
from repro.errors import ConfigError

from test_avrank import series


class TestClassify:
    def test_flat(self):
        assert classify_trend(series([4, 4, 4])) is Trend.FLAT

    def test_grower(self):
        assert classify_trend(series([2, 8, 15, 24])) is Trend.GROWER

    def test_grower_with_noise(self):
        assert classify_trend(series([2, 9, 8, 15, 14, 24])) is Trend.GROWER

    def test_decliner(self):
        assert classify_trend(series([20, 12, 5, 1])) is Trend.DECLINER

    def test_spike(self):
        assert classify_trend(series([0, 6, 6, 0])) is Trend.SPIKE

    def test_spike_with_imperfect_return(self):
        assert classify_trend(series([0, 9, 1])) is Trend.SPIKE

    def test_churn(self):
        assert classify_trend(series([10, 13, 9, 12, 8, 11])) is Trend.CHURN

    def test_two_point_change_is_directional(self):
        assert classify_trend(series([3, 7])) is Trend.GROWER
        assert classify_trend(series([7, 3])) is Trend.DECLINER

    def test_params_validated(self):
        with pytest.raises(ConfigError):
            TrendParams(direction_share=0.0)
        with pytest.raises(ConfigError):
            TrendParams(spike_return=1.0)


class TestAggregates:
    def _pool(self):
        return [
            series([1, 1]),             # flat
            series([1, 9]),             # grower
            series([9, 1]),             # decliner
            series([0, 9, 0]),          # spike
            series([5]),                # single-report: excluded
        ]

    def test_distribution(self):
        counts = trend_distribution(self._pool())
        assert counts[Trend.FLAT] == 1
        assert counts[Trend.GROWER] == 1
        assert counts[Trend.DECLINER] == 1
        assert counts[Trend.SPIKE] == 1
        assert sum(counts.values()) == 4

    def test_by_file_type(self):
        pool = [series([1, 9], file_type="TXT"),
                series([1, 1], file_type="PDF")]
        grouped = trends_by_file_type(pool)
        assert grouped["TXT"][Trend.GROWER] == 1
        assert grouped["PDF"][Trend.FLAT] == 1

    def test_dominant_dynamic(self):
        counts = trend_distribution(
            [series([1, 9]), series([2, 8]), series([9, 1])]
        )
        assert dominant_dynamic_trend(counts) is Trend.GROWER

    def test_dominant_none_when_all_flat(self):
        counts = trend_distribution([series([1, 1])])
        assert dominant_dynamic_trend(counts) is None

    def test_summary_fractions(self):
        summary = summarize_trends(self._pool())
        assert summary["flat"] == pytest.approx(0.25)
        assert sum(summary.values()) == pytest.approx(1.0)

    def test_empty_pool(self):
        assert summarize_trends([]) == {}


class TestOnExperiment:
    def test_growers_dominate_dynamics(self, experiment):
        """Engine latency is the main mechanism, so growers should be
        the dominant dynamic shape in the simulated ecosystem."""
        counts = trend_distribution(experiment.dataset_s)
        assert counts[Trend.FLAT] == 0  # dataset S is dynamic-only
        assert dominant_dynamic_trend(counts) is Trend.GROWER

    def test_all_shapes_appear(self, experiment):
        counts = trend_distribution(experiment.multi_report)
        present = {trend for trend, n in counts.items() if n > 0}
        assert Trend.FLAT in present
        assert Trend.GROWER in present
        assert len(present) >= 4
