"""Call-graph construction and resolution tests (reprolint v2).

The flow rules are only as good as the graph under them, so resolution
is pinned here construct by construct: aliased imports, package
re-exports, ``functools.partial`` indirection, decorator chains,
``self.method()`` and constructor-typed ``self.attr.method()`` edges,
lock-guarded call sites, and the reverse-import cone the incremental
``--changed`` mode reports over.
"""

import textwrap

from repro.lint import CallGraph, analyze_module, dependency_cone
from repro.lint.callgraph import module_name_of


def summarize(path, source):
    return analyze_module(path, textwrap.dedent(source)).summary


def edges_of(graph, caller):
    return [e.callee for e in graph.edges.get(caller, ())]


class TestModuleNames:
    def test_plain_module(self):
        assert module_name_of("repro/store/codec.py") == \
            ("repro.store.codec", False)

    def test_package_init(self):
        assert module_name_of("repro/store/__init__.py") == \
            ("repro.store", True)


class TestCrossModuleResolution:
    def test_aliased_import_resolves(self):
        impl = summarize("repro/fix/impl.py", """
            def work():
                return 1
        """)
        caller = summarize("repro/fix/caller.py", """
            from repro.fix.impl import work as w

            def go():
                return w()
        """)
        graph = CallGraph([impl, caller])
        assert edges_of(graph, "repro.fix.caller.go") == \
            ["repro.fix.impl.work"]

    def test_module_alias_attribute_call_resolves(self):
        impl = summarize("repro/fix/impl.py", """
            def work():
                return 1
        """)
        caller = summarize("repro/fix/caller.py", """
            import repro.fix.impl as impl

            def go():
                return impl.work()
        """)
        graph = CallGraph([impl, caller])
        assert edges_of(graph, "repro.fix.caller.go") == \
            ["repro.fix.impl.work"]

    def test_package_reexport_resolves_through_init(self):
        impl = summarize("repro/pkgx/impl.py", """
            class Thing:
                def __init__(self):
                    self.n = 0
        """)
        init = summarize("repro/pkgx/__init__.py", """
            from repro.pkgx.impl import Thing
        """)
        caller = summarize("repro/fix/caller.py", """
            from repro.pkgx import Thing

            def make():
                return Thing()
        """)
        graph = CallGraph([impl, init, caller])
        assert edges_of(graph, "repro.fix.caller.make") == \
            ["repro.pkgx.impl.Thing.__init__"]

    def test_functools_partial_adds_edge_to_wrapped(self):
        impl = summarize("repro/fix/impl.py", """
            def work():
                return 1
        """)
        caller = summarize("repro/fix/caller.py", """
            import functools
            from repro.fix.impl import work

            def defer():
                return functools.partial(work, 1)
        """)
        graph = CallGraph([impl, caller])
        assert "repro.fix.impl.work" in edges_of(graph, "repro.fix.caller.defer")

    def test_decorator_chain_is_an_edge_of_the_decorated_function(self):
        obs = summarize("repro/fix/obs.py", """
            def traced(name):
                def wrap(fn):
                    return fn
                return wrap
        """)
        caller = summarize("repro/fix/caller.py", """
            from repro.fix.obs import traced

            @traced("fix.step.seconds")
            def step():
                return 1
        """)
        graph = CallGraph([obs, caller])
        assert edges_of(graph, "repro.fix.caller.step") == \
            ["repro.fix.obs.traced"]


class TestSelfResolution:
    def test_self_method_resolves_in_enclosing_class(self):
        mod = summarize("repro/fix/box.py", """
            class Box:
                def outer(self):
                    return self.inner()

                def inner(self):
                    return 1
        """)
        graph = CallGraph([mod])
        assert edges_of(graph, "repro.fix.box.Box.outer") == \
            ["repro.fix.box.Box.inner"]

    def test_constructor_typed_attr_method_resolves_cross_module(self):
        reg = summarize("repro/fix/registry.py", """
            class Registry:
                def record(self):
                    self.total = 1
        """)
        owner = summarize("repro/fix/owner.py", """
            from repro.fix.registry import Registry

            class Owner:
                def __init__(self):
                    self._registry = Registry()

                def touch(self):
                    self._registry.record()
        """)
        graph = CallGraph([reg, owner])
        assert "repro.fix.registry.Registry.record" in \
            edges_of(graph, "repro.fix.owner.Owner.touch")

    def test_unresolvable_call_adds_no_edge(self):
        mod = summarize("repro/fix/loose.py", """
            def go(thing):
                return thing.run()
        """)
        graph = CallGraph([mod])
        assert edges_of(graph, "repro.fix.loose.go") == []


class TestGuardedTraversal:
    def test_lock_guarded_edge_does_not_extend_unguarded_frontier(self):
        mod = summarize("repro/fix/locky.py", """
            import threading

            class Shared:
                def __init__(self):
                    self._lock = threading.Lock()

                def entry_locked(self):
                    with self._lock:
                        self.mutate()

                def entry_bare(self):
                    self.mutate()

                def mutate(self):
                    self.state = 1
        """)
        graph = CallGraph([mod])
        locked = graph.reachable_unguarded(["repro.fix.locky.Shared.entry_locked"])
        bare = graph.reachable_unguarded(["repro.fix.locky.Shared.entry_bare"])
        assert "repro.fix.locky.Shared.mutate" not in locked
        assert "repro.fix.locky.Shared.mutate" in bare
        assert bare["repro.fix.locky.Shared.mutate"] == (
            "repro.fix.locky.Shared.entry_bare",
            "repro.fix.locky.Shared.mutate",
        )

    def test_reachable_chains_are_deterministic_shortest_paths(self):
        mod = summarize("repro/fix/diamond.py", """
            def a():
                b()
                c()

            def b():
                d()

            def c():
                d()

            def d():
                return 1
        """)
        graph = CallGraph([mod])
        chains = graph.reachable(["repro.fix.diamond.a"])
        # b sorts before c, so the recorded chain to d goes through b.
        assert chains["repro.fix.diamond.d"] == (
            "repro.fix.diamond.a", "repro.fix.diamond.b", "repro.fix.diamond.d")


class TestDependencyCone:
    def test_cone_is_reverse_import_closure(self):
        alpha = summarize("repro/fix/alpha.py", """
            def base():
                return 1
        """)
        beta = summarize("repro/fix/beta.py", """
            from repro.fix.alpha import base

            def mid():
                return base()
        """)
        gamma = summarize("repro/fix/gamma.py", """
            from repro.fix.beta import mid

            def top():
                return mid()
        """)
        other = summarize("repro/fix/other.py", """
            def lone():
                return 0
        """)
        summaries = [alpha, beta, gamma, other]
        cone = dependency_cone(summaries, {"repro/fix/alpha.py"})
        assert cone == {"repro/fix/alpha.py", "repro/fix/beta.py",
                        "repro/fix/gamma.py"}
        assert dependency_cone(summaries, {"repro/fix/other.py"}) == \
            {"repro/fix/other.py"}


class TestSummaryRoundTrip:
    def test_summary_survives_doc_round_trip(self):
        mod = summarize("repro/fix/round.py", """
            import time
            from repro.fix.alpha import base

            class Keeper:
                def __init__(self):
                    self.n = 0

                def tick(self):
                    self.n += 1
                    return (base(), time.time())
        """)
        from repro.lint import FileSummary

        clone = FileSummary.from_doc(mod.to_doc())
        assert clone.to_doc() == mod.to_doc()
        graph = CallGraph([clone])
        fact = graph.functions["repro.fix.round.Keeper.tick"]
        assert [i.qual for i in fact.impure] == ["time.time"]
        assert [w.attr for w in fact.writes] == ["n"]
