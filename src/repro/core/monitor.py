"""Stability notification — the paper's suggested VirusTotal feature (§8).

The discussion section proposes that VirusTotal "implement a feature
notifying users when a sample's AV-Rank has stabilized", with
user-customisable criteria.  :class:`StabilityMonitor` is that feature as
a library: it consumes a sample's reports as they arrive and fires a
callback (or flips its ``stable`` flag) once the configured criteria
hold.  It also emits the inverse alert the paper suggests — significant
AV-Rank variation within a short interval.

:class:`LiveSampleMonitor` binds a monitor to a *live* report store: it
polls the store between ingest bursts and feeds only the not-yet-seen
reports to the monitor — the read-while-ingest consumer the store's
write-aware retrieval layer exists to keep correct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigError
from repro.vt.clock import MINUTES_PER_DAY
from repro.vt.reports import ScanReport

if TYPE_CHECKING:  # core stays import-light: store is a typing-only dep.
    from repro.store.reportstore import ReportStore


@dataclass(frozen=True)
class StabilityCriteria:
    """User-customisable definition of "stable" (§8: "allowing users to
    set their own criteria")."""

    #: Maximum AV-Rank fluctuation tolerated within the stable window.
    fluctuation: int = 1
    #: The stable window must contain at least this many scans.
    min_reports: int = 2
    #: ... and span at least this many days.
    min_days: float = 7.0
    #: Variation alert: rank jump at least this large ...
    alert_jump: int = 5
    #: ... within at most this many days.
    alert_within_days: float = 3.0

    def __post_init__(self) -> None:
        if self.fluctuation < 0:
            raise ConfigError("fluctuation must be >= 0")
        if self.min_reports < 2:
            raise ConfigError("min_reports must be >= 2")
        if self.min_days < 0 or self.alert_within_days <= 0:
            raise ConfigError("day horizons must be positive")
        if self.alert_jump < 1:
            raise ConfigError("alert_jump must be >= 1")


@dataclass
class StabilityMonitor:
    """Streaming stability tracker for one sample."""

    criteria: StabilityCriteria = field(default_factory=StabilityCriteria)
    #: Called once, with (sha256, scan_time), when stability is reached.
    on_stable: Callable[[str, int], None] | None = None
    #: Called on every short-interval variation alert with
    #: (sha256, scan_time, jump).
    on_variation: Callable[[str, int, int], None] | None = None

    _sha256: str | None = field(default=None, repr=False)
    _times: list[int] = field(default_factory=list, repr=False)
    _ranks: list[int] = field(default_factory=list, repr=False)
    stable: bool = False
    stable_since: int | None = None
    alerts: int = 0

    def observe(self, report: ScanReport) -> bool:
        """Feed the next report; returns the current stability verdict.

        Reports must belong to one sample and arrive in time order.
        """
        if self._sha256 is None:
            self._sha256 = report.sha256
        elif report.sha256 != self._sha256:
            raise ConfigError(
                f"monitor bound to {self._sha256}, got {report.sha256}"
            )
        if self._times and report.scan_time < self._times[-1]:
            raise ConfigError("reports must arrive in time order")
        self._check_variation(report)
        self._times.append(report.scan_time)
        self._ranks.append(report.positives)
        self._update_stability(report)
        return self.stable

    def _check_variation(self, report: ScanReport) -> None:
        if not self._ranks:
            return
        jump = abs(report.positives - self._ranks[-1])
        interval_days = (report.scan_time - self._times[-1]) / MINUTES_PER_DAY
        if (jump >= self.criteria.alert_jump
                and interval_days <= self.criteria.alert_within_days):
            self.alerts += 1
            if self.on_variation is not None:
                self.on_variation(self._sha256, report.scan_time, jump)

    def _update_stability(self, report: ScanReport) -> None:
        """Find the longest suffix within the fluctuation bound and test
        the window criteria against it."""
        criteria = self.criteria
        hi = lo = self._ranks[-1]
        start = len(self._ranks) - 1
        for k in range(len(self._ranks) - 2, -1, -1):
            hi = max(hi, self._ranks[k])
            lo = min(lo, self._ranks[k])
            if hi - lo > criteria.fluctuation:
                break
            start = k
        window = len(self._ranks) - start
        span_days = (self._times[-1] - self._times[start]) / MINUTES_PER_DAY
        now_stable = (window >= criteria.min_reports
                      and span_days >= criteria.min_days)
        if now_stable and not self.stable:
            self.stable = True
            self.stable_since = self._times[start]
            if self.on_stable is not None:
                self.on_stable(self._sha256, report.scan_time)
        elif not now_stable and self.stable:
            # Stability was broken by a new excursion.
            self.stable = False
            self.stable_since = None


@dataclass
class LiveSampleMonitor:
    """Stability tracking for one sample read from a live store.

    The feed loop ingests continuously while consumers read — the §4.1
    collection scenario.  Each :meth:`poll` fetches the sample's current
    reports via ``store.reports_for`` (safe to interleave with ingest)
    and feeds only the unseen suffix to the wrapped monitor.

    Reports must reach the store in scan-time order for the sample (the
    premium feed's delivery order), so the time-sorted report list only
    ever grows at the tail and the seen prefix stays valid.
    """

    store: "ReportStore"
    sha256: str
    monitor: StabilityMonitor = field(default_factory=StabilityMonitor)
    _seen: int = field(default=0, repr=False)

    def poll(self) -> int:
        """Observe reports that arrived since the last poll; returns how
        many were new.  A sample not yet in the store is simply not there
        *yet* — that polls as zero new reports, not an error."""
        if self.sha256 not in self.store:
            return 0
        reports = self.store.reports_for(self.sha256)
        new = reports[self._seen:]
        for report in new:
            self.monitor.observe(report)
        self._seen = len(reports)
        return len(new)

    @property
    def stable(self) -> bool:
        return self.monitor.stable

    @property
    def alerts(self) -> int:
        return self.monitor.alerts
