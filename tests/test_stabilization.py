"""Unit tests for stabilisation analysis (repro.core.stabilization)."""

import pytest

from repro.core.stabilization import (
    avrank_stabilization,
    label_stabilization,
    summarize_avrank_stabilization,
    summarize_label_stabilization,
)
from repro.errors import ConfigError

from test_avrank import series

DAY = 1440


class TestAVRankStabilization:
    def test_constant_series_stabilizes_immediately(self):
        out = avrank_stabilization(series([4, 4, 4]), 0)
        assert out.stabilized
        assert out.scan_index == 2  # confirmed at the second scan
        assert out.days == pytest.approx(1000 / DAY)

    def test_settles_after_growth(self):
        out = avrank_stabilization(series([1, 5, 9, 9, 9]), 0)
        assert out.stabilized
        assert out.scan_index == 4

    def test_change_at_last_scan_never_stabilizes(self):
        out = avrank_stabilization(series([3, 3, 7]), 0)
        assert not out.stabilized
        assert out.scan_index is None
        assert out.days is None

    def test_fluctuation_tolerance(self):
        s = series([5, 6, 5, 6])
        assert not avrank_stabilization(s, 0).stabilized
        assert avrank_stabilization(s, 1).stabilized
        assert avrank_stabilization(s, 1).scan_index == 2

    def test_wider_fluctuation_never_hurts(self):
        s = series([0, 10, 12, 11, 13])
        for r in range(5):
            low = avrank_stabilization(s, r)
            high = avrank_stabilization(s, r + 1)
            if low.stabilized:
                assert high.stabilized
                assert high.scan_index <= low.scan_index

    def test_single_report_never_stabilizes(self):
        assert not avrank_stabilization(series([3]), 0).stabilized

    def test_negative_fluctuation_rejected(self):
        with pytest.raises(ConfigError):
            avrank_stabilization(series([1, 1]), -1)

    def test_days_uses_confirmation_scan(self):
        s = series([2, 9, 9, 9], times=(0, 10 * DAY, 20 * DAY, 30 * DAY))
        out = avrank_stabilization(s, 0)
        assert out.scan_index == 3
        assert out.days == pytest.approx(20.0)


class TestLabelStabilization:
    def test_constant_labels(self):
        out = label_stabilization(series([1, 2, 3]), 10)
        assert out.stabilized
        assert out.final_label == "B"
        assert out.scan_index == 2

    def test_flip_then_settle(self):
        out = label_stabilization(series([1, 12, 13, 14]), 10)
        assert out.stabilized
        assert out.scan_index == 3
        assert out.final_label == "M"

    def test_flip_at_end_not_stable(self):
        out = label_stabilization(series([1, 1, 12]), 10)
        assert not out.stabilized
        assert out.final_label == "M"

    def test_threshold_validation(self):
        with pytest.raises(ConfigError):
            label_stabilization(series([1, 1]), 0)

    def test_single_report(self):
        out = label_stabilization(series([5]), 3)
        assert not out.stabilized
        assert out.final_label == "M"


class TestSummaries:
    def _pool(self):
        return [
            series([4, 4, 4]),            # stable everywhere
            series([1, 5, 9]),            # never settles at r=0
            series([1, 9, 9]),            # settles late
            series([3]),                  # single report: skipped
        ]

    def test_avrank_summary_counts(self):
        summary = summarize_avrank_stabilization(self._pool(), 0)
        assert summary.n_samples == 3
        assert summary.n_stabilized == 2
        assert summary.stabilized_fraction == pytest.approx(2 / 3)

    def test_avrank_summary_within_days(self):
        pool = [series([2, 2], times=(0, 5 * DAY)),
                series([3, 3], times=(0, 60 * DAY))]
        summary = summarize_avrank_stabilization(pool, 0,
                                                 within_days=(30,))
        assert summary.fraction_within[30] == pytest.approx(0.5)

    def test_label_summary_excluding_two_scan(self):
        pool = [series([1, 1]), series([1, 1, 1])]
        full = summarize_label_stabilization(pool, 5)
        trimmed = summarize_label_stabilization(pool, 5,
                                                exclude_two_scan=True)
        assert full.n_samples == 2
        assert trimmed.n_samples == 1

    def test_empty_summary(self):
        summary = summarize_avrank_stabilization([], 0)
        assert summary.n_samples == 0
        assert summary.mean_scan_index is None
        assert summary.stabilized_fraction == 0.0
