"""Tests for the Section 6 pipelines (repro.analysis.stabilization)."""

import pytest

from repro.analysis.stabilization import (
    FLUCTUATION_RANGES,
    LABEL_THRESHOLDS,
    avrank_stabilization_profile,
    label_stabilization_profile,
)

from test_avrank import series


class TestAVRankProfile:
    def test_covers_requested_ranges(self):
        pool = [series([1, 1, 1]), series([1, 9, 1])]
        profile = avrank_stabilization_profile(pool, ranges=(0, 2))
        assert set(profile.by_fluctuation) == {0, 2}

    def test_fraction_monotone_in_r(self):
        pool = [series([1, 3, 2, 3]), series([0, 8, 0, 9]),
                series([2, 2, 2])]
        profile = avrank_stabilization_profile(pool)
        fractions = [profile.stabilized_fraction(r)
                     for r in FLUCTUATION_RANGES]
        assert all(b >= a for a, b in zip(fractions, fractions[1:], strict=False))

    def test_experiment_r0_is_minority(self, experiment):
        profile = avrank_stabilization_profile(experiment.dataset_s)
        # Observation 8: exact constancy is rare; small ranges common.
        assert profile.stabilized_fraction(0) < 0.45
        assert profile.stabilized_fraction(5) > 0.7
        assert (profile.stabilized_fraction(5)
                > profile.stabilized_fraction(0))


class TestLabelProfile:
    def test_covers_paper_thresholds(self):
        pool = [series([1, 1]), series([1, 50])]
        profile = label_stabilization_profile(pool)
        assert set(profile.all_samples) == set(LABEL_THRESHOLDS)
        assert set(profile.exclude_two_scan) == set(LABEL_THRESHOLDS)

    def test_exclude_two_scan_smaller_pool(self):
        pool = [series([1, 1]), series([1, 1, 1])]
        profile = label_stabilization_profile(pool, thresholds=(5,))
        assert profile.all_samples[5].n_samples == 2
        assert profile.exclude_two_scan[5].n_samples == 1

    def test_experiment_most_labels_stabilize(self, experiment):
        profile = label_stabilization_profile(experiment.dataset_s)
        lo, hi = profile.stabilized_fraction_range()
        # Paper: 93.14 %-98.04 %.
        assert lo > 0.80
        assert hi <= 1.0

    def test_experiment_within_30_days_majority(self, experiment):
        profile = label_stabilization_profile(experiment.dataset_s)
        lo, _ = profile.within_30_days_range()
        # Paper: 91.09 %-92.31 %.
        assert lo > 0.7

    def test_experiment_confirmation_scan_around_two(self, experiment):
        profile = label_stabilization_profile(experiment.dataset_s)
        summary = profile.all_samples[10]
        if summary.n_stabilized:
            # Paper Figure 9(a): stabilises at the 2nd-3rd report.
            assert 1.5 <= summary.mean_scan_index <= 4.0
