"""Tests for ASCII rendering (repro.analysis.rendering).

Rendering is exercised against real pipeline outputs from the shared
experiment fixture — every renderer must produce non-empty text containing
its headline landmarks.
"""

import pytest

from repro.analysis import dataset as dataset_mod
from repro.analysis import dynamics as dynamics_mod
from repro.analysis import engines as engines_mod
from repro.analysis import rendering
from repro.analysis import stabilization as stab_mod


class TestPrimitives:
    def test_ascii_table_alignment(self):
        out = rendering.ascii_table(["a", "bb"], [["1", "222"], ["33", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # fixed width

    def test_pct(self):
        assert rendering.pct(0.5) == "50.00%"
        assert rendering.pct(0.12345, 1) == "12.3%"

    def test_sparkline_shape(self):
        line = rendering.sparkline([0, 0.5, 1.0] * 30, width=30)
        assert 0 < len(line) <= 30

    def test_sparkline_empty(self):
        assert rendering.sparkline([]) == ""

    def test_render_cdf(self):
        from repro.stats.cdf import EmpiricalCDF

        out = rendering.render_cdf(EmpiricalCDF([1, 2, 3]), [1, 3], "title")
        assert "title" in out
        assert "100.00%" in out


class TestExperimentRenderers:
    def test_table2(self, experiment):
        out = rendering.render_table2(experiment.store.stats())
        assert "05/2021 Reports" in out
        assert "compression rate" in out

    def test_table3(self, experiment):
        dist = dataset_mod.file_type_distribution(experiment.store)
        out = rendering.render_table3(dist)
        assert "Win32 EXE" in out
        assert "Total" in out

    def test_fig1(self, paper_mix_experiment):
        result = dataset_mod.ReportsPerSample.from_store(
            paper_mix_experiment.store
        )
        out = rendering.render_fig1(result)
        assert "paper: 88.81%" in out

    def test_fig2(self, experiment):
        split = dynamics_mod.stable_dynamic_split(experiment.series())
        out = rendering.render_fig2(split)
        assert "stable" in out and "dynamic" in out

    def test_fig3_fig4(self, experiment):
        profile = dynamics_mod.stable_sample_profile(experiment.series())
        out = rendering.render_fig3_fig4(profile)
        assert "AV-Rank = 0" in out
        assert "rank" in out

    def test_fig5(self, experiment):
        out = rendering.render_fig5(
            dynamics_mod.delta_distributions(experiment.dataset_s)
        )
        assert "35.49%" in out  # the paper landmark annotation

    def test_fig6(self, experiment):
        out = rendering.render_fig6(
            dynamics_mod.per_type_dynamics(experiment.dataset_s)
        )
        assert "File Type" in out

    def test_fig7(self, experiment):
        out = rendering.render_fig7(
            dynamics_mod.interval_effect(experiment.dataset_s)
        )
        assert "Spearman rho" in out

    def test_fig8(self, experiment):
        out = rendering.render_fig8(
            dynamics_mod.threshold_impact(experiment.dataset_s)
        )
        assert "gray peak" in out

    def test_obs8(self, experiment):
        out = rendering.render_obs8(
            stab_mod.avrank_stabilization_profile(experiment.dataset_s)
        )
        assert "within 30d" in out

    def test_fig9(self, experiment):
        out = rendering.render_fig9(
            stab_mod.label_stabilization_profile(experiment.dataset_s)
        )
        assert "stabilised" in out

    def test_fig10(self, experiment):
        stability = engines_mod.engine_stability(
            experiment.store, experiment.engine_names
        )
        out = rendering.render_fig10(stability.flips,
                                     engines_mod.APPENDIX_FILE_TYPES)
        assert "flippiest engines" in out

    @pytest.fixture(scope="class")
    def correlation(self, experiment):
        return engines_mod.engine_correlation(
            experiment.store, experiment.engine_names, min_scans=30
        )

    def test_fig11(self, correlation):
        out = rendering.render_fig11(correlation.overall)
        assert "groups:" in out

    def test_group_tables(self, correlation):
        out = rendering.render_group_tables(correlation.per_type)
        assert "Tables 4-8" in out
