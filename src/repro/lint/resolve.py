"""Import-aware name resolution for the rule visitors.

The banned-construct rules match *fully-qualified* names, so aliased
imports cannot dodge them: ``from time import time as now`` makes a bare
``now`` resolve to ``time.time``, and ``import datetime as dt`` makes
``dt.datetime.now`` resolve to ``datetime.datetime.now``.  Resolution is
purely syntactic — a name rebound by a later assignment will still
resolve to its import, which errs on the side of flagging (a linter's
correct bias) and costs nothing on this codebase.

Beyond imports, the map tracks module-level *constructed constants*: a
top-level ``_HEADER = struct.Struct("<qHH")`` binds ``_HEADER`` to the
pseudo-qualname ``struct.Struct``, so ``_HEADER.unpack(...)`` resolves
to ``struct.Struct.unpack`` and the exception-contract rule can see the
decode through the constant.  The call-graph builder
(:mod:`repro.lint.callgraph`) reuses the same map to turn per-file
references into cross-module edges.
"""

from __future__ import annotations

import ast


class ImportMap:
    """Maps a module's local names to the dotted names they import."""

    __slots__ = ("_names", "_constructed")

    def __init__(self) -> None:
        self._names: dict[str, str] = {}
        self._constructed: dict[str, str] = {}

    @classmethod
    def from_module(cls, tree: ast.Module) -> "ImportMap":
        imports = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    # ``import a.b`` binds ``a`` → a; ``import a.b as c``
                    # binds ``c`` → a.b.
                    target = alias.name if alias.asname else local
                    imports._names[local] = target
            elif isinstance(node, ast.ImportFrom):
                module = ("." * node.level) + (node.module or "")
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    imports._names[local] = f"{module}.{alias.name}"
        # Module-level constructed constants: ``NAME = <imported>(...)``
        # rebinds NAME to the constructor's qualname, so attribute calls
        # through the constant resolve (``_HEADER.unpack`` →
        # ``struct.Struct.unpack``).  Only top-level statements count —
        # locals shadow too unpredictably to be worth resolving.
        for node in tree.body:
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)):
                continue
            ctor = imports.qualname(node.value.func)
            if ctor is not None:
                imports._constructed[node.targets[0].id] = ctor
        return imports

    def qualname(self, node: ast.expr) -> str | None:
        """The dotted import-resolved name of an expression, if any.

        A constructed constant resolves only *through* attribute access
        (``_HEADER.unpack`` → ``struct.Struct.unpack``): the bare name
        is an instance, not the constructor, so it is never itself a
        reference to the constructor's qualname.
        """
        if isinstance(node, ast.Name):
            return self._names.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.qualname(node.value)
            if base is None and isinstance(node.value, ast.Name):
                base = self._constructed.get(node.value.id)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    def bindings(self) -> dict[str, str]:
        """A copy of the local-name → dotted-target table, constructed
        constants included (for the call-graph builder's re-export and
        constant resolution)."""
        return {**self._constructed, **self._names}


def absolutize(dotted: str, module: str, is_package: bool = False) -> str:
    """Resolve a possibly-relative dotted name against ``module``.

    ``ImportMap`` stores ``from .codec import decode`` targets with
    their leading dots (``.codec.decode``); cross-module edges need the
    absolute form (``repro.store.codec.decode``).  ``module`` is the
    importing module's dotted name; ``is_package`` marks it as a package
    ``__init__`` (one fewer level to strip).
    """
    if not dotted.startswith("."):
        return dotted
    level = len(dotted) - len(dotted.lstrip("."))
    remainder = dotted.lstrip(".")
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    drop = level - 1
    if drop:
        parts = parts[:-drop] if drop < len(parts) else []
    base = ".".join(parts)
    if not base:
        return remainder
    return f"{base}.{remainder}" if remainder else base
