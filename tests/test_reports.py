"""Unit tests for scan-report records (repro.vt.reports)."""

import pytest

from repro.errors import CorruptRecordError
from repro.vt.reports import (
    LABEL_BENIGN,
    LABEL_MALICIOUS,
    LABEL_UNDETECTED,
    EngineResult,
    ScanReport,
    decode_labels,
    encode_labels,
)

from conftest import make_report


class TestLabelEncoding:
    def test_round_trip(self):
        labels = [1, 0, -1, 1, 0]
        assert decode_labels(encode_labels(labels)) == labels

    def test_encoding_is_one_byte_per_engine(self):
        assert len(encode_labels([0] * 70)) == 70

    def test_invalid_label_rejected(self):
        with pytest.raises(CorruptRecordError):
            encode_labels([5])

    def test_invalid_byte_rejected(self):
        with pytest.raises(CorruptRecordError):
            decode_labels(b"\x07")


class TestEngineResult:
    def test_detected(self):
        assert EngineResult("E", LABEL_MALICIOUS, 1).detected
        assert not EngineResult("E", LABEL_BENIGN, 1).detected

    def test_responded(self):
        assert EngineResult("E", LABEL_BENIGN, 1).responded
        assert not EngineResult("E", LABEL_UNDETECTED, 1).responded


class TestScanReport:
    def test_av_rank_aliases_positives(self):
        report = make_report(labels=[1, 1, 0, 0, -1])
        assert report.positives == 2
        assert report.av_rank == 2
        assert report.total == 4

    def test_label_of(self):
        report = make_report(labels=[1, 0, -1, 0, 0])
        assert report.label_of(0) == LABEL_MALICIOUS
        assert report.label_of(1) == LABEL_BENIGN
        assert report.label_of(2) == LABEL_UNDETECTED

    def test_engine_labels_round_trip(self):
        labels = [1, 0, -1, 1, 0]
        assert make_report(labels=labels).engine_labels() == labels

    def test_iter_results_names_align(self):
        report = make_report(labels=[1, 0, -1, 0, 0],
                             versions=[9, 8, 7, 6, 5])
        results = list(report.iter_results(["a", "b", "c", "d", "e"]))
        assert [r.engine for r in results] == ["a", "b", "c", "d", "e"]
        assert results[0].detected
        assert results[2].label == LABEL_UNDETECTED
        assert results[0].version == 9

    def test_iter_results_rejects_wrong_fleet_size(self):
        report = make_report()
        with pytest.raises(CorruptRecordError):
            list(report.iter_results(["only", "two"]))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(CorruptRecordError):
            ScanReport(
                sha256="a" * 64, file_type="TXT", scan_time=0,
                positives=0, total=1, labels=encode_labels([0]),
                versions=(1, 2),
            )

    def test_inconsistent_counts_rejected(self):
        with pytest.raises(CorruptRecordError):
            ScanReport(
                sha256="a" * 64, file_type="TXT", scan_time=0,
                positives=3, total=1, labels=encode_labels([0]),
                versions=(1,),
            )

    def test_record_round_trip(self):
        report = make_report(labels=[1, 0, -1, 1, 0],
                             versions=[2, 4, 6, 8, 10],
                             first_submission=-500)
        rebuilt = ScanReport.from_record(report.to_record())
        assert rebuilt == report
