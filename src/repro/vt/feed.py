"""The premium per-minute report feed.

The paper's dataset was collected by polling VirusTotal's premium feed
endpoint once per minute; each poll returns every report the service
generated in that minute (§4.1).  :class:`PremiumFeed` reproduces that
interface: it subscribes to a :class:`~repro.vt.service.VirusTotalService`
and exposes the accumulated reports as per-minute batches.

The feed is the *only* sanctioned path from the simulator into the report
store — mirroring how the authors' pipeline never queried per-sample but
consumed the firehose.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.errors import PermissionError_
from repro.vt.reports import ScanReport
from repro.vt.service import VirusTotalService


class PremiumFeed:
    """A per-minute batch view over every report the service generates."""

    def __init__(self, service: VirusTotalService, premium: bool = True) -> None:
        if not premium:
            raise PermissionError_("premium feed")
        self._service = service
        self._buffer: deque[ScanReport] = deque()
        self._attached = False
        self.batches_served = 0
        self.reports_served = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def attach(self) -> None:
        """Start receiving reports from the service."""
        if not self._attached:
            self._service.add_listener(self._buffer.append)
            self._attached = True

    def detach(self) -> None:
        """Stop receiving reports."""
        if self._attached:
            self._service.remove_listener(self._buffer.append)
            self._attached = False

    def __enter__(self) -> "PremiumFeed":
        self.attach()
        return self

    def __exit__(self, *exc_info) -> None:
        self.detach()

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------

    def pending(self) -> int:
        """Number of buffered reports not yet served."""
        return len(self._buffer)

    def poll(self, until_minute: int | None = None) -> list[ScanReport]:
        """Drain buffered reports, optionally only up to a minute bound.

        With ``until_minute`` set, only reports scanned strictly before
        that minute are returned — the caller is emulating the authors'
        minute-by-minute polling loop.
        """
        batch: list[ScanReport] = []
        while self._buffer:
            if (until_minute is not None
                    and self._buffer[0].scan_time >= until_minute):
                break
            batch.append(self._buffer.popleft())
        self.batches_served += 1
        self.reports_served += len(batch)
        return batch

    def minute_batches(self) -> Iterator[tuple[int, list[ScanReport]]]:
        """Group the currently buffered reports into per-minute batches.

        Yields ``(minute, reports)`` in time order and drains the buffer.
        Reports within one run of the simulator are generated in
        non-decreasing time order, which this method asserts.
        """
        current_minute: int | None = None
        batch: list[ScanReport] = []
        while self._buffer:
            report = self._buffer.popleft()
            if current_minute is not None and report.scan_time < current_minute:
                raise AssertionError("feed received reports out of order")
            if report.scan_time != current_minute:
                if batch:
                    self.batches_served += 1
                    self.reports_served += len(batch)
                    yield current_minute, batch
                current_minute = report.scan_time
                batch = []
            batch.append(report)
        if batch:
            self.batches_served += 1
            self.reports_served += len(batch)
            yield current_minute, batch
