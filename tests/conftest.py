"""Shared fixtures.

Expensive artefacts (a scenario run, the default fleet) are session-scoped
so the whole suite pays for them once.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiment import ExperimentData, run_experiment
from repro.store.reportstore import ReportStore
from repro.synth.scenario import ScenarioConfig, tiny_scenario
from repro.vt.engines import EngineFleet, default_fleet
from repro.vt.reports import ScanReport
from repro.vt.samples import sha256_of


@pytest.fixture(scope="session")
def fleet() -> EngineFleet:
    return default_fleet(seed=0)


@pytest.fixture(scope="session", params=["row", "columnar"])
def store_block_format(request) -> str:
    """Both block layouts.  Store-bearing suites (index, merge, serve)
    take this fixture so every contract runs against the row path *and*
    the columnar v3 path without duplicated test bodies."""
    return request.param


@pytest.fixture()
def store_factory(store_block_format):
    """A :class:`ReportStore` constructor pinned to the active layout."""

    def make(**kwargs) -> ReportStore:
        kwargs.setdefault("block_format", store_block_format)
        return ReportStore(**kwargs)

    return make


@pytest.fixture(scope="session")
def tiny_config() -> ScenarioConfig:
    """The canonical tiny scenario the equivalence gates share."""
    return tiny_scenario(n_samples=150, seed=13)


@pytest.fixture(scope="session")
def tiny_serial(tiny_config) -> ExperimentData:
    """One serial run of ``tiny_config`` — the reference side of the
    serial/parallel digest and metrics gates."""
    return run_experiment(tiny_config)


@pytest.fixture(scope="session")
def tiny_store(tiny_serial):
    """The serial reference store for ``tiny_config``."""
    return tiny_serial.store


@pytest.fixture(scope="session")
def tiny_config_factory():
    """Builder for ad-hoc tiny scenarios (determinism/property tests)."""
    return tiny_scenario


@pytest.fixture(scope="session")
def chaos_config() -> ScenarioConfig:
    """The mini-scenario the chaos acceptance suite replays."""
    return tiny_scenario(n_samples=600, seed=3)


@pytest.fixture(scope="session")
def experiment() -> ExperimentData:
    """A small but analysable dynamics-scenario run."""
    return run_experiment(tiny_scenario(n_samples=900, seed=7))


@pytest.fixture(scope="session")
def paper_mix_experiment() -> ExperimentData:
    """A run with the full population mix (single-report majority)."""
    config = ScenarioConfig(seed=11, n_samples=1200)
    return run_experiment(config)


def make_report(
    sha: str = "a" * 64,
    file_type: str = "Win32 EXE",
    scan_time: int = 1000,
    labels: list[int] | None = None,
    versions: list[int] | None = None,
    first_submission: int = 0,
    n_engines: int = 5,
) -> ScanReport:
    """A hand-built report with a small synthetic fleet."""
    from repro.vt.reports import encode_labels

    if labels is None:
        labels = [0] * n_engines
    if versions is None:
        versions = [1] * n_engines
    positives = sum(1 for v in labels if v == 1)
    total = sum(1 for v in labels if v != -1)
    return ScanReport(
        sha256=sha,
        file_type=file_type,
        scan_time=scan_time,
        positives=positives,
        total=total,
        labels=encode_labels(labels),
        versions=tuple(versions),
        first_submission_date=first_submission,
        last_submission_date=max(first_submission, 0),
        last_analysis_date=scan_time,
        times_submitted=1,
    )


@pytest.fixture()
def report_factory():
    return make_report


def make_sha(token: str) -> str:
    return sha256_of(token)


@pytest.fixture()
def sha_factory():
    return make_sha
