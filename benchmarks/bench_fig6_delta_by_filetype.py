"""Figure 6 / Observation 4: δ/Δ by file type.

Paper shapes: PE types dominate the dynamics (Win32 DLL has the largest
adjacent jumps, mean δ 3.25; Win32 EXE the largest overall Δ, mean 14.08),
while JSON/JPEG/EPUB/FPX/ELF-shared stay quiet (δ means ~0.3, Δ means
~1.5); ZIP/TXT/JSON show the small-δ / larger-Δ slow-drift signature.
"""

from __future__ import annotations

from functools import partial

from repro.analysis.dynamics import per_type_dynamics
from repro.analysis.rendering import render_fig6
from repro.vt.filetypes import PE_FILE_TYPES

from conftest import run_once, say

QUIET_TYPES = ("JSON", "JPEG", "EPUB", "FPX", "ELF shared library", "GZIP")


def test_fig6_per_type_dynamics(benchmark, bench_data):
    dynamics = run_once(
        benchmark, partial(per_type_dynamics, bench_data.dataset_s)
    )
    say()
    say(render_fig6(dynamics))

    overall_rank = dynamics.ranked_by_overall_mean()
    top5 = {name for name, _ in overall_rank[:5]}
    assert top5 & PE_FILE_TYPES, "a PE type must top the Delta ranking"

    means = dict(overall_rank)
    pe_mean = max(means.get(t, 0.0) for t in PE_FILE_TYPES)
    quiet_means = [means[t] for t in QUIET_TYPES if t in means]
    if quiet_means:
        assert pe_mean > 2 * max(quiet_means)

    # Slow-drift types: adjacent jumps small relative to overall range.
    adjacent = dict(dynamics.ranked_by_adjacent_mean())
    for slow in ("ZIP", "TXT"):
        if slow in adjacent and slow in means and means[slow] > 0:
            assert adjacent[slow] < means[slow]
