"""End-to-end experiment runner.

Reproduces the paper's data pipeline at scenario scale:

1. generate the sample population and its scan schedule
   (:mod:`repro.synth`);
2. replay every submission/rescan against the VirusTotal simulator in
   global time order (:mod:`repro.vt`);
3. consume the premium feed minute by minute into the report store
   (:mod:`repro.store`), exactly as the authors' collection loop did;
4. expose the store plus cached analysis views (AV-Rank series, dataset
   *S*) to the figure/table pipelines.

The event loop itself lives in :mod:`repro.parallel.worker` so the
serial path and the sharded workers run literally the same code; with
``workers > 1`` the run fans out across processes and the shard stores
are merged bit-identically to the serial result (see
:mod:`repro.parallel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.core.avrank import AVRankSeries, collect_series, select_dataset_s
from repro.obs import get_registry
from repro.parallel.sharding import resolve_workers
from repro.store.merge import MergeStats
from repro.store.reportstore import ReportStore
from repro.synth.scenario import ScenarioConfig
from repro.vt.engines import EngineFleet
from repro.vt.filetypes import TOP20_FILE_TYPES
from repro.vt.service import VirusTotalService


@dataclass
class ExperimentData:
    """Everything an analysis pipeline needs from one scenario run."""

    config: ScenarioConfig
    fleet: EngineFleet
    #: The live service of a serial in-process run.  ``None`` when the
    #: store was produced by parallel workers (their services die with
    #: the worker processes) or loaded from disk; no analysis pipeline
    #: needs it, only the snapshot-campaign comparison does.
    service: VirusTotalService | None
    store: ReportStore
    events_executed: int = 0
    #: Worker processes that produced the store (1 = in-process serial).
    workers: int = 1
    #: How the shard merge moved data (parallel runs only).
    merge_stats: MergeStats | None = None
    #: The metrics registry the run recorded into (None when the caller
    #: ran without observability; possibly the process-wide registry).
    metrics: object | None = None
    #: Failure-handling accounting of the elastic executor (parallel
    #: runs only): attempts, retries, lost workers, stolen ranges.
    executor_report: object | None = None
    _series: list[AVRankSeries] | None = field(default=None, repr=False)

    @property
    def engine_names(self) -> tuple[str, ...]:
        return self.fleet.names

    def series(self) -> list[AVRankSeries]:
        """AV-Rank series for every sample (cached).

        Built from the store's streaming block-order pass, so the full
        report set is never resident at once — only the compact series.
        On a columnar store the pass runs through the numpy kernels
        (:meth:`~repro.store.reportstore.ReportStore.series_frame`),
        which skip the per-engine planes entirely; the result is
        bit-identical to the row path (the differential harness in
        ``tests/test_store_columnar.py`` pins this).
        """
        if self._series is None:
            if self.store.block_format == "columnar":
                self._series = self.store.series_frame().to_series()
            else:
                self._series = collect_series(
                    self.store.iter_sample_reports())
        return self._series

    def store_cache_stats(self):
        """Retrieval-layer counters accumulated by the analyses so far."""
        return self.store.cache_stats()

    @cached_property
    def dataset_s(self) -> list[AVRankSeries]:
        """The paper's dataset *S*: fresh, top-20 types, multi-report."""
        return select_dataset_s(self.series(), frozenset(TOP20_FILE_TYPES))

    @cached_property
    def multi_report(self) -> list[AVRankSeries]:
        """All series with more than one report (§5.1's 63 M analogue)."""
        return [s for s in self.series() if s.multi]


def run_experiment(
    config: ScenarioConfig,
    fleet: EngineFleet | None = None,
    workers: int | str = 1,
    metrics=None,
    executor=None,
) -> ExperimentData:
    """Generate, scan and store one scenario; returns the loaded data.

    ``fleet`` overrides the default engine fleet — used by ablations
    (e.g. a fleet with copy rules stripped); with ``workers > 1`` the
    override is shipped to every worker, so ablations parallelise too.

    ``workers`` runs the scenario as that many sharded processes
    (``"auto"`` = CPU count, clamped by ``REPRO_MAX_WORKERS``).  The
    result is bit-identical to the serial run — same reports, same store
    layout, same canonical digest — with one difference:
    ``data.service`` is ``None``, since worker services die with their
    processes.  ``workers=1`` executes entirely in process, never
    touching :mod:`multiprocessing`.

    ``executor`` selects and tunes the elastic executor for parallel
    runs: ``None``/an executor kind string (``auto``, ``in-process``,
    ``fork``, ``spawn``) or a full
    :class:`~repro.parallel.scheduler.ExecutorPolicy`.  ``auto``
    prefers fork and falls back to spawn where fork is unavailable.

    ``metrics`` injects a registry for the run; with ``None`` the
    process-wide registry is used (the disabled null object unless
    :func:`repro.obs.enable` was called).  Serial and parallel runs of
    the same config export byte-identical metrics — see
    ``tests/test_obs_golden.py``.
    """
    if metrics is None:
        metrics = get_registry()
    n_workers = resolve_workers(workers)
    if n_workers > 1:
        from repro.parallel.runner import run_parallel

        return run_parallel(config, fleet=fleet, workers=n_workers,
                            metrics=metrics, executor=executor)

    from repro.parallel.worker import execute_range

    run = execute_range(config, 0, config.n_samples, fleet=fleet,
                        metrics=metrics)
    run.store.publish_metrics()
    return ExperimentData(
        config=config,
        fleet=run.fleet,
        service=run.service,
        store=run.store,
        events_executed=run.events_executed,
        metrics=metrics,
    )
