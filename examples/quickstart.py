#!/usr/bin/env python3
"""Quickstart: generate a synthetic VirusTotal dataset and measure its
label dynamics.

This walks the library's core loop in ~60 lines:

1. run a scenario (population -> simulated VT service -> premium feed ->
   report store);
2. split samples into stable vs dynamic (the paper's Observation 1);
3. check how a voting threshold would label a dynamic sample over time;
4. ask when its AV-Rank stabilised.

Run:  python examples/quickstart.py
"""

from repro import (
    ThresholdAggregator,
    avrank_stabilization,
    dynamics_scenario,
    run_experiment,
    split_stable_dynamic,
)

# 1. Generate a small dataset: fresh, top-20-file-type, multi-report
#    samples (the paper's dataset S construction).
data = run_experiment(dynamics_scenario(n_samples=2_000, seed=42))
print(f"generated {data.store.report_count:,} scan reports for "
      f"{data.store.sample_count:,} samples")

# 2. Stable vs dynamic (Observation 1: the paper found a 50/50 split).
stable, dynamic = split_stable_dynamic(data.series())
total = len(stable) + len(dynamic)
print(f"stable samples : {len(stable):,} ({len(stable) / total:.1%})")
print(f"dynamic samples: {len(dynamic):,} ({len(dynamic) / total:.1%})")

# 3. Pick the most dynamic sample and watch a threshold label it.
most_dynamic = max(dynamic, key=lambda s: s.delta_overall)
print(f"\nmost dynamic sample: {most_dynamic.sha256[:16]}… "
      f"({most_dynamic.file_type}), AV-Rank range "
      f"{most_dynamic.p_min}-{most_dynamic.p_max}")

aggregator = ThresholdAggregator(threshold=10)
reports = data.store.reports_for(most_dynamic.sha256)
for report in reports:
    day = report.scan_time / (24 * 60)
    print(f"  day {day:7.1f}: AV-Rank {report.positives:2d} -> "
          f"label {aggregator.label(report)}")

# 4. When did its AV-Rank stabilise (within a fluctuation of 2)?
outcome = avrank_stabilization(most_dynamic, fluctuation=2)
if outcome.stabilized:
    print(f"\nAV-Rank stabilised (±2) at scan #{outcome.scan_index}, "
          f"{outcome.days:.1f} days after first submission")
else:
    print("\nAV-Rank never stabilised (±2) during the window")
