"""Collector checkpoints: the last durably-ingested minute, plus gaps.

A checkpoint is only ever written *after* the store snapshot it
describes, so the pair on disk is always consistent: ``last_minute`` is
the last minute whose reports are in the saved store, ``gaps`` are the
half-open minute intervals known to be missing (outages, abandoned
polls, corrupt deliveries awaiting re-fetch), and ``report_count`` lets
resume verify it loaded the matching store.  Writes are atomic
(temp file + :func:`os.replace`) so a crash mid-write leaves the previous
checkpoint intact.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import CheckpointError

_VERSION = 1


@dataclass
class Checkpoint:
    """Durable collector state between runs."""

    #: Last minute fully handled (polled or gap-recorded); -1 = nothing.
    last_minute: int = -1
    #: Missing minute intervals ``[start, end)`` pending backfill.
    gaps: list[tuple[int, int]] = field(default_factory=list)
    #: Report count of the store snapshot this checkpoint describes.
    report_count: int = 0
    #: Collector counters at checkpoint time (restored on resume).
    counters: dict[str, float] = field(default_factory=dict)

    def add_gap(self, start: int, end: int) -> None:
        """Record ``[start, end)`` as missing, merging adjacent intervals."""
        if end <= start:
            return
        merged: list[tuple[int, int]] = []
        for s, e in sorted(self.gaps + [(start, end)]):
            if merged and s <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], e))
            else:
                merged.append((s, e))
        self.gaps = merged

    def remove_gap(self, start: int, end: int) -> None:
        """Mark ``[start, end)`` as recovered."""
        out: list[tuple[int, int]] = []
        for s, e in self.gaps:
            if e <= start or s >= end:
                out.append((s, e))
                continue
            if s < start:
                out.append((s, start))
            if e > end:
                out.append((end, e))
        self.gaps = out

    @property
    def gap_minutes(self) -> int:
        return sum(e - s for s, e in self.gaps)


def save_checkpoint(checkpoint: Checkpoint, path: str | Path) -> None:
    """Atomically persist a checkpoint."""
    path = Path(path)
    doc = {
        "version": _VERSION,
        "last_minute": checkpoint.last_minute,
        "gaps": [list(g) for g in checkpoint.gaps],
        "report_count": checkpoint.report_count,
        "counters": checkpoint.counters,
    }
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(doc, sort_keys=True), encoding="utf-8")
    os.replace(tmp, path)


def load_checkpoint(path: str | Path) -> Checkpoint:
    """Load a checkpoint, raising :class:`CheckpointError` when unusable."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    try:
        if doc["version"] != _VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {doc['version']}"
            )
        checkpoint = Checkpoint(
            last_minute=int(doc["last_minute"]),
            report_count=int(doc["report_count"]),
            counters=dict(doc.get("counters", {})),
        )
        for start, end in doc["gaps"]:
            checkpoint.add_gap(int(start), int(end))
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(
            f"malformed checkpoint {path}: {exc!r}"
        ) from exc
    return checkpoint
