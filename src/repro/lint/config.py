"""Configuration for reprolint: rule selection and the path policy.

The determinism contract does not bind every file equally: the injectable
clock modules *are* the sanctioned home of wall-clock reads, the elastic
executors *are* the sanctioned owners of worker processes, and the
metrics registry implementation necessarily passes metric names around as
variables.  The path policy encodes those carve-outs per rule, so the
self-check can run over all of ``src/repro`` without drowning the real
contract in sanctioned-owner noise.

Paths are matched in normalised package-relative form (``repro/vt/...``),
so the policy is independent of where the tree is checked out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Mapping

from repro.errors import LintError

#: Every rule code the engine knows, with a one-line summary.  RPL000 is
#: the pragma-hygiene rule (unknown code in a pragma) and is never
#: disableable or path-scoped.
RULE_SUMMARIES: dict[str, str] = {
    "RPL000": "malformed reprolint pragma (unknown or missing rule code)",
    "RPL001": "wall-clock read outside the injectable clock modules",
    "RPL002": "global or unseeded randomness instead of keyed per-sample RNG",
    "RPL003": "entropy source (uuid4, os.urandom, secrets) on the sim path",
    "RPL004": "iteration over an unordered source without sorted()",
    "RPL005": "metric-name discipline (literal, grammar, one kind per name)",
    "RPL006": "bare or swallowed exception handler in collect/faults",
    "RPL007": "multiprocessing pool/process built outside the executors",
}

ALL_CODES: frozenset[str] = frozenset(RULE_SUMMARIES)


def normalize_path(path: str) -> str:
    """Canonical display/policy form of a lint target path.

    Posix separators, ``./`` stripped, and everything up to a leading
    ``src/`` dropped, so checked-out and installed trees both yield
    ``repro/...`` paths the policy table can match.
    """
    posix = PurePosixPath(str(path).replace("\\", "/"))
    parts = [p for p in posix.parts if p not in (".",)]
    for anchor in ("src",):
        if anchor in parts[:-1]:
            cut = parts.index(anchor)
            if "repro" in parts[cut + 1:]:
                parts = parts[cut + 1:]
                break
    if "repro" in parts[:-1]:
        parts = parts[parts.index("repro"):]
    return "/".join(parts)


def _matches(path: str, pattern: str) -> bool:
    """Whether normalised ``path`` matches one policy ``pattern``.

    A pattern ending in ``/`` is a directory prefix; anything else must
    match the full path or a trailing path suffix at a ``/`` boundary.
    """
    if pattern.endswith("/"):
        return path.startswith(pattern) or f"/{pattern}" in f"/{path}"
    return path == pattern or path.endswith(f"/{pattern}")


@dataclass(frozen=True)
class PathPolicy:
    """Where one rule applies: include prefixes minus exclude patterns."""

    include: tuple[str, ...] = ("repro/",)
    exclude: tuple[str, ...] = ()

    def applies(self, path: str) -> bool:
        if self.include and not any(_matches(path, p) for p in self.include):
            return False
        return not any(_matches(path, p) for p in self.exclude)


#: The default per-rule path policy — the sanctioned-owner carve-outs.
DEFAULT_POLICIES: dict[str, PathPolicy] = {
    # Injectable clocks are the sanctioned home of wall-clock reads; the
    # serving-layer rate limiter and the executor heartbeat module meter
    # real elapsed time by definition (their default clocks are
    # injectable and overridden in tests), so they are structural
    # carve-outs here rather than pragmas.
    "RPL001": PathPolicy(exclude=("repro/vt/clock.py", "repro/obs/timing.py",
                                  "repro/serve/ratelimit.py",
                                  "repro/parallel/heartbeat.py")),
    "RPL002": PathPolicy(),
    "RPL003": PathPolicy(),
    "RPL004": PathPolicy(),
    # The registry/exporter implementation passes metric names as
    # variables by design; discipline is checked at recording call sites.
    "RPL005": PathPolicy(exclude=("repro/obs/registry.py",
                                  "repro/obs/timing.py",
                                  "repro/obs/export.py")),
    # The swallow rule is scoped to the resilience layers, where a
    # swallowed exception silently breaks the convergence guarantee.
    "RPL006": PathPolicy(include=("repro/collect/", "repro/faults/")),
    # The elastic executors are the sanctioned worker-process owners
    # (fork/spawn pools, reaping, respawn); everything else routes
    # fan-out through run_parallel().
    "RPL007": PathPolicy(exclude=("repro/parallel/executors/",)),
}


@dataclass(frozen=True)
class LintConfig:
    """One lint run's configuration.

    ``select=None`` enables every rule; otherwise only the given codes
    run (RPL000 pragma hygiene always runs).  Unknown codes raise
    :class:`~repro.errors.LintError` immediately — a typo'd ``--select``
    is an internal error, not an empty-but-green run.
    """

    select: frozenset[str] | None = None
    policies: Mapping[str, PathPolicy] = field(
        default_factory=lambda: dict(DEFAULT_POLICIES))

    def __post_init__(self) -> None:
        if self.select is not None:
            unknown = sorted(set(self.select) - ALL_CODES)
            if unknown:
                raise LintError(
                    f"unknown rule code(s) in select: {', '.join(unknown)}; "
                    f"known codes are {', '.join(sorted(ALL_CODES))}")

    def enabled(self, code: str) -> bool:
        if code == "RPL000":
            return True
        return self.select is None or code in self.select

    def rule_applies(self, code: str, path: str) -> bool:
        if not self.enabled(code):
            return False
        policy = self.policies.get(code)
        return policy.applies(path) if policy is not None else True


def parse_select(spec: str) -> frozenset[str]:
    """Parse a ``--select`` string (``RPL001,RPL004``) into codes."""
    codes = frozenset(
        token.strip().upper() for token in spec.split(",") if token.strip())
    if not codes:
        raise LintError("--select given but no rule codes parsed")
    return codes
