"""The elastic shard scheduler: work queue, heartbeats, steal and retry.

:class:`ShardScheduler` drives one parallel run over any
:class:`~repro.parallel.executors.base.Executor`.  It submits every
shard range to the shared work queue (finer-grained than the worker
count, so idle workers pull — steal — the remaining ranges), then loops:
drain messages, reap dead workers, steal ranges whose heartbeats went
silent past the deadline, and release retries whose backoff expired.

Failure handling is bounded and accounted:

* a **crashed** worker (reaped, or an in-band ``Failed("crash")``) loses
  its range to a retry and is replaced while work remains;
* a **hung** worker trips the heartbeat deadline; its range is stolen
  (resubmitted) and its late result, if any, is deduplicated by digest;
* a **poisoned** result (payload digest mismatch) is never merged — the
  shard retries, and the honest digest the worker declared becomes the
  checkpoint the retry must reproduce;
* every retry waits out a seeded keyed backoff
  (:func:`repro.faults.plan.keyed_fraction`, so chaos runs back off
  identically run-to-run), and a range that exhausts
  ``max_attempts`` is marked dead; once everything else drains the run
  raises :class:`~repro.errors.ShardFailedError` listing *all* dead
  ranges.

Determinism: none of this machinery touches simulation state.  Shard
bytes are a pure function of ``(config, range)`` — enforced per retry by
the digest checkpoint — so whatever crashes, hangs and steals occur, the
surviving results merge to the serial store bit for bit.  Scheduling
telemetry lands in the *process-wide* registry (see
:meth:`ExecutorReport.publish`), never in the experiment's injected
registry, keeping the metric side of the equivalence gate byte-exact.

Clock discipline: the scheduler never reads the host clock itself; it
takes a :data:`~repro.parallel.heartbeat.ClockFn` (tests inject fakes)
defaulting to the sanctioned owner in :mod:`repro.parallel.heartbeat`.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigError, ShardDigestError, ShardFailedError
from repro.faults.executor import ExecutorFaultPlan
from repro.faults.plan import keyed_fraction
from repro.obs import get_registry
from repro.parallel.executors.base import (
    Claimed,
    Completed,
    Executor,
    Failed,
    Heartbeat,
    ShardTask,
)
from repro.parallel.heartbeat import ClockFn, HeartbeatMonitor, monotonic_clock
from repro.parallel.worker import ShardRun

#: Edges for the heartbeat-lag histogram (seconds behind the expected
#: beat cadence when a signal lands).
_LAG_EDGES = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


@dataclass(frozen=True)
class ExecutorPolicy:
    """Everything tunable about one elastic run."""

    #: Executor kind: one of ``auto | in-process | fork | spawn``.
    kind: str = "auto"
    #: Work-queue granularity: ranges per worker.  More ranges mean
    #: finer stealing and smaller lost work per crash, at slightly more
    #: per-range overhead.
    fanout: int = 4
    #: Seconds of heartbeat silence before a running range is stolen.
    heartbeat_deadline: float = 30.0
    #: Seconds between worker heartbeats (default: a quarter of the
    #: deadline, so a steal needs ~4 consecutive missed beats).
    heartbeat_interval: float | None = None
    #: Seconds the scheduler blocks waiting for messages each tick
    #: (default: deadline/8 capped at 50ms).
    poll_interval: float | None = None
    #: Attempts per shard range before it is declared dead.
    max_attempts: int = 4
    #: Base of the exponential retry backoff (seconds).
    retry_backoff: float = 0.05
    #: Chaos plan injected into workers (None = no injected faults).
    fault_plan: ExecutorFaultPlan | None = None

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise ConfigError(f"fanout must be >= 1, got {self.fanout}")
        if self.heartbeat_deadline <= 0:
            raise ConfigError(f"heartbeat_deadline must be > 0, "
                              f"got {self.heartbeat_deadline}")
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, "
                              f"got {self.max_attempts}")
        if self.retry_backoff < 0:
            raise ConfigError(f"retry_backoff must be >= 0, "
                              f"got {self.retry_backoff}")
        for name in ("heartbeat_interval", "poll_interval"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigError(f"{name} must be > 0 when set, "
                                  f"got {value}")

    @property
    def effective_heartbeat_interval(self) -> float:
        if self.heartbeat_interval is not None:
            return self.heartbeat_interval
        return self.heartbeat_deadline / 4.0

    @property
    def effective_poll_interval(self) -> float:
        if self.poll_interval is not None:
            return self.poll_interval
        return min(0.05, self.heartbeat_deadline / 8.0)


@dataclass
class ExecutorReport:
    """Structured accounting of one elastic run's failure handling."""

    executor: str = ""
    workers: int = 0
    tasks: int = 0
    attempts: int = 0
    completed: int = 0
    retried: int = 0
    workers_lost: int = 0
    workers_respawned: int = 0
    ranges_stolen: int = 0
    corrupt_payloads: int = 0
    duplicate_results: int = 0
    requeued: int = 0
    heartbeats: int = 0
    dead_shards: list[str] = field(default_factory=list)
    heartbeat_lags: list[float] = field(default_factory=list, repr=False)

    @property
    def clean(self) -> bool:
        """Whether the run saw no failure handling at all."""
        return (self.retried == 0 and self.workers_lost == 0
                and self.ranges_stolen == 0 and self.corrupt_payloads == 0
                and not self.dead_shards)

    def publish(self, registry=None) -> None:
        """Record the run's scheduling telemetry.

        Publishes into the *process-wide* registry by default — not the
        experiment's injected registry — for the same reason
        ``store.merge.seconds`` does: retries, steals and heartbeat lag
        describe this host's scheduling luck, not the experiment, and
        the experiment's exported metrics must stay byte-identical
        between a chaos-battered parallel run and a serial one.
        """
        if registry is None:
            registry = get_registry()
        labels = {"executor": self.executor or "unknown"}
        registry.counter("parallel.tasks.total", **labels).inc(self.tasks)
        registry.counter("parallel.shards.retried", **labels).inc(
            self.retried)
        registry.counter("parallel.workers.lost", **labels).inc(
            self.workers_lost)
        registry.counter("parallel.workers.respawned", **labels).inc(
            self.workers_respawned)
        registry.counter("parallel.ranges.stolen", **labels).inc(
            self.ranges_stolen)
        registry.counter("parallel.shards.corrupt", **labels).inc(
            self.corrupt_payloads)
        registry.counter("parallel.shards.duplicate", **labels).inc(
            self.duplicate_results)
        registry.counter("parallel.heartbeats.total", **labels).inc(
            self.heartbeats)
        lag = registry.histogram("parallel.heartbeat.lag.seconds",
                                 edges=_LAG_EDGES, **labels)
        for value in self.heartbeat_lags:
            lag.observe(value)


# Task lifecycle states.
_QUEUED = "queued"
_RUNNING = "running"
_WAIT_RETRY = "wait-retry"
_DONE = "done"
_DEAD = "dead"


@dataclass
class _TaskState:
    task: ShardTask
    state: str = _QUEUED
    worker_id: int | None = None
    queued_at: float = 0.0
    ready_at: float = 0.0
    #: sha256 checkpoint every attempt's payload must reproduce.
    expected_digest: str | None = None


class ShardScheduler:
    """Drive one set of shard tasks to completion over an executor."""

    #: Multiple of the heartbeat deadline after which a queued-but-never-
    #: claimed task is defensively resubmitted (covers a task message
    #: lost with a worker that died between queue get and Claimed).
    REQUEUE_AFTER_DEADLINES = 2.0

    def __init__(
        self,
        executor: Executor,
        policy: ExecutorPolicy,
        tasks: list[ShardTask],
        on_result: Callable[[ShardRun], None],
        clock: ClockFn | None = None,
    ) -> None:
        self._executor = executor
        self._policy = policy
        self._on_result = on_result
        self._clock: ClockFn = clock if clock is not None else monotonic_clock
        self._states: dict[str, _TaskState] = {
            task.key: _TaskState(task=task) for task in tasks
        }
        if len(self._states) != len(tasks):
            raise ConfigError("shard task keys must be unique")
        self._monitor = HeartbeatMonitor(policy.heartbeat_deadline)
        #: worker_id -> shard key it is believed to be running.
        self._assignments: dict[int, str] = {}
        #: Workers that tripped a deadline and have not signalled since.
        self._suspect: set[int] = set()
        self.report = ExecutorReport(executor=executor.kind,
                                     tasks=len(tasks))

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------

    def run(self, workers: int) -> ExecutorReport:
        """Execute all tasks; returns the report or raises
        :class:`~repro.errors.ShardFailedError` once everything that can
        finish has finished."""
        policy = self._policy
        self.report.workers = workers
        now = self._clock()
        for state in self._states.values():
            self._submit(state, now)
        try:
            self._executor.start(workers)
            while self._pending():
                for message in self._executor.poll(
                        policy.effective_poll_interval):
                    self._dispatch(message)
                now = self._clock()
                self._check_dead(now)
                self._check_overdue(now)
                self._release_retries(now)
                self._requeue_unclaimed(now)
        finally:
            self._executor.shutdown()
        if self.report.dead_shards:
            raise ShardFailedError(self.report.dead_shards, self.report)
        return self.report

    # ------------------------------------------------------------------
    # Submission and retry
    # ------------------------------------------------------------------

    def _pending(self) -> bool:
        return any(s.state in (_QUEUED, _RUNNING, _WAIT_RETRY)
                   for s in self._states.values())

    def _submit(self, state: _TaskState, now: float) -> None:
        state.state = _QUEUED
        state.worker_id = None
        state.queued_at = now
        self.report.attempts += 1
        self._executor.submit(state.task)

    def _schedule_retry(self, state: _TaskState, now: float) -> None:
        """Queue the next attempt of a failed range, or declare it dead."""
        if state.state in (_DONE, _DEAD):
            return
        next_attempt = state.task.attempt + 1
        if next_attempt >= self._policy.max_attempts:
            state.state = _DEAD
            self.report.dead_shards.append(state.task.key)
            self.report.dead_shards.sort()
            return
        state.task = state.task.retry()
        state.state = _WAIT_RETRY
        state.worker_id = None
        self.report.retried += 1
        # Seeded keyed jitter: deterministic per (seed, key, attempt), so
        # a chaos replay backs off identically.
        jitter = 0.5 + keyed_fraction(state.task.config.seed, "backoff",
                                      state.task.key, next_attempt)
        state.ready_at = now + (self._policy.retry_backoff
                                * (2 ** (next_attempt - 1)) * jitter)

    def _release_retries(self, now: float) -> None:
        for state in self._states.values():
            if state.state == _WAIT_RETRY and state.ready_at <= now:
                self._submit(state, now)

    def _requeue_unclaimed(self, now: float) -> None:
        horizon = (self._policy.heartbeat_deadline
                   * self.REQUEUE_AFTER_DEADLINES)
        for state in self._states.values():
            if state.state == _QUEUED and now - state.queued_at > horizon:
                # The submission vanished (typically consumed by a worker
                # that died before its Claimed flushed).  Retry — through
                # the bounded path, so a task whose every claim dies
                # still terminates at max_attempts rather than being
                # requeued forever; duplicates dedupe by digest.
                self.report.requeued += 1
                self._schedule_retry(state, now)

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------

    def _check_dead(self, now: float) -> None:
        for worker_id, _exitcode in self._executor.reap():
            self.report.workers_lost += 1
            self._suspect.discard(worker_id)
            key = self._assignments.pop(worker_id, None)
            if key is not None:
                self._monitor.forget(key)
                self._schedule_retry(self._states[key], now)
            if self._pending():
                self._executor.spawn_worker()
                self.report.workers_respawned += 1

    def _check_overdue(self, now: float) -> None:
        for key in self._monitor.overdue(now):
            state = self._states[key]
            if state.state != _RUNNING:
                self._monitor.forget(key)
                continue
            # Steal: the worker may be hung (or just slow); resubmit the
            # range and let digest-dedup discard whichever result loses.
            self.report.ranges_stolen += 1
            self._monitor.forget(key)
            if state.worker_id is not None:
                self._suspect.add(state.worker_id)
                self._assignments.pop(state.worker_id, None)
            self._schedule_retry(state, now)
            live = self._executor.live_workers()
            if live and all(w in self._suspect for w in live):
                self._executor.spawn_worker()
                self.report.workers_respawned += 1

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, message) -> None:
        self._suspect.discard(getattr(message, "worker_id", -1))
        if isinstance(message, Claimed):
            self._on_claimed(message)
        elif isinstance(message, Heartbeat):
            self._on_heartbeat(message)
        elif isinstance(message, Completed):
            self._on_completed(message)
        elif isinstance(message, Failed):
            self._on_failed(message)

    def _on_claimed(self, msg: Claimed) -> None:
        state = self._states.get(msg.key)
        if state is None or state.state not in (_QUEUED, _WAIT_RETRY):
            return  # stale claim from a superseded submission
        now = self._clock()
        state.state = _RUNNING
        state.worker_id = msg.worker_id
        self._assignments[msg.worker_id] = msg.key
        self._monitor.track(msg.key, now)

    def _on_heartbeat(self, msg: Heartbeat) -> None:
        self.report.heartbeats += 1
        lag = self._monitor.signal(msg.key, self._clock())
        if lag is not None:
            self.report.heartbeat_lags.append(lag)

    def _on_failed(self, msg: Failed) -> None:
        state = self._states.get(msg.key)
        self._monitor.forget(msg.key)
        self._assignments.pop(msg.worker_id, None)
        if state is None or state.state == _DONE:
            return
        if msg.kind == "crash":
            # In-band translation of a process crash (in-process
            # executors cannot die for real).
            self.report.workers_lost += 1
        elif msg.kind == "hang":
            self.report.ranges_stolen += 1
        self._schedule_retry(state, self._clock())

    def _on_completed(self, msg: Completed) -> None:
        state = self._states.get(msg.key)
        if state is None:
            return
        self._monitor.forget(msg.key)
        if self._assignments.get(msg.worker_id) == msg.key:
            del self._assignments[msg.worker_id]
        actual = hashlib.sha256(msg.payload).hexdigest()

        if state.state == _DONE:
            # Late duplicate (typically a stolen range's original worker
            # waking up): verify it reproduced the accepted bytes.
            self.report.duplicate_results += 1
            if actual == msg.digest and actual != state.expected_digest:
                raise ShardDigestError(msg.key, state.expected_digest,
                                       actual)
            return

        if actual != msg.digest:
            # Poisoned payload: never merged.  The declared digest was
            # computed over the honest bytes, so checkpoint it — the
            # retry must reproduce exactly those bytes.
            self.report.corrupt_payloads += 1
            if state.expected_digest is None:
                state.expected_digest = msg.digest
            self._schedule_retry(state, self._clock())
            return

        if state.expected_digest is not None \
                and actual != state.expected_digest:
            raise ShardDigestError(msg.key, state.expected_digest, actual)

        state.expected_digest = actual
        state.state = _DONE
        if state.task.key in self.report.dead_shards:
            # A late honest result can still rescue a range that
            # exhausted its retries.
            self.report.dead_shards.remove(state.task.key)
        self.report.completed += 1
        run: ShardRun = pickle.loads(msg.payload)
        self._on_result(run)
