"""Unit tests for the simulation clock (repro.vt.clock)."""

import datetime as dt

import pytest

from repro.errors import ConfigError
from repro.vt import clock


class TestWindowGeometry:
    def test_fourteen_months(self):
        assert clock.COLLECTION_MONTHS == 14
        assert len(clock.MONTH_STARTS) == 15

    def test_window_spans_may21_to_jul22(self):
        assert clock.COLLECTION_START == dt.datetime(
            2021, 5, 1, tzinfo=dt.timezone.utc
        )
        assert clock.COLLECTION_END == dt.datetime(
            2022, 7, 1, tzinfo=dt.timezone.utc
        )

    def test_window_minutes_matches_day_count(self):
        # May 2021 .. June 2022 inclusive is 426 days.
        assert clock.WINDOW_DAYS == 426
        assert clock.WINDOW_MINUTES == 426 * clock.MINUTES_PER_DAY

    def test_month_starts_strictly_increasing(self):
        starts = clock.MONTH_STARTS
        assert all(b > a for a, b in zip(starts, starts[1:], strict=False))

    def test_first_month_is_may_31_days(self):
        assert clock.MONTH_STARTS[1] == 31 * clock.MINUTES_PER_DAY

    def test_february_2022_has_28_days(self):
        # Month index 9 is 02/2022.
        length = clock.MONTH_STARTS[10] - clock.MONTH_STARTS[9]
        assert length == 28 * clock.MINUTES_PER_DAY


class TestConversions:
    def test_minutes_builder(self):
        assert clock.minutes(days=1) == 1440
        assert clock.minutes(hours=2) == 120
        assert clock.minutes(mins=5) == 5
        assert clock.minutes(days=1, hours=1, mins=1) == 1501

    def test_day_of(self):
        assert clock.day_of(0) == 0.0
        assert clock.day_of(1440) == 1.0
        assert clock.day_of(2160) == 1.5

    def test_minute_of_day_wraps(self):
        assert clock.minute_of_day(0) == 0
        assert clock.minute_of_day(1439) == 1439
        assert clock.minute_of_day(1440) == 0

    def test_month_index_boundaries(self):
        assert clock.month_index(0) == 0
        assert clock.month_index(clock.MONTH_STARTS[1] - 1) == 0
        assert clock.month_index(clock.MONTH_STARTS[1]) == 1
        assert clock.month_index(clock.WINDOW_MINUTES - 1) == 13

    def test_month_index_clamps_out_of_window(self):
        assert clock.month_index(-10) == 0
        assert clock.month_index(clock.WINDOW_MINUTES + 99999) == 13

    def test_month_labels_match_paper_table2(self):
        assert clock.month_label(0) == "05/2021"
        assert clock.month_label(7) == "12/2021"
        assert clock.month_label(8) == "01/2022"
        assert clock.month_label(13) == "06/2022"

    def test_month_label_rejects_out_of_range(self):
        with pytest.raises(ConfigError):
            clock.month_label(14)
        with pytest.raises(ConfigError):
            clock.month_label(-1)

    def test_datetime_round_trip(self):
        for ts in (0, 1, 99999, clock.WINDOW_MINUTES - 1):
            assert clock.from_datetime(clock.to_datetime(ts)) == ts

    def test_from_datetime_requires_tzaware(self):
        with pytest.raises(ConfigError):
            clock.from_datetime(dt.datetime(2021, 6, 1))


class TestSimulationClock:
    def test_advance(self):
        c = clock.SimulationClock()
        assert c.advance(10) == 10
        assert c.now == 10
        assert c.elapsed == 10

    def test_advance_rejects_negative(self):
        c = clock.SimulationClock()
        with pytest.raises(ConfigError):
            c.advance(-1)

    def test_advance_to_never_goes_back(self):
        c = clock.SimulationClock(now=100)
        assert c.advance_to(50) == 100
        assert c.advance_to(200) == 200

    def test_in_window(self):
        assert clock.SimulationClock(now=5).in_window()
        assert not clock.SimulationClock(now=clock.WINDOW_MINUTES).in_window()

    def test_elapsed_respects_initial_offset(self):
        c = clock.SimulationClock(now=500)
        c.advance(40)
        assert c.elapsed == 40
