"""Deterministic fault injection for the collection and execution layers.

The paper's dataset exists because a collector survived 14 months of
polling a live feed; this package makes that failure surface *testable*.
A :class:`~repro.faults.plan.FaultPlan` describes, with a seed, every
delivery fault a run may see — outage windows, transient errors,
duplicated or corrupted deliveries, store write failures — and the chaos
wrappers in :mod:`repro.faults.chaos` inject exactly those faults around
the real feed/store/client objects.  :mod:`repro.collect` is the
consumer that must come through unscathed.

:class:`~repro.faults.executor.ExecutorFaultPlan` extends the same
discipline to the elastic executor's failure surface — worker crashes,
hangs past the heartbeat deadline, corrupted shard payloads — keyed by
``(seed, shard key, attempt)`` so parallel chaos runs are equally
bit-reproducible.  :mod:`repro.parallel` is that consumer.
"""

from repro.faults.chaos import (
    ChaosClient,
    ChaosFeed,
    ChaosStore,
    chaos_wrap,
)
from repro.faults.executor import (
    ExecutorFaultPlan,
    hashed_chance,
    hashed_fraction,
    standard_executor_chaos_plan,
)
from repro.faults.injectors import corrupt_payload, corrupt_report
from repro.faults.plan import (
    FaultPlan,
    OutageWindow,
    keyed_chance,
    keyed_fraction,
    standard_chaos_plan,
)

__all__ = [
    "ChaosClient",
    "ChaosFeed",
    "ChaosStore",
    "chaos_wrap",
    "corrupt_payload",
    "corrupt_report",
    "ExecutorFaultPlan",
    "FaultPlan",
    "OutageWindow",
    "hashed_chance",
    "hashed_fraction",
    "keyed_chance",
    "keyed_fraction",
    "standard_chaos_plan",
    "standard_executor_chaos_plan",
]
