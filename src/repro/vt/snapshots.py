"""Daily-snapshot collection — the Zhu et al. comparator methodology.

The paper's main prior work (Zhu et al., USENIX Security 2020) built its
dataset by **rescanning a fixed sample set every day for a year** rather
than observing organic submissions.  The paper attributes several of its
disagreements (notably the prevalence of hazard flips) to that protocol
difference.  :class:`SnapshotCampaign` reproduces the protocol against
the simulator so the two methodologies can be compared on identical
ground truth — which is exactly what the rescan-cadence ablation does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import ConfigError
from repro.store.reportstore import ReportStore
from repro.vt.clock import MINUTES_PER_DAY, WINDOW_MINUTES
from repro.vt.samples import Sample
from repro.vt.service import VirusTotalService


@dataclass
class SnapshotCampaign:
    """A fixed-set, fixed-cadence rescan campaign.

    Parameters
    ----------
    service:
        The VirusTotal service to scan against.
    cadence_days:
        Days between snapshots (Zhu et al.: 1.0).
    duration_days:
        Campaign length (Zhu et al.: ~365).
    scan_minute:
        Minute-of-day at which the daily batch runs.
    """

    service: VirusTotalService
    cadence_days: float = 1.0
    duration_days: float = 365.0
    scan_minute: int = 120
    store: ReportStore = field(default_factory=ReportStore)
    snapshots_taken: int = 0

    def __post_init__(self) -> None:
        if self.cadence_days <= 0:
            raise ConfigError("cadence_days must be positive")
        if self.duration_days <= 0:
            raise ConfigError("duration_days must be positive")
        if not 0 <= self.scan_minute < MINUTES_PER_DAY:
            raise ConfigError("scan_minute must be within a day")

    def run(
        self, samples: Iterable[Sample], start_day: float = 0.0
    ) -> ReportStore:
        """Upload every sample at the campaign start, then rescan the
        whole set on the configured cadence.

        Returns the (open) snapshot store; callers close it when done.
        """
        roster: Sequence[Sample] = list(samples)
        if not roster:
            raise ConfigError("campaign needs at least one sample")
        start = int(start_day * MINUTES_PER_DAY) + self.scan_minute
        for sample in roster:
            if not self.service.known(sample.sha256):
                self.service.register(sample)

        when = start
        end = start + int(self.duration_days * MINUTES_PER_DAY)
        first_round = True
        while when <= min(end, WINDOW_MINUTES - 1):
            for sample in roster:
                if first_round:
                    report = self.service.upload(sample, when)
                else:
                    report = self.service.rescan(sample.sha256, when)
                self.store.ingest(report)
            self.snapshots_taken += 1
            first_round = False
            when += int(self.cadence_days * MINUTES_PER_DAY)
        return self.store

    @property
    def reports_collected(self) -> int:
        return self.store.report_count
