"""CLI surface tests for ``repro-vt lint`` and the uniform exit-code
convention (0 = success, 1 = findings/differences, 2 = internal error).
"""

import json
import textwrap

import pytest

from repro.cli import main
from repro.lint import JSON_SCHEMA


@pytest.fixture()
def run_cli(capsys):
    def run(*argv):
        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    return run


@pytest.fixture()
def dirty_tree(tmp_path):
    """A lintable tree containing one wall-clock violation."""
    pkg = tmp_path / "repro" / "demo"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(textwrap.dedent("""
        import time

        def stamp():
            return time.time()
    """), encoding="utf-8")
    (pkg / "good.py").write_text(
        "def double(x):\n    return 2 * x\n", encoding="utf-8")
    return pkg


class TestLintCommand:
    def test_self_check_exits_zero(self, run_cli):
        code, out, _ = run_cli("lint")
        assert code == 0
        assert "0 findings" in out

    def test_findings_exit_one(self, run_cli, dirty_tree):
        code, out, _ = run_cli("lint", "--paths", str(dirty_tree))
        assert code == 1
        assert "RPL001" in out
        assert "bad.py:5:" in out

    def test_json_format_schema_head(self, run_cli, dirty_tree):
        code, out, _ = run_cli("lint", "--format", "json",
                               "--paths", str(dirty_tree))
        assert code == 1
        lines = out.splitlines()
        head = json.loads(lines[0])
        assert head["schema"] == JSON_SCHEMA
        assert head["files_checked"] == 2
        assert head["findings"] == 1
        finding = json.loads(lines[1])
        assert finding["code"] == "RPL001"
        assert finding["line"] == 5

    def test_select_narrows_to_chosen_rules(self, run_cli, dirty_tree):
        code, out, _ = run_cli("lint", "--select", "RPL003",
                               "--paths", str(dirty_tree))
        assert code == 0
        assert "0 findings" in out

    def test_output_writes_report_file(self, run_cli, dirty_tree, tmp_path):
        report = tmp_path / "lint.json"
        code, out, err = run_cli("lint", "--format", "json",
                                 "--paths", str(dirty_tree),
                                 "--output", str(report))
        assert code == 1
        assert report.read_text(encoding="utf-8") == out
        assert str(report) in err

    def test_explain_lists_every_rule(self, run_cli):
        code, out, _ = run_cli("lint", "--explain")
        assert code == 0
        for i in range(8):
            assert f"RPL00{i}" in out
        for i in range(1, 6):
            assert f"RPL10{i}" in out

    def test_unknown_select_code_exits_two(self, run_cli, capsys):
        code, _, err = run_cli("lint", "--select", "RPL999")
        assert code == 2
        assert "repro-vt: error:" in err
        assert "RPL999" in err

    def test_missing_path_exits_two(self, run_cli, tmp_path):
        code, _, err = run_cli("lint", "--paths", str(tmp_path / "nope"))
        assert code == 2
        assert "does not exist" in err


class TestIncrementalCli:
    def test_cache_cold_then_warm(self, run_cli, dirty_tree, tmp_path):
        cache = tmp_path / "lint-cache.json"

        def head_of(out):
            return json.loads(out.splitlines()[0])

        code, out, _ = run_cli("lint", "--format", "json",
                               "--paths", str(dirty_tree),
                               "--cache", str(cache))
        assert code == 1
        assert head_of(out)["files_reanalyzed"] == 2
        code, out, _ = run_cli("lint", "--format", "json",
                               "--paths", str(dirty_tree),
                               "--cache", str(cache))
        assert code == 1
        assert head_of(out)["files_reanalyzed"] == 0

    def test_changed_mode_reports_only_the_edit_cone(self, run_cli,
                                                     dirty_tree, tmp_path):
        cache = tmp_path / "lint-cache.json"
        run_cli("lint", "--paths", str(dirty_tree), "--cache", str(cache))
        good = dirty_tree / "good.py"
        good.write_text(good.read_text(encoding="utf-8") +
                        "\n\ndef triple(x):\n    return 3 * x\n",
                        encoding="utf-8")
        code, out, _ = run_cli("lint", "--paths", str(dirty_tree),
                               "--cache", str(cache), "--changed")
        # bad.py is unchanged and outside good.py's import cone, so its
        # finding is not reported; the run exits clean.
        assert code == 0
        assert "RPL001" not in out

    def test_changed_without_cache_exits_two(self, run_cli, dirty_tree):
        code, _, err = run_cli("lint", "--paths", str(dirty_tree),
                               "--changed")
        assert code == 2
        assert "--cache" in err

    def test_write_baseline_without_baseline_exits_two(self, run_cli,
                                                       dirty_tree):
        code, _, err = run_cli("lint", "--paths", str(dirty_tree),
                               "--write-baseline")
        assert code == 2
        assert "--baseline" in err

    def test_baseline_ratchet_and_stale_failure(self, run_cli, dirty_tree,
                                                tmp_path):
        baseline = tmp_path / "baseline.json"
        code, _, err = run_cli("lint", "--paths", str(dirty_tree),
                               "--baseline", str(baseline),
                               "--write-baseline")
        assert code == 0
        assert "1 baseline entries" in err
        # Baselined: the finding no longer fails the run.
        code, out, _ = run_cli("lint", "--paths", str(dirty_tree),
                               "--baseline", str(baseline))
        assert code == 0
        assert "1 baselined" in out
        # Fix the finding: the baseline entry is now stale and the
        # shrink-only ratchet fails the run until it is deleted.
        (dirty_tree / "bad.py").write_text(
            "def stamp():\n    return 0\n", encoding="utf-8")
        code, out, _ = run_cli("lint", "--paths", str(dirty_tree),
                               "--baseline", str(baseline))
        assert code == 1
        assert "stale baseline entry" in out


class TestExitCodeConvention:
    def test_digest_match_exits_zero(self, run_cli, tmp_path):
        a = tmp_path / "a.rpr"
        b = tmp_path / "b.rpr"
        for path in (a, b):
            code, _, _ = run_cli("--samples", "120", "--seed", "5",
                                 "generate", str(path))
            assert code == 0
        code, out, _ = run_cli("digest", str(a), str(b))
        assert code == 0
        assert "digests match" in out

    def test_digest_mismatch_exits_one(self, run_cli, tmp_path):
        a = tmp_path / "a.rpr"
        b = tmp_path / "b.rpr"
        code, _, _ = run_cli("--samples", "120", "--seed", "5",
                             "generate", str(a))
        assert code == 0
        code, _, _ = run_cli("--samples", "120", "--seed", "6",
                             "generate", str(b))
        assert code == 0
        code, out, _ = run_cli("digest", str(a), str(b))
        assert code == 1
        assert "digests DIFFER" in out

    def test_bad_workers_value_exits_two(self, run_cli, tmp_path):
        code, _, err = run_cli("--samples", "120", "--seed", "5",
                               "--workers", "banana",
                               "generate", str(tmp_path / "x.rpr"))
        assert code == 2
        assert "repro-vt: error:" in err

    def test_help_documents_the_convention(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "exit codes:" in out
        assert "internal error" in out
