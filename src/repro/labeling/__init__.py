"""AVClass-style family labelling baseline.

The paper's novelty assessment notes that VirusTotal label-analysis
tooling (AVClass, Sebastián et al., cited as [23]) already exists; this
subpackage implements that baseline so the examples can compare
threshold-based binary labelling against family-plurality labelling:

* :mod:`repro.labeling.tokens` — normalise raw engine detection strings
  into candidate family tokens (alias folding, generic-token removal);
* :mod:`repro.labeling.families` — plurality voting over tokens, and
  synthetic detection-string generation for the simulator's engines.
"""

from repro.labeling.families import (
    FamilyVote,
    detection_string,
    label_family,
)
from repro.labeling.tokens import normalize_label, tokenize_label

__all__ = [
    "FamilyVote",
    "detection_string",
    "label_family",
    "normalize_label",
    "tokenize_label",
]
