"""Unit tests for the report codec (repro.store.codec)."""

import json

import pytest

from repro.errors import CorruptRecordError
from repro.store import codec
from repro.vt.reports import ScanReport

from conftest import make_report


class TestRecordCodec:
    def test_round_trip(self):
        report = make_report(labels=[1, 0, -1, 1, 0],
                             versions=[7, 7, 8, 9, 10],
                             first_submission=-1234)
        assert codec.decode_report(codec.encode_report(report)) == report

    def test_round_trip_full_fleet_width(self):
        report = make_report(labels=[0] * 70, versions=[3] * 70,
                             n_engines=70)
        assert codec.decode_report(codec.encode_report(report)) == report

    def test_record_size_matches_actual(self):
        report = make_report(labels=[1, 0, 0, 0, 0])
        assert codec.record_size(report) == len(codec.encode_report(report))

    def test_truncated_record_rejected(self):
        blob = codec.encode_report(make_report())
        with pytest.raises(CorruptRecordError):
            codec.decode_report(blob[:20])

    def test_peek_sha(self):
        report = make_report(sha="ab" * 32)
        assert codec.peek_sha(codec.encode_report(report)) == "ab" * 32

    def test_peek_meta(self):
        report = make_report(scan_time=4242, first_submission=-99)
        sha, scan_time, first_sub = codec.peek_meta(
            codec.encode_report(report)
        )
        assert (sha, scan_time, first_sub) == (report.sha256, 4242, -99)


class TestVerboseEstimate:
    def test_verbose_size_scales_with_fleet(self):
        small = make_report(n_engines=5)
        big = make_report(labels=[0] * 70, versions=[1] * 70, n_engines=70)
        assert codec.verbose_json_size(big) > codec.verbose_json_size(small)

    def test_verbose_estimate_near_rendered_json(self):
        """The estimate should be within 2x of an actually rendered doc."""
        report = make_report(labels=[1] * 35 + [0] * 35,
                             versions=[1] * 70, n_engines=70)
        names = [f"Engine{i:02d}" for i in range(70)]
        rendered = len(codec.render_verbose_json(report, names))
        estimate = codec.verbose_json_size(report)
        assert rendered / 2 < estimate < rendered * 2

    def test_rendered_json_is_valid(self):
        report = make_report(labels=[1, 0, -1, 0, 0])
        doc = json.loads(codec.render_verbose_json(
            report, ["a", "b", "c", "d", "e"]
        ))
        attrs = doc["data"]["attributes"]
        assert attrs["last_analysis_stats"]["malicious"] == 1
        assert attrs["last_analysis_stats"]["undetected"] == 1
        assert len(attrs["last_analysis_results"]) == 5


class TestBlockFraming:
    def test_round_trip(self):
        records = [b"alpha", b"", b"gamma" * 100]
        assert codec.decode_block(codec.encode_block(records)) == records

    def test_empty_block(self):
        assert codec.decode_block(codec.encode_block([])) == []

    def test_bad_magic_rejected(self):
        with pytest.raises(CorruptRecordError):
            codec.decode_block(b"XXXX\x00\x00\x00\x00")

    def test_truncated_block_rejected(self):
        framed = codec.encode_block([b"hello"])
        with pytest.raises(CorruptRecordError):
            codec.decode_block(framed[:-2])

    def test_encoded_reports_survive_framing(self):
        reports = [make_report(sha=f"{i:02x}" * 32, scan_time=i * 100)
                   for i in range(5)]
        records = [codec.encode_report(r) for r in reports]
        recovered = [
            codec.decode_report(rec)
            for rec in codec.decode_block(codec.encode_block(records))
        ]
        assert recovered == reports


class TestCompactness:
    def test_binary_much_smaller_than_verbose(self):
        report = make_report(labels=[0] * 70, versions=[1] * 70,
                             n_engines=70)
        assert (len(codec.encode_report(report))
                < codec.verbose_json_size(report) / 10)


class TestCorruptionSurface:
    """Hostile payloads must surface as CorruptRecordError, never as a
    bare struct.error/ValueError leaking codec internals."""

    def test_every_truncation_point_rejected_cleanly(self):
        blob = codec.encode_report(make_report(labels=[1, 0, -1, 0, 1]))
        for cut in range(len(blob)):
            with pytest.raises(CorruptRecordError):
                codec.decode_report(blob[:cut])

    def test_bit_flips_never_leak_internal_errors(self):
        blob = codec.encode_report(make_report(labels=[1, 0, -1, 0, 1]))
        for pos in range(len(blob)):
            for bit in (0x01, 0x80):
                mangled = bytearray(blob)
                mangled[pos] ^= bit
                try:
                    codec.decode_report(bytes(mangled))
                except CorruptRecordError:
                    pass  # detected corruption: the contract
                # A silent decode is acceptable (no checksum in the
                # record format) — an escaping struct.error/ValueError
                # is not, and would fail this test.

    def test_inflated_count_field_rejected(self):
        blob = bytearray(codec.encode_report(make_report()))
        import struct as _struct

        offset = _struct.calcsize("<qHHqqqI")
        _struct.pack_into("<H", blob, offset, 60_000)
        with pytest.raises(CorruptRecordError):
            codec.decode_report(bytes(blob))

    def test_empty_payload_rejected(self):
        with pytest.raises(CorruptRecordError):
            codec.decode_report(b"")
