"""Section 6 pipelines: AV-Rank and label stabilisation (Figure 9).

Aggregates :mod:`repro.core.stabilization` over the dataset:

* :func:`avrank_stabilization_profile` — Observation 8's table: stabilised
  fraction and within-30-days share for fluctuation ranges r = 0..5;
* :func:`label_stabilization_profile` — Figure 9: per threshold, the mean
  stabilisation scan index and days, with and without two-scan samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.avrank import AVRankSeries
from repro.core.stabilization import (
    StabilizationSummary,
    summarize_avrank_stabilization,
    summarize_label_stabilization,
)

#: The paper's fluctuation ranges (§6.1).
FLUCTUATION_RANGES: tuple[int, ...] = (0, 1, 2, 3, 4, 5)

#: The paper's threshold grid for label stabilisation (§6.2).
LABEL_THRESHOLDS: tuple[int, ...] = (2, 5, 10, 15, 20, 25, 30, 35, 40)


@dataclass(frozen=True)
class AVRankStabilizationProfile:
    """Observation 8: stabilisation across fluctuation ranges."""

    by_fluctuation: dict[int, StabilizationSummary]

    def stabilized_fraction(self, r: int) -> float:
        """Paper: 10.9 % (r=0), 55.1 / 69.6 / 77.8 / 83.5 / 88.1 % (r=1..5)."""
        return self.by_fluctuation[r].stabilized_fraction

    def within_30_days(self, r: int) -> float:
        """Paper: >90 % of stabilising samples do so within 30 days."""
        return self.by_fluctuation[r].fraction_within[30]


def avrank_stabilization_profile(
    dataset_s: Sequence[AVRankSeries],
    ranges: Sequence[int] = FLUCTUATION_RANGES,
) -> AVRankStabilizationProfile:
    return AVRankStabilizationProfile(
        by_fluctuation={
            r: summarize_avrank_stabilization(dataset_s, r) for r in ranges
        }
    )


@dataclass(frozen=True)
class LabelStabilizationProfile:
    """Figure 9: label stabilisation across thresholds."""

    #: Figure 9(a): all samples in S.
    all_samples: dict[int, StabilizationSummary]
    #: Figure 9(b): samples with more than two scans.
    exclude_two_scan: dict[int, StabilizationSummary]

    def stabilized_fraction_range(self) -> tuple[float, float]:
        """Paper: 93.14 %-98.04 % of labels eventually stabilise."""
        values = [s.stabilized_fraction for s in self.all_samples.values()]
        return min(values), max(values)

    def within_30_days_range(self) -> tuple[float, float]:
        """Paper: 91.09 %-92.31 % stable within 30 days."""
        values = [s.fraction_within[30] for s in self.all_samples.values()]
        return min(values), max(values)


def label_stabilization_profile(
    dataset_s: Sequence[AVRankSeries],
    thresholds: Sequence[int] = LABEL_THRESHOLDS,
) -> LabelStabilizationProfile:
    return LabelStabilizationProfile(
        all_samples={
            t: summarize_label_stabilization(dataset_s, t)
            for t in thresholds
        },
        exclude_two_scan={
            t: summarize_label_stabilization(dataset_s, t,
                                             exclude_two_scan=True)
            for t in thresholds
        },
    )
