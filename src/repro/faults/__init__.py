"""Deterministic fault injection for the collection pipeline.

The paper's dataset exists because a collector survived 14 months of
polling a live feed; this package makes that failure surface *testable*.
A :class:`~repro.faults.plan.FaultPlan` describes, with a seed, every
fault a run may see — outage windows, transient errors, duplicated or
corrupted deliveries, store write failures — and the chaos wrappers in
:mod:`repro.faults.chaos` inject exactly those faults around the real
feed/store/client objects.  :mod:`repro.collect` is the consumer that
must come through unscathed.
"""

from repro.faults.chaos import (
    ChaosClient,
    ChaosFeed,
    ChaosStore,
    chaos_wrap,
)
from repro.faults.injectors import corrupt_payload, corrupt_report
from repro.faults.plan import FaultPlan, OutageWindow, standard_chaos_plan

__all__ = [
    "ChaosClient",
    "ChaosFeed",
    "ChaosStore",
    "chaos_wrap",
    "corrupt_payload",
    "corrupt_report",
    "FaultPlan",
    "OutageWindow",
    "standard_chaos_plan",
]
