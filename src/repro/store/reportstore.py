"""The report store: the paper's MongoDB pipeline as an embedded library.

:class:`ReportStore` ingests scan reports (typically straight from the
premium feed), shards them by collection-window month, compresses them in
blocks, and maintains two index structures the paper's pipeline also kept:

* a **per-sample index** mapping a hash to the block addresses of all its
  reports — the grouping step behind every per-sample analysis;
* **sample metadata** (file type, freshness) stored once per sample rather
  than per report — the "stored separately to reduce data redundancy"
  optimisation from §4.1.

The store can persist itself to a single file and reload it; the on-disk
format is self-describing (JSON header + length-prefixed compressed
blocks).  Since format v2 the per-sample index — addresses *and* scan
times (:mod:`repro.store.index`) — is persisted right after the header,
so loading touches no blocks and a point lookup
(:meth:`latest_report` / :meth:`report_series`) decodes at most the
blocks actually holding the sample's reports.  v1 files, which carry no
index section, still load: the index is then rebuilt lazily from cheap
record peeks on first per-sample access.

Retrieval is **write-aware and memory-bounded**: the decoded-block LRU
(:mod:`repro.store.cache`) admits only immutable frozen blocks — reads
that land in a shard's open buffer are served live and never cached, so
interleaved ingest and query (the live-feed scenario of §4.1) can never
observe a stale snapshot — and :meth:`iter_sample_reports` streams the
store block by block instead of materialising every report at once.
"""

from __future__ import annotations

import hashlib
import json
import mmap as _mmap
import struct
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.errors import (
    CorruptRecordError,
    ShardClosedError,
    StoreError,
    UnknownSampleError,
)
from repro.obs import NULL_REGISTRY, traced
from repro.store import codec, columnar
from repro.store.cache import DEFAULT_CACHE_BYTES, BlockCache, CacheStats
from repro.store.columnar import ColumnarBatch, SeriesFrame
from repro.store.index import (
    INDEX_FORMAT,
    IndexEntry,
    decode_index,
    encode_index,
    latest_entry,
    sample_ranks,
)
from repro.store.shard import DEFAULT_BLOCK_RECORDS, CompressedBlock, MonthlyShard
from repro.store.stats import StoreStats, compute_store_stats
from repro.vt.clock import month_index, month_label
from repro.vt.reports import ScanReport

_FILE_MAGIC = b"RPRSTORE"
#: Current on-disk format: v3 freezes blocks in the columnar layout
#: (v2 introduced the embedded point-lookup index section, which v3
#: keeps unchanged).
_FILE_VERSION = 3
#: Formats :meth:`ReportStore.load` accepts.  v1 (the original format)
#: has no index section — the index is rebuilt lazily instead; v2 is
#: row blocks plus the index; v3 is columnar blocks plus the index.
_SUPPORTED_VERSIONS = (1, 2, 3)

#: File version each block layout saves as by default.
_VERSION_OF_FORMAT = {codec.BLOCK_FORMAT_ROW: 2,
                      codec.BLOCK_FORMAT_COLUMNAR: 3}
#: Block layout implied by each file version.
_FORMAT_OF_VERSION = {1: codec.BLOCK_FORMAT_ROW,
                      2: codec.BLOCK_FORMAT_ROW,
                      3: codec.BLOCK_FORMAT_COLUMNAR}

Address = tuple[int, int, int]  # (month, block, slot)


class _MappedReader:
    """Sequential zero-copy reader over a memory-mapped store file.

    ``read`` returns :class:`memoryview` slices into the mapping, so
    block payloads loaded through it occupy no private memory — the page
    cache backs them, and forked workers share the pages.  Callers that
    need real bytes (struct/JSON decoding of the small header fields)
    wrap the view in ``bytes(...)``.
    """

    def __init__(self, mapping: "_mmap.mmap") -> None:
        self._view = memoryview(mapping)
        self._pos = 0

    def read(self, size: int) -> memoryview:
        view = self._view[self._pos:self._pos + size]
        self._pos += len(view)
        return view

#: Fixed bucket edges (bytes) for the encoded-record-size histogram.
RECORD_BYTES_EDGES: tuple[int, ...] = (64, 128, 192, 256, 384, 512, 1024, 2048)


class ReportStore:
    """Sharded, compressed, indexed storage for scan reports."""

    def __init__(
        self,
        block_records: int = DEFAULT_BLOCK_RECORDS,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        metrics=None,
        block_format: str = codec.BLOCK_FORMAT_COLUMNAR,
    ) -> None:
        self.block_records = block_records
        self.block_format = codec.resolve_block_format(block_format)
        #: Keeps a memory-mapped file (and its buffer) alive for stores
        #: loaded with ``mmap=True``; block payloads are views into it.
        self._mmap = None
        self.shards: dict[int, MonthlyShard] = {}
        self._index: dict[str, list[IndexEntry]] = {}
        self._sample_meta: dict[str, tuple[str, bool]] = {}
        self._scan_index: dict[str, set[int]] = {}
        #: False only on a store loaded from a v1 file, until the first
        #: per-sample access triggers the lazy rebuild.
        self._index_ready = True
        self._cache = BlockCache(max_bytes=cache_bytes)
        self._blocks_decoded = 0
        self._open_reads = 0
        self._peak_stream_reports = 0
        self.closed = False
        # Observability: pre-bound handles (no-ops on the null registry).
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_ingest_bytes = self.metrics.counter("store.ingest.bytes")
        self._m_record_bytes = self.metrics.histogram(
            "store.ingest.record_bytes", edges=RECORD_BYTES_EDGES)
        self._m_duplicates = self.metrics.counter("store.ingest.duplicates")
        self._m_batch_records = self.metrics.counter("store.ingest.batch_records")
        self._m_cache_hits = self.metrics.counter("store.cache.hits")
        self._m_cache_misses = self.metrics.counter("store.cache.misses")
        self._m_open_reads = self.metrics.counter("store.cache.open_reads")
        self._m_decoded = self.metrics.counter("store.cache.decoded_blocks")
        self._m_month_records: dict[int, object] = {}

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def ingest(self, report: ScanReport) -> None:
        """Add one report to the store."""
        if self.closed:
            raise ShardClosedError("store is closed")
        self._ensure_index()
        month = month_index(report.scan_time)
        shard = self._shard(month)
        record = codec.encode_report(report)
        block, slot = shard.append(record, codec.verbose_json_size(report))
        self._m_ingest_bytes.inc(len(record))
        self._m_record_bytes.observe(len(record))
        month_counter = self._m_month_records.get(month)
        if month_counter is None:
            month_counter = self._m_month_records[month] = self.metrics.counter(
                "store.ingest.records", month=month_label(month))
        month_counter.inc()
        # The open buffer is never cached, so this is a no-op today; it
        # pins the invalidation contract (any mutation of block `block`
        # must drop a cached decode of it) independent of cache policy.
        self._invalidate_block(month, block)
        self._index.setdefault(report.sha256, []).append(
            (month, block, slot, report.scan_time))
        self._scan_index.setdefault(report.sha256, set()).add(report.scan_time)
        if report.sha256 not in self._sample_meta:
            self._sample_meta[report.sha256] = (
                report.file_type,
                report.first_submission_date >= 0,
            )

    def has_report(self, sha256: str, scan_time: int) -> bool:
        """Whether a report for ``(sha256, scan_time)`` is already stored.

        The idempotency hook: a scan is identified by its sample and
        minute (one analysis per sample per minute), so replayed feed
        batches, duplicated deliveries and backfill overlap can all be
        recognised without decoding any block.
        """
        self._ensure_index()
        times = self._scan_index.get(sha256)
        return times is not None and scan_time in times

    def ingest_unique(self, report: ScanReport) -> bool:
        """Ingest unless an identical scan is already stored.

        Returns ``True`` when the report was ingested, ``False`` when it
        was recognised as a duplicate and skipped — the contract retrying
        collectors rely on so replays never double-count.
        """
        if self.has_report(report.sha256, report.scan_time):
            self._m_duplicates.inc()
            return False
        self.ingest(report)
        return True

    def ingest_batch(self, reports: Iterable[ScanReport]) -> int:
        """Add a batch (e.g. one feed poll); returns the count ingested."""
        count = 0
        for report in reports:
            self.ingest(report)
            count += 1
        return count

    def ingest_arrays(self, batch: ColumnarBatch) -> int:
        """Bulk-ingest a columnar batch; returns the count ingested.

        The array fast path: records are split by month vectorised, and
        whole blocks of a columnar shard are encoded straight from array
        slices, never materialising per-record python bytes for them.
        Digest-equivalent to ingesting ``batch``'s reports one by one in
        row order.

        Index maintenance is deferred (like a v1 load): the per-sample
        index rebuilds lazily on the first per-sample access instead of
        being updated record by record, which is what keeps this path
        fast for analytics ingest.
        """
        if self.closed:
            raise ShardClosedError("store is closed")
        n = len(batch)
        if n == 0:
            return 0
        months = columnar.month_indices(batch.scan_time.astype(np.int64))
        sorted_by_month = bool((months[1:] >= months[:-1]).all())
        uniq_months = np.unique(months)
        edges = np.searchsorted(months, uniq_months, side="left") \
            if sorted_by_month else None
        for k, month in enumerate(uniq_months.tolist()):
            if sorted_by_month:
                # Chronological input → months are contiguous runs, and a
                # slice (plane views, no gather) replaces the masked take.
                stop = int(edges[k + 1]) if k + 1 < len(uniq_months) else n
                sub = batch.slice(int(edges[k]), stop)
            else:
                sub = batch.take(months == month)
            shard = self._shard(month)
            self._invalidate_block(month, len(shard.blocks))
            shard.extend_batch(sub)
            self._m_ingest_bytes.inc(sub.encoded_bytes())
            month_counter = self._m_month_records.get(month)
            if month_counter is None:
                month_counter = self._m_month_records[month] = (
                    self.metrics.counter("store.ingest.records",
                                         month=month_label(month)))
            month_counter.inc(len(sub))
            if self.metrics.enabled:
                for size in sub._record_sizes().tolist():
                    self._m_record_bytes.observe(size)
        self._m_batch_records.inc(n)
        self._index_ready = False
        return n

    def flush(self) -> None:
        """Freeze every shard's open buffer into a compressed block.

        Useful on a live store to bound the raw-buffer footprint between
        ingest bursts; block addresses are unaffected (a buffer freezes
        into exactly the block index its records were assigned).
        """
        for shard in self.shards.values():
            self._invalidate_block(shard.month, len(shard.blocks))
            shard.flush()

    def close(self) -> None:
        """Flush and seal every shard; further ingests raise."""
        for shard in self.shards.values():
            self._invalidate_block(shard.month, len(shard.blocks))
            shard.close()
        self.closed = True

    def _shard(self, month: int) -> MonthlyShard:
        shard = self.shards.get(month)
        if shard is None:
            shard = MonthlyShard(month, block_records=self.block_records,
                                 block_format=self.block_format)
            self.shards[month] = shard
        return shard

    def _invalidate_block(self, month: int, block_idx: int) -> None:
        """Drop both cached decodes (records and batch) of one block."""
        self._cache.invalidate((month, block_idx))
        self._cache.invalidate((month, block_idx, "batch"))

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def report_count(self) -> int:
        return sum(s.report_count for s in self.shards.values())

    @property
    def sample_count(self) -> int:
        self._ensure_index()
        return len(self._index)

    @property
    def fresh_sample_count(self) -> int:
        self._ensure_index()
        return sum(1 for _, fresh in self._sample_meta.values() if fresh)

    def stats(self) -> StoreStats:
        """Table 2 style accounting for the whole store."""
        return compute_store_stats(self)

    def digest(self) -> str:
        """Canonical content digest of the stored report stream.

        Hashes every encoded record, month by month in ingest order, with
        length framing — so two stores are digest-equal iff they hold the
        same reports in the same order per month.  Block layout, cache
        state and index structures do not participate: the digest is the
        contract the parallel runner's serial/parallel equivalence gate
        checks (``run_experiment(config, workers=K)`` must reproduce the
        serial digest for every K).  On a live store the open buffers are
        included, so the digest reflects everything ingested so far.
        """
        h = hashlib.sha256()
        for month in sorted(self.shards):
            shard = self.shards[month]
            h.update(struct.pack("<iq", month, shard.report_count))
            for _, records in shard.iter_record_blocks():
                for record in records:
                    h.update(struct.pack("<I", len(record)))
                    h.update(record)
        return h.hexdigest()

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------

    def __contains__(self, sha256: str) -> bool:
        self._ensure_index()
        return sha256 in self._index

    def samples(self) -> Iterator[str]:
        """All sample hashes, in first-ingest order."""
        self._ensure_index()
        return iter(self._index)

    def sample_file_type(self, sha256: str) -> str:
        self._ensure_index()
        try:
            return self._sample_meta[sha256][0]
        except KeyError:
            raise UnknownSampleError(sha256) from None

    def sample_is_fresh(self, sha256: str) -> bool:
        self._ensure_index()
        try:
            return self._sample_meta[sha256][1]
        except KeyError:
            raise UnknownSampleError(sha256) from None

    def report_count_of(self, sha256: str) -> int:
        self._ensure_index()
        try:
            return len(self._index[sha256])
        except KeyError:
            raise UnknownSampleError(sha256) from None

    def _block(self, month: int, block_idx: int) -> list[bytes]:
        """Decoded records of one block, write-aware.

        Frozen blocks are immutable, so their decodes are cached in the
        bytes-bounded LRU.  An index at or past ``len(shard.blocks)``
        addresses the *open* buffer of a live shard: that read is served
        straight from the shard (a live view, not a snapshot) and is
        never cached — caching it was the stale-read bug this layer
        exists to prevent.
        """
        shard = self.shards[month]
        if block_idx >= len(shard.blocks):
            self._open_reads += 1
            self._m_open_reads.inc()
            return shard.block_records_at(block_idx)
        key = (month, block_idx)
        records = self._cache.get(key)
        if records is None:
            records = shard.blocks[block_idx].records()
            self._blocks_decoded += 1
            self._m_cache_misses.inc()
            self._m_decoded.inc()
            self._cache.put(key, records)
        else:
            self._m_cache_hits.inc()
        return records

    def _entries(self, sha256: str) -> list[IndexEntry]:
        self._ensure_index()
        try:
            return self._index[sha256]
        except KeyError:
            raise UnknownSampleError(sha256) from None

    def report_series(self, sha256: str) -> list[ScanReport]:
        """All reports of one sample, sorted by scan time.

        The point-lookup path: only the blocks actually holding the
        sample's reports are decoded, each exactly once per call (and at
        most once across calls while cached) — never the whole store.
        Safe to interleave with :meth:`ingest`: reports still in an open
        buffer are read live, and frozen-block cache entries can never go
        stale (frozen blocks are immutable).
        """
        by_block: dict[tuple[int, int], list[int]] = {}
        for month, block, slot, _ in self._entries(sha256):
            by_block.setdefault((month, block), []).append(slot)
        reports = []
        for (month, block), slots in sorted(by_block.items()):
            records = self._block(month, block)
            for slot in slots:
                reports.append(codec.decode_report(records[slot]))
        reports.sort(key=lambda r: r.scan_time)
        return reports

    def reports_for(self, sha256: str) -> list[ScanReport]:
        """Alias of :meth:`report_series` (the original name)."""
        return self.report_series(sha256)

    def _batch(self, month: int, block_idx: int) -> ColumnarBatch:
        """Decoded columnar batch of one block, write-aware.

        The batch analogue of :meth:`_block`: frozen-block batches are
        cached (under a key distinct from the record-list decode), open
        buffers are bulk-parsed live and never cached.
        """
        shard = self.shards[month]
        if block_idx >= len(shard.blocks):
            self._open_reads += 1
            self._m_open_reads.inc()
            return ColumnarBatch.from_records(
                shard.block_records_at(block_idx))
        key = (month, block_idx, "batch")
        batch = self._cache.get(key)
        if batch is None:
            batch = shard.blocks[block_idx].batch()
            self._blocks_decoded += 1
            self._m_cache_misses.inc()
            self._m_decoded.inc()
            self._cache.put(key, batch)
        else:
            self._m_cache_hits.inc()
        return batch

    def latest_report(self, sha256: str) -> ScanReport:
        """The sample's most recent report — what ``GET /files/{id}``
        serves.

        Locates the report through the index's per-entry scan times, so
        exactly one block is decoded on a cold cache (zero on a warm
        one) no matter how many months or reports the store holds.  Ties
        on the scan minute resolve to the last-ingested report, matching
        the final element of :meth:`report_series`.

        On a columnar store the block decodes straight to arrays and
        only the hit slot is materialised; row stores keep the record
        path.
        """
        month, block, slot, _ = latest_entry(self._entries(sha256))
        if self.block_format == codec.BLOCK_FORMAT_COLUMNAR:
            return self._batch(month, block).report(slot)
        return codec.decode_report(self._block(month, block)[slot])

    def iter_reports(self) -> Iterator[ScanReport]:
        """All reports, month by month in ingest order."""
        for month in sorted(self.shards):
            for _, records in self.shards[month].iter_record_blocks():
                self._blocks_decoded += 1
                self._m_decoded.inc()
                for record in records:
                    yield codec.decode_report(record)

    def iter_sample_reports(self) -> Iterator[tuple[str, list[ScanReport]]]:
        """``(sha256, time-sorted reports)`` for every sample, streaming.

        One sequential pass in block order, decoding each block exactly
        once.  A sample's group is yielded (and its memory released) as
        soon as the pass crosses the last block that contains one of its
        reports, so peak resident reports are bounded by the samples
        *live* across the current block window — not by store size.
        Samples therefore arrive in completion order (order of their
        last report), not first-ingest order.
        """
        # Last (month, block) each sample appears in → who completes where.
        self._ensure_index()
        completions: dict[tuple[int, int], list[str]] = {}
        for sha256, entries in self._index.items():
            last = max((month, block) for month, block, _, _ in entries)
            completions.setdefault(last, []).append(sha256)

        pending: dict[str, list[ScanReport]] = {}
        resident = 0
        for month in sorted(self.shards):
            for block_idx, records in self.shards[month].iter_record_blocks():
                self._blocks_decoded += 1
                self._m_decoded.inc()
                for record in records:
                    report = codec.decode_report(record)
                    pending.setdefault(report.sha256, []).append(report)
                resident += len(records)
                self._peak_stream_reports = max(
                    self._peak_stream_reports, resident
                )
                for sha256 in completions.pop((month, block_idx), ()):
                    reports = pending.pop(sha256)
                    resident -= len(reports)
                    reports.sort(key=lambda r: r.scan_time)
                    yield sha256, reports

    def iter_batches(self, planes: bool = True) -> Iterator[ColumnarBatch]:
        """Per-block columnar batches, month by month in block order.

        The streaming substrate of the analysis kernels: one sequential
        pass, one decode per block, no per-report python objects.  With
        ``planes=False`` columnar blocks decompress only their fixed
        columns — the per-engine planes, which dominate decompressed
        bytes, stay compressed.  The open buffer of a live shard is
        bulk-parsed last, exactly like :meth:`iter_record_blocks`.
        """
        for month in sorted(self.shards):
            for batch in self.shards[month].iter_batches(planes=planes):
                self._blocks_decoded += 1
                self._m_decoded.inc()
                yield batch

    def series_frame(self) -> SeriesFrame:
        """Every sample's AV-Rank trajectory as flat numpy arrays.

        The columnar replacement for
        ``collect_series(iter_sample_reports())``: same grouping, same
        time-sorting, same sample order (its :meth:`SeriesFrame.
        to_series` is bit-identical to the row path), built from a
        metadata-only streaming pass that never inflates the per-engine
        planes or constructs per-report objects.
        """
        if self._index_ready:
            return SeriesFrame.from_batches(self.iter_batches(planes=False),
                                            sample_ranks(self._index))
        # Deferred index (bulk ingest / v1 load): a rebuilt index would
        # rank samples by first occurrence in exactly the stream order
        # from_batches sees, so the rebuild can be skipped outright.
        return SeriesFrame.from_batches(self.iter_batches(planes=False))

    # ------------------------------------------------------------------
    # Cache control / instrumentation
    # ------------------------------------------------------------------

    def drop_caches(self) -> None:
        """Release all cached block decodes (event counters survive)."""
        self._cache.clear()

    def cache_stats(self) -> CacheStats:
        """Retrieval-layer counters: cache traffic, decodes, residency."""
        return CacheStats(
            hits=self._cache.hits,
            misses=self._cache.misses,
            evictions=self._cache.evictions,
            invalidations=self._cache.invalidations,
            blocks_decoded=self._blocks_decoded,
            open_reads=self._open_reads,
            bytes_resident=self._cache.bytes_resident,
            bytes_limit=self._cache.max_bytes,
            entries=len(self._cache),
            peak_stream_reports=self._peak_stream_reports,
        )

    def publish_metrics(self, registry=None) -> None:
        """Set whole-store gauges on ``registry`` (default: own registry).

        Unlike the hot-path counters, these describe the store's *final*
        state, so they are published once after all ingest/merge work —
        identically on the serial and parallel paths, whose stores are
        digest-equal by the equivalence gate.
        """
        registry = registry if registry is not None else self.metrics
        if not registry.enabled:
            return
        stats = self.stats()
        registry.gauge("store.reports").set(stats.total_reports)
        registry.gauge("store.samples").set(stats.total_samples)
        registry.gauge("store.fresh_samples").set(stats.fresh_samples)
        registry.gauge("store.blocks").set(
            sum(len(s.blocks) for s in self.shards.values()))
        registry.gauge("store.bytes.verbose").set(stats.verbose_bytes)
        registry.gauge("store.bytes.compressed").set(stats.compressed_bytes)
        registry.gauge("store.bytes.buffered").set(stats.buffered_bytes)
        for row in stats.months:
            if row.report_count:
                registry.gauge(
                    "store.month.reports", month=row.label
                ).set(row.report_count)
        cache = stats.cache
        registry.gauge("store.cache.bytes_resident").set(cache.bytes_resident)
        registry.gauge("store.cache.entries").set(cache.entries)
        registry.gauge("store.cache.peak_stream_reports").set(
            cache.peak_stream_reports)
        # hit_rate is well-defined (0.0) with zero lookups — publishing
        # on an untouched cache must never divide by zero.
        registry.gauge("store.cache.hit_rate").set(cache.hit_rate)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    @traced("store.save.seconds")
    def save(self, path: str | Path, *, include_index: bool = True,
             format_version: int | None = None) -> None:
        """Write the store to a single self-describing file.

        Non-mutating: saving a live (unclosed) store is a pure snapshot.
        Records still in a shard's open buffer are compressed into a tail
        block *in the file only* — the in-memory shard keeps its buffer,
        block layout and addresses untouched, and ingest can continue
        afterwards.  (An earlier revision flushed each shard mid-save,
        silently changing the block layout of a live store.)

        ``format_version`` picks the on-disk format explicitly:

        * ``1`` — row blocks, no index section (the original layout);
        * ``2`` — row blocks plus the embedded point-lookup index;
        * ``3`` — columnar blocks plus the index (the default for
          columnar stores).

        ``None`` infers it from the store's own block layout (and from
        ``include_index=False``, which keeps meaning "write a v1
        file").  Blocks whose frozen layout differs from the target are
        transcoded record-for-record; because both encoders are pure
        functions of the record sequence (one fixed zlib level per
        layout), the output
        is byte-exact against a store that had always used the target
        layout — v2 files written by a columnar store are
        bit-identical to those written by a row store of the same
        contents, and vice versa.
        """
        self._ensure_index()
        path = Path(path)
        if format_version is None:
            format_version = (1 if not include_index
                              else _VERSION_OF_FORMAT[self.block_format])
        if format_version not in _SUPPORTED_VERSIONS:
            raise CorruptRecordError(
                f"unsupported store version {format_version}")
        if format_version == 1:
            include_index = False
        target_format = _FORMAT_OF_VERSION[format_version]
        header = {
            "version": format_version,
            "block_records": self.block_records,
            "months": sorted(self.shards),
            # Retrieval-layer counters ride along so a save()+reopen
            # cycle doesn't silently zero the instrumentation (they used
            # to reset, making long-lived collector restarts look like
            # cold caches).  Old files simply lack the key.
            "retrieval_counters": {
                "hits": self._cache.hits,
                "misses": self._cache.misses,
                "evictions": self._cache.evictions,
                "invalidations": self._cache.invalidations,
                "blocks_decoded": self._blocks_decoded,
                "open_reads": self._open_reads,
                "peak_stream_reports": self._peak_stream_reports,
            },
        }
        index_payload = b""
        if include_index:
            index_payload = encode_index(self._index, self._sample_meta)
            header["index"] = {
                "format": INDEX_FORMAT,
                "samples": len(self._index),
                "bytes": len(index_payload),
            }
        with path.open("wb") as fh:
            fh.write(_FILE_MAGIC)
            header_bytes = json.dumps(header).encode("utf-8")
            fh.write(struct.pack("<I", len(header_bytes)))
            fh.write(header_bytes)
            if include_index:
                fh.write(index_payload)
            for month in sorted(self.shards):
                shard = self.shards[month]
                blocks = [self._transcoded(block, target_format)
                          for block in shard.blocks]
                buffered = shard.buffered_records()
                if buffered:
                    blocks.append(
                        CompressedBlock.from_records(buffered, target_format))
                fh.write(struct.pack("<iIqqq", month, len(blocks),
                                     shard.report_count, shard.verbose_bytes,
                                     shard.encoded_bytes))
                for block in blocks:
                    fh.write(struct.pack("<IIq", len(block.payload),
                                         block.record_count, block.raw_bytes))
                    fh.write(block.payload)

    @staticmethod
    def _transcoded(block: CompressedBlock, target_format: str) -> CompressedBlock:
        """The block as-is when already in the target layout, else re-encoded.

        Dispatches on the block's own magic (not the shard's nominal
        format) so stores holding mixed layouts — e.g. after a merge
        spliced foreign blocks — still save a uniform, byte-exact file.
        """
        if codec.peek_block_format(block.payload) == target_format:
            return block
        return CompressedBlock.from_records(block.records(), target_format)

    @classmethod
    @traced("store.load.seconds")
    def load(cls, path: str | Path, *, reopen: bool = False,
             metrics=None, use_mmap: bool = False) -> "ReportStore":
        """Reload a store written by :meth:`save`.

        A v2/v3 file carries its point-lookup index inline, so loading
        decodes no blocks at all; a legacy v1 file (no index section)
        loads too, deferring the index rebuild until the first
        per-sample access actually needs it (lazy fallback).  The block
        layout (row for v1/v2, columnar for v3) is taken from the file
        version, so new appends and re-saves stay format-consistent.

        With ``use_mmap=True`` the file is memory-mapped and every block
        payload is a zero-copy view into the mapping: nothing but the
        header and index is read eagerly, the page cache backs all block
        bytes, and — the point — fork-based executor workers *share*
        those pages instead of each re-reading (or worse, copying) the
        file.  The mapping lives as long as the store does.

        By default the loaded store is sealed (analysis use).  With
        ``reopen=True`` the shards stay writable so ingest can continue —
        the crash/resume path of the resilient collector.  Reopened
        appends land in fresh blocks after the loaded ones; existing
        addresses are unaffected.
        """
        path = Path(path)
        with path.open("rb") as fh:
            if use_mmap:
                mapping = _mmap.mmap(fh.fileno(), 0,
                                     access=_mmap.ACCESS_READ)
            else:
                mapping = None
            # Everything below parses attacker-shaped bytes: a truncated
            # or damaged file must surface as CorruptRecordError (the
            # store's exception contract) and must not leak the mapping.
            try:
                reader = _MappedReader(mapping) if mapping is not None else fh
                if reader.read(len(_FILE_MAGIC)) != _FILE_MAGIC:
                    raise CorruptRecordError(f"{path} is not a report store")
                (header_len,) = struct.unpack("<I", reader.read(4))
                header = json.loads(
                    bytes(reader.read(header_len)).decode("utf-8"))
                if header["version"] not in _SUPPORTED_VERSIONS:
                    raise CorruptRecordError(
                        f"unsupported store version {header['version']}"
                    )
                store = cls(block_records=header["block_records"],
                            metrics=metrics,
                            block_format=_FORMAT_OF_VERSION[header["version"]])
                store._mmap = mapping
                index_info = header.get("index")
                index_payload = None
                if index_info is not None:
                    if index_info["format"] != INDEX_FORMAT:
                        raise CorruptRecordError(
                            f"unsupported store index format "
                            f"{index_info['format']}")
                    index_payload = reader.read(index_info["bytes"])
                    if len(index_payload) != index_info["bytes"]:
                        raise CorruptRecordError("truncated store index")
                counters = header.get("retrieval_counters")
                if counters:
                    store._cache.hits = counters.get("hits", 0)
                    store._cache.misses = counters.get("misses", 0)
                    store._cache.evictions = counters.get("evictions", 0)
                    store._cache.invalidations = counters.get(
                        "invalidations", 0)
                    store._blocks_decoded = counters.get("blocks_decoded", 0)
                    store._open_reads = counters.get("open_reads", 0)
                    store._peak_stream_reports = counters.get(
                        "peak_stream_reports", 0)
                for _ in header["months"]:
                    month, n_blocks, report_count, verbose, encoded = \
                        struct.unpack("<iIqqq", bytes(
                            reader.read(struct.calcsize("<iIqqq"))))
                    shard = MonthlyShard(month,
                                         block_records=store.block_records,
                                         block_format=store.block_format)
                    for _ in range(n_blocks):
                        size, record_count, raw = struct.unpack(
                            "<IIq", bytes(reader.read(struct.calcsize("<IIq")))
                        )
                        payload = reader.read(size)
                        if len(payload) != size:
                            raise CorruptRecordError("truncated store file")
                        shard.blocks.append(
                            CompressedBlock(payload, record_count, raw)
                        )
                    shard.report_count = report_count
                    shard.verbose_bytes = verbose
                    shard.encoded_bytes = encoded
                    shard.closed = not reopen
                    store.shards[month] = shard
                if index_payload is not None:
                    index, meta = decode_index(bytes(index_payload))
                    store._index = index
                    store._sample_meta = meta
                    store._scan_index = {
                        sha: {entry[3] for entry in entries}
                        for sha, entries in index.items()
                    }
                else:
                    store._index_ready = False
            except (StoreError, struct.error, ValueError, KeyError) as exc:
                if mapping is not None:
                    # Payloads decoded before the error are exported
                    # views into the mapping; drop every frame-local
                    # reference first or close() raises BufferError.
                    reader = store = shard = payload = index_payload = None
                    mapping.close()
                if isinstance(exc, StoreError):
                    raise
                raise CorruptRecordError(
                    f"{path} is damaged or truncated: {exc}") from exc
        store.closed = not reopen
        return store

    def _ensure_index(self) -> None:
        """Build the per-sample index if it was deferred (v1 file load)."""
        if not self._index_ready:
            self._rebuild_index()

    def _rebuild_index(self) -> None:
        """Rebuild the per-sample index from the records themselves.

        One vectorised pass over metadata-only batches (covering open
        buffers too — the bulk :meth:`ingest_arrays` path defers
        indexing): all addresses, scan times and first-occurrence
        metadata come out of numpy gathers, and only the per-sample
        python dict entries are built in a loop.  Entry order, dict
        insertion order and metadata choice are identical to what the
        old per-record peek loop produced.
        """
        self._index.clear()
        self._sample_meta.clear()
        self._scan_index.clear()
        parts: list[tuple[int, int, "ColumnarBatch"]] = []
        names: dict[str, int] = {}
        ftype_parts: list[np.ndarray] = []
        for month in sorted(self.shards):
            shard = self.shards[month]
            for block_idx, batch in enumerate(
                    shard.iter_batches(planes=False)):
                if len(batch) == 0:
                    continue
                parts.append((month, block_idx, batch))
                local = np.zeros(max(len(batch.ftypes), 1), np.int64)
                for i, name in enumerate(batch.ftypes):
                    local[i] = names.setdefault(name, len(names))
                ftype_parts.append(local[batch.ftype_codes.astype(np.int64)])
        if not parts:
            self._index_ready = True
            return
        months = np.concatenate(
            [np.full(len(b), m, np.int64) for m, _, b in parts])
        blocks = np.concatenate(
            [np.full(len(b), i, np.int64) for _, i, b in parts])
        slots = np.concatenate(
            [np.arange(len(b), dtype=np.int64) for _, _, b in parts])
        times = np.concatenate(
            [b.scan_time.astype(np.int64) for _, _, b in parts])
        fresh = np.concatenate(
            [b.first_submission.astype(np.int64) >= 0 for _, _, b in parts])
        shas = np.concatenate([b.shas for _, _, b in parts])
        ftypes = np.concatenate(ftype_parts)
        n_total = len(shas)

        uniq, inv = np.unique(shas, return_inverse=True)
        n_uniq = len(uniq)
        first_pos = np.full(n_uniq, n_total, np.int64)
        np.minimum.at(first_pos, inv, np.arange(n_total, dtype=np.int64))
        order = np.argsort(inv, kind="stable")   # group rows, stream order
        bounds = np.zeros(n_uniq + 1, np.int64)
        np.cumsum(np.bincount(inv, minlength=n_uniq), out=bounds[1:])

        # Hexadecimal digests only once per *unique* sha; tobytes() pads
        # S32 elements back to their full width (indexing strips NULs).
        blob = uniq.tobytes()
        hexes = [blob[32 * i:32 * i + 32].hex() for i in range(n_uniq)]
        m_l = months[order].tolist()
        b_l = blocks[order].tolist()
        s_l = slots[order].tolist()
        t_l = times[order].tolist()
        bounds_l = bounds.tolist()
        fresh_first = fresh[first_pos].tolist()
        names_list = list(names)
        ftype_first = ftypes[first_pos].tolist()
        for u in np.argsort(first_pos, kind="stable").tolist():
            lo, hi = bounds_l[u], bounds_l[u + 1]
            sha = hexes[u]
            self._index[sha] = list(
                zip(m_l[lo:hi], b_l[lo:hi], s_l[lo:hi], t_l[lo:hi]))
            self._scan_index[sha] = set(t_l[lo:hi])
            self._sample_meta[sha] = (
                names_list[ftype_first[u]], fresh_first[u])
        self._index_ready = True
