"""Unit tests for per-engine flip analysis (repro.core.flips)."""

import math

import pytest

from repro.core.flips import analyze_flips

from conftest import make_report, make_sha

NAMES = ("e0", "e1", "e2", "e3", "e4")


def _grouped(label_rows, versions_rows=None, file_type="TXT", sha="g"):
    """Build one sample's reports from per-scan label rows."""
    sha256 = make_sha(sha)
    reports = []
    for i, labels in enumerate(label_rows):
        versions = (versions_rows[i] if versions_rows
                    else [1] * len(labels))
        reports.append(make_report(
            sha=sha256, scan_time=1000 * (i + 1), labels=list(labels),
            versions=list(versions), file_type=file_type,
        ))
    return sha256, reports


class TestFlipCounting:
    def test_up_and_down_flips(self):
        grouped = [_grouped([
            [0, 1, 0, 0, 0],
            [1, 0, 0, 0, 0],
        ])]
        stats = analyze_flips(grouped, NAMES)
        assert stats.total_flips_up == 1     # e0: 0 -> 1
        assert stats.total_flips_down == 1   # e1: 1 -> 0
        assert stats.total_flips == 2

    def test_no_flip_without_change(self):
        grouped = [_grouped([[1, 0, 0, 0, 0]] * 3)]
        stats = analyze_flips(grouped, NAMES)
        assert stats.total_flips == 0
        assert stats.pairs[0] == 2

    def test_undetected_is_transparent(self):
        """1, -1, 1 is one valid pair and no flip (paper's framing)."""
        grouped = [_grouped([
            [1, 0, 0, 0, 0],
            [-1, 0, 0, 0, 0],
            [1, 0, 0, 0, 0],
        ])]
        stats = analyze_flips(grouped, NAMES)
        assert stats.flips_up[0] == 0
        assert stats.flips_down[0] == 0
        assert stats.pairs[0] == 1

    def test_undetected_then_flip_counts_once(self):
        grouped = [_grouped([
            [0, 0, 0, 0, 0],
            [-1, 0, 0, 0, 0],
            [1, 0, 0, 0, 0],
        ])]
        stats = analyze_flips(grouped, NAMES)
        assert stats.flips_up[0] == 1

    def test_single_report_samples_skipped(self):
        grouped = [_grouped([[1, 1, 1, 1, 1]])]
        stats = analyze_flips(grouped, NAMES)
        assert stats.total_flips == 0
        assert stats.report_count == 1
        assert stats.sample_count == 1


class TestHazards:
    def test_hazard_010(self):
        grouped = [_grouped([
            [0, 0, 0, 0, 0],
            [1, 0, 0, 0, 0],
            [0, 0, 0, 0, 0],
        ])]
        stats = analyze_flips(grouped, NAMES)
        assert stats.hazards_010[0] == 1
        assert stats.hazards_101[0] == 0
        assert stats.total_hazards == 1

    def test_hazard_101(self):
        grouped = [_grouped([
            [1, 0, 0, 0, 0],
            [0, 0, 0, 0, 0],
            [1, 0, 0, 0, 0],
        ])]
        stats = analyze_flips(grouped, NAMES)
        assert stats.hazards_101[0] == 1

    def test_hazard_across_undetected_gap(self):
        grouped = [_grouped([
            [0, 0, 0, 0, 0],
            [1, 0, 0, 0, 0],
            [-1, 0, 0, 0, 0],
            [0, 0, 0, 0, 0],
        ])]
        stats = analyze_flips(grouped, NAMES)
        assert stats.hazards_010[0] == 1

    def test_monotone_sequences_have_no_hazards(self):
        grouped = [_grouped([
            [0, 1, 0, 0, 0],
            [1, 1, 0, 0, 0],
            [1, 1, 0, 0, 0],
        ])]
        assert analyze_flips(grouped, NAMES).total_hazards == 0


class TestUpdateCoincidence:
    def test_flip_with_version_change(self):
        grouped = [_grouped(
            [[0, 0, 0, 0, 0], [1, 0, 0, 0, 0]],
            versions_rows=[[1, 1, 1, 1, 1], [2, 1, 1, 1, 1]],
        )]
        stats = analyze_flips(grouped, NAMES)
        assert stats.flips_with_update == 1
        assert stats.update_coincidence_rate == 1.0

    def test_flip_without_version_change(self):
        grouped = [_grouped(
            [[0, 0, 0, 0, 0], [1, 0, 0, 0, 0]],
            versions_rows=[[1, 1, 1, 1, 1], [1, 1, 1, 1, 1]],
        )]
        stats = analyze_flips(grouped, NAMES)
        assert stats.flips_with_update == 0

    def test_rate_nan_when_no_flips(self):
        grouped = [_grouped([[0, 0, 0, 0, 0]] * 2)]
        assert math.isnan(
            analyze_flips(grouped, NAMES).update_coincidence_rate
        )


class TestRatios:
    def test_flip_ratio_per_engine(self):
        grouped = [_grouped([
            [0, 0, 0, 0, 0],
            [1, 0, 0, 0, 0],
            [1, 0, 0, 0, 0],
        ])]
        stats = analyze_flips(grouped, NAMES)
        assert stats.flip_ratio("e0") == pytest.approx(0.5)
        assert stats.flip_ratio("e1") == 0.0

    def test_per_type_matrix(self):
        grouped = [
            _grouped([[0, 0, 0, 0, 0], [1, 0, 0, 0, 0]],
                     file_type="ELF executable", sha="elf"),
            _grouped([[0, 0, 0, 0, 0], [0, 0, 0, 0, 0]],
                     file_type="DEX", sha="dex"),
        ]
        stats = analyze_flips(grouped, NAMES)
        types, matrix = stats.flip_ratio_matrix(["ELF executable", "DEX"])
        assert types == ["ELF executable", "DEX"]
        assert matrix[0][0] == pytest.approx(1.0)
        assert matrix[1][0] == pytest.approx(0.0)

    def test_flippiest_and_stablest(self):
        grouped = [_grouped([
            [0, 0, 0, 0, 0],
            [1, 0, 0, 0, 0],
            [0, 0, 0, 0, 0],
        ])]
        stats = analyze_flips(grouped, NAMES)
        assert stats.flippiest_engines(1)[0][0] == "e0"
        assert stats.stablest_engines(1)[0][0] != "e0"
