"""Table 3: file-type distribution of samples and reports.

Paper shapes: Win32 EXE is the most common type (25.2 % of samples), the
top-10 types cover ~78 % and the top-20 ~87 % of samples, and rescan-heavy
types (Win32 DLL ~4 reports/sample, ZIP ~2.6) over-index on reports.
"""

from __future__ import annotations

from functools import partial

from repro.analysis.dataset import file_type_distribution
from repro.analysis.rendering import render_table3
from repro.vt.filetypes import TOP20_FILE_TYPES

from conftest import run_once, say


def test_table3_file_type_distribution(benchmark, bench_paper_data):
    dist = run_once(
        benchmark, partial(file_type_distribution, bench_paper_data.store)
    )
    say()
    say(render_table3(dist))

    assert dist.rows[0].file_type == "Win32 EXE"
    assert dist.rows[0].sample_share > 0.20

    named = [r for r in dist.rows if not r.file_type.startswith("TYPE_")
             and r.file_type != "NULL"]
    top10_share = sum(r.sample_share for r in named[:10])
    assert 0.60 < top10_share < 0.90  # paper: 78.17 %

    # Rescan-heavy types over-index on reports relative to samples.
    dll = dist.row_for("Win32 DLL")
    if dll is not None and dll.samples > 50:
        assert dll.report_share > dll.sample_share * 1.5

    # All 20 paper types should appear at this scale.
    present = {r.file_type for r in dist.rows}
    missing = set(TOP20_FILE_TYPES) - present
    assert not missing, f"missing types: {missing}"
