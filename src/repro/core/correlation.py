"""Engine correlation analysis (§7.2).

The paper builds a matrix R over all scans: each row is one scan, each
column one engine, entries are 1 (malicious), 0 (benign) or −1
(undetected).  For every engine pair it computes Spearman's ρ between the
column vectors and calls the pair **strongly correlated** above 0.8; the
graph of strong correlations (Figure 11 overall, Figure 12 per type) has
connected components that recover the known OEM/copying groups
(Tables 4-8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import networkx as nx
import numpy as np

from repro.errors import InsufficientDataError
from repro.stats.spearman import spearman_matrix
from repro.vt.reports import ScanReport

#: The paper's strong-correlation threshold.
STRONG_THRESHOLD = 0.8


def build_result_matrix(
    reports: Iterable[ScanReport], n_engines: int
) -> np.ndarray:
    """The paper's R matrix: scans × engines with values in {1, 0, −1}."""
    rows = []
    for report in reports:
        row = np.frombuffer(report.labels, dtype=np.uint8).astype(np.int8)
        rows.append(row)
    if not rows:
        raise InsufficientDataError(1, 0, "reports for correlation")
    matrix = np.vstack(rows)
    if matrix.shape[1] != n_engines:
        raise ValueError(
            f"reports carry {matrix.shape[1]} engines, expected {n_engines}"
        )
    # Byte 2 encodes undetected; map it to the paper's −1.
    out = matrix.astype(np.int8)
    out[out == 2] = -1
    return out


@dataclass(frozen=True)
class CorrelationAnalysis:
    """Pairwise engine correlations plus the strong-correlation graph."""

    engine_names: tuple[str, ...]
    rho: np.ndarray
    threshold: float
    n_scans: int

    def rho_of(self, first: str, second: str) -> float:
        """Spearman ρ between two named engines."""
        i = self.engine_names.index(first)
        j = self.engine_names.index(second)
        return float(self.rho[i, j])

    def strong_pairs(self) -> list[tuple[str, str, float]]:
        """All engine pairs above the strong threshold, strongest first."""
        pairs = []
        n = len(self.engine_names)
        for i in range(n):
            for j in range(i + 1, n):
                value = self.rho[i, j]
                if np.isfinite(value) and value > self.threshold:
                    pairs.append(
                        (self.engine_names[i], self.engine_names[j],
                         float(value))
                    )
        pairs.sort(key=lambda item: item[2], reverse=True)
        return pairs

    def graph(self) -> nx.Graph:
        """The strong-correlation graph (Figure 11 / Figure 12)."""
        g = nx.Graph()
        for first, second, value in self.strong_pairs():
            g.add_edge(first, second, rho=value)
        return g

    def groups(self) -> list[list[str]]:
        """Connected components of the graph — the Tables 4-8 groups,
        largest first, members sorted by name."""
        components = [sorted(c) for c in nx.connected_components(self.graph())]
        components.sort(key=lambda c: (-len(c), c))
        return components

    def involved_engines(self) -> set[str]:
        """Engines appearing in at least one strong pair (the paper found
        17 at the overall level)."""
        out: set[str] = set()
        for first, second, _ in self.strong_pairs():
            out.add(first)
            out.add(second)
        return out


def correlation_analysis(
    reports: Iterable[ScanReport],
    engine_names: Sequence[str],
    threshold: float = STRONG_THRESHOLD,
) -> CorrelationAnalysis:
    """Run the full §7.2 analysis over a report stream."""
    matrix = build_result_matrix(reports, len(engine_names))
    rho = spearman_matrix(matrix)
    return CorrelationAnalysis(
        engine_names=tuple(engine_names),
        rho=rho,
        threshold=threshold,
        n_scans=matrix.shape[0],
    )


def per_type_analyses(
    reports: Iterable[ScanReport],
    engine_names: Sequence[str],
    file_types: Sequence[str],
    threshold: float = STRONG_THRESHOLD,
    min_scans: int = 50,
) -> dict[str, CorrelationAnalysis]:
    """§7.2.2: one correlation analysis per file type.

    Types with fewer than ``min_scans`` reports are skipped — ρ over a
    handful of scans is noise.
    """
    wanted = set(file_types)
    grouped: dict[str, list[ScanReport]] = {}
    for report in reports:
        if report.file_type in wanted:
            grouped.setdefault(report.file_type, []).append(report)
    return {
        ftype: correlation_analysis(batch, engine_names, threshold)
        for ftype, batch in grouped.items()
        if len(batch) >= min_scans
    }
