"""Property tests for the metrics registry (hypothesis).

Two algebraic contracts keep the parallel runner honest:

* **Merge is a commutative monoid** over registries — associative,
  commutative, with the empty registry as identity — so K shard
  snapshots fold into the parent in any order with one result.
  Equality is asserted on *export bytes*, the representation every
  downstream consumer sees.
* **Histogram invariants** — cumulative bucket totals are monotone,
  close at ``count``, and ``sum``/``count`` stay consistent through
  observation and merge.

Integer observation values keep the floating-point sums exact, so the
byte-equality assertions are legitimate (commutativity over floats is
only guaranteed per-series, which the disjoint-labels test covers).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry, jsonl_lines

#: Fixed bucket edges per histogram name (merge requires agreement).
HISTOGRAM_EDGES = {
    "lat.seconds": (0.5, 1.0, 5.0),
    "size.bytes": (64.0, 512.0),
}

_LABELS = st.sampled_from(
    ({}, {"k": "1"}, {"k": "2"}, {"m": "x", "k": "1"}))

_EVENTS = st.lists(
    st.one_of(
        st.tuples(st.just("counter"),
                  st.sampled_from(("scans.total", "reports.total")),
                  _LABELS, st.integers(0, 50)),
        st.tuples(st.just("gauge"),
                  st.sampled_from(("depth", "resident.bytes")),
                  _LABELS, st.integers(-100, 100)),
        st.tuples(st.just("histogram"),
                  st.sampled_from(sorted(HISTOGRAM_EDGES)),
                  _LABELS, st.integers(-2, 600)),
    ),
    max_size=30,
)


def build(events) -> MetricsRegistry:
    registry = MetricsRegistry()
    for kind, name, labels, value in events:
        if kind == "counter":
            registry.counter(name, **labels).inc(value)
        elif kind == "gauge":
            registry.gauge(name, **labels).add(value)
        else:
            registry.histogram(
                name, edges=HISTOGRAM_EDGES[name], **labels).observe(value)
    return registry


def fold(*parts) -> list[str]:
    """Merge snapshots of ``parts`` into a fresh registry; export it."""
    target = MetricsRegistry()
    for part in parts:
        target.merge(part.snapshot())
    return jsonl_lines(target)


# ----------------------------------------------------------------------
# Monoid laws
# ----------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(events=_EVENTS)
def test_empty_is_identity(events):
    a = build(events)
    reference = jsonl_lines(a)
    assert fold(MetricsRegistry(), a) == reference
    assert fold(a, MetricsRegistry()) == reference
    assert jsonl_lines(a.merge(None)) == reference


@settings(max_examples=50, deadline=None)
@given(a=_EVENTS, b=_EVENTS, c=_EVENTS)
def test_merge_is_associative(a, b, c):
    left = MetricsRegistry()
    left.merge(build(a).snapshot()).merge(build(b).snapshot())
    left.merge(build(c).snapshot())

    bc = MetricsRegistry()
    bc.merge(build(b).snapshot()).merge(build(c).snapshot())
    right = MetricsRegistry()
    right.merge(build(a).snapshot()).merge(bc.snapshot())

    assert jsonl_lines(left) == jsonl_lines(right)


@settings(max_examples=50, deadline=None)
@given(a=_EVENTS, b=_EVENTS)
def test_merge_is_commutative(a, b):
    # Exact over the integer-valued strategies: addition per series is
    # order-free when no rounding is involved.
    assert fold(build(a), build(b)) == fold(build(b), build(a))


@settings(max_examples=50, deadline=None)
@given(values_a=st.lists(st.floats(0.001, 99.0, allow_nan=False), max_size=10),
       values_b=st.lists(st.floats(0.001, 99.0, allow_nan=False), max_size=10))
def test_commutative_on_disjoint_label_sets_even_for_floats(values_a,
                                                            values_b):
    # Disjoint series never share an accumulator, so float rounding
    # can't make the merge order observable.
    def one(shard: str, values) -> MetricsRegistry:
        registry = MetricsRegistry()
        for v in values:
            registry.counter("work.total", shard=shard).inc(v)
            registry.histogram("lat.seconds",
                               edges=HISTOGRAM_EDGES["lat.seconds"],
                               shard=shard).observe(v)
        return registry

    a, b = one("a", values_a), one("b", values_b)
    assert fold(a, b) == fold(b, a)


@settings(max_examples=30, deadline=None)
@given(events=_EVENTS, k=st.integers(2, 5))
def test_k_way_shard_merge_equals_serial(events, k):
    # Round-robin the event stream over k shards — the parallel runner
    # in miniature — and require the merged export to match the serial
    # registry that saw every event itself.
    shards = [build(events[i::k]) for i in range(k)]
    assert fold(*shards) == jsonl_lines(build(events))


# ----------------------------------------------------------------------
# Histogram invariants
# ----------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(values=st.lists(st.integers(-1000, 1000), max_size=50))
def test_histogram_accounting(values):
    h = MetricsRegistry().histogram("h", edges=(-10.0, 0.0, 10.0, 100.0))
    for v in values:
        h.observe(v)
    cumulative = h.cumulative()
    assert all(x <= y for x, y in zip(cumulative, cumulative[1:], strict=False))
    assert cumulative[-1] == h.count == len(values)
    assert sum(h.counts) == h.count
    assert h.sum == sum(values)
    if values:
        assert h.mean == h.sum / h.count


@settings(max_examples=100, deadline=None)
@given(values=st.lists(st.integers(-50, 50), max_size=30))
def test_histogram_buckets_partition_observations(values):
    edges = (-10.0, 0.0, 10.0)
    h = MetricsRegistry().histogram("h", edges=edges)
    for v in values:
        h.observe(v)
    expected = [0] * (len(edges) + 1)
    for v in values:
        for i, edge in enumerate(edges):
            if v <= edge:
                expected[i] += 1
                break
        else:
            expected[-1] += 1
    assert h.counts == expected


@settings(max_examples=50, deadline=None)
@given(values_a=st.lists(st.integers(-100, 100), max_size=20),
       values_b=st.lists(st.integers(-100, 100), max_size=20))
def test_histogram_merge_equals_union_of_observations(values_a, values_b):
    edges = (0.0, 25.0, 75.0)

    def one(values):
        registry = MetricsRegistry()
        h = registry.histogram("h", edges=edges)
        for v in values:
            h.observe(v)
        return registry

    merged = MetricsRegistry()
    merged.merge(one(values_a).snapshot()).merge(one(values_b).snapshot())
    assert jsonl_lines(merged) == jsonl_lines(one(values_a + values_b))
