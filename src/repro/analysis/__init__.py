"""Experiment pipelines.

Each module regenerates a slice of the paper's evaluation from a report
store: :mod:`repro.analysis.dataset` (Tables 2-3, Figure 1),
:mod:`repro.analysis.dynamics` (Figures 2-8),
:mod:`repro.analysis.stabilization` (Figure 9, Observations 8-9),
:mod:`repro.analysis.engines` (Figures 10-12, Tables 4-8).
:mod:`repro.analysis.experiment` runs a scenario end to end and
:mod:`repro.analysis.rendering` formats results as the ASCII tables the
benchmark harness prints.
"""

from repro.analysis.experiment import ExperimentData, run_experiment

__all__ = ["ExperimentData", "run_experiment"]
