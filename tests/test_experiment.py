"""Integration tests for the end-to-end runner (repro.analysis.experiment)."""

import pytest

from repro.analysis.experiment import run_experiment
from repro.vt.clock import WINDOW_MINUTES, month_index


class TestRun:
    def test_all_scheduled_events_executed(self, experiment):
        assert experiment.events_executed == experiment.store.report_count
        assert experiment.store.report_count > experiment.config.n_samples

    def test_sample_count_matches_population(self, experiment):
        assert experiment.store.sample_count == experiment.config.n_samples

    def test_series_cached(self, experiment):
        assert experiment.series() is experiment.series()

    def test_dataset_s_subset_of_series(self, experiment):
        series_ids = {s.sha256 for s in experiment.series()}
        assert all(s.sha256 in series_ids for s in experiment.dataset_s)

    def test_dataset_s_members_are_dynamic(self, experiment):
        assert all(s.delta_overall > 0 for s in experiment.dataset_s)

    def test_multi_report_view(self, experiment):
        assert all(s.n >= 2 for s in experiment.multi_report)

    def test_store_sealed_after_run(self, experiment):
        assert experiment.store.closed

    def test_engine_names_are_fleet_order(self, experiment):
        assert experiment.engine_names == experiment.fleet.names
        assert len(experiment.engine_names) == 70

    def test_reports_in_window(self, experiment):
        for report in experiment.store.iter_reports():
            assert 0 <= report.scan_time < WINDOW_MINUTES

    def test_reports_sharded_correctly(self, experiment):
        for report in experiment.store.iter_reports():
            assert month_index(report.scan_time) in experiment.store.shards


class TestDeterminism:
    def test_same_seed_same_reports(self, tiny_config_factory):
        a = run_experiment(tiny_config_factory(n_samples=60, seed=13))
        b = run_experiment(tiny_config_factory(n_samples=60, seed=13))
        ra = [(r.sha256, r.scan_time, r.positives)
              for r in a.store.iter_reports()]
        rb = [(r.sha256, r.scan_time, r.positives)
              for r in b.store.iter_reports()]
        assert ra == rb

    def test_different_seed_differs(self, tiny_config_factory):
        a = run_experiment(tiny_config_factory(n_samples=60, seed=13))
        c = run_experiment(tiny_config_factory(n_samples=60, seed=14))
        ra = {r.sha256 for r in a.store.iter_reports()}
        rc = {r.sha256 for r in c.store.iter_reports()}
        assert ra != rc


class TestPaperMixRun:
    def test_fresh_fraction_near_paper(self, paper_mix_experiment):
        stats = paper_mix_experiment.store.stats()
        assert stats.fresh_fraction == pytest.approx(0.9176, abs=0.04)

    def test_monthly_volumes_cover_window(self, paper_mix_experiment):
        stats = paper_mix_experiment.store.stats()
        populated = [m for m in stats.months if m.report_count > 0]
        assert len(populated) >= 12

    def test_prewindow_samples_use_rescans(self, paper_mix_experiment):
        """Non-fresh samples keep their negative first_submission_date."""
        seen_prewindow = False
        for report in paper_mix_experiment.store.iter_reports():
            if report.first_submission_date < 0:
                seen_prewindow = True
                assert report.times_submitted >= 1
        assert seen_prewindow
