"""Exporters: JSONL metric dump, Prometheus text, human summary tree.

All three render the same sorted series view
(:meth:`~repro.obs.registry.MetricsRegistry.series`), so for a given
registry content the output bytes are deterministic — the property the
metric golden tests and the serial/parallel equivalence gate assert.

* :func:`jsonl_lines` / :func:`write_jsonl` — one JSON object per
  series, machine-diffable, the ``--metrics-out`` default;
* :func:`prometheus_text` — the Prometheus exposition format (dots in
  metric names become underscores), what CI uploads as an artifact;
* :func:`summary` / :func:`render_summary` — a nested tree keyed by the
  dotted name segments; the registry-wide successor of the per-subsystem
  ``stats()`` dicts.
"""

from __future__ import annotations

import json
from pathlib import Path

#: JSONL schema identifier, bumped on incompatible format changes.
JSONL_SCHEMA = "repro-metrics/1"


def _number(value: float):
    """Canonical numeric form: integral floats degrade to int."""
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def _fmt(value: float) -> str:
    """Deterministic text form of a metric value."""
    return repr(_number(value))


def jsonl_lines(registry) -> list[str]:
    """One sorted JSON line per series (schema line first)."""
    lines = [json.dumps({"schema": JSONL_SCHEMA},
                        sort_keys=True, separators=(",", ":"))]
    for kind, name, items, instrument in registry.series():
        row = {"kind": kind, "name": name, "labels": dict(items)}
        if kind == "histogram":
            row["edges"] = [_number(e) for e in instrument.edges]
            row["counts"] = list(instrument.counts)
            row["sum"] = _number(instrument.sum)
            row["count"] = instrument.count
        else:
            row["value"] = _number(instrument.value)
        lines.append(json.dumps(row, sort_keys=True, separators=(",", ":")))
    return lines


def write_jsonl(registry, path) -> Path:
    """Write the JSONL export; returns the path written."""
    path = Path(path)
    path.write_text("\n".join(jsonl_lines(registry)) + "\n", encoding="utf-8")
    return path


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_labels(items) -> str:
    if not items:
        return ""
    escaped = (
        (k, v.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n"))
        for k, v in items
    )
    return "{" + ",".join(f'{k}="{v}"' for k, v in escaped) + "}"


def _prom_label_merge(items, extra: tuple[tuple[str, str], ...]) -> str:
    return _prom_labels(tuple(sorted((*items, *extra))))


def prometheus_text(registry) -> str:
    """The registry in Prometheus text exposition format."""
    out: list[str] = []
    typed: set[str] = set()
    for kind, name, items, instrument in registry.series():
        pname = _prom_name(name)
        if pname not in typed:
            typed.add(pname)
            out.append(f"# TYPE {pname} {kind}")
        if kind == "histogram":
            for edge, total in zip(instrument.edges, instrument.cumulative(), strict=False):
                out.append(
                    f"{pname}_bucket"
                    f"{_prom_label_merge(items, (('le', _fmt(edge)),))}"
                    f" {total}")
            out.append(f"{pname}_bucket"
                       f"{_prom_label_merge(items, (('le', '+Inf'),))}"
                       f" {instrument.count}")
            out.append(f"{pname}_sum{_prom_labels(items)}"
                       f" {_fmt(instrument.sum)}")
            out.append(f"{pname}_count{_prom_labels(items)}"
                       f" {instrument.count}")
        else:
            out.append(f"{pname}{_prom_labels(items)} {_fmt(instrument.value)}")
    return "\n".join(out) + "\n" if out else ""


def write_prometheus(registry, path) -> Path:
    """Write the Prometheus text export; returns the path written."""
    path = Path(path)
    path.write_text(prometheus_text(registry), encoding="utf-8")
    return path


def summary(registry) -> dict:
    """A nested dict tree over the dotted metric names.

    ``vt.scan.total{kind=upload}`` lands at ``tree["vt"]["scan"]
    ["total"]["kind=upload"]``; unlabelled series store their value
    directly at the name's leaf.  Histograms summarise to
    ``{count, sum, mean}``.  This is the registry-wide replacement for
    the ad-hoc per-subsystem ``stats()`` dictionaries.
    """
    tree: dict = {}
    for kind, name, items, instrument in registry.series():
        node = tree
        parts = name.split(".")
        for part in parts[:-1]:
            nxt = node.get(part)
            if not isinstance(nxt, dict):
                nxt = node[part] = {} if nxt is None else {"value": nxt}
            node = nxt
        if kind == "histogram":
            value = {
                "count": instrument.count,
                "sum": _number(instrument.sum),
                "mean": _number(round(instrument.mean, 6)),
            }
        else:
            value = _number(instrument.value)
        leaf = parts[-1]
        if items:
            slot = node.setdefault(leaf, {})
            if not isinstance(slot, dict):
                slot = node[leaf] = {"value": slot}
            slot[",".join(f"{k}={v}" for k, v in items)] = value
        else:
            existing = node.get(leaf)
            if isinstance(existing, dict):
                existing["value"] = value
            else:
                node[leaf] = value
    return tree


def render_summary(registry, indent: int = 2) -> str:
    """The summary tree as indented text (the CLI's default view)."""

    def walk(node: dict, depth: int, out: list[str]) -> None:
        for key in node:
            value = node[key]
            pad = " " * (indent * depth)
            if isinstance(value, dict) and not _is_histogram_leaf(value):
                out.append(f"{pad}{key}")
                walk(value, depth + 1, out)
            elif isinstance(value, dict):
                out.append(
                    f"{pad}{key}  count={value['count']} "
                    f"sum={value['sum']} mean={value['mean']}")
            else:
                out.append(f"{pad}{key}  {value}")

    def _is_histogram_leaf(value: dict) -> bool:
        return set(value) == {"count", "sum", "mean"}

    lines: list[str] = []
    walk(summary(registry), 0, lines)
    return "\n".join(lines)
