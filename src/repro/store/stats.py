"""Store accounting — the numbers behind the paper's Table 2.

Table 2 reports, per collection-window month, the number of reports and
their raw size, plus dataset totals and the achieved compression rate
(10.06×).  :class:`StoreStats` derives all of these from a
:class:`~repro.store.reportstore.ReportStore`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.store.cache import CacheStats
from repro.vt.clock import COLLECTION_MONTHS, month_label


@dataclass(frozen=True)
class MonthStats:
    """One Table 2 row."""

    month: int
    label: str
    report_count: int
    verbose_bytes: int
    compressed_bytes: int
    #: Raw (uncompressed) bytes still in the shard's open buffer.  Zero
    #: once the shard is flushed or closed; kept separate from
    #: ``compressed_bytes`` so the compression accounting never mixes
    #: compressed and raw units.
    buffered_bytes: int = 0

    @property
    def verbose_gb(self) -> float:
        return self.verbose_bytes / 1e9

    @property
    def compressed_gb(self) -> float:
        return self.compressed_bytes / 1e9

    @property
    def stored_bytes(self) -> int:
        """Actual resident payload: compressed blocks + raw buffer."""
        return self.compressed_bytes + self.buffered_bytes


@dataclass(frozen=True)
class StoreStats:
    """Whole-store accounting: Table 2 rows plus dataset totals."""

    months: tuple[MonthStats, ...]
    total_reports: int
    total_samples: int
    fresh_samples: int
    verbose_bytes: int
    compressed_bytes: int
    buffered_bytes: int = 0
    #: Retrieval-layer counters (cache traffic, decodes, residency).
    cache: CacheStats = field(default_factory=CacheStats)

    @property
    def stored_bytes(self) -> int:
        return self.compressed_bytes + self.buffered_bytes

    @property
    def compression_rate(self) -> float:
        """Verbose-JSON bytes over actually stored bytes (paper: 10.06).

        For a flushed/closed store this is verbose over compressed; on a
        live store, open-buffer records are counted at their raw size —
        they really are stored uncompressed — rather than being passed
        off as compressed bytes.
        """
        if self.stored_bytes == 0:
            return 0.0
        return self.verbose_bytes / self.stored_bytes

    @property
    def fresh_fraction(self) -> float:
        """Share of samples first submitted inside the window (paper: 91.76 %)."""
        if self.total_samples == 0:
            return 0.0
        return self.fresh_samples / self.total_samples


def compute_store_stats(store) -> StoreStats:
    """Build :class:`StoreStats` from a report store.

    Accepts any object with the ReportStore accounting surface (``shards``,
    ``sample_count``, ``fresh_sample_count``).
    """
    months = []
    total_reports = 0
    verbose = 0
    compressed = 0
    buffered = 0
    for month in range(COLLECTION_MONTHS):
        shard = store.shards.get(month)
        if shard is None:
            months.append(MonthStats(month, month_label(month), 0, 0, 0))
            continue
        shard_buffered = getattr(shard, "buffered_bytes", 0)
        months.append(
            MonthStats(
                month=month,
                label=month_label(month),
                report_count=shard.report_count,
                verbose_bytes=shard.verbose_bytes,
                compressed_bytes=shard.compressed_bytes,
                buffered_bytes=shard_buffered,
            )
        )
        total_reports += shard.report_count
        verbose += shard.verbose_bytes
        compressed += shard.compressed_bytes
        buffered += shard_buffered
    cache_stats = getattr(store, "cache_stats", None)
    return StoreStats(
        months=tuple(months),
        total_reports=total_reports,
        total_samples=store.sample_count,
        fresh_samples=store.fresh_sample_count,
        verbose_bytes=verbose,
        compressed_bytes=compressed,
        buffered_bytes=buffered,
        cache=cache_stats() if callable(cache_stats) else CacheStats(),
    )
