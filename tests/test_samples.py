"""Unit tests for sample records (repro.vt.samples)."""

import pytest

from repro.errors import InvalidHashError
from repro.vt.samples import Sample, sha256_of, validate_sha256


class TestHashes:
    def test_sha256_of_is_deterministic(self):
        assert sha256_of("x") == sha256_of("x")

    def test_sha256_of_distinct_tokens_differ(self):
        assert sha256_of("a") != sha256_of("b")

    def test_sha256_of_shape(self):
        digest = sha256_of("token")
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")

    def test_validate_normalises_case_and_whitespace(self):
        raw = ("  " + sha256_of("x").upper() + " ")
        assert validate_sha256(raw) == sha256_of("x")

    @pytest.mark.parametrize("bad", ["", "abc", "g" * 64, "a" * 63, "a" * 65])
    def test_validate_rejects_malformed(self, bad):
        with pytest.raises(InvalidHashError):
            validate_sha256(bad)


class TestSample:
    def _sample(self, **kw) -> Sample:
        defaults = dict(
            sha256=sha256_of("s"),
            file_type="Win32 EXE",
            malicious=False,
            first_seen=100,
        )
        defaults.update(kw)
        return Sample(**defaults)

    def test_fresh_iff_first_seen_in_window(self):
        assert self._sample(first_seen=0).fresh
        assert self._sample(first_seen=12345).fresh
        assert not self._sample(first_seen=-1).fresh

    def test_invalid_hash_rejected_at_construction(self):
        with pytest.raises(InvalidHashError):
            self._sample(sha256="nope")

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError):
            self._sample(size_bytes=0)

    def test_record_submission_updates_table1_fields(self):
        s = self._sample()
        s.record_submission(500)
        s.record_submission(900)
        assert s.times_submitted == 2
        assert s.last_submission_date == 900

    def test_record_analysis_only_touches_analysis_date(self):
        s = self._sample()
        s.record_analysis(700)
        assert s.last_analysis_date == 700
        assert s.times_submitted == 0
        assert s.last_submission_date is None

    def test_hash_lowercased_on_construction(self):
        s = self._sample(sha256=sha256_of("s").upper())
        assert s.sha256 == sha256_of("s")
