"""Tests for engine reliability scoring (repro.core.reliability)."""

import numpy as np
import pytest

from repro.analysis.engines import engine_correlation, engine_stability
from repro.core.reliability import EngineScore, score_engines, select_trusted
from repro.errors import ConfigError, InsufficientDataError


@pytest.fixture(scope="module")
def scores(experiment):
    stability = engine_stability(experiment.store, experiment.engine_names)
    correlation = engine_correlation(experiment.store,
                                     experiment.engine_names,
                                     file_types=())
    return score_engines(
        experiment.store.iter_reports(),
        stability.flips,
        correlation.overall,
    ), correlation.overall


class TestScoring:
    def test_every_engine_scored(self, scores, experiment):
        engine_scores, _ = scores
        assert len(engine_scores) == 70
        assert {s.engine for s in engine_scores} == set(
            experiment.engine_names
        )

    def test_fields_in_valid_ranges(self, scores):
        engine_scores, _ = scores
        for s in engine_scores:
            assert 0.0 <= s.flip_ratio <= 1.0
            assert 0.0 <= s.availability <= 1.0
            assert 0.0 <= s.coverage <= 1.0
            assert s.group_size >= 1

    def test_oem_family_shares_group(self, scores):
        engine_scores, _ = scores
        by_name = {s.engine: s for s in engine_scores}
        bdf = by_name["BitDefender"]
        fireeye = by_name["FireEye"]
        if bdf.group_id >= 0 and fireeye.group_id >= 0:
            assert bdf.group_id == fireeye.group_id
            assert bdf.group_size >= 3

    def test_stable_engine_flips_less_than_flippy(self, scores):
        engine_scores, _ = scores
        by_name = {s.engine: s for s in engine_scores}
        assert by_name["Jiangmin"].flip_ratio < by_name["F-Secure"].flip_ratio

    def test_sensitive_engine_has_higher_coverage(self, scores):
        engine_scores, _ = scores
        by_name = {s.engine: s for s in engine_scores}
        assert by_name["Kaspersky"].coverage > by_name["Zoner"].coverage

    def test_composite_penalises_groups(self):
        lone = EngineScore("lone", 0.01, 0.99, 0.8, group_size=1)
        grouped = EngineScore("grouped", 0.01, 0.99, 0.8, group_size=4,
                              group_id=0)
        assert lone.composite() > grouped.composite()

    def test_empty_reports_rejected(self, scores, experiment):
        _, correlation = scores
        stability = engine_stability(experiment.store,
                                     experiment.engine_names)
        with pytest.raises(InsufficientDataError):
            score_engines([], stability.flips, correlation)


class TestSelection:
    def test_selects_requested_count(self, scores):
        engine_scores, _ = scores
        trusted = select_trusted(engine_scores, count=8)
        assert len(trusted) == 8
        assert len(set(trusted)) == 8

    def test_group_diversity_first(self, scores):
        """The first pass admits at most one engine per group."""
        engine_scores, _ = scores
        by_name = {s.engine: s for s in engine_scores}
        trusted = select_trusted(engine_scores, count=6)
        group_ids = [by_name[name].group_id for name in trusted
                     if by_name[name].group_id >= 0]
        assert len(group_ids) == len(set(group_ids))

    def test_count_validation(self, scores):
        engine_scores, _ = scores
        with pytest.raises(ConfigError):
            select_trusted(engine_scores, count=0)

    def test_trusted_set_usable_by_aggregator(self, scores, experiment):
        from repro.core.aggregation import TrustedEnginesAggregator

        engine_scores, _ = scores
        trusted = select_trusted(engine_scores, count=10)
        aggregator = TrustedEnginesAggregator(
            trusted, experiment.engine_names, threshold=2
        )
        flagged = sum(
            1 for report in experiment.store.iter_reports()
            if aggregator.is_malicious(report)
        )
        assert flagged > 0

    def test_overflow_fills_by_rank(self, scores):
        engine_scores, _ = scores
        everyone = select_trusted(engine_scores, count=70)
        assert len(everyone) == 70
