"""Unit tests for scan scheduling (repro.synth.submissions)."""

import random

import pytest

from repro.synth.scenario import ScenarioConfig
from repro.synth.submissions import draw_first_seen, schedule_scans
from repro.vt.clock import WINDOW_MINUTES


@pytest.fixture()
def config():
    return ScenarioConfig(seed=0, n_samples=1)


class TestFirstSeen:
    def test_fresh_inside_window(self):
        rng = random.Random(1)
        for _ in range(500):
            ts = draw_first_seen(rng, fresh=True)
            assert 0 <= ts < WINDOW_MINUTES

    def test_prewindow_negative(self):
        rng = random.Random(2)
        for _ in range(200):
            assert draw_first_seen(rng, fresh=False) < 0

    def test_monthly_weighting_used(self):
        """March 2022 (the paper's heaviest month) should outweigh
        May 2021 (the lightest)."""
        from repro.vt.clock import month_index

        rng = random.Random(3)
        months = [month_index(draw_first_seen(rng, True))
                  for _ in range(20_000)]
        assert months.count(10) > months.count(0)


class TestSchedule:
    def test_single_report(self, config):
        rng = random.Random(4)
        times = schedule_scans(rng, config, first_seen=5000, n_reports=1,
                               malicious=False)
        assert times == [5000]

    def test_count_preserved(self, config):
        rng = random.Random(5)
        for n in (2, 5, 40, 500):
            times = schedule_scans(rng, config, first_seen=1000,
                                   n_reports=n, malicious=True)
            assert len(times) == n

    def test_strictly_increasing(self, config):
        rng = random.Random(6)
        for _ in range(100):
            times = schedule_scans(rng, config, first_seen=1000,
                                   n_reports=10, malicious=True)
            assert all(b > a for a, b in zip(times, times[1:], strict=False))

    def test_stays_in_window(self, config):
        rng = random.Random(7)
        for _ in range(100):
            times = schedule_scans(
                rng, config, first_seen=WINDOW_MINUTES - 5000,
                n_reports=20, malicious=False,
            )
            assert times[-1] < WINDOW_MINUTES

    def test_compression_near_window_end(self, config):
        """A huge schedule close to the window end compresses instead of
        truncating — report counts are never silently lost (Figure 1)."""
        rng = random.Random(8)
        times = schedule_scans(
            rng, config, first_seen=WINDOW_MINUTES - 3000,
            n_reports=1000, malicious=True,
        )
        assert len(times) == 1000
        assert times[-1] < WINDOW_MINUTES
        assert times[0] >= 0

    def test_prewindow_sample_observed_inside_window(self, config):
        rng = random.Random(9)
        times = schedule_scans(rng, config, first_seen=-50_000,
                               n_reports=3, malicious=False)
        assert times[0] >= 0

    def test_benign_intervals_longer_on_average(self, config):
        rng_m = random.Random(10)
        rng_b = random.Random(10)

        def mean_interval(malicious, rng):
            spans = []
            for _ in range(400):
                t = schedule_scans(rng, config, 1000, 2, malicious)
                spans.append(t[1] - t[0])
            return sum(spans) / len(spans)

        assert (mean_interval(False, rng_b)
                > mean_interval(True, rng_m))
