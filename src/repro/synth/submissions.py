"""Submission and rescan schedules.

Given a sample and its total report count, this module places the scans
in time.  Fresh samples get their first scan at their first submission;
pre-window samples are observed from a uniformly random point in the
window.  Rescan intervals are log-normal with a ground-truth-dependent
median — suspicious files are resubmitted in quick bursts, benign files
drift back rarely — which is what gives the paper's Figure 4 its shape
(benign stable samples hold their rank over the longest spans).

Schedules that would overrun the collection window are compressed
proportionally rather than truncated, so the Figure 1 report-count
distribution survives intact (hot samples with thousands of reports end
up scanned minutes apart, as on the real service).
"""

from __future__ import annotations

import random

from repro.synth.distributions import lognormal_minutes
from repro.synth.scenario import MONTHLY_WEIGHTS, ScenarioConfig
from repro.vt import clock
from repro.vt.clock import WINDOW_MINUTES
from repro.synth.distributions import WeightedChoice

#: First-submission month sampler, weighted by the paper's monthly volumes.
_MONTH_CHOICE = WeightedChoice(list(range(len(MONTHLY_WEIGHTS))), MONTHLY_WEIGHTS)

#: Pre-window samples were first submitted up to this long before the
#: window opened.
_PREWINDOW_MAX_DAYS = 400.0


def draw_first_seen(rng: random.Random, fresh: bool) -> int:
    """First-submission time: inside the window for fresh samples,
    negative (before the window) otherwise."""
    if fresh:
        month = _MONTH_CHOICE.sample(rng)
        start = clock.MONTH_STARTS[month]
        end = clock.MONTH_STARTS[month + 1]
        return rng.randrange(start, end)
    return -rng.randrange(1, clock.minutes(days=_PREWINDOW_MAX_DAYS))


def schedule_scans(
    rng: random.Random,
    config: ScenarioConfig,
    first_seen: int,
    n_reports: int,
    malicious: bool,
) -> list[int]:
    """Place ``n_reports`` scan times inside the collection window.

    The first scan is the submission itself (fresh samples) or a uniform
    window time (pre-window samples); subsequent scans follow log-normal
    intervals, compressed if the raw schedule overruns the window.
    """
    if first_seen >= 0:
        t0 = first_seen
    else:
        t0 = rng.randrange(0, WINDOW_MINUTES - 1)
    if n_reports == 1:
        return [min(t0, WINDOW_MINUTES - 1)]

    median = (config.interval_median_days_malicious if malicious
              else config.interval_median_days_benign)
    intervals = [
        lognormal_minutes(rng, median, config.interval_sigma)
        for _ in range(n_reports - 1)
    ]
    span = sum(intervals)
    available = WINDOW_MINUTES - 1 - t0
    if span > available:
        # Compress proportionally; keep at least one minute per step.
        scale = available / span
        intervals = [max(1, int(i * scale)) for i in intervals]
    times = [t0]
    for interval in intervals:
        times.append(min(times[-1] + interval, WINDOW_MINUTES - 1))
    # Enforce strictly increasing times (compression can collide at the
    # window edge); walk back any pile-up at the boundary.
    for i in range(len(times) - 1, 0, -1):
        if times[i] <= times[i - 1]:
            times[i - 1] = times[i] - 1
    if times[0] < 0:
        # Degenerate pile-up on a window-edge submission: re-space from 0.
        times = list(range(len(times)))
    return times
