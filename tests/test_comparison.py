"""Tests for the protocol comparison (repro.analysis.comparison)."""

import pytest

from repro.analysis.comparison import ProtocolView, compare_protocols
from repro.synth.scenario import dynamics_scenario


@pytest.fixture(scope="module")
def comparison():
    return compare_protocols(
        dynamics_scenario(600, seed=13),
        snapshot_samples=80,
        cadence_days=1.0,
        duration_days=90.0,
    )


class TestCompareProtocols:
    def test_views_labelled(self, comparison):
        assert comparison.organic.protocol == "organic"
        assert comparison.snapshot.protocol == "snapshot"

    def test_snapshot_roster_size(self, comparison):
        assert comparison.snapshot.n_samples <= 80
        assert comparison.snapshot.n_samples > 10

    def test_snapshot_report_density_much_higher(self, comparison):
        organic_density = (comparison.organic.n_reports
                           / comparison.organic.n_samples)
        snapshot_density = (comparison.snapshot.n_reports
                            / comparison.snapshot.n_samples)
        assert snapshot_density > 5 * organic_density

    def test_snapshot_sees_more_dynamics(self, comparison):
        """Watching every day reveals dynamics organic gaps miss.

        (Flips *per sample* is not a reliable discriminator at this
        scale — the organic mean is inflated by the heavy report-count
        tail — so the bench asserts it at 2000+ samples instead.)"""
        assert (comparison.snapshot.dynamic_fraction
                > comparison.organic.dynamic_fraction)

    def test_snapshot_sees_more_of_delta(self, comparison):
        assert (comparison.snapshot.mean_observed_delta
                > comparison.organic.mean_observed_delta)

    def test_render_mentions_both_columns(self, comparison):
        text = comparison.render()
        assert "organic" in text
        assert "snapshot" in text
        assert "hazards per 1000 samples" in text

    def test_view_fields_sane(self, comparison):
        for view in (comparison.organic, comparison.snapshot):
            assert isinstance(view, ProtocolView)
            assert 0.0 <= view.dynamic_fraction <= 1.0
            assert view.flips_per_sample >= 0.0
            assert view.hazard_share_of_flips < 0.2
