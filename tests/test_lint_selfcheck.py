"""The repo lints itself: tier-1 runs reprolint over ``src/repro``.

This is the static twin of the serial/parallel digest gate — the
determinism contract is enforced on the *source*, not just observed in
the outputs.  Two assertions:

1. Zero undisabled findings over the shipped package (every genuine
   exception carries an inline pragma with a justification).
2. The JSON report is byte-deterministic across consecutive runs, the
   same bar :mod:`repro.obs.export` holds metric exports to.
"""

from repro.lint import (
    ALL_CODES,
    RULE_SUMMARIES,
    default_target,
    lint_paths,
    render_json,
    render_text,
)


def test_package_is_lint_clean():
    target = default_target()
    result = lint_paths([target])
    assert result.files_checked > 50, "self-check must see the whole package"
    pretty = render_text(result)
    assert result.findings == [], (
        "reprolint found undisabled determinism-contract violations in "
        f"src/repro — fix them or add a justified pragma:\n{pretty}"
    )


def test_suppressions_are_rare_and_accounted():
    # Pragmas are an escape hatch, not a lifestyle: today's only
    # sanctioned suppressions are the CLI's display-only elapsed-time
    # banners.  If this ceiling is hit, audit before raising it.
    result = lint_paths([default_target()])
    assert 0 < len(result.suppressed) <= 10
    assert {f.code for f in result.suppressed} <= {"RPL001"}
    assert all(f.path == "repro/cli.py" for f in result.suppressed)


def test_json_report_is_byte_deterministic():
    target = default_target()
    first = render_json(lint_paths([target]))
    second = render_json(lint_paths([target]))
    assert first.encode("utf-8") == second.encode("utf-8")
    head = first.splitlines()[0]
    assert '"schema":"reprolint/1"' in head


def test_every_rule_has_a_summary():
    assert ALL_CODES == frozenset(RULE_SUMMARIES)
    assert sorted(ALL_CODES) == [f"RPL00{i}" for i in range(8)]
