"""The chaos acceptance test: faults in, exact dataset out.

A seeded fault plan throws a multi-day feed outage, transient failures,
duplicated deliveries, corrupted payloads and store write failures at the
collector — and the final store must match the fault-free run *exactly*:
same report count, same per-sample scan series, with every corrupt
delivery accounted for in the dead-letter queue.  The same must hold when
the chaos run is killed partway and resumed from its checkpoint.
"""

import pytest

from repro.collect import auto_resume_minute, run_collection
from repro.faults import FaultPlan, OutageWindow
from repro.vt.clock import MINUTES_PER_DAY

#: Simulation horizon: long enough for rescans and a mid-run outage,
#: short enough to keep the suite fast.
UNTIL = 45 * MINUTES_PER_DAY

#: A hot fault plan: every fault class fires at test scale.
PLAN = FaultPlan(
    seed=7,
    outages=(OutageWindow(10 * MINUTES_PER_DAY, 13 * MINUTES_PER_DAY),),
    transient_rate=0.01,
    duplicate_rate=0.2,
    corrupt_rate=0.25,
    store_failure_rate=0.02,
)


def _series(store):
    return {sha: tuple((r.scan_time, r.positives, r.labels) for r in reports)
            for sha, reports in store.iter_sample_reports()}


@pytest.fixture(scope="module")
def clean(chaos_config):
    return run_collection(chaos_config, until_minute=UNTIL)


@pytest.fixture(scope="module")
def chaos(chaos_config):
    return run_collection(chaos_config, plan=PLAN, until_minute=UNTIL)


class TestCleanBaseline:
    def test_collects_everything_the_service_emitted(self, clean):
        assert clean.store.report_count > 50
        stats = clean.stats
        assert stats.reports_ingested == clean.store.report_count
        assert stats.transient_errors == 0
        assert stats.dead_letters == 0
        assert stats.pending_gap_minutes == 0

    def test_matches_direct_feed_drain(self, clean, chaos_config):
        # The resilient pipeline is a superset of the plain experiment
        # loop; with no faults their datasets must coincide.
        from repro.analysis.experiment import run_experiment

        data = run_experiment(chaos_config)
        full = _series(data.store)
        truncated = {}
        for sha, series in full.items():
            prefix = tuple(p for p in series if p[0] < UNTIL)
            if prefix:
                truncated[sha] = prefix
        assert _series(clean.store) == truncated


class TestChaosRun:
    def test_every_fault_class_fired(self, chaos):
        feed = chaos.chaos_feed
        assert feed.reports_duplicated > 0
        assert feed.reports_corrupted > 0
        assert feed.reports_lost_to_outage > 0
        assert feed.transient_failures > 0
        assert chaos.stats.outage_minutes == 3 * MINUTES_PER_DAY

    def test_final_store_matches_fault_free_run(self, clean, chaos):
        assert chaos.store.report_count == clean.store.report_count
        assert _series(chaos.store) == _series(clean.store)

    def test_corrupt_deliveries_accounted_in_dead_letters(self, chaos):
        stats = chaos.stats
        assert stats.dead_letters == chaos.chaos_feed.reports_corrupted
        assert len(chaos.collector.deadletters) == stats.dead_letters

    def test_duplicates_were_skipped_not_stored(self, chaos):
        assert chaos.stats.duplicates_skipped >= chaos.chaos_feed.reports_duplicated

    def test_no_unrecovered_gaps(self, chaos):
        assert chaos.stats.pending_gap_minutes == 0

    def test_chaos_is_deterministic(self, chaos, chaos_config):
        again = run_collection(chaos_config, plan=PLAN, until_minute=UNTIL)
        assert _series(again.store) == _series(chaos.store)
        first, second = chaos.chaos_feed, again.chaos_feed
        assert first.reports_corrupted == second.reports_corrupted
        assert first.reports_duplicated == second.reports_duplicated
        assert first.transient_failures == second.transient_failures


class TestCrashResume:
    def test_crash_then_resume_converges_exactly(self, clean, chaos_config,
                                                 tmp_path):
        # Crash mid-run, off the checkpoint cadence, inside nothing
        # special — then resume strictly *after* the crash point so the
        # collector must detect the jump gap and backfill it.
        crash_at = 20 * MINUTES_PER_DAY + 700
        crashed = run_collection(chaos_config, plan=PLAN, out_dir=tmp_path,
                                 stop_at=crash_at, until_minute=UNTIL)
        assert crashed.crashed
        assert crashed.stats.checkpoint_saves > 0

        resume_at = auto_resume_minute(tmp_path)
        assert resume_at <= crash_at + 1
        resumed = run_collection(chaos_config, plan=PLAN, out_dir=tmp_path,
                                 resume_from=crash_at + 1, until_minute=UNTIL)
        stats = resumed.stats
        assert stats.resumes == 1
        assert not resumed.crashed
        assert stats.pending_gap_minutes == 0
        assert resumed.store.report_count == clean.store.report_count
        assert _series(resumed.store) == _series(clean.store)

    def test_resume_without_checkpoint_raises(self, chaos_config, tmp_path):
        from repro.errors import CheckpointError

        with pytest.raises(CheckpointError):
            run_collection(chaos_config, out_dir=tmp_path, resume_from=100,
                           until_minute=UNTIL)


class TestLossAccounting:
    def test_silent_drops_are_exactly_counted(self, clean, chaos_config):
        # Drops are unrecoverable by design; the chaos layer's counter
        # must reconcile the loss to the report.
        dropped = run_collection(chaos_config,
                                 plan=FaultPlan(seed=11, drop_rate=0.3),
                                 until_minute=UNTIL)
        lost = clean.store.report_count - dropped.store.report_count
        assert lost == dropped.chaos_feed.reports_dropped
        assert lost > 0
