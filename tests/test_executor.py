"""The elastic executor layer: policy, kinds, streaming merge, reports.

The chaos-free half of the executor test surface: configuration
validation, kind resolution and fallback, the ``REPRO_MAX_WORKERS``
worker cap, streaming-merge equivalence, report telemetry, and the
executor × workers digest-equivalence property.  Fault injection lives
in ``tests/test_executor_chaos.py``.
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.experiment import run_experiment
from repro.errors import ConfigError
from repro.faults import ExecutorFaultPlan, hashed_fraction
from repro.obs import MetricsRegistry
from repro.parallel import (
    EXECUTOR_KINDS,
    ExecutorPolicy,
    ExecutorReport,
    make_executor,
    resolve_kind,
)
from repro.parallel.executors import InProcessExecutor, ProcessExecutor
from repro.parallel.runner import coerce_policy, frozen_shard_of
from repro.parallel.sharding import (
    MAX_WORKERS_ENV,
    partition_samples,
    resolve_workers,
)
from repro.parallel.worker import run_shard
from repro.store.merge import StreamingMerge, concat_frozen
from repro.synth.population import PopulationGenerator
from repro.synth.scenario import tiny_scenario


# ----------------------------------------------------------------------
# ExecutorPolicy
# ----------------------------------------------------------------------


class TestExecutorPolicy:
    def test_defaults(self):
        policy = ExecutorPolicy()
        assert policy.kind == "auto"
        assert policy.fanout == 4
        assert policy.max_attempts == 4
        assert policy.fault_plan is None

    def test_derived_intervals(self):
        policy = ExecutorPolicy(heartbeat_deadline=8.0)
        assert policy.effective_heartbeat_interval == pytest.approx(2.0)
        assert policy.effective_poll_interval == pytest.approx(0.05)
        tight = ExecutorPolicy(heartbeat_deadline=0.2)
        assert tight.effective_poll_interval == pytest.approx(0.025)
        explicit = ExecutorPolicy(heartbeat_interval=1.25, poll_interval=0.3)
        assert explicit.effective_heartbeat_interval == 1.25
        assert explicit.effective_poll_interval == 0.3

    @pytest.mark.parametrize("kwargs", [
        {"fanout": 0},
        {"heartbeat_deadline": 0.0},
        {"heartbeat_deadline": -1.0},
        {"max_attempts": 0},
        {"retry_backoff": -0.1},
        {"heartbeat_interval": 0.0},
        {"poll_interval": -2.0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigError):
            ExecutorPolicy(**kwargs)


class TestCoercePolicy:
    def test_none_is_default_policy(self):
        assert coerce_policy(None) == ExecutorPolicy()

    def test_string_becomes_kind(self):
        assert coerce_policy("spawn").kind == "spawn"

    def test_policy_passes_through(self):
        policy = ExecutorPolicy(kind="in-process", fanout=2)
        assert coerce_policy(policy) is policy

    def test_bad_type_raises(self):
        with pytest.raises(ConfigError):
            coerce_policy(7)


# ----------------------------------------------------------------------
# Kind resolution and executor construction
# ----------------------------------------------------------------------


class TestResolveKind:
    def test_auto_prefers_fork(self):
        assert resolve_kind("auto") in ("fork", "spawn")

    def test_concrete_kinds_resolve_to_themselves(self):
        assert resolve_kind("in-process") == "in-process"
        assert resolve_kind("spawn") == "spawn"

    def test_unknown_kind_raises(self):
        with pytest.raises(ConfigError):
            resolve_kind("threads")

    def test_auto_falls_back_to_spawn_without_fork(self, monkeypatch):
        monkeypatch.setattr("repro.parallel.executors.fork_available",
                            lambda: False)
        assert resolve_kind("auto") == "spawn"

    def test_explicit_fork_without_fork_raises(self, monkeypatch):
        monkeypatch.setattr("repro.parallel.executors.fork_available",
                            lambda: False)
        with pytest.raises(ConfigError):
            resolve_kind("fork")

    def test_make_executor_kinds(self):
        executor = make_executor("in-process")
        assert isinstance(executor, InProcessExecutor)
        spawned = make_executor("spawn")
        try:
            assert isinstance(spawned, ProcessExecutor)
            assert spawned.kind == "spawn"
        finally:
            spawned.shutdown()

    def test_executor_kinds_table(self):
        assert EXECUTOR_KINDS == ("auto", "in-process", "fork", "spawn")


# ----------------------------------------------------------------------
# Worker resolution: REPRO_MAX_WORKERS and cpu_count edge cases
# ----------------------------------------------------------------------


class TestResolveWorkersAuto:
    def test_auto_with_no_cpu_count_clamps_to_one(self, monkeypatch):
        monkeypatch.delenv(MAX_WORKERS_ENV, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert resolve_workers("auto") == 1

    def test_env_caps_auto(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        monkeypatch.setenv(MAX_WORKERS_ENV, "3")
        assert resolve_workers("auto") == 3

    def test_env_cap_does_not_raise_auto_above_cpu_count(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        monkeypatch.setenv(MAX_WORKERS_ENV, "16")
        assert resolve_workers("auto") == 2

    def test_explicit_workers_never_capped(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "1")
        assert resolve_workers(8) == 8

    @pytest.mark.parametrize("raw", ["zero", "0", "-2", "2.5"])
    def test_bad_env_value_raises(self, monkeypatch, raw):
        monkeypatch.setenv(MAX_WORKERS_ENV, raw)
        with pytest.raises(ConfigError):
            resolve_workers("auto")

    def test_blank_env_value_ignored(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "  ")
        assert resolve_workers("auto") >= 1


# ----------------------------------------------------------------------
# Fault-plan determinism
# ----------------------------------------------------------------------


class TestExecutorFaultPlan:
    @pytest.mark.parametrize("kwargs", [
        {"crash_before_result_rate": -0.1},
        {"hang_rate": 1.5},
        {"hang_seconds": 0.0},
        {"max_faulty_attempts": 0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigError):
            ExecutorFaultPlan(**kwargs)

    def test_disabled(self):
        assert ExecutorFaultPlan().disabled
        assert not ExecutorFaultPlan(hang_rate=0.5).disabled

    def test_decisions_are_pure(self):
        plan = ExecutorFaultPlan(seed=4, crash_before_result_rate=0.5,
                                 hang_rate=0.5)
        for key in ("shard-000", "shard-011"):
            assert (plan.crashes_before_result(key, 0)
                    == plan.crashes_before_result(key, 0))
            assert plan.hangs(key, 0) == plan.hangs(key, 0)

    def test_attempts_beyond_budget_never_fault(self):
        plan = ExecutorFaultPlan(seed=0, crash_before_result_rate=1.0,
                                 crash_mid_shard_rate=1.0, hang_rate=1.0,
                                 corrupt_payload_rate=1.0,
                                 max_faulty_attempts=2)
        for key in (f"shard-{i:03d}" for i in range(20)):
            assert plan.crashes_before_result(key, 0)
            assert not plan.crashes_before_result(key, 2)
            assert not plan.hangs(key, 5)
            assert not plan.corrupts_payload(key, 3)

    def test_hashed_fraction_is_roughly_uniform(self):
        # The reason the executor plan hashes with sha256 instead of the
        # delivery layer's crc32: structured shard keys must still draw
        # uniformly, or configured rates are fiction.
        draws = [hashed_fraction(0, "exec", "crash_before",
                                 f"shard-{i:03d}", 0) for i in range(400)]
        hits = sum(1 for d in draws if d < 0.15)
        assert 30 <= hits <= 90  # 400 × 0.15 = 60 expected
        assert 0.40 <= sum(draws) / len(draws) <= 0.60

    def test_corrupt_payload_damages_deterministically(self):
        plan = ExecutorFaultPlan(seed=9, corrupt_payload_rate=1.0)
        payload = bytes(range(256))
        mangled = plan.corrupt_payload(payload, "shard-001", 0)
        assert mangled != payload
        assert mangled == plan.corrupt_payload(payload, "shard-001", 0)
        assert plan.corrupt_payload(b"", "shard-001", 0) == b""


# ----------------------------------------------------------------------
# ExecutorReport telemetry
# ----------------------------------------------------------------------


class TestExecutorReport:
    def test_clean_property(self):
        assert ExecutorReport(executor="fork").clean
        assert not ExecutorReport(executor="fork", retried=1).clean
        assert not ExecutorReport(executor="fork",
                                  dead_shards=["shard-000"]).clean

    def test_publish_records_into_given_registry(self):
        registry = MetricsRegistry()
        report = ExecutorReport(executor="fork", tasks=12, retried=3,
                                workers_lost=2, workers_respawned=2,
                                ranges_stolen=1, corrupt_payloads=1,
                                duplicate_results=1, heartbeats=40,
                                heartbeat_lags=[0.01, 0.2])
        report.publish(registry)
        labels = {"executor": "fork"}
        assert registry.counter("parallel.tasks.total",
                                **labels).value == 12
        assert registry.counter("parallel.shards.retried",
                                **labels).value == 3
        assert registry.counter("parallel.workers.lost",
                                **labels).value == 2
        assert registry.counter("parallel.workers.respawned",
                                **labels).value == 2
        assert registry.counter("parallel.ranges.stolen",
                                **labels).value == 1
        assert registry.counter("parallel.shards.corrupt",
                                **labels).value == 1
        assert registry.counter("parallel.shards.duplicate",
                                **labels).value == 1
        assert registry.counter("parallel.heartbeats.total",
                                **labels).value == 40


# ----------------------------------------------------------------------
# Streaming merge: completion order must not matter
# ----------------------------------------------------------------------


class TestStreamingMerge:
    @pytest.fixture(scope="class")
    def shard_runs(self):
        config = tiny_scenario(n_samples=90, seed=21)
        shards = [s for s in partition_samples(config.n_samples, 6)
                  if s.size]
        generator = PopulationGenerator(config)
        shas = [generator.sha_for(i) for i in range(config.n_samples)]
        runs = [run_shard(config, shard) for shard in shards]
        return config, shas, runs

    def _frozen(self, shard_runs, order):
        _, shas, runs = shard_runs
        return [frozen_shard_of(runs[i], shas) for i in order]

    def test_any_completion_order_matches_one_shot_concat(self, shard_runs):
        config, _, runs = shard_runs
        reference, ref_stats = concat_frozen(
            self._frozen(shard_runs, range(len(runs))),
            block_records=config.block_records)
        ref_digest = reference.digest()
        orders = [list(range(len(runs)))]
        rng = random.Random(5)
        for _ in range(3):
            order = list(range(len(runs)))
            rng.shuffle(order)
            orders.append(order)
        for order in orders:
            streaming = StreamingMerge(block_records=config.block_records)
            for shard in self._frozen(shard_runs, order):
                streaming.add(shard)
            store, stats = streaming.finish()
            assert store.digest() == ref_digest
            assert store.report_count == reference.report_count
            assert stats.records == ref_stats.records

    def test_incremental_folding_bounds_held_runs(self, shard_runs):
        config, _, runs = shard_runs
        streaming = StreamingMerge(block_records=config.block_records)
        for shard in self._frozen(shard_runs, range(len(runs))):
            streaming.add(shard)
            # The logarithmic run stack: never more runs than log2 + 1.
            assert len(streaming._runs) <= max(1, len(runs))
        assert streaming.folds >= 1
        store, _ = streaming.finish()
        assert store.report_count == reference_count(runs)


def reference_count(runs) -> int:
    return sum(run.report_count for run in runs)


# ----------------------------------------------------------------------
# The digest-equivalence property over the executor grid
# ----------------------------------------------------------------------


_GRID_CONFIG = tiny_scenario(n_samples=48, seed=2)


@pytest.fixture(scope="module")
def grid_reference_digest():
    return run_experiment(_GRID_CONFIG).store.digest()


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
@given(kind=st.sampled_from(["in-process", "fork", "spawn"]),
       workers=st.sampled_from([1, 2, 4]))
def test_digest_identical_across_executor_grid(grid_reference_digest,
                                               kind, workers):
    if kind == "fork" and resolve_kind("auto") != "fork":
        kind = "spawn"  # platform without fork: exercise spawn twice
    data = run_experiment(_GRID_CONFIG, workers=workers, executor=kind)
    assert data.store.digest() == grid_reference_digest
    if workers > 1:
        assert data.executor_report is not None
        assert data.executor_report.executor == kind
