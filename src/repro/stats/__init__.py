"""Statistics substrate.

The paper leans on a small set of statistical tools: empirical CDFs
(Figures 1, 2, 3, 5), box-plot five-number summaries (Figures 4, 6, 7),
and Spearman rank correlation with significance (Figure 7's interval
effect, §7.2's engine correlation).  This subpackage implements them from
scratch — fractional ranking with ties, the t-approximation p-value — and
the test suite cross-validates each against scipy.
"""

from repro.stats.bootstrap import ConfidenceInterval, bootstrap_ci, fraction_ci
from repro.stats.cdf import EmpiricalCDF
from repro.stats.descriptive import (
    BoxplotStats,
    boxplot_stats,
    mean,
    median,
    quantile,
    stdev,
)
from repro.stats.ranking import fractional_ranks
from repro.stats.spearman import SpearmanResult, spearman, spearman_matrix

__all__ = [
    "ConfidenceInterval",
    "bootstrap_ci",
    "fraction_ci",
    "EmpiricalCDF",
    "BoxplotStats",
    "boxplot_stats",
    "mean",
    "median",
    "quantile",
    "stdev",
    "fractional_ranks",
    "SpearmanResult",
    "spearman",
    "spearman_matrix",
]
