"""Two-sample Kolmogorov-Smirnov test.

The paper's Figure 2 argues the stable/dynamic split is unbiased because
the two classes' report-count distributions show "a striking similarity".
A two-sample KS test makes that claim quantitative: the statistic is the
maximum gap between the two empirical CDFs, with the classical asymptotic
p-value.  Implemented from scratch (validated against scipy in the test
suite) like the rest of :mod:`repro.stats`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import InsufficientDataError


@dataclass(frozen=True)
class KSResult:
    """Two-sample KS statistic and asymptotic significance."""

    statistic: float
    p_value: float
    n1: int
    n2: int

    def similar(self, alpha: float = 0.05) -> bool:
        """Whether the samples are *not* distinguishable at level alpha."""
        return self.p_value > alpha


def _kolmogorov_sf(x: float) -> float:
    """Survival function of the Kolmogorov distribution.

    Q(x) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 x^2); the series
    converges in a handful of terms for the x range that matters.
    """
    if x <= 0.0:
        return 1.0
    total = 0.0
    for k in range(1, 101):
        term = 2.0 * (-1.0) ** (k - 1) * math.exp(-2.0 * (k * x) ** 2)
        total += term
        if abs(term) < 1e-12:
            break
    return min(1.0, max(0.0, total))


def ks_two_sample(
    first: Sequence[float], second: Sequence[float]
) -> KSResult:
    """Two-sample KS test via a single merge pass over sorted data."""
    n1 = len(first)
    n2 = len(second)
    if n1 == 0 or n2 == 0:
        raise InsufficientDataError(1, 0, "observations in each sample")
    a = sorted(first)
    b = sorted(second)
    i = j = 0
    cdf1 = cdf2 = 0.0
    statistic = 0.0
    while i < n1 and j < n2:
        value = min(a[i], b[j])
        while i < n1 and a[i] == value:
            i += 1
        while j < n2 and b[j] == value:
            j += 1
        cdf1 = i / n1
        cdf2 = j / n2
        statistic = max(statistic, abs(cdf1 - cdf2))
    # Remaining tail of either sample cannot increase the gap beyond the
    # final |1 - cdf| checks, handled by the loop exit state:
    statistic = max(statistic, abs(1.0 - cdf2), abs(cdf1 - 1.0))
    effective = math.sqrt(n1 * n2 / (n1 + n2))
    # Asymptotic p-value with the standard finite-sample correction.
    argument = (effective + 0.12 + 0.11 / effective) * statistic
    return KSResult(
        statistic=statistic,
        p_value=_kolmogorov_sf(argument),
        n1=n1,
        n2=n2,
    )
