"""Finding baselines: land new rules now, ratchet old findings down.

A baseline file enumerates *accepted* findings — debt acknowledged when
a new rule landed — keyed by ``(path, code, message)`` so a finding
survives unrelated line drift but not a real change to what is wrong.
``repro-vt lint --baseline FILE`` subtracts the baseline from the
active findings (they are reported separately, not hidden from the
accounting) and reports every baseline entry that matched nothing as
*stale*: the finding was fixed, so its baseline line must be deleted.
CI fails on stale entries, which is the shrink-only ratchet — a
baseline can lose lines over time but never quietly gain meaning.

The repo ships an empty baseline (``lint-baseline.json``): the
selfcheck holds the tree at zero undisabled findings, and the empty
file is the proof plus the place a future rule's debt would land.

Format: the usual schema-line-plus-sorted-compact-rows layout, byte
deterministic like every other artifact in this repo.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import LintError
from repro.lint.engine import LintResult

#: Baseline file schema identifier, bumped on incompatible changes.
BASELINE_SCHEMA = "reprolint-baseline/1"

#: One accepted finding: (path, code, message).
BaselineKey = tuple[str, str, str]


def read_baseline(path: str | Path) -> list[BaselineKey]:
    """Load baseline entries; a missing file is an error (pass the
    shipped empty baseline explicitly, never a typo'd path)."""
    path = Path(path)
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise LintError(f"cannot read baseline {path}: {exc}") from exc
    if not lines:
        raise LintError(f"baseline {path} is empty (no schema line)")
    try:
        head = json.loads(lines[0])
    except ValueError as exc:
        raise LintError(f"baseline {path} is not JSON: {exc}") from exc
    if head.get("schema") != BASELINE_SCHEMA:
        raise LintError(
            f"baseline {path} has schema {head.get('schema')!r}, "
            f"expected {BASELINE_SCHEMA!r}")
    entries: list[BaselineKey] = []
    for line in lines[1:]:
        try:
            doc = json.loads(line)
            entries.append((doc["path"], doc["code"], doc["message"]))
        except (ValueError, KeyError, TypeError) as exc:
            raise LintError(
                f"baseline {path} has a malformed entry: {exc}") from exc
    return entries


def write_baseline(result: LintResult, path: str | Path) -> Path:
    """Snapshot the active findings as the new accepted baseline."""
    path = Path(path)
    keys = sorted({(f.path, f.code, f.message) for f in result.findings})
    head = {"schema": BASELINE_SCHEMA, "entries": len(keys)}
    lines = [json.dumps(head, sort_keys=True, separators=(",", ":"))]
    for key_path, code, message in keys:
        lines.append(json.dumps(
            {"path": key_path, "code": code, "message": message},
            sort_keys=True, separators=(",", ":")))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def apply_baseline(result: LintResult,
                   entries: list[BaselineKey]) -> LintResult:
    """Subtract accepted findings; record what the baseline still owes.

    Mutates and returns ``result``: matched findings move to
    ``result.baselined``; entries matching nothing land in
    ``result.baseline_stale`` (sorted) for the shrink-only check.
    """
    accepted = set(entries)
    kept = []
    matched: set[BaselineKey] = set()
    for finding in result.findings:
        key = (finding.path, finding.code, finding.message)
        if key in accepted:
            matched.add(key)
            result.baselined.append(finding)
        else:
            kept.append(finding)
    result.findings = kept
    result.baselined.sort()
    result.baseline_stale = sorted(set(entries) - matched)
    return result
