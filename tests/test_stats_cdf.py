"""Unit tests for the empirical CDF (repro.stats.cdf)."""

import pytest

from repro.errors import InsufficientDataError
from repro.stats.cdf import EmpiricalCDF


class TestAt:
    def test_basic_fractions(self):
        cdf = EmpiricalCDF([1, 2, 2, 3])
        assert cdf.at(0) == 0.0
        assert cdf.at(1) == 0.25
        assert cdf.at(2) == 0.75
        assert cdf.at(3) == 1.0
        assert cdf.at(99) == 1.0

    def test_below_is_strict(self):
        cdf = EmpiricalCDF([1, 2, 2, 3])
        assert cdf.below(2) == 0.25
        assert cdf.below(3) == 0.75
        assert cdf.below(1) == 0.0

    def test_paper_fig1_landmark_semantics(self):
        """'88.81 % have only one report' is at(1); '<6 reports' is below(6)."""
        counts = [1] * 8 + [2, 7]
        cdf = EmpiricalCDF(counts)
        assert cdf.at(1) == 0.8
        assert cdf.below(6) == 0.9


class TestQuantile:
    def test_inverse_relationship(self):
        cdf = EmpiricalCDF([10, 20, 30, 40])
        assert cdf.quantile(0.25) == 10
        assert cdf.quantile(0.5) == 20
        assert cdf.quantile(1.0) == 40

    def test_bounds(self):
        cdf = EmpiricalCDF([5])
        with pytest.raises(ValueError):
            cdf.quantile(0.0)
        with pytest.raises(ValueError):
            cdf.quantile(1.2)

    def test_quantile_consistent_with_at(self):
        data = [3, 1, 4, 1, 5, 9, 2, 6]
        cdf = EmpiricalCDF(data)
        for p in (0.1, 0.3, 0.5, 0.8, 1.0):
            assert cdf.at(cdf.quantile(p)) >= p


class TestShape:
    def test_empty_rejected(self):
        with pytest.raises(InsufficientDataError):
            EmpiricalCDF([])

    def test_min_max(self):
        cdf = EmpiricalCDF([7, 1, 9])
        assert cdf.min == 1
        assert cdf.max == 9

    def test_support_deduplicates(self):
        assert EmpiricalCDF([2, 1, 2, 3, 3]).support() == [1, 2, 3]

    def test_steps_monotone_ending_at_one(self):
        cdf = EmpiricalCDF([1, 1, 2, 5])
        steps = list(cdf.steps())
        assert steps[-1][1] == 1.0
        fractions = [f for _, f in steps]
        assert fractions == sorted(fractions)
        values = [v for v, _ in steps]
        assert values == sorted(values)

    def test_table(self):
        cdf = EmpiricalCDF([1, 2, 3, 4])
        assert cdf.table([2, 4]) == [(2, 0.5), (4, 1.0)]

    def test_n(self):
        assert EmpiricalCDF([1, 2, 3]).n == 3
