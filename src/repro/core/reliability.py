"""Engine reliability scoring and trusted-set selection (§7, §8).

The paper's engine-level findings are meant to "assist researchers in
choosing the appropriate aggregation method, based on specific engines".
This module turns them into a tool: score every engine on the axes the
paper measures — verdict stability (flip ratio), availability (response
rate), coverage (how often it detects what the fleet consensus detects)
and independence (whether it sits in a correlation group) — and derive a
trusted engine set for :class:`~repro.core.aggregation.TrustedEnginesAggregator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.correlation import CorrelationAnalysis
from repro.core.flips import FlipStats
from repro.errors import ConfigError, InsufficientDataError
from repro.vt.reports import ScanReport

_UNDETECTED_BYTE = 2


@dataclass(frozen=True)
class EngineScore:
    """Reliability profile of one engine."""

    engine: str
    #: Flips per consecutive-response pair (lower is steadier).
    flip_ratio: float
    #: Share of scans the engine responded to (higher is better).
    availability: float
    #: Detection agreement with fleet consensus on consensus-malicious
    #: scans (higher catches more of what the fleet flags).
    coverage: float
    #: Size of the engine's strong-correlation group (1 = independent).
    group_size: int
    #: Index of the group in the correlation analysis (-1 = independent).
    group_id: int = -1

    def composite(self, *, stability_weight: float = 0.4,
                  coverage_weight: float = 0.4,
                  availability_weight: float = 0.2) -> float:
        """A [0, 1] composite: steadier, broader, more available is
        better; group membership divides the score (a family of eight
        OEM engines is one opinion, Observation 11)."""
        stability = max(0.0, 1.0 - 10.0 * self.flip_ratio)
        raw = (stability_weight * stability
               + coverage_weight * self.coverage
               + availability_weight * self.availability)
        return raw / self.group_size


def score_engines(
    reports: Iterable[ScanReport],
    flips: FlipStats,
    correlation: CorrelationAnalysis,
    consensus_threshold: int = 10,
) -> list[EngineScore]:
    """Score every engine from scan data plus the §7 analyses.

    ``consensus_threshold``: a scan counts as consensus-malicious when at
    least this many engines flag it; coverage is measured there.
    """
    names = flips.engine_names
    n = len(names)
    responded = np.zeros(n, dtype=np.int64)
    scans = 0
    consensus_hits = np.zeros(n, dtype=np.int64)
    consensus_scans = 0
    for report in reports:
        labels = np.frombuffer(report.labels, dtype=np.uint8)
        scans += 1
        responded += labels != _UNDETECTED_BYTE
        if report.positives >= consensus_threshold:
            consensus_scans += 1
            consensus_hits += labels == 1
    if scans == 0:
        raise InsufficientDataError(1, 0, "reports for engine scoring")

    group_of: dict[str, tuple[int, int]] = {}
    for gid, group in enumerate(correlation.groups()):
        for member in group:
            group_of[member] = (len(group), gid)

    scores = []
    for i, name in enumerate(names):
        pairs = int(flips.pairs[i])
        ratio = (float((flips.flips_up[i] + flips.flips_down[i]) / pairs)
                 if pairs else 0.0)
        size, gid = group_of.get(name, (1, -1))
        scores.append(EngineScore(
            engine=name,
            flip_ratio=ratio,
            availability=float(responded[i] / scans),
            coverage=(float(consensus_hits[i] / consensus_scans)
                      if consensus_scans else 0.0),
            group_size=size,
            group_id=gid,
        ))
    return scores


def select_trusted(
    scores: Sequence[EngineScore],
    count: int = 10,
) -> list[str]:
    """Pick a trusted engine set by composite score.

    One engine per correlation group is taken before any group may
    contribute a second member, so the set stays informationally diverse
    (the paper's advice: correlated engines are one opinion).
    """
    if count < 1:
        raise ConfigError("count must be >= 1")
    ranked = sorted(scores, key=lambda s: s.composite(), reverse=True)
    chosen: list[str] = []
    groups_seen: set[int] = set()
    # First pass: one representative per group (independents always fit).
    for score in ranked:
        if len(chosen) >= count:
            break
        if score.group_id >= 0:
            if score.group_id in groups_seen:
                continue
            groups_seen.add(score.group_id)
        chosen.append(score.engine)
    # Second pass: fill remaining slots by raw rank.
    for score in ranked:
        if len(chosen) >= count:
            break
        if score.engine not in chosen:
            chosen.append(score.engine)
    return chosen[:count]
