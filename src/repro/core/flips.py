"""Per-engine label flips, hazard flips and flip ratios (§7.1).

For a sample scanned n times, each engine contributes a sequence of
verdicts; restricting to the scans where the engine actually responded
(dropping *undetected*), a **flip** is a change between consecutive
verdicts — 0→1 or 1→0.  A **hazard flip** is a round trip across three
consecutive responses: 0→1→0 or 1→0→1 (Zhu et al. found these dominant
under daily rescans; the paper found 9 in 109 M organic reports).

The per-engine, per-file-type **flip ratio** (Figure 10) is the number of
flips divided by the number of consecutive response pairs for that engine
on that type.

The analysis is one pass over samples; per report, all 70 engines are
handled with vectorised numpy operations on the dense label byte vector,
so millions of reports stay fast in pure Python + numpy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.vt.reports import ScanReport

#: Byte value marking an unresponsive engine in the dense label vector.
_UNDETECTED_BYTE = 2


@dataclass
class FlipStats:
    """Accumulated flip statistics across a dataset."""

    engine_names: tuple[str, ...]
    #: Per-engine 0->1 and 1->0 flip counts.
    flips_up: np.ndarray = field(repr=False)
    flips_down: np.ndarray = field(repr=False)
    #: Per-engine consecutive-response pair counts (flip-ratio denominator).
    pairs: np.ndarray = field(repr=False)
    #: Per-engine hazard counts (0->1->0 plus 1->0->1).
    hazards_010: np.ndarray = field(repr=False)
    hazards_101: np.ndarray = field(repr=False)
    #: Per (file type) -> per-engine flip and pair counts (Figure 10).
    per_type_flips: dict[str, np.ndarray] = field(default_factory=dict, repr=False)
    per_type_pairs: dict[str, np.ndarray] = field(default_factory=dict, repr=False)
    #: Flips where the engine's signature version changed between the two
    #: responses (the §5.5 engine-update cause).
    flips_with_update: int = 0
    report_count: int = 0
    sample_count: int = 0

    # ------------------------------------------------------------------
    # Totals
    # ------------------------------------------------------------------

    @property
    def total_flips(self) -> int:
        return int(self.flips_up.sum() + self.flips_down.sum())

    @property
    def total_flips_up(self) -> int:
        return int(self.flips_up.sum())

    @property
    def total_flips_down(self) -> int:
        return int(self.flips_down.sum())

    @property
    def total_hazards(self) -> int:
        return int(self.hazards_010.sum() + self.hazards_101.sum())

    @property
    def update_coincidence_rate(self) -> float:
        """Fraction of flips with a co-occurring engine update (§5.5)."""
        total = self.total_flips
        return self.flips_with_update / total if total else float("nan")

    # ------------------------------------------------------------------
    # Per-engine / per-type views
    # ------------------------------------------------------------------

    def flip_ratio(self, engine: str) -> float:
        """Overall flip ratio of one engine."""
        i = self.engine_names.index(engine)
        pairs = self.pairs[i]
        return float((self.flips_up[i] + self.flips_down[i]) / pairs) if pairs else float("nan")

    def flip_ratio_matrix(
        self, file_types: Sequence[str] | None = None
    ) -> tuple[list[str], np.ndarray]:
        """Figure 10's (file types × engines) flip-ratio matrix.

        Returns the file-type row order and a matrix of ratios; cells with
        no observed pairs are NaN.
        """
        types = list(file_types) if file_types is not None else sorted(self.per_type_flips)
        matrix = np.full((len(types), len(self.engine_names)), np.nan)
        for row, ftype in enumerate(types):
            flips = self.per_type_flips.get(ftype)
            pairs = self.per_type_pairs.get(ftype)
            if flips is None or pairs is None:
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                matrix[row] = np.where(pairs > 0, flips / np.maximum(pairs, 1), np.nan)
        return types, matrix

    def flippiest_engines(self, top: int = 5) -> list[tuple[str, float]]:
        """Engines ranked by overall flip ratio, descending."""
        ratios = []
        for i, name in enumerate(self.engine_names):
            if self.pairs[i]:
                ratios.append(
                    (name, float((self.flips_up[i] + self.flips_down[i])
                                 / self.pairs[i]))
                )
        ratios.sort(key=lambda item: item[1], reverse=True)
        return ratios[:top]

    def stablest_engines(self, top: int = 5) -> list[tuple[str, float]]:
        """Engines ranked by overall flip ratio, ascending."""
        ranked = self.flippiest_engines(top=len(self.engine_names))
        return list(reversed(ranked))[:top]


def analyze_flips(
    sample_reports: Iterable[tuple[str, Sequence[ScanReport]]],
    engine_names: Sequence[str],
) -> FlipStats:
    """Run the full §7.1 flip analysis over grouped sample reports."""
    n_engines = len(engine_names)
    stats = FlipStats(
        engine_names=tuple(engine_names),
        flips_up=np.zeros(n_engines, dtype=np.int64),
        flips_down=np.zeros(n_engines, dtype=np.int64),
        pairs=np.zeros(n_engines, dtype=np.int64),
        hazards_010=np.zeros(n_engines, dtype=np.int64),
        hazards_101=np.zeros(n_engines, dtype=np.int64),
    )
    for _, reports in sample_reports:
        stats.sample_count += 1
        stats.report_count += len(reports)
        if len(reports) < 2:
            continue
        _accumulate_sample(stats, reports, n_engines)
    return stats


def _accumulate_sample(
    stats: FlipStats, reports: Sequence[ScanReport], n_engines: int
) -> None:
    """Vectorised per-sample accumulation.

    Tracks, per engine, the last and second-to-last *responded* verdicts
    so undetected scans are transparent (a 1, -1, 1 run is one pair and
    no flip, matching the paper's sequence-of-valid-labels framing).
    """
    ftype = reports[0].file_type
    type_flips = stats.per_type_flips.get(ftype)
    if type_flips is None:
        type_flips = np.zeros(n_engines, dtype=np.int64)
        stats.per_type_flips[ftype] = type_flips
        stats.per_type_pairs[ftype] = np.zeros(n_engines, dtype=np.int64)
    type_pairs = stats.per_type_pairs[ftype]

    # Last two responded verdicts per engine; -1 marks "none yet".
    last = np.full(n_engines, -1, dtype=np.int8)
    second_last = np.full(n_engines, -1, dtype=np.int8)
    last_version = np.zeros(n_engines, dtype=np.int64)

    for report in reports:
        labels = np.frombuffer(report.labels, dtype=np.uint8).astype(np.int8)
        versions = np.asarray(report.versions, dtype=np.int64)
        responded = labels != _UNDETECTED_BYTE

        paired = responded & (last >= 0)
        flipped = paired & (labels != last)
        up = flipped & (labels == 1)
        down = flipped & (labels == 0)

        stats.pairs += paired
        stats.flips_up += up
        stats.flips_down += down
        type_pairs += paired
        type_flips += flipped

        if flipped.any():
            updated = flipped & (versions != last_version)
            stats.flips_with_update += int(updated.sum())
            # Hazards: the verdict two responses ago equals the new one.
            hazard = flipped & (second_last >= 0) & (second_last == labels)
            if hazard.any():
                stats.hazards_010 += hazard & (labels == 0)
                stats.hazards_101 += hazard & (labels == 1)

        second_last = np.where(responded, last, second_last)
        last = np.where(responded, labels, last)
        last_version = np.where(responded, versions, last_version)
