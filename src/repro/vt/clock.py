"""Simulation time for the VirusTotal simulator.

The paper's collection window runs for 14 calendar months, May 2021 through
June 2022.  All simulator timestamps are integer **minutes since the start
of the collection window** (2021-05-01 00:00 UTC); the premium feed the
authors polled returned one batch per minute, so a minute is the natural
resolution.

Helper functions convert a minute timestamp to days, to a month index
(0..13) and to the ``MM/YYYY`` labels used by the paper's Table 2.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field

from repro.errors import ConfigError

#: Start of the paper's collection window (inclusive).
COLLECTION_START = _dt.datetime(2021, 5, 1, tzinfo=_dt.timezone.utc)

#: End of the paper's collection window (exclusive).
COLLECTION_END = _dt.datetime(2022, 7, 1, tzinfo=_dt.timezone.utc)

#: Number of calendar months in the collection window.
COLLECTION_MONTHS = 14

MINUTES_PER_HOUR = 60
MINUTES_PER_DAY = 24 * MINUTES_PER_HOUR

#: Cumulative minute offset at the start of each month of the window.
#: _MONTH_STARTS[i] is the timestamp of the first minute of month i, and the
#: final entry is the (exclusive) end of the window.
_MONTH_STARTS: list[int] = []


def _build_month_starts() -> None:
    cursor = COLLECTION_START
    total = 0
    for _ in range(COLLECTION_MONTHS):
        _MONTH_STARTS.append(total)
        if cursor.month == 12:
            nxt = cursor.replace(year=cursor.year + 1, month=1)
        else:
            nxt = cursor.replace(month=cursor.month + 1)
        total += int((nxt - cursor).total_seconds()) // 60
        cursor = nxt
    _MONTH_STARTS.append(total)


_build_month_starts()

#: Public view of the per-month minute offsets (read-only by convention).
MONTH_STARTS: tuple[int, ...] = tuple(_MONTH_STARTS)

#: Total number of minutes in the 14-month collection window.
WINDOW_MINUTES = _MONTH_STARTS[-1]

#: Total number of days in the collection window (426 days).
WINDOW_DAYS = WINDOW_MINUTES // MINUTES_PER_DAY


def minutes(*, days: float = 0.0, hours: float = 0.0, mins: float = 0.0) -> int:
    """Build a duration in simulator minutes from days/hours/minutes."""
    return int(round(days * MINUTES_PER_DAY + hours * MINUTES_PER_HOUR + mins))


def day_of(timestamp: int) -> float:
    """Fractional days since the start of the window for ``timestamp``."""
    return timestamp / MINUTES_PER_DAY


def minute_of_day(timestamp: int) -> int:
    """Minute within its day (0..1439) for ``timestamp``."""
    return timestamp % MINUTES_PER_DAY


def month_index(timestamp: int) -> int:
    """Month of the collection window (0..13) containing ``timestamp``.

    Timestamps past the window clamp to the last month; negative timestamps
    (a sample first seen before the window) clamp to 0.
    """
    if timestamp < 0:
        return 0
    if timestamp >= WINDOW_MINUTES:
        return COLLECTION_MONTHS - 1
    # Linear scan is fine: 14 entries.
    for i in range(COLLECTION_MONTHS):
        if timestamp < _MONTH_STARTS[i + 1]:
            return i
    raise AssertionError("unreachable")


def month_label(index: int) -> str:
    """The paper's ``MM/YYYY`` label for collection-window month ``index``."""
    if not 0 <= index < COLLECTION_MONTHS:
        raise ConfigError(f"month index out of range: {index}")
    cursor = COLLECTION_START
    for _ in range(index):
        if cursor.month == 12:
            cursor = cursor.replace(year=cursor.year + 1, month=1)
        else:
            cursor = cursor.replace(month=cursor.month + 1)
    return f"{cursor.month:02d}/{cursor.year}"


def to_datetime(timestamp: int) -> _dt.datetime:
    """Convert a simulator minute timestamp to an aware UTC datetime."""
    return COLLECTION_START + _dt.timedelta(minutes=timestamp)


def from_datetime(when: _dt.datetime) -> int:
    """Convert an aware datetime to a simulator minute timestamp."""
    if when.tzinfo is None:
        raise ConfigError("datetime must be timezone-aware")
    return int((when - COLLECTION_START).total_seconds()) // 60


@dataclass
class SimulationClock:
    """A monotone minute-resolution clock for driving the simulator.

    The clock refuses to move backwards — the service uses it to timestamp
    reports, and the feed relies on report timestamps being non-decreasing.
    """

    now: int = 0
    _started: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        self._started = self.now

    def advance(self, delta: int) -> int:
        """Move the clock forward by ``delta`` minutes and return the time."""
        if delta < 0:
            raise ConfigError(f"clock cannot move backwards (delta={delta})")
        self.now += delta
        return self.now

    def advance_to(self, timestamp: int) -> int:
        """Move the clock forward to ``timestamp`` (no-op if in the past)."""
        if timestamp > self.now:
            self.now = timestamp
        return self.now

    @property
    def elapsed(self) -> int:
        """Minutes elapsed since the clock was created."""
        return self.now - self._started

    def in_window(self) -> bool:
        """Whether the clock is still inside the 14-month window."""
        return 0 <= self.now < WINDOW_MINUTES
