"""The reprolint engine: parse, run rules, apply pragmas, sort findings.

One :func:`lint_paths` call is a pure function of (file contents,
config): files are discovered in sorted order, every rule's raw findings
are filtered through the pragma index and the per-rule path policy, and
the result is globally sorted by ``(path, line, col, code)`` — so two
runs over the same tree produce byte-identical reports, which
``tests/test_lint_selfcheck.py`` asserts the same way the store-digest
gate asserts serial/parallel equality.

Since reprolint v2 the engine is split along the cache boundary:

* :func:`analyze_module` is the expensive per-file half — parse, the
  per-file rules (RPL001–007 plus the local flow rules RPL102/104/105),
  and call-graph fact extraction.  Its :class:`FileAnalysis` output is
  plain data, keyed by content hash in :mod:`repro.lint.cache`.
* :func:`finish_program` is the cheap whole-program half — the RPL005
  kind table and the RPL101/RPL103 call-graph passes — recomputed from
  the (possibly cached) summaries on every run, so cross-file findings
  can never be served stale.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import LintError
from repro.lint.callgraph import CallGraph, FileSummary, extract_summary
from repro.lint.config import ALL_CODES, LintConfig, normalize_path
from repro.lint.flowrules import FLOW_LOCAL_RULES, program_findings
from repro.lint.pragmas import Pragmas, collect_pragmas
from repro.lint.resolve import ImportMap
from repro.lint.rules import (
    RULE_CLASSES,
    MetricRule,
    Rule,
    metric_kind_conflicts,
)

#: Bumped whenever rule semantics or the analysis schema change; the
#: incremental cache treats a mismatch as fully cold.
ENGINE_VERSION = 2


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``detail`` carries the whole-program evidence (the call chain for
    RPL101/RPL103); it is empty for single-site findings.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    detail: str = ""


@dataclass
class ModuleInfo:
    """Everything the rules need to know about one parsed module."""

    path: str
    tree: ast.Module
    imports: ImportMap
    pragmas: Pragmas
    #: ``def``/``class`` suppression spans: (first line, last line,
    #: codes disabled by a pragma on the header or a decorator line).
    scopes: list[tuple[int, int, frozenset[str]]]


@dataclass
class LintResult:
    """A lint run's outcome: active findings plus suppression accounting."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: Files whose per-file analysis actually ran this invocation (on a
    #: cacheless run this equals ``files_checked``; a warm cache run
    #: re-analyzes only changed files).
    files_reanalyzed: int = 0
    #: Findings ratcheted away by ``--baseline``.
    baselined: list[Finding] = field(default_factory=list)
    #: Baseline entries that matched nothing — fixed findings whose
    #: baseline line must now be deleted (the shrink-only ratchet).
    baseline_stale: list[tuple[str, str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings


def _parse_module(path: str, source: str) -> ModuleInfo:
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"cannot parse {path}: {exc}") from exc
    pragmas = collect_pragmas(source)
    scopes: list[tuple[int, int, frozenset[str]]] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
            continue
        header_lines = [node.lineno]
        header_lines.extend(d.lineno for d in node.decorator_list)
        codes: set[str] = set()
        for line in header_lines:
            codes.update(pragmas.by_line.get(line, ()))
        if codes:
            scopes.append((min(header_lines), node.end_lineno or node.lineno,
                           frozenset(codes)))
    return ModuleInfo(path=path, tree=tree, imports=ImportMap.from_module(tree),
                      pragmas=pragmas, scopes=scopes)


@dataclass
class FileAnalysis:
    """The cacheable product of analyzing one file.

    Local findings are final (already routed through pragmas and the
    path policy); the summary and the suppression tables feed the
    whole-program pass, whose findings are routed per run.
    """

    path: str
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    summary: FileSummary = None
    file_pragmas: list[str] = field(default_factory=list)
    line_pragmas: dict[int, list[str]] = field(default_factory=dict)
    scopes: list[tuple[int, int, list[str]]] = field(default_factory=list)

    def disabled(self, code: str, line: int) -> bool:
        if code in self.file_pragmas:
            return True
        if code in self.line_pragmas.get(line, ()):
            return True
        return any(start <= line <= end and code in codes
                   for start, end, codes in self.scopes)

    def to_doc(self) -> dict:
        def finding_doc(f: Finding) -> list:
            return [f.line, f.col, f.code, f.message, f.detail]

        return {
            "path": self.path,
            "findings": [finding_doc(f) for f in self.findings],
            "suppressed": [finding_doc(f) for f in self.suppressed],
            "summary": self.summary.to_doc(),
            "file_pragmas": sorted(self.file_pragmas),
            "line_pragmas": {str(line): sorted(codes) for line, codes
                             in sorted(self.line_pragmas.items())},
            "scopes": [[s, e, sorted(codes)] for s, e, codes in self.scopes],
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "FileAnalysis":
        path = doc["path"]

        def finding(raw: list) -> Finding:
            return Finding(path, raw[0], raw[1], raw[2], raw[3], raw[4])

        return cls(
            path=path,
            findings=[finding(raw) for raw in doc["findings"]],
            suppressed=[finding(raw) for raw in doc["suppressed"]],
            summary=FileSummary.from_doc(doc["summary"]),
            file_pragmas=list(doc["file_pragmas"]),
            line_pragmas={int(line): list(codes) for line, codes
                          in doc["line_pragmas"].items()},
            scopes=[(s, e, list(codes)) for s, e, codes in doc["scopes"]],
        )


def _is_disabled(module: ModuleInfo, code: str, line: int) -> bool:
    if code in module.pragmas.file_level:
        return True
    if code in module.pragmas.by_line.get(line, ()):
        return True
    return any(start <= line <= end and code in codes
               for start, end, codes in module.scopes)


def _route(analysis: FileAnalysis, module: ModuleInfo, code: str,
           raw: tuple[int, int, str]) -> None:
    """File one raw finding as active or pragma-suppressed."""
    line, col, message = raw
    finding = Finding(analysis.path, line, col, code, message)
    # RPL000 (pragma hygiene) cannot itself be pragma'd away — a broken
    # pragma must never silence the report that it is broken.
    if code != "RPL000" and _is_disabled(module, code, line):
        analysis.suppressed.append(finding)
    else:
        analysis.findings.append(finding)


def analyze_module(path: str, source: str,
                   config: LintConfig | None = None) -> FileAnalysis:
    """The per-file half: parse, local rules, fact extraction."""
    config = config if config is not None else LintConfig()
    display = normalize_path(path)
    module = _parse_module(display, source)
    analysis = FileAnalysis(path=display)
    analysis.summary = extract_summary(module)
    analysis.file_pragmas = sorted(module.pragmas.file_level)
    analysis.line_pragmas = {line: sorted(codes) for line, codes
                             in module.pragmas.by_line.items()}
    analysis.scopes = [(s, e, sorted(codes))
                       for s, e, codes in module.scopes]

    # Pragma hygiene (RPL000) applies everywhere, always.
    for bad in module.pragmas.bad:
        _route(analysis, module, "RPL000", (bad.line, bad.col, bad.message))
    rules: list[Rule] = [cls() for cls in (*RULE_CLASSES, *FLOW_LOCAL_RULES)]
    for rule in rules:
        if not config.rule_applies(rule.code, display):
            continue
        for raw in rule.check(module):
            _route(analysis, module, rule.code, raw)
        if isinstance(rule, MetricRule):
            analysis.summary.metric_sites = [
                (s.line, s.col, s.name, s.kind) for s in rule._sites]
    analysis.findings.sort()
    analysis.suppressed.sort()
    return analysis


def finish_program(analyses: Sequence[FileAnalysis],
                   config: LintConfig | None = None) -> LintResult:
    """The whole-program half: kind table plus call-graph passes."""
    config = config if config is not None else LintConfig()
    result = LintResult(files_checked=len(analyses),
                        files_reanalyzed=len(analyses))
    by_path = {a.path: a for a in analyses}
    for analysis in analyses:
        result.findings.extend(analysis.findings)
        result.suppressed.extend(analysis.suppressed)

    def route_program(path: str, line: int, col: int, code: str,
                      message: str, detail: str = "") -> None:
        analysis = by_path.get(path)
        if analysis is None or not config.rule_applies(code, path):
            return
        finding = Finding(path, line, col, code, message, detail)
        if analysis.disabled(code, line):
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)

    # RPL005's whole-program kind table, rebuilt from (cached) sites.
    sites = [(a.path, line, col, name, kind)
             for a in sorted(analyses, key=lambda a: a.path)
             for line, col, name, kind in a.summary.metric_sites]
    for path, (line, col, message) in metric_kind_conflicts(sites):
        route_program(path, line, col, "RPL005", message)

    # RPL101/RPL103 over the project call graph.
    graph = CallGraph([a.summary for a in analyses])
    for path, line, col, code, message, detail in program_findings(
            graph, config):
        route_program(path, line, col, code, message, detail)

    result.findings = sorted(set(result.findings))
    result.suppressed = sorted(set(result.suppressed))
    return result


def lint_modules(modules: Iterable[tuple[str, str]],
                 config: LintConfig | None = None) -> LintResult:
    """Lint ``(path, source)`` pairs; the core everything else wraps."""
    config = config if config is not None else LintConfig()
    analyses = [analyze_module(path, source, config)
                for path, source in modules]
    return finish_program(analyses, config)


def lint_source(source: str, path: str = "repro/_inline.py",
                config: LintConfig | None = None) -> LintResult:
    """Lint one in-memory module — the unit-test entry point."""
    return lint_modules([(path, source)], config=config)


def _expand(target: Path) -> list[Path]:
    if target.is_dir():
        # rglob order is filesystem order; sort for determinism (the
        # same contract RPL004 enforces on the code under lint).
        return sorted(target.rglob("*.py"))
    return [target]


def discover_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand lint targets into the sorted file list (dirs recurse)."""
    files: list[Path] = []
    for raw in paths:
        target = Path(raw)
        if not target.exists():
            raise LintError(f"lint target does not exist: {target}")
        files.extend(_expand(target))
    return files


def read_source(path: Path) -> str:
    try:
        return path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"cannot read {path}: {exc}") from exc


def lint_paths(paths: Sequence[str | Path],
               config: LintConfig | None = None) -> LintResult:
    """Lint files and directories (directories recurse over ``*.py``)."""
    files = discover_files(paths)
    return lint_modules(((str(path), read_source(path)) for path in files),
                        config=config)


def default_target() -> Path:
    """The tree ``repro-vt lint`` checks by default: this package."""
    import repro

    return Path(repro.__file__).resolve().parent


__all__ = [
    "ALL_CODES",
    "ENGINE_VERSION",
    "FileAnalysis",
    "Finding",
    "LintResult",
    "analyze_module",
    "default_target",
    "discover_files",
    "finish_program",
    "lint_modules",
    "lint_paths",
    "lint_source",
    "read_source",
]
