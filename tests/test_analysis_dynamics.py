"""Tests for the Section 5 pipelines (repro.analysis.dynamics)."""

import pytest

from repro.analysis.dynamics import (
    delta_distributions,
    interval_effect,
    per_type_dynamics,
    report_count_histogram,
    stable_dynamic_split,
    stable_sample_profile,
    threshold_impact,
)

from test_avrank import series


class TestStableDynamicSplit:
    def test_counts_and_fraction(self):
        pool = [series([1, 1]), series([1, 2]), series([9])]
        split = stable_dynamic_split(pool)
        assert split.n_stable == 1
        assert split.n_dynamic == 1
        assert split.n_multi == 2
        assert split.dynamic_fraction == 0.5

    def test_two_report_shares(self):
        pool = [series([1, 1]), series([2, 2, 2]), series([1, 5])]
        split = stable_dynamic_split(pool)
        assert split.stable_two_report_fraction == 0.5
        assert split.dynamic_two_report_fraction == 1.0

    def test_experiment_split_roughly_even(self, experiment):
        split = stable_dynamic_split(experiment.series())
        # Paper: 50.10 % dynamic.  Allow scenario-scale noise.
        assert 0.35 < split.dynamic_fraction < 0.62


class TestStableProfile:
    def test_rank_zero_fraction(self):
        pool = [series([0, 0]), series([0, 0]), series([3, 3])]
        profile = stable_sample_profile(pool)
        assert profile.rank_zero_fraction == pytest.approx(2 / 3)

    def test_span_grouping_caps_rank(self):
        pool = [series([50, 50]), series([0, 0])]
        profile = stable_sample_profile(pool, rank_group_cap=10)
        assert set(profile.span_by_rank) == {0, 10}

    def test_experiment_benign_dominates_stable(self, experiment):
        profile = stable_sample_profile(experiment.series())
        # Paper: 66.36 % of stable samples at AV-Rank 0.
        assert 0.5 < profile.rank_zero_fraction < 0.8
        assert profile.rank_at_most_5_fraction > profile.rank_zero_fraction


class TestDeltaDistributions:
    def test_landmark_properties(self):
        pool = [series([1, 1, 3]), series([0, 5])]
        dist = delta_distributions(pool)
        assert dist.adjacent_zero_fraction == pytest.approx(1 / 3)
        assert dist.overall_above_2_fraction == pytest.approx(0.5)
        assert dist.overall_within_11_fraction == 1.0

    def test_experiment_variation_prevalent(self, experiment):
        dist = delta_distributions(experiment.dataset_s)
        # Observation 3: most adjacent pairs change (paper: 64.5 %).
        assert dist.adjacent_zero_fraction < 0.65
        assert dist.overall_within_11_fraction > 0.6


class TestPerType:
    def test_rankings(self):
        pool = [
            series([0, 10], file_type="Win32 EXE"),
            series([0, 1], file_type="JSON"),
        ]
        dyn = per_type_dynamics(pool)
        assert dyn.ranked_by_overall_mean()[0][0] == "Win32 EXE"
        assert dyn.ranked_by_adjacent_mean()[-1][0] == "JSON"

    def test_experiment_pe_tops_delta(self, experiment):
        dyn = per_type_dynamics(experiment.dataset_s)
        ranked = dyn.ranked_by_overall_mean()
        top3 = {name for name, _ in ranked[:3]}
        assert top3 & {"Win32 EXE", "Win32 DLL", "Win64 EXE", "Win64 DLL"}


class TestIntervalEffect:
    def test_experiment_positive_correlation(self, experiment):
        effect = interval_effect(experiment.dataset_s)
        # Observation 5: longer intervals, larger differences.
        assert effect.correlation.rho > 0.3
        assert effect.correlation.p_value < 0.05

    def test_binned_boxes_keyed_by_bucket(self, experiment):
        effect = interval_effect(experiment.dataset_s, bin_days=30)
        assert all(isinstance(k, int) for k in effect.binned_boxes)


class TestThresholdImpact:
    def test_curves_have_requested_thresholds(self):
        pool = [series([0, 5]), series([10, 40], file_type="Win32 EXE")]
        impact = threshold_impact(pool, thresholds=[1, 5, 10])
        assert [c.threshold for c in impact.overall] == [1, 5, 10]
        assert [c.threshold for c in impact.pe_only] == [1, 5, 10]

    def test_pe_subset_smaller(self):
        pool = [series([0, 5], file_type="TXT"),
                series([0, 5], file_type="Win32 EXE")]
        impact = threshold_impact(pool, thresholds=[3])
        assert impact.overall[0].total == 2
        assert impact.pe_only[0].total == 1

    def test_experiment_gray_fraction_bounded(self, experiment):
        impact = threshold_impact(experiment.dataset_s)
        _, peak = impact.overall_peak
        # Paper peak: 14.92 %; shape tolerance at small scale.
        assert peak < 0.30

    def test_experiment_low_thresholds_mostly_safe(self, experiment):
        impact = threshold_impact(experiment.dataset_s)
        low_gray = [c.gray_fraction for c in impact.overall
                    if 3 <= c.threshold <= 11]
        assert max(low_gray) < 0.15


class TestHistogram:
    def test_report_count_histogram(self):
        pool = [series([1]), series([1, 2]), series([1, 2])]
        histogram = report_count_histogram(pool)
        assert histogram[1] == 1
        assert histogram[2] == 2
