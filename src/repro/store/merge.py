"""Frozen-shard merge: splice K sharded stores into one, in key order.

The parallel scenario engine (:mod:`repro.parallel`) runs each sample
shard's generate→scan→ingest loop in its own process, producing K frozen
:class:`~repro.store.reportstore.ReportStore` equivalents.  This module
owns the merge: interleave every shard's per-month record stream into a
single store whose record order — and therefore canonical
:meth:`~repro.store.reportstore.ReportStore.digest` — is byte-identical
to the serial run's.

The merge works on *encoded records*, never decoding a report:

* each source month arrives as compressed blocks plus three parallel
  per-record arrays — a globally unique, per-stream non-decreasing sort
  ``key``, the record's ``sha256`` and its ``scan_time`` — which is
  everything needed to order records and rebuild the per-sample index
  without touching payload bytes;
* a K-way merge interleaves records by key; output blocks freeze every
  ``block_records`` records, exactly as live ingest would have, so the
  merged block layout (and each block's zlib payload) matches the serial
  store's bit for bit;
* **block splice fast path**: when one stream's entire next block sorts
  before every other stream's head (and the output buffer is at a block
  boundary), the compressed block is adopted wholesale — no decompress,
  no recompress.  Shards that do not overlap in time merge at block
  granularity; overlapping regions fall back to record-level interleave,
  decompressing each source block at most once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ConfigError
from repro.obs import traced
from repro.store import codec
from repro.store.cache import DEFAULT_CACHE_BYTES
from repro.store.reportstore import ReportStore
from repro.store.shard import DEFAULT_BLOCK_RECORDS, CompressedBlock, MonthlyShard


@dataclass
class FrozenMonth:
    """One source shard's records for one month, ready to merge.

    ``keys``/``shas``/``scan_times`` are parallel arrays with one entry
    per record, in block order.  Keys must be non-decreasing within the
    month and globally unique across all sources being merged (the
    parallel runner uses ``(scan_time, global_sample_index)``).
    """

    blocks: list[CompressedBlock]
    report_count: int
    verbose_bytes: int
    encoded_bytes: int
    keys: list = field(repr=False)
    shas: list[str] = field(repr=False)
    scan_times: list[int] = field(repr=False)

    def __post_init__(self) -> None:
        n = sum(b.record_count for b in self.blocks)
        if not (len(self.keys) == len(self.shas)
                == len(self.scan_times) == n == self.report_count):
            raise ConfigError(
                f"frozen month metadata mismatch: {len(self.keys)} keys, "
                f"{len(self.shas)} shas, {len(self.scan_times)} scan times "
                f"for {n} block records ({self.report_count} counted)"
            )


@dataclass
class FrozenShard:
    """One source shard: its months plus the per-sample metadata."""

    months: dict[int, FrozenMonth]
    sample_meta: dict[str, tuple[str, bool]]


class _Stream:
    """Cursor over one source month's record stream."""

    __slots__ = ("blocks", "keys", "shas", "scan_times", "meta",
                 "pos", "n", "block_idx", "block_start", "_records",
                 "blocks_spliced", "blocks_decompressed")

    def __init__(self, month: FrozenMonth, meta: dict[str, tuple[str, bool]]):
        self.blocks = month.blocks
        self.keys = month.keys
        self.shas = month.shas
        self.scan_times = month.scan_times
        self.meta = meta
        self.pos = 0
        self.n = len(month.keys)
        self.block_idx = 0
        self.block_start = 0
        self._records: list[bytes] | None = None
        self.blocks_spliced = 0
        self.blocks_decompressed = 0

    @property
    def exhausted(self) -> bool:
        return self.pos >= self.n

    @property
    def key(self):
        return self.keys[self.pos]

    def block_span(self) -> tuple[int, int]:
        """``(start, end)`` record positions of the current block."""
        end = self.block_start + self.blocks[self.block_idx].record_count
        return self.block_start, end

    def at_block_start(self) -> bool:
        return self.pos == self.block_start

    def take_record(self) -> bytes:
        """The current record's encoded bytes (decompressing lazily)."""
        if self._records is None:
            self._records = self.blocks[self.block_idx].records()
            self.blocks_decompressed += 1
        record = self._records[self.pos - self.block_start]
        self._advance(1)
        return record

    def take_block(self) -> CompressedBlock:
        """Adopt the whole current block without decompressing it."""
        block = self.blocks[self.block_idx]
        self.blocks_spliced += 1
        self._advance(block.record_count)
        return block

    def _advance(self, count: int) -> None:
        self.pos += count
        _, end = self.block_span()
        if self.pos >= end and self.pos < self.n:
            self.block_idx += 1
            self.block_start = end
            self._records = None


@dataclass(frozen=True)
class MergeStats:
    """How the merge moved data: spliced vs re-blocked."""

    months: int
    records: int
    blocks_spliced: int
    blocks_decompressed: int
    blocks_recompressed: int


def _merge_streams(streams, block_records, on_record, on_block,
                   block_format=codec.BLOCK_FORMAT_ROW):
    """The K-way merge core, shared by every merge entry point.

    ``on_record(stream, at, block_idx, slot)`` fires once per record in
    output order with the record's destination slot address (``block_idx``
    counts output blocks of this month, ``slot`` positions within the
    block); ``on_block(block)`` appends each finished output block.
    Output blocks hold exactly ``block_records`` records apart from the
    final partial one, so the output layout is a pure function of the
    merged record sequence — *not* of how the sources were blocked or
    grouped.  That invariant is what lets the streaming merge fold runs
    in completion order and still converge on the serial store bit for
    bit.  Re-blocked output freezes in ``block_format``; spliced blocks
    keep the layout their source froze them in (when sources share the
    target layout — the normal case — the output is uniform).

    Returns ``(spliced, decompressed, recompressed)`` block counts.
    """
    streams = list(streams)
    buffer: list[bytes] = []
    n_blocks = 0
    spliced = decompressed = recompressed = 0
    while streams:
        stream = min(streams, key=lambda s: s.key)
        start, end = stream.block_span()
        block = stream.blocks[stream.block_idx]
        can_splice = (
            not buffer
            and stream.at_block_start()
            and block.record_count == block_records
            and all(s is stream or stream.keys[end - 1] < s.key
                    for s in streams)
        )
        if can_splice:
            for slot, at in enumerate(range(start, end)):
                on_record(stream, at, n_blocks, slot)
            on_block(stream.take_block())
            n_blocks += 1
        else:
            on_record(stream, stream.pos, n_blocks, len(buffer))
            buffer.append(stream.take_record())
            if len(buffer) >= block_records:
                on_block(CompressedBlock.from_records(buffer, block_format))
                n_blocks += 1
                recompressed += 1
                buffer = []
        if stream.exhausted:
            spliced += stream.blocks_spliced
            decompressed += stream.blocks_decompressed
            streams.remove(stream)
    if buffer:
        on_block(CompressedBlock.from_records(buffer, block_format))
        recompressed += 1
    return spliced, decompressed, recompressed


@traced("store.merge.seconds")
def concat_frozen(
    sources: Sequence[FrozenShard],
    block_records: int = DEFAULT_BLOCK_RECORDS,
    cache_bytes: int = DEFAULT_CACHE_BYTES,
    metrics=None,
    block_format: str = codec.BLOCK_FORMAT_COLUMNAR,
) -> tuple[ReportStore, MergeStats]:
    """Merge frozen shards into one sealed store, in global key order.

    Returns the store plus :class:`MergeStats`.  The store is
    indistinguishable from one that ingested the same records serially in
    key order with the same ``block_records``: identical block layout,
    identical per-month accounting, identical index — and therefore an
    identical canonical digest and an identical ``save()`` file.
    """
    store = ReportStore(block_records=block_records, cache_bytes=cache_bytes,
                        metrics=metrics, block_format=block_format)
    months = sorted({m for src in sources for m in src.months})
    total_records = 0
    spliced = decompressed = recompressed = 0

    for month in months:
        present = [src for src in sources if month in src.months]
        streams = [
            _Stream(src.months[month], src.sample_meta)
            for src in present
            if src.months[month].report_count
        ]
        dest = MonthlyShard(month, block_records=block_records,
                            block_format=store.block_format)
        dest.report_count = sum(src.months[month].report_count
                                for src in present)
        dest.verbose_bytes = sum(src.months[month].verbose_bytes
                                 for src in present)
        dest.encoded_bytes = sum(src.months[month].encoded_bytes
                                 for src in present)
        total_records += dest.report_count

        def register(stream: _Stream, at: int, block_idx: int,
                     slot: int) -> None:
            sha = stream.shas[at]
            scan_time = stream.scan_times[at]
            # Index entries carry the scan time so point lookups
            # (latest_report) never decode a block to find "latest".
            store._index.setdefault(sha, []).append(
                (month, block_idx, slot, scan_time))
            store._scan_index.setdefault(sha, set()).add(scan_time)
            if sha not in store._sample_meta:
                store._sample_meta[sha] = stream.meta[sha]

        s, d, r = _merge_streams(streams, block_records,
                                 register, dest.blocks.append,
                                 store.block_format)
        spliced += s
        decompressed += d
        recompressed += r
        dest.closed = True
        store.shards[month] = dest

    store.closed = True
    stats = MergeStats(
        months=len(months),
        records=total_records,
        blocks_spliced=spliced,
        blocks_decompressed=decompressed,
        blocks_recompressed=recompressed,
    )
    return store, stats


def merge_frozen(
    sources: Sequence[FrozenShard],
    block_records: int = DEFAULT_BLOCK_RECORDS,
    block_format: str = codec.BLOCK_FORMAT_COLUMNAR,
) -> tuple[FrozenShard, MergeStats]:
    """Merge frozen shards into one *frozen shard*, in global key order.

    The frozen→frozen counterpart of :func:`concat_frozen`: same K-way
    loop, but the result stays mergeable — the streaming merge uses it to
    fold completed shards together long before the last one arrives,
    deferring store/index construction to the final pass.
    """
    months_out: dict[int, FrozenMonth] = {}
    sample_meta: dict[str, tuple[str, bool]] = {}
    total_records = 0
    spliced = decompressed = recompressed = 0

    for month in sorted({m for src in sources for m in src.months}):
        present = [src for src in sources if month in src.months]
        streams = [
            _Stream(src.months[month], src.sample_meta)
            for src in present
            if src.months[month].report_count
        ]
        blocks: list[CompressedBlock] = []
        keys: list = []
        shas: list[str] = []
        scan_times: list[int] = []

        def collect(stream: _Stream, at: int, block_idx: int,
                    slot: int) -> None:
            keys.append(stream.keys[at])
            shas.append(stream.shas[at])
            scan_times.append(stream.scan_times[at])
            sha = stream.shas[at]
            if sha not in sample_meta:
                sample_meta[sha] = stream.meta[sha]

        s, d, r = _merge_streams(streams, block_records,
                                 collect, blocks.append, block_format)
        spliced += s
        decompressed += d
        recompressed += r
        report_count = sum(src.months[month].report_count for src in present)
        total_records += report_count
        months_out[month] = FrozenMonth(
            blocks=blocks,
            report_count=report_count,
            verbose_bytes=sum(src.months[month].verbose_bytes
                              for src in present),
            encoded_bytes=sum(src.months[month].encoded_bytes
                              for src in present),
            keys=keys,
            shas=shas,
            scan_times=scan_times,
        )

    stats = MergeStats(
        months=len(months_out),
        records=total_records,
        blocks_spliced=spliced,
        blocks_decompressed=decompressed,
        blocks_recompressed=recompressed,
    )
    return FrozenShard(months=months_out, sample_meta=sample_meta), stats


class StreamingMerge:
    """Incrementally merge frozen shards as they complete.

    The elastic scheduler hands over shards in *completion* order, which
    under chaos bears no relation to shard order.  ``add()`` appends each
    shard as a run and folds neighbouring runs whenever the second-newest
    is no more than twice the newest (the classic logarithmic run stack),
    so merge work overlaps shard execution and no more than
    ``O(log n_shards)`` runs are ever held.  ``finish()`` concatenates
    the surviving runs into the sealed store.

    Order-independence is structural, not probabilistic: merge keys are
    globally unique, and :func:`_merge_streams` re-blocks output purely
    by record sequence, so any fold order converges to the same final
    store — identical digest, identical ``save()`` bytes.  Only
    :class:`MergeStats` (how much was spliced vs re-blocked along the
    way) varies with fold order; ``records`` always equals the final
    store's report count.
    """

    def __init__(self, block_records: int = DEFAULT_BLOCK_RECORDS,
                 cache_bytes: int = DEFAULT_CACHE_BYTES,
                 metrics=None,
                 block_format: str = codec.BLOCK_FORMAT_COLUMNAR) -> None:
        self._block_records = block_records
        self._cache_bytes = cache_bytes
        self._metrics = metrics
        self._block_format = codec.resolve_block_format(block_format)
        self._runs: list[FrozenShard] = []
        self._counts: list[int] = []
        self._spliced = 0
        self._decompressed = 0
        self._recompressed = 0
        #: How many incremental fold passes add() performed.
        self.folds = 0

    @staticmethod
    def _size(shard: FrozenShard) -> int:
        return sum(m.report_count for m in shard.months.values())

    def add(self, shard: FrozenShard) -> None:
        """Accept one completed shard, folding runs as the stack allows."""
        self._runs.append(shard)
        self._counts.append(self._size(shard))
        while (len(self._runs) > 1
               and self._counts[-2] <= 2 * self._counts[-1]):
            merged, stats = merge_frozen(self._runs[-2:],
                                         block_records=self._block_records,
                                         block_format=self._block_format)
            self._runs[-2:] = [merged]
            self._counts[-2:] = [stats.records]
            self._spliced += stats.blocks_spliced
            self._decompressed += stats.blocks_decompressed
            self._recompressed += stats.blocks_recompressed
            self.folds += 1

    def finish(self) -> tuple[ReportStore, MergeStats]:
        """Concatenate the surviving runs into one sealed store."""
        store, stats = concat_frozen(self._runs,
                                     block_records=self._block_records,
                                     cache_bytes=self._cache_bytes,
                                     metrics=self._metrics,
                                     block_format=self._block_format)
        self._runs = []
        self._counts = []
        return store, MergeStats(
            months=stats.months,
            records=stats.records,
            blocks_spliced=stats.blocks_spliced + self._spliced,
            blocks_decompressed=stats.blocks_decompressed
            + self._decompressed,
            blocks_recompressed=stats.blocks_recompressed
            + self._recompressed,
        )
