"""Unit tests for the AVClass-style baseline (repro.labeling)."""

from repro.labeling.families import (
    FamilyVote,
    detection_string,
    label_family,
)
from repro.labeling.tokens import normalize_label, tokenize_label


class TestTokenizer:
    def test_split_on_punctuation(self):
        assert tokenize_label("Trojan.Win32.Emotet.abcd!MTB") == [
            "trojan", "win32", "emotet", "abcd", "mtb"
        ]

    def test_lowercases(self):
        assert tokenize_label("EMOTET") == ["emotet"]

    def test_empty(self):
        assert tokenize_label("") == []


class TestNormalizer:
    def test_extracts_family(self):
        assert normalize_label("Trojan.Win32.Emotet.abcd!MTB") == ["emotet"]

    def test_generic_only_label_yields_nothing(self):
        assert normalize_label("Trojan.Generic.1234567") == []
        assert normalize_label("HEUR:Trojan.Win32.Generic") == []

    def test_hex_suffixes_dropped(self):
        assert normalize_label("Emotet.deadbeef") == ["emotet"]

    def test_short_fragments_dropped(self):
        assert normalize_label("W32/Xy.ab") == []

    def test_platform_tokens_dropped(self):
        assert normalize_label("Linux.Mirai.A") == ["mirai"]

    def test_multiple_candidates_preserved_in_order(self):
        assert normalize_label("Mirai.Gafgyt") == ["mirai", "gafgyt"]


class TestDetectionString:
    def test_benign_is_none(self):
        assert detection_string("Avast", None, "pe", "a" * 64) is None

    def test_deterministic(self):
        a = detection_string("Avast", "emotet", "pe", "a" * 64)
        b = detection_string("Avast", "emotet", "pe", "a" * 64)
        assert a == b

    def test_varies_by_engine(self):
        strings = {
            detection_string(name, "emotet", "pe", "b" * 64)
            for name in ("Avast", "Kaspersky", "Microsoft", "DrWeb",
                         "Fortinet", "ESET-NOD32")
        }
        assert len(strings) > 2

    def test_family_usually_recoverable(self):
        hits = 0
        for i in range(100):
            label = detection_string(f"Engine{i}", "emotet", "pe",
                                     f"{i:064x}")
            if "emotet" in normalize_label(label or ""):
                hits += 1
        assert hits > 60  # ~18 % of strings are generic-only by design


class TestPluralityVote:
    def test_majority_family_wins(self):
        vote = label_family({
            "a": "Trojan.Win32.Emotet.xy",
            "b": "W32/Emotet.AB!tr",
            "c": "Gen:Variant.Qakbot.12",
            "d": None,
        })
        assert vote.family == "emotet"
        assert vote.support == 2
        assert vote.total_votes == 3
        assert vote.confident

    def test_no_detections(self):
        vote = label_family({"a": None, "b": None})
        assert vote.family is None
        assert not vote.confident
        assert vote.total_votes == 0

    def test_generic_only_detections(self):
        vote = label_family({"a": "Trojan.Generic.999"})
        assert vote.family is None

    def test_single_vote_not_confident(self):
        vote = label_family({"a": "Mirai.x1y2z3w4"})
        assert vote.family == "mirai"
        assert not vote.confident

    def test_alternatives_ranked(self):
        vote = label_family({
            "a": "Emotet.aaaa", "b": "Emotet.bbbb",
            "c": "Qakbot.cccc", "d": "Mirai.dddd",
        })
        assert vote.family == "emotet"
        alt_families = [f for f, _ in vote.alternatives]
        assert set(alt_families) == {"qakbot", "mirai"}

    def test_one_vote_per_engine(self):
        vote = label_family({"a": "Mirai.Gafgyt.Tsunami"})
        assert vote.support == 1
        assert vote.total_votes == 1


class TestEndToEnd:
    def test_simulated_fleet_recovers_ground_truth(self, fleet):
        detections = {
            engine.name: detection_string(engine.name, "redline", "pe",
                                          "c" * 64)
            for engine in fleet
        }
        vote = label_family(detections)
        assert vote.family == "redline"
        assert vote.confident
        assert isinstance(vote, FamilyVote)
