"""Incremental cache and baseline tests (reprolint v2).

The cache contract: warm runs re-analyze nothing, a one-file edit
re-analyzes exactly that file, cached and cold results are identical,
and any schema/fingerprint mismatch or file damage degrades to a cold
run — never to wrong results.  ``--changed`` narrows *reporting* to the
changed files' reverse-import cone while the whole-program pass still
sees the full tree.  The baseline is shrink-only: entries that match
nothing are reported stale.
"""

import textwrap

import pytest

from repro.errors import LintError
from repro.lint import (
    LintConfig,
    apply_baseline,
    lint_paths,
    lint_paths_cached,
    read_baseline,
    write_baseline,
)
from repro.lint.cache import CACHE_SCHEMA


@pytest.fixture()
def tree(tmp_path):
    """A three-module tree: beta imports alpha; gamma stands alone.

    beta and gamma each carry one wall-clock finding so per-file
    results, cone filtering and baselines all have material to work on.
    """
    pkg = tmp_path / "src" / "repro" / "fix"
    pkg.mkdir(parents=True)
    (pkg / "alpha.py").write_text(textwrap.dedent("""
        def base():
            return 1
    """), encoding="utf-8")
    (pkg / "beta.py").write_text(textwrap.dedent("""
        import time

        from repro.fix.alpha import base

        def mid():
            return (base(), time.time())
    """), encoding="utf-8")
    (pkg / "gamma.py").write_text(textwrap.dedent("""
        import time

        def lone():
            return time.time()
    """), encoding="utf-8")
    return pkg


class TestCacheReuse:
    def test_cold_then_warm(self, tree, tmp_path):
        cache = tmp_path / "lint-cache.json"
        cold = lint_paths_cached([tree], cache)
        assert cold.files_checked == 3
        assert cold.files_reanalyzed == 3
        warm = lint_paths_cached([tree], cache)
        assert warm.files_checked == 3
        assert warm.files_reanalyzed == 0
        assert warm.findings == cold.findings
        assert warm.suppressed == cold.suppressed

    def test_warm_results_match_cacheless_run(self, tree, tmp_path):
        cache = tmp_path / "lint-cache.json"
        lint_paths_cached([tree], cache)
        warm = lint_paths_cached([tree], cache)
        plain = lint_paths([tree])
        assert warm.findings == plain.findings
        assert warm.suppressed == plain.suppressed

    def test_one_file_edit_reanalyzes_only_that_file(self, tree, tmp_path):
        cache = tmp_path / "lint-cache.json"
        lint_paths_cached([tree], cache)
        alpha = tree / "alpha.py"
        alpha.write_text(alpha.read_text(encoding="utf-8") +
                         "\n\ndef extra():\n    return 2\n",
                         encoding="utf-8")
        run = lint_paths_cached([tree], cache)
        assert run.files_reanalyzed == 1

    def test_cache_file_is_byte_deterministic(self, tree, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        lint_paths_cached([tree], a)
        lint_paths_cached([tree], b)
        assert a.read_bytes() == b.read_bytes()
        head = a.read_text(encoding="utf-8").splitlines()[0]
        assert CACHE_SCHEMA in head

    def test_select_change_invalidates_fingerprint(self, tree, tmp_path):
        cache = tmp_path / "lint-cache.json"
        lint_paths_cached([tree], cache)
        narrowed = lint_paths_cached(
            [tree], cache, config=LintConfig(select=frozenset({"RPL001"})))
        assert narrowed.files_reanalyzed == 3
        # And back: the narrowed run overwrote the fingerprint.
        again = lint_paths_cached([tree], cache)
        assert again.files_reanalyzed == 3

    def test_damaged_cache_degrades_to_cold(self, tree, tmp_path):
        cache = tmp_path / "lint-cache.json"
        lint_paths_cached([tree], cache)
        cache.write_text("{not json\n", encoding="utf-8")
        run = lint_paths_cached([tree], cache)
        assert run.files_reanalyzed == 3
        # The damaged file was rewritten; the next run is warm again.
        assert lint_paths_cached([tree], cache).files_reanalyzed == 0


class TestChangedOnly:
    def test_changed_cone_filters_unrelated_findings(self, tree, tmp_path):
        cache = tmp_path / "lint-cache.json"
        lint_paths_cached([tree], cache)
        alpha = tree / "alpha.py"
        alpha.write_text(alpha.read_text(encoding="utf-8") +
                         "\n\ndef extra():\n    return 2\n",
                         encoding="utf-8")
        run = lint_paths_cached([tree], cache, changed_only=True)
        # alpha changed; beta imports alpha and is in the cone, so its
        # finding is reported.  gamma is unrelated and filtered out.
        assert [f.path for f in run.findings] == ["repro/fix/beta.py"]
        # The whole-program pass still checked everything.
        assert run.files_checked == 3
        assert run.files_reanalyzed == 1

    def test_nothing_changed_reports_nothing(self, tree, tmp_path):
        cache = tmp_path / "lint-cache.json"
        lint_paths_cached([tree], cache)
        run = lint_paths_cached([tree], cache, changed_only=True)
        assert run.files_reanalyzed == 0
        assert run.findings == []


class TestBaseline:
    def test_write_then_apply_ratchets_findings(self, tree, tmp_path):
        baseline = tmp_path / "baseline.json"
        result = lint_paths([tree])
        assert len(result.findings) == 2
        write_baseline(result, baseline)
        entries = read_baseline(baseline)
        assert len(entries) == 2
        ratcheted = apply_baseline(lint_paths([tree]), entries)
        assert ratcheted.findings == []
        assert len(ratcheted.baselined) == 2
        assert ratcheted.baseline_stale == []

    def test_fixed_finding_turns_entry_stale(self, tree, tmp_path):
        baseline = tmp_path / "baseline.json"
        write_baseline(lint_paths([tree]), baseline)
        (tree / "gamma.py").write_text(
            "def lone():\n    return 0\n", encoding="utf-8")
        result = apply_baseline(lint_paths([tree]),
                                read_baseline(baseline))
        assert result.findings == []
        assert len(result.baselined) == 1
        assert [path for path, _, _ in result.baseline_stale] == \
            ["repro/fix/gamma.py"]

    def test_baseline_file_is_byte_deterministic(self, tree, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        write_baseline(lint_paths([tree]), a)
        write_baseline(lint_paths([tree]), b)
        assert a.read_bytes() == b.read_bytes()

    def test_missing_baseline_is_an_error(self, tmp_path):
        with pytest.raises(LintError):
            read_baseline(tmp_path / "nope.json")

    def test_wrong_schema_is_an_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema":"something-else/9"}\n', encoding="utf-8")
        with pytest.raises(LintError):
            read_baseline(bad)
