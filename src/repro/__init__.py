"""repro — reproduction of *Re-measuring the Label Dynamics of Online
Anti-Malware Engines from Millions of Samples* (IMC 2023).

The package has three layers:

* substrates — a VirusTotal service simulator (:mod:`repro.vt`), synthetic
  workload generation (:mod:`repro.synth`), a compressed report store
  (:mod:`repro.store`) and a statistics toolkit (:mod:`repro.stats`);
* the paper's contribution — the label-dynamics analysis library
  (:mod:`repro.core`);
* reproduction pipelines — per-table/figure experiment drivers
  (:mod:`repro.analysis`) and the AVClass-style baseline labeller
  (:mod:`repro.labeling`).

Quickstart::

    from repro import run_experiment, dynamics_scenario, split_stable_dynamic
    data = run_experiment(dynamics_scenario(n_samples=2000, seed=7))
    stable, dynamic = split_stable_dynamic(data.series())
"""

from repro._version import __version__
from repro.analysis.experiment import ExperimentData, run_experiment
from repro.collect import FeedCollector, run_collection
from repro.core.avrank import AVRankSeries, collect_series, split_stable_dynamic
from repro.core.aggregation import (
    PercentageAggregator,
    ThresholdAggregator,
    TrustedEnginesAggregator,
    WeightedVoteAggregator,
)
from repro.core.categorize import categorize, category_distribution
from repro.core.correlation import correlation_analysis
from repro.core.flips import analyze_flips
from repro.core.monitor import StabilityCriteria, StabilityMonitor
from repro.core.stabilization import avrank_stabilization, label_stabilization
from repro.store.reportstore import ReportStore
from repro.faults import FaultPlan, standard_chaos_plan
from repro.synth.scenario import (
    ScenarioConfig,
    chaos_scenario,
    dynamics_scenario,
    paper_scenario,
    tiny_scenario,
)
from repro.vt.api import VTClient
from repro.vt.engines import default_fleet
from repro.vt.feed import PremiumFeed
from repro.vt.service import VirusTotalService

__all__ = [
    "__version__",
    "ExperimentData",
    "run_experiment",
    "FeedCollector",
    "run_collection",
    "FaultPlan",
    "standard_chaos_plan",
    "AVRankSeries",
    "collect_series",
    "split_stable_dynamic",
    "PercentageAggregator",
    "ThresholdAggregator",
    "TrustedEnginesAggregator",
    "WeightedVoteAggregator",
    "categorize",
    "category_distribution",
    "correlation_analysis",
    "analyze_flips",
    "StabilityCriteria",
    "StabilityMonitor",
    "avrank_stabilization",
    "label_stabilization",
    "ReportStore",
    "ScenarioConfig",
    "chaos_scenario",
    "dynamics_scenario",
    "paper_scenario",
    "tiny_scenario",
    "VTClient",
    "default_fleet",
    "PremiumFeed",
    "VirusTotalService",
]
