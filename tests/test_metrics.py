"""Unit tests for dynamics metrics (repro.core.metrics)."""

import pytest

from repro.core.metrics import (
    BoxSummary,
    adjacent_deltas,
    deltas_by_file_type,
    overall_delta,
    pairwise_differences,
    summarize_by_file_type,
)

from test_avrank import series


class TestPooledDeltas:
    def test_adjacent_deltas_pooled(self):
        pool = [series([1, 3]), series([5, 5, 9])]
        assert sorted(adjacent_deltas(pool)) == [0, 2, 4]

    def test_overall_delta(self):
        pool = [series([1, 3]), series([5, 5, 9])]
        assert overall_delta(pool) == [2, 4]

    def test_by_file_type_grouping(self):
        pool = [
            series([1, 3], file_type="TXT"),
            series([2, 2], file_type="TXT"),
            series([0, 9], file_type="PDF"),
        ]
        adjacent, overall = deltas_by_file_type(pool)
        assert sorted(adjacent["TXT"]) == [0, 2]
        assert overall["PDF"] == [9]

    def test_summaries(self):
        grouped = {"TXT": [1, 2, 3], "PDF": []}
        out = summarize_by_file_type(grouped)
        assert set(out) == {"TXT"}
        assert out["TXT"].mean == 2
        assert isinstance(out["TXT"], BoxSummary)


class TestPairwise:
    def test_all_pairs_for_small_series(self):
        s = series([0, 2, 6], times=(0, 1440, 4320))
        pairs = pairwise_differences([s])
        assert len(pairs) == 3
        assert sorted(pairs.rank_diffs) == [2, 4, 6]
        assert sorted(pairs.interval_days) == [1.0, 2.0, 3.0]

    def test_cap_limits_hot_samples(self):
        hot = series(list(range(100)))
        pairs = pairwise_differences([hot], max_pairs_per_sample=50)
        assert len(pairs) == 50

    def test_cap_is_deterministic(self):
        hot = series(list(range(100)))
        a = pairwise_differences([hot], max_pairs_per_sample=30)
        b = pairwise_differences([hot], max_pairs_per_sample=30)
        assert a.rank_diffs == b.rank_diffs

    def test_binning(self):
        s = series([0, 1, 5], times=(0, 1440 * 10, 1440 * 40))
        bins = pairwise_differences([s]).binned(bin_days=30)
        assert set(bins) == {0, 1}
        assert sorted(bins[1]) == [4, 5]  # 30- and 40-day pairs

    def test_monotone_trend_detected(self):
        """A strongly growing trajectory yields high interval correlation."""
        days = (0, 3, 8, 15, 25, 40, 60, 90, 150, 250)
        # Rank grows linearly in time, so |rank_i - rank_j| is an exact
        # function of the interval and the trend must be perfect.
        pool = [
            series(
                [d // 5 for d in days],
                times=tuple(int(d * 1440) for d in days),
            )
            for _ in range(40)
        ]
        result = pairwise_differences(pool).interval_correlation()
        assert result.rho > 0.95

    def test_raw_correlation_runs(self):
        s = series([0, 3, 6], times=(0, 1440, 2880))
        result = pairwise_differences([s]).raw_correlation()
        assert -1.0 <= result.rho <= 1.0
