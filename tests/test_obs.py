"""Unit tests for the observability layer (repro.obs).

Registry semantics, clocks and spans, the null-object surface, and the
exporters' rendering rules — everything the golden and property suites
build on, tested in isolation.
"""

import json

import pytest

import repro.obs as obs
from repro.errors import ConfigError
from repro.obs import (
    DEFAULT_DURATION_EDGES,
    JSONL_SCHEMA,
    NULL_REGISTRY,
    NULL_SPAN,
    MetricsRegistry,
    MetricsSnapshot,
    MonotonicClock,
    NullRegistry,
    SimClock,
    TickClock,
    jsonl_lines,
    prometheus_text,
    render_summary,
    summary,
    traced,
    write_jsonl,
    write_prometheus,
)


# ----------------------------------------------------------------------
# Registry instruments
# ----------------------------------------------------------------------


class TestCounters:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a.total") is reg.counter("a.total")
        assert reg.counter("a.total", kind="x") is not reg.counter("a.total")

    def test_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("a.total")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("a.total")
        with pytest.raises(ConfigError):
            c.inc(-1)

    def test_label_order_is_normalised(self):
        reg = MetricsRegistry()
        assert (reg.counter("a.total", x="1", y="2")
                is reg.counter("a.total", y="2", x="1"))

    def test_label_values_stringified(self):
        reg = MetricsRegistry()
        assert (reg.counter("a.total", month=3)
                is reg.counter("a.total", month="3"))


class TestGauges:
    def test_set_and_add(self):
        g = MetricsRegistry().gauge("depth")
        g.set(10)
        g.add(-3)
        assert g.value == 7


class TestHistograms:
    def test_bucketing_is_le_inclusive(self):
        h = MetricsRegistry().histogram("h", edges=(1.0, 2.0))
        for v in (0.5, 1.0, 1.5, 2.0, 99.0):
            h.observe(v)
        assert h.counts == [2, 2, 1]  # <=1, <=2, +Inf
        assert h.count == 5
        assert h.sum == pytest.approx(104.0)
        assert h.cumulative() == [2, 4, 5]

    def test_mean_of_empty_is_zero(self):
        assert MetricsRegistry().histogram("h", edges=(1.0,)).mean == 0.0

    def test_rejects_bad_edges(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigError):
            reg.histogram("h", edges=())
        with pytest.raises(ConfigError):
            reg.histogram("h2", edges=(2.0, 1.0))
        with pytest.raises(ConfigError):
            reg.histogram("h3", edges=(1.0, 1.0))

    def test_redeclare_with_other_edges_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", edges=(1.0, 2.0))
        with pytest.raises(ConfigError):
            reg.histogram("h", edges=(1.0, 3.0))

    def test_default_edges_are_durations(self):
        h = MetricsRegistry().histogram("h")
        assert h.edges == DEFAULT_DURATION_EDGES


class TestKindDiscipline:
    def test_name_owns_one_kind(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ConfigError):
            reg.gauge("a")
        with pytest.raises(ConfigError):
            reg.histogram("a", edges=(1.0,))
        assert reg.kind_of("a") == "counter"
        assert reg.kind_of("nope") is None

    def test_len_counts_series_not_names(self):
        reg = MetricsRegistry()
        reg.counter("a", k="1")
        reg.counter("a", k="2")
        reg.gauge("g")
        assert len(reg) == 3


# ----------------------------------------------------------------------
# Clocks, spans, @traced
# ----------------------------------------------------------------------


class TestClocks:
    def test_monotonic_advances(self):
        clock = MonotonicClock()
        assert clock() <= clock()

    def test_tick_clock_is_deterministic(self):
        clock = TickClock(tick=0.5, start=1.0)
        assert [clock() for _ in range(3)] == [1.0, 1.5, 2.0]

    def test_sim_clock_reads_now(self):
        class Source:
            now = 42

        assert SimClock(Source())() == 42.0


class TestSpans:
    def test_span_observes_clock_delta(self):
        reg = MetricsRegistry(clock=TickClock(tick=1.0))
        with reg.span("s", edges=(0.5, 1.5)):
            pass
        h = reg.histogram("s", edges=(0.5, 1.5))
        assert h.count == 1
        assert h.sum == 1.0  # exactly one tick elapsed
        assert h.counts == [0, 1, 0]

    def test_span_records_on_exception(self):
        reg = MetricsRegistry(clock=TickClock())
        with pytest.raises(ValueError):
            with reg.span("s"):
                raise ValueError("boom")
        assert reg.histogram("s").count == 1

    def test_traced_uses_global_registry_at_call_time(self):
        @traced("fn.seconds")
        def fn(x):
            return x * 2

        assert fn(2) == 4  # global registry is the null object: no-op
        live = MetricsRegistry(clock=TickClock())
        previous = obs.set_registry(live)
        try:
            assert fn(3) == 6
        finally:
            obs.set_registry(previous)
        assert live.histogram("fn.seconds").count == 1

    def test_traced_with_explicit_registry(self):
        reg = MetricsRegistry(clock=TickClock())

        @traced("fn.seconds", registry=reg, phase="x")
        def fn():
            return 1

        fn()
        fn()
        assert reg.histogram("fn.seconds", phase="x").count == 2

    def test_enable_installs_then_null_disables(self):
        previous = obs.get_registry()
        live = obs.enable()
        try:
            assert obs.get_registry() is live
            assert live.enabled
        finally:
            obs.set_registry(previous)
        assert obs.get_registry() is previous


class TestNullRegistry:
    def test_shared_noop_instruments(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")
        assert NULL_REGISTRY.gauge("a") is NULL_REGISTRY.gauge("b")
        assert NULL_REGISTRY.histogram("a") is NULL_REGISTRY.histogram("b")
        assert NULL_REGISTRY.span("a") is NULL_SPAN

    def test_noop_surface(self):
        NULL_REGISTRY.counter("a").inc(5)
        NULL_REGISTRY.gauge("a").set(5)
        NULL_REGISTRY.gauge("a").add(5)
        NULL_REGISTRY.histogram("a").observe(5)
        with NULL_REGISTRY.span("a"):
            pass
        assert NULL_REGISTRY.snapshot() is None
        assert NULL_REGISTRY.merge(MetricsRegistry()) is NULL_REGISTRY
        assert NULL_REGISTRY.series() == []
        assert len(NULL_REGISTRY) == 0
        assert NULL_REGISTRY.kind_of("a") is None
        assert not NULL_REGISTRY.enabled
        assert not NullRegistry().enabled


# ----------------------------------------------------------------------
# Snapshot / merge
# ----------------------------------------------------------------------


class TestMerge:
    def test_merge_none_is_identity(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        assert reg.merge(None) is reg
        assert reg.counter("a").value == 1

    def test_merge_registry_and_snapshot_agree(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("c", k="1").inc(3)
            reg.gauge("g").set(2)
            reg.histogram("h", edges=(1.0, 2.0)).observe(1.5)
            return reg

        via_registry = MetricsRegistry().merge(build())
        via_snapshot = MetricsRegistry().merge(build().snapshot())
        assert jsonl_lines(via_registry) == jsonl_lines(via_snapshot)

    def test_merge_adds_counters_and_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        a.histogram("h", edges=(1.0,)).observe(0.5)
        b.histogram("h", edges=(1.0,)).observe(5.0)
        a.merge(b)
        assert a.counter("c").value == 5
        h = a.histogram("h", edges=(1.0,))
        assert h.counts == [1, 1]
        assert h.count == 2

    def test_merge_sums_gauges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(10)
        b.gauge("g").set(5)
        assert a.merge(b).gauge("g").value == 15

    def test_merge_rejects_edge_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", edges=(1.0, 2.0)).observe(1)
        b.histogram("h", edges=(9.0,)).observe(1)
        with pytest.raises(ConfigError):
            a.merge(b)

    def test_snapshot_is_a_copy(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        snap = reg.snapshot()
        reg.counter("c").inc()
        assert snap.counters[("c", ())] == 1
        assert isinstance(snap, MetricsSnapshot)


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------


@pytest.fixture()
def loaded_registry():
    reg = MetricsRegistry()
    reg.counter("run.events.total").inc(7)
    reg.counter("vt.scan.total", kind="upload").inc(2)
    reg.counter("vt.scan.total", kind="rescan").inc(5)
    reg.gauge("store.reports").set(7)
    h = reg.histogram("vt.positives", edges=(0.0, 2.0, 5.0))
    for v in (0, 1, 3, 9):
        h.observe(v)
    return reg


class TestJsonl:
    def test_schema_line_first(self, loaded_registry):
        lines = jsonl_lines(loaded_registry)
        assert json.loads(lines[0]) == {"schema": JSONL_SCHEMA}

    def test_every_line_parses_and_is_sorted(self, loaded_registry):
        rows = [json.loads(line) for line in jsonl_lines(loaded_registry)[1:]]
        keys = [(r["name"], tuple(sorted(r["labels"].items())))
                for r in rows]
        assert keys == sorted(keys)

    def test_histogram_row_shape(self, loaded_registry):
        rows = [json.loads(line) for line in jsonl_lines(loaded_registry)[1:]]
        hist = next(r for r in rows if r["kind"] == "histogram")
        assert hist["edges"] == [0, 2, 5]
        assert hist["counts"] == [1, 1, 1, 1]
        assert hist["count"] == 4
        assert hist["sum"] == 13

    def test_integral_floats_degrade_to_int(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(3.0)
        row = json.loads(jsonl_lines(reg)[1])
        assert row["value"] == 3
        assert "3.0" not in jsonl_lines(reg)[1]

    def test_empty_registry(self):
        assert len(jsonl_lines(MetricsRegistry())) == 1
        assert jsonl_lines(NULL_REGISTRY) == jsonl_lines(MetricsRegistry())

    def test_write_jsonl(self, loaded_registry, tmp_path):
        path = write_jsonl(loaded_registry, tmp_path / "m.jsonl")
        text = path.read_text()
        assert text.endswith("\n")
        assert text.rstrip("\n").split("\n") == jsonl_lines(loaded_registry)


class TestPrometheus:
    def test_type_lines_and_underscores(self, loaded_registry):
        text = prometheus_text(loaded_registry)
        assert "# TYPE run_events_total counter" in text
        assert "# TYPE vt_positives histogram" in text
        assert "." not in text.replace(".0", "")  # dots only in numbers

    def test_labels_rendered(self, loaded_registry):
        text = prometheus_text(loaded_registry)
        assert 'vt_scan_total{kind="upload"} 2' in text
        assert 'vt_scan_total{kind="rescan"} 5' in text

    def test_histogram_buckets_cumulative(self, loaded_registry):
        text = prometheus_text(loaded_registry)
        assert 'vt_positives_bucket{le="0"} 1' in text
        assert 'vt_positives_bucket{le="2"} 2' in text
        assert 'vt_positives_bucket{le="5"} 3' in text
        assert 'vt_positives_bucket{le="+Inf"} 4' in text
        assert "vt_positives_sum 13" in text
        assert "vt_positives_count 4" in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c", path='a"b\\c\nd').inc()
        text = prometheus_text(reg)
        assert r'path="a\"b\\c\nd"' in text

    def test_empty_registry_is_empty_string(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_write_prometheus(self, loaded_registry, tmp_path):
        path = write_prometheus(loaded_registry, tmp_path / "m.prom")
        assert path.read_text() == prometheus_text(loaded_registry)


class TestSummary:
    def test_tree_layout(self, loaded_registry):
        tree = summary(loaded_registry)
        assert tree["run"]["events"]["total"] == 7
        assert tree["vt"]["scan"]["total"] == {
            "kind=upload": 2, "kind=rescan": 5}
        assert tree["store"]["reports"] == 7
        assert tree["vt"]["positives"] == {
            "count": 4, "sum": 13, "mean": 3.25}

    def test_leaf_and_subtree_name_collision(self):
        reg = MetricsRegistry()
        reg.gauge("store.cache").set(1)
        reg.gauge("store.cache.entries").set(9)
        tree = summary(reg)
        assert tree["store"]["cache"]["value"] == 1
        assert tree["store"]["cache"]["entries"] == 9

    def test_render_summary_lines(self, loaded_registry):
        text = render_summary(loaded_registry)
        assert "run\n  events\n    total  7" in text
        assert "positives  count=4 sum=13 mean=3.25" in text

    def test_render_summary_empty(self):
        assert render_summary(MetricsRegistry()) == ""
