"""Stabilisation of AV-Ranks and of aggregated labels (§6).

Two questions, two analyses:

* **AV-Rank stabilisation** (§6.1): does a sample's AV-Rank eventually
  settle, exactly (r = 0) or within a small fluctuation range r?  A
  sample *reaches stability at index k* when every AV-Rank from scan k
  onward spans at most r; we require the stable suffix to contain at
  least two scans (otherwise the last scan alone would trivially
  "stabilise" everything).
* **Label stabilisation** (§6.2): under a voting threshold t, each scan
  yields a "B"/"M" label; the sample's label stabilises at the first scan
  after which the label never changes — again requiring a suffix of at
  least two scans.

Both report the stabilisation scan index (1-based serial number, as in
Figure 9's left axis) and the days from first scan to stabilisation
(Figure 9's right axis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.avrank import AVRankSeries
from repro.errors import ConfigError
from repro.stats.descriptive import mean
from repro.vt.clock import MINUTES_PER_DAY


@dataclass(frozen=True)
class AVRankStabilization:
    """Outcome of the §6.1 analysis for one sample at one fluctuation r."""

    sha256: str
    stabilized: bool
    #: 1-based serial number of the scan *confirming* stability — the
    #: second scan of the stable suffix (None when never stabilised).
    scan_index: int | None
    #: Days from the first scan to the confirming scan.
    days: float | None


@dataclass(frozen=True)
class LabelStabilization:
    """Outcome of the §6.2 analysis for one sample at one threshold."""

    sha256: str
    threshold: int
    stabilized: bool
    scan_index: int | None
    days: float | None
    final_label: str


def _suffix_start_within_range(ranks: Sequence[int], r: int) -> int:
    """Smallest k such that max(ranks[k:]) − min(ranks[k:]) <= r.

    Computed with suffix running extrema in one backward pass.
    """
    n = len(ranks)
    hi = ranks[-1]
    lo = ranks[-1]
    start = n - 1
    for k in range(n - 2, -1, -1):
        hi = max(hi, ranks[k])
        lo = min(lo, ranks[k])
        if hi - lo <= r:
            start = k
        else:
            break
    return start


def avrank_stabilization(
    series: AVRankSeries, fluctuation: int = 0
) -> AVRankStabilization:
    """§6.1 for one sample: does AV-Rank settle within ``fluctuation``?

    The stable suffix must contain at least two scans; a sample whose
    very last scan breaks the range never stabilised.
    """
    if fluctuation < 0:
        raise ConfigError("fluctuation must be >= 0")
    if not series.multi:
        return AVRankStabilization(series.sha256, False, None, None)
    k = _suffix_start_within_range(series.ranks, fluctuation)
    if k > series.n - 2:
        return AVRankStabilization(series.sha256, False, None, None)
    # Stability is *confirmed* at the second scan of the stable suffix —
    # a single closing scan can't witness a constant run.  Figure 9's
    # serial numbers and day counts use the confirmation scan.
    days = (series.times[k + 1] - series.times[0]) / MINUTES_PER_DAY
    return AVRankStabilization(series.sha256, True, k + 2, days)


def label_stabilization(
    series: AVRankSeries, threshold: int
) -> LabelStabilization:
    """§6.2 for one sample: when does the thresholded label settle?"""
    if threshold < 1:
        raise ConfigError("threshold must be >= 1")
    labels = series.labels_under(threshold)
    final = labels[-1]
    if not series.multi:
        return LabelStabilization(series.sha256, threshold, False, None,
                                  None, final)
    # Walk backwards to the start of the constant suffix.
    k = series.n - 1
    while k > 0 and labels[k - 1] == final:
        k -= 1
    if k > series.n - 2:
        return LabelStabilization(series.sha256, threshold, False, None,
                                  None, final)
    # As above: report the confirmation scan (second of the suffix).
    days = (series.times[k + 1] - series.times[0]) / MINUTES_PER_DAY
    return LabelStabilization(series.sha256, threshold, True, k + 2,
                              days, final)


@dataclass(frozen=True)
class StabilizationSummary:
    """Dataset-level stabilisation statistics (one Figure 9 x-position)."""

    parameter: int  # fluctuation r, or threshold t
    n_samples: int
    n_stabilized: int
    mean_scan_index: float | None
    mean_days: float | None
    fraction_within: dict[int, float]

    @property
    def stabilized_fraction(self) -> float:
        return self.n_stabilized / self.n_samples if self.n_samples else 0.0


def summarize_avrank_stabilization(
    series: Iterable[AVRankSeries],
    fluctuation: int = 0,
    within_days: Sequence[int] = (10, 20, 30),
) -> StabilizationSummary:
    """§6.1 aggregate: stabilised share and timing at one fluctuation."""
    outcomes = [avrank_stabilization(s, fluctuation)
                for s in series if s.multi]
    return _summarize(fluctuation, outcomes, within_days)


def summarize_label_stabilization(
    series: Iterable[AVRankSeries],
    threshold: int,
    within_days: Sequence[int] = (15, 30),
    exclude_two_scan: bool = False,
) -> StabilizationSummary:
    """§6.2 aggregate at one threshold.

    ``exclude_two_scan`` reproduces the paper's Figure 9(b), which drops
    samples with exactly two scans because they stabilise trivially.
    """
    pool = [s for s in series
            if s.multi and not (exclude_two_scan and s.n == 2)]
    outcomes = [label_stabilization(s, threshold) for s in pool]
    return _summarize(threshold, outcomes, within_days)


def _summarize(
    parameter: int,
    outcomes: Sequence[AVRankStabilization | LabelStabilization],
    within_days: Sequence[int],
) -> StabilizationSummary:
    stabilized = [o for o in outcomes if o.stabilized]
    fraction_within = {}
    for horizon in within_days:
        if stabilized:
            fraction_within[horizon] = (
                sum(1 for o in stabilized if o.days <= horizon)
                / len(stabilized)
            )
        else:
            fraction_within[horizon] = 0.0
    return StabilizationSummary(
        parameter=parameter,
        n_samples=len(outcomes),
        n_stabilized=len(stabilized),
        mean_scan_index=(mean([o.scan_index for o in stabilized])
                         if stabilized else None),
        mean_days=(mean([o.days for o in stabilized])
                   if stabilized else None),
        fraction_within=fraction_within,
    )
