"""The RPL1xx flow rules: concurrency, resources, purity, contracts.

Three of these are per-file but *semantic* (RPL102 resource leaks,
RPL104 exception contract, RPL105 label cardinality): they reason about
paths through one function rather than matching single constructs.  The
other two are whole-program (RPL101 lock discipline, RPL103 digest
purity): they run over the :class:`~repro.lint.callgraph.CallGraph`
after every file's facts are in, which is what lets a wall-clock read
two calls below ``ReportStore.digest`` — or an unlocked attribute write
three frames below a request handler — surface as a finding at its real
source line with the full call chain attached.

The split matters to the incremental cache: per-file findings (and the
per-file *facts* the program passes consume) are cached by content
hash; the program passes themselves are cheap pure functions of the
summaries and recompute on every run, so a stale cross-file result can
never be served from cache.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.config import (
    CONTRACT_BANNED_RAISES,
    CONTRACT_DECODERS,
    DIGEST_ROOTS,
    RESOURCE_ACQUIRERS,
    THREAD_CONFINED_ATTRS,
    THREAD_ROOTS,
    LintConfig,
)
from repro.lint.callgraph import CallGraph
from repro.lint.rules import MetricRule, RawFinding, Rule

#: A program-pass finding before routing:
#: ``(path, line, col, code, message, detail)``.
ProgramFinding = tuple[str, int, int, str, str, str]


# ---------------------------------------------------------------------------
# RPL102 — resource leaks
# ---------------------------------------------------------------------------


class ResourceRule(Rule):
    """Acquired resources must be released on *every* path.

    A call in :data:`~repro.lint.config.RESOURCE_ACQUIRERS` hands back
    something holding an OS handle (or, for ``ReportStore.load``, an
    object owning one).  Four shapes discharge the obligation:

    * ``with acquire() as x:`` — the context manager closes it;
    * ``x.close()`` anywhere in the function, including an ``except``/
      ``finally`` cleanup handler;
    * immediate hand-off — the very next effectful statement transfers
      ownership (``return x`` / ``yield x`` / ``self.attr = x``);
    * inline consumption — the result is chained or passed straight
      into another call without ever being bound.

    What *is* flagged: a binding that is never closed nor handed off,
    a bare discarded acquisition, and the subtle one — a hand-off with
    raise-capable statements between acquisition and transfer and no
    cleanup handler, which leaks exactly when those statements raise
    (the mmap-then-parse shape).
    """

    code = "RPL102"
    name = "resource-leak"

    def check(self, module) -> Iterator[RawFinding]:
        for func in self._functions(module.tree):
            yield from self._check_function(func, module)

    @staticmethod
    def _functions(tree: ast.Module):
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def _acquirer(self, node: ast.expr, module) -> str | None:
        """The acquirer name if ``node`` is an acquiring call."""
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        qual = module.imports.qualname(func)
        if qual is not None:
            if qual in RESOURCE_ACQUIRERS:
                return qual
            # Method-suffix entries: ReportStore.load via any import.
            for entry in RESOURCE_ACQUIRERS:
                if "." in entry and qual.endswith(f".{entry}"):
                    return entry
        if isinstance(func, ast.Name) and func.id in RESOURCE_ACQUIRERS:
            return func.id
        if isinstance(func, ast.Attribute):
            dotted = f"{getattr(func.value, 'id', '?')}.{func.attr}"
            if dotted in RESOURCE_ACQUIRERS:
                return dotted
            for entry in RESOURCE_ACQUIRERS:
                if "." in entry and (entry.split(".")[-1] == func.attr
                                     and entry.split(".")[0] ==
                                     getattr(func.value, "id", None)):
                    return entry
        return None

    def _body_statements(self, func) -> list[ast.stmt]:
        """Every statement of the function, excluding nested defs."""
        out: list[ast.stmt] = []

        def walk(stmts: list[ast.stmt]) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                out.append(stmt)
                for field_name, value in ast.iter_fields(stmt):
                    if isinstance(value, list) and value and \
                            isinstance(value[0], ast.stmt):
                        walk(value)
                    elif field_name == "handlers":
                        for handler in value:
                            walk(handler.body)

        walk(func.body)
        return out

    def _check_function(self, func, module) -> Iterator[RawFinding]:
        statements = self._body_statements(func)
        with_consumed: set[int] = set()
        chained: set[int] = set()
        for stmt in statements:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    for sub in ast.walk(item.context_expr):
                        with_consumed.add(id(sub))
        for stmt in statements:
            for node in ast.walk(stmt):
                # A chained or argument-position acquisition hands its
                # ownership straight to the consumer.
                if isinstance(node, ast.Call):
                    if isinstance(node.func, ast.Attribute):
                        chained.update(id(s) for s in
                                       ast.walk(node.func.value))
                    for arg in [*node.args, *[k.value for k in node.keywords]]:
                        chained.update(id(s) for s in ast.walk(arg))

        bindings: dict[str, tuple[ast.stmt, str]] = {}
        for stmt in statements:
            if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)):
                name = self._acquirer(stmt.value, module)
                if name is not None and id(stmt.value) not in with_consumed:
                    bindings[stmt.targets[0].id] = (stmt, name)
                continue
            if isinstance(stmt, ast.Expr):
                name = self._acquirer(stmt.value, module)
                if (name is not None and id(stmt.value) not in with_consumed
                        and id(stmt.value) not in chained):
                    yield (stmt.lineno, stmt.col_offset,
                           f"{name}(...) result discarded — the handle is "
                           f"unreachable and can never be closed")

        for var, (acquire_stmt, name) in sorted(bindings.items()):
            yield from self._check_binding(
                var, acquire_stmt, name, func, statements)

    def _check_binding(self, var: str, acquire_stmt: ast.stmt, name: str,
                       func, statements) -> Iterator[RawFinding]:
        closed = False
        cleanup_close = False
        transfer_stmt: ast.stmt | None = None
        for stmt in statements:
            for node in ast.walk(stmt):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "close"
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id == var):
                    closed = True
        for handler_stmt in self._cleanup_statements(func):
            for node in ast.walk(handler_stmt):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "close"
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id == var):
                    cleanup_close = True
        for stmt in statements:
            if stmt is acquire_stmt or stmt.lineno <= acquire_stmt.lineno:
                continue
            if self._is_transfer(stmt, var):
                if transfer_stmt is None or \
                        stmt.lineno < transfer_stmt.lineno:
                    transfer_stmt = stmt

        if closed:
            return
        if transfer_stmt is None:
            yield (acquire_stmt.lineno, acquire_stmt.col_offset,
                   f"{name}(...) bound to {var!r} is never closed or "
                   f"handed off — close it in a finally/except or "
                   f"transfer ownership")
            return
        risky = [
            stmt for stmt in statements
            if acquire_stmt.lineno < stmt.lineno < transfer_stmt.lineno
            and any(isinstance(n, (ast.Call, ast.Raise))
                    for n in ast.walk(stmt))
        ]
        if risky and not cleanup_close:
            yield (acquire_stmt.lineno, acquire_stmt.col_offset,
                   f"{name}(...) bound to {var!r} at line "
                   f"{acquire_stmt.lineno} is handed off at line "
                   f"{transfer_stmt.lineno}, but the statements in "
                   f"between can raise — close {var!r} in an "
                   f"except/finally before the hand-off")

    @staticmethod
    def _cleanup_statements(func) -> list[ast.stmt]:
        out: list[ast.stmt] = []
        for node in ast.walk(func):
            if isinstance(node, ast.Try):
                for handler in node.handlers:
                    out.extend(handler.body)
                out.extend(node.finalbody)
        return out

    @staticmethod
    def _is_transfer(stmt: ast.stmt, var: str) -> bool:
        """Does ``stmt`` move ownership of ``var`` out of the frame?"""
        def mentions(node: ast.AST | None) -> bool:
            if node is None:
                return False
            return any(isinstance(sub, ast.Name) and sub.id == var
                       for sub in ast.walk(node))

        if isinstance(stmt, ast.Return):
            return mentions(stmt.value)
        if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, (ast.Yield, ast.YieldFrom)):
            return mentions(stmt.value)
        if isinstance(stmt, ast.Assign):
            stores_out = any(
                isinstance(t, (ast.Attribute, ast.Subscript))
                for t in stmt.targets)
            return stores_out and mentions(stmt.value)
        return False


# ---------------------------------------------------------------------------
# RPL104 — exception contract at the store/serve boundary
# ---------------------------------------------------------------------------


class ExceptionContractRule(Rule):
    """Only :class:`repro.errors.ReproError` subclasses may escape the
    store/serve surfaces.

    Two shapes: explicitly raising a banned raw type
    (``raise IndexError(...)`` — callers cannot distinguish it from a
    programming error; raise ``BlockAddressError`` instead), and calling
    a decoder that raises non-ReproError on corrupt input
    (``struct.unpack``/``zlib.decompress``/``json.loads``) outside a
    ``try`` whose handler catches the matching family.  The
    ``unpack_from`` forms are exempt by design: their callers bounds-
    check offsets first, while whole-buffer unpacks are where truncated
    files actually detonate.
    """

    code = "RPL104"
    name = "exception-contract"

    def check(self, module) -> Iterator[RawFinding]:
        protected = self._protected_calls(module)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Raise):
                yield from self._check_raise(node, module)
            elif isinstance(node, ast.Call):
                yield from self._check_decoder(node, module, protected)

    def _check_raise(self, node: ast.Raise, module) -> Iterator[RawFinding]:
        exc = node.exc
        if exc is None:
            return
        expr = exc.func if isinstance(exc, ast.Call) else exc
        qual = module.imports.qualname(expr)
        if qual is None and isinstance(expr, ast.Name):
            qual = expr.id
        if qual in CONTRACT_BANNED_RAISES:
            yield (node.lineno, node.col_offset,
                   f"raising raw {qual} across a store/serve boundary — "
                   f"raise a ReproError subclass (CorruptRecordError, "
                   f"BlockAddressError, ...) so callers can catch the "
                   f"contract, not the implementation")

    def _protected_calls(self, module) -> dict[int, set[str]]:
        """Call-node id → exception names caught by enclosing ``try``s."""
        protected: dict[int, set[str]] = {}
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Try):
                continue
            caught: set[str] = set()
            for handler in node.handlers:
                if handler.type is None:
                    caught.add("BaseException")
                    continue
                types = (handler.type.elts
                         if isinstance(handler.type, ast.Tuple)
                         else [handler.type])
                for type_node in types:
                    qual = module.imports.qualname(type_node)
                    if qual is None and isinstance(type_node, ast.Name):
                        qual = type_node.id
                    if qual is not None:
                        caught.add(qual)
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Call):
                        protected.setdefault(id(sub), set()).update(caught)
        return protected

    def _check_decoder(self, node: ast.Call, module,
                       protected: dict[int, set[str]]
                       ) -> Iterator[RawFinding]:
        qual = module.imports.qualname(node.func)
        if qual is None or qual not in CONTRACT_DECODERS:
            return
        acceptable = set(CONTRACT_DECODERS[qual])
        acceptable.add("BaseException")
        if protected.get(id(node), set()) & acceptable:
            return
        family = CONTRACT_DECODERS[qual][0]
        yield (node.lineno, node.col_offset,
               f"unwrapped {qual}(...) — corrupt/truncated input surfaces "
               f"raw {family} past the module boundary; wrap it in "
               f"try/except and re-raise CorruptRecordError")


# ---------------------------------------------------------------------------
# RPL105 — metric-label cardinality
# ---------------------------------------------------------------------------


class LabelCardinalityRule(Rule):
    """Metric label values must come from bounded sets.

    A sha256, a feed minute or an f-string interpolation as a label
    value mints a new time series per distinct value — the cardinality
    explosion every metrics backend document warns about, and here also
    a byte-determinism hazard (exports are compared byte-for-byte across
    runs).  Flagged shapes: f-string label values, ``str(...)``/
    ``hex(...)``/``repr(...)`` conversions, and identifiers whose
    ``_``-split segments name unbounded-looking data
    (:data:`~repro.lint.config.UNBOUNDED_LABEL_FRAGMENTS`).
    """

    code = "RPL105"
    name = "label-cardinality"

    #: Keyword arguments of instrument calls that are not labels.
    _NON_LABEL_KWARGS = frozenset({"edges"})

    _CONVERTERS = frozenset({"str", "hex", "repr", "format"})

    def check(self, module) -> Iterator[RawFinding]:
        from repro.lint.config import UNBOUNDED_LABEL_FRAGMENTS

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if MetricRule._instrument_kind(node.func) is None:
                continue
            if not node.args:
                continue
            for kw in node.keywords:
                if kw.arg is None or kw.arg in self._NON_LABEL_KWARGS:
                    continue
                reason = self._unbounded_reason(
                    kw.value, UNBOUNDED_LABEL_FRAGMENTS)
                if reason is not None:
                    yield (kw.value.lineno, kw.value.col_offset,
                           f"metric label {kw.arg!r} gets {reason} — label "
                           f"values must come from a bounded set")

    def _unbounded_reason(self, value: ast.expr,
                          fragments: frozenset[str]) -> str | None:
        if isinstance(value, ast.Constant):
            return None
        if isinstance(value, ast.JoinedStr):
            if any(isinstance(part, ast.FormattedValue)
                   for part in value.values):
                return "an f-string interpolation (unbounded by shape)"
            return None
        for sub in ast.walk(value):
            idents: list[str] = []
            if isinstance(sub, ast.Name):
                idents.append(sub.id)
            elif isinstance(sub, ast.Attribute):
                idents.append(sub.attr)
            elif isinstance(sub, ast.Call) and \
                    isinstance(sub.func, ast.Name) and \
                    sub.func.id in self._CONVERTERS:
                return f"a {sub.func.id}(...) conversion of a runtime value"
            for ident in idents:
                segments = {seg for seg in ident.lower().split("_") if seg}
                hit = sorted(segments & fragments)
                if hit:
                    return (f"the unbounded-looking value {ident!r} "
                            f"(matches {hit[0]!r})")
        return None


#: The per-file flow rules, run by the engine next to RULE_CLASSES.
FLOW_LOCAL_RULES: tuple[type[Rule], ...] = (
    ResourceRule,
    ExceptionContractRule,
    LabelCardinalityRule,
)


# ---------------------------------------------------------------------------
# Whole-program passes (RPL101 lock discipline, RPL103 digest purity)
# ---------------------------------------------------------------------------


def _chain(quals: tuple[str, ...]) -> str:
    return " -> ".join(quals)


def lock_discipline(graph: CallGraph,
                    config: LintConfig) -> list[ProgramFinding]:
    """RPL101: unlocked attribute writes reachable from handler threads.

    Roots are the concrete thread entry points
    (:data:`~repro.lint.config.THREAD_ROOTS`).  An edge made inside a
    ``with <lock>`` block protects its whole subtree, so a function
    reached *only* through locked calls is clean; anything reachable
    lock-free that writes ``self.<attr>`` outside a ``with <lock>``
    block is a finding, unless the attribute is a declared
    thread-confined carve-out.
    """
    roots = graph.match_roots(THREAD_ROOTS)
    chains = graph.reachable_unguarded(roots)
    findings: list[ProgramFinding] = []
    for qual in sorted(chains):
        fact = graph.functions[qual]
        path = graph.paths[qual]
        if not config.rule_applies("RPL101", path):
            continue
        for write in fact.writes:
            if write.guarded or write.attr in THREAD_CONFINED_ATTRS:
                continue
            findings.append((
                path, write.line, write.col, "RPL101",
                f"self.{write.attr} written outside a lock on a "
                f"handler-thread path — guard it with the owning lock's "
                f"with block (or declare it thread-confined in "
                f"repro.lint.config)",
                f"unlocked call chain: {_chain(chains[qual])}",
            ))
    return findings


def digest_purity(graph: CallGraph,
                  config: LintConfig) -> list[ProgramFinding]:
    """RPL103: wall-clock/env/entropy reachable from the digest path.

    Taint reachability from :data:`~repro.lint.config.DIGEST_ROOTS`:
    every function the digest path can call, transitively, must be free
    of impure references.  The walk does not descend into the
    sanctioned-owner modules (the RPL103 path policy's excludes — the
    injectable clock internals), which is exactly RPL001's carve-out
    made transitive.
    """
    def descend(qual: str) -> bool:
        return config.rule_applies("RPL103", graph.paths[qual])

    chains = graph.reachable(DIGEST_ROOTS, descend=descend)
    findings: list[ProgramFinding] = []
    for qual in sorted(chains):
        path = graph.paths[qual]
        if not config.rule_applies("RPL103", path):
            continue
        fact = graph.functions[qual]
        for imp in fact.impure:
            findings.append((
                path, imp.line, imp.col, "RPL103",
                f"{imp.qual} ({imp.kind}) is reachable from the digest "
                f"path — the replay digest must be a pure function of "
                f"(seed, feed); inject the dependency instead",
                f"digest call chain: {_chain(chains[qual])}",
            ))
    return findings


def program_findings(graph: CallGraph,
                     config: LintConfig) -> list[ProgramFinding]:
    """All whole-program findings, deterministically ordered."""
    findings = [*lock_discipline(graph, config),
                *digest_purity(graph, config)]
    findings.sort()
    return findings
