"""Robustness: the reproduced headline statistics across seeds.

Every number in EXPERIMENTS.md comes from one seed; this bench sweeps
several seeds at a smaller scale and checks the headline statistics stay
in a narrow band — the reproduction is a property of the model, not of a
lucky draw.
"""

from __future__ import annotations

from functools import partial

from repro.analysis.sweeps import sweep_seeds
from repro.synth.scenario import dynamics_scenario

from conftest import run_once, say

SEEDS = (1, 2, 3, 4)
SAMPLES = 2_500


def test_seed_robustness(benchmark):
    sweep = run_once(
        benchmark,
        partial(sweep_seeds, dynamics_scenario(SAMPLES), SEEDS),
    )
    say()
    say(sweep.render())

    # The most scale-sensitive statistics still shouldn't wander far.
    dynamic = sweep.statistic("dynamic share of multi-report samples")
    assert dynamic.spread < 0.08
    rank0 = sweep.statistic("stable samples at AV-Rank 0")
    assert rank0.spread < 0.08
    update = sweep.statistic("flips with engine update")
    assert update.spread < 0.10
    stable_hi = sweep.statistic("labels eventually stable (max over t)")
    assert stable_hi.spread < 0.05

    # No statistic's relative spread explodes.
    assert sweep.max_relative_spread() < 0.8
