"""Tests for the exception hierarchy (repro.errors) and doctests."""

import doctest

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if (isinstance(obj, type) and issubclass(obj, Exception)
                    and obj is not errors.ReproError):
                assert issubclass(obj, errors.ReproError), name

    def test_vt_errors(self):
        assert issubclass(errors.NotFoundError, errors.VTError)
        assert issubclass(errors.QuotaExceededError, errors.VTError)
        assert issubclass(errors.InvalidHashError, errors.VTError)

    def test_store_errors(self):
        assert issubclass(errors.UnknownSampleError, errors.StoreError)
        assert issubclass(errors.UnknownSampleError, KeyError)
        assert issubclass(errors.CorruptRecordError, errors.StoreError)
        assert issubclass(errors.ShardClosedError, errors.StoreError)
        # Dual inheritance keeps positional-access callers' idiomatic
        # `except IndexError` working while the store surface exports a
        # ReproError (the RPL104 exception contract).
        assert issubclass(errors.BlockAddressError, errors.StoreError)
        assert issubclass(errors.BlockAddressError, IndexError)

    def test_analysis_errors(self):
        assert issubclass(errors.InsufficientDataError,
                          errors.AnalysisError)

    def test_messages_carry_context(self):
        assert "deadbeef" in str(errors.NotFoundError("deadbeef"))
        quota = errors.QuotaExceededError(used=500, limit=500)
        assert "500/500" in str(quota)
        assert quota.used == 500
        insufficient = errors.InsufficientDataError(3, 1, "points")
        assert insufficient.needed == 3
        assert "points" in str(insufficient)

    def test_single_catch_at_api_boundary(self):
        with pytest.raises(errors.ReproError):
            raise errors.ShardClosedError("x")
        with pytest.raises(errors.ReproError):
            raise errors.InvalidHashError("y")


class TestDoctests:
    """Run the doctests embedded in public docstrings."""

    @pytest.mark.parametrize("module_name", [
        "repro.labeling.tokens",
        "repro.stats.ranking",
    ])
    def test_module_doctests(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0
        assert results.attempted > 0


class TestResilienceErrors:
    def test_transient_hierarchy(self):
        # TransientError deliberately sits under ReproError, not VTError:
        # the store's fault layer raises it too.
        assert issubclass(errors.TransientError, errors.ReproError)
        assert not issubclass(errors.TransientError, errors.VTError)
        assert issubclass(errors.ServiceUnavailableError, errors.TransientError)

    def test_transient_status_codes(self):
        assert errors.TransientError().status == 500
        assert errors.TransientError(status=429).status == 429
        assert errors.ServiceUnavailableError().status == 503
        assert "503" in str(errors.ServiceUnavailableError())

    def test_feed_errors(self):
        assert issubclass(errors.FeedNotAttachedError, errors.VTError)
        assert issubclass(errors.ArchiveExpiredError, errors.VTError)
        expired = errors.ArchiveExpiredError(minute=5, horizon=100)
        assert expired.minute == 5 and expired.horizon == 100
        assert "5" in str(expired) and "100" in str(expired)

    def test_collector_errors(self):
        assert issubclass(errors.CollectError, errors.ReproError)
        assert issubclass(errors.CheckpointError, errors.CollectError)
