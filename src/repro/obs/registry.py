"""The metrics registry: counters, gauges, histograms, span timers.

One :class:`MetricsRegistry` is the observability spine of a run: every
instrumented subsystem (service, store, collector, fault layer, parallel
runner) records into the registry it was handed, and the exporters in
:mod:`repro.obs.export` turn the registry into a JSONL dump, Prometheus
text, or a human summary tree.

Design constraints, in order:

* **Determinism.**  A metric series is identified by ``(name, sorted
  label items)``; histograms use *fixed* bucket edges declared at the
  call site; exports are sorted.  Two runs that do the same work produce
  byte-identical exports regardless of internal ordering — the property
  the golden tests and the serial/parallel equivalence gate rely on.
* **Mergeability.**  Parallel workers each record into their own
  registry and ship a picklable :class:`MetricsSnapshot`; the parent
  merges them with :meth:`MetricsRegistry.merge`.  Counter/histogram
  merge is associative and commutative, so the merged registry of K
  shard runs equals the serial run's registry whenever the recorded
  metrics are partition-invariant (per-sample work, not engine
  mechanics).
* **Zero overhead when disabled.**  :data:`NULL_REGISTRY` follows the
  same discipline as :func:`repro.faults.chaos_wrap`: it hands out
  shared no-op instruments, so a disabled registry adds no allocation
  and no branching beyond one no-op call on pre-bound handles.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.obs.timing import NULL_SPAN, Clock, MonotonicClock, Span

#: A series' labels, normalised: sorted tuple of (key, value) strings.
LabelItems = tuple[tuple[str, str], ...]

#: A full series identity: (metric name, normalised labels).
SeriesKey = tuple[str, LabelItems]

#: Default bucket edges (seconds) for span-timer histograms.
DEFAULT_DURATION_EDGES: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def label_items(labels: dict) -> LabelItems:
    """Normalise a label dict into the canonical sorted item tuple."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ConfigError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value.

    On shard merge gauges are *summed* — a shard-local gauge must
    therefore be meaningful as a sum (resident bytes, queue depth).
    Whole-run gauges (final store accounting) are instead set once on
    the parent registry after the merge, identically on the serial and
    parallel paths.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount


class Histogram:
    """Fixed-edge histogram with Prometheus ``le`` (inclusive) buckets.

    ``counts[i]`` counts observations ``v <= edges[i]`` not already in a
    lower bucket; ``counts[-1]`` is the overflow (+Inf) bucket.  Edges
    are fixed at creation — deterministic bucketing is what lets golden
    tests assert exact exported values.
    """

    __slots__ = ("edges", "counts", "sum", "count")

    def __init__(self, edges: tuple[float, ...]) -> None:
        edges = tuple(edges)
        if not edges:
            raise ConfigError("histogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:], strict=False)):
            raise ConfigError(
                f"histogram edges must be strictly increasing: {edges}")
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.sum: float = 0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[int]:
        """Running bucket totals (the Prometheus ``le`` series)."""
        totals, running = [], 0
        for c in self.counts:
            running += c
            totals.append(running)
        return totals

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


@dataclass
class MetricsSnapshot:
    """A picklable, merge-ready copy of a registry's contents.

    This is what a parallel worker ships back to the driver: plain dicts
    keyed by :data:`SeriesKey`, histograms flattened to
    ``(edges, counts, sum, count)`` tuples.
    """

    counters: dict[SeriesKey, float] = field(default_factory=dict)
    gauges: dict[SeriesKey, float] = field(default_factory=dict)
    histograms: dict[SeriesKey, tuple] = field(default_factory=dict)


class MetricsRegistry:
    """Process-wide but injectable home for every metric of a run."""

    enabled = True

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock: Clock = clock if clock is not None else MonotonicClock()
        self._kinds: dict[str, str] = {}
        self._counters: dict[SeriesKey, Counter] = {}
        self._gauges: dict[SeriesKey, Gauge] = {}
        self._histograms: dict[SeriesKey, Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument creation (get-or-create; names own exactly one kind)
    # ------------------------------------------------------------------

    def _claim(self, kind: str, name: str) -> None:
        existing = self._kinds.setdefault(name, kind)
        if existing != kind:
            raise ConfigError(
                f"metric {name!r} is already registered as a {existing}, "
                f"cannot re-register as a {kind}")

    def counter(self, name: str, **labels) -> Counter:
        return self._counter_at(name, label_items(labels))

    def _counter_at(self, name: str, items: LabelItems) -> Counter:
        self._claim("counter", name)
        key = (name, items)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        return self._gauge_at(name, label_items(labels))

    def _gauge_at(self, name: str, items: LabelItems) -> Gauge:
        self._claim("gauge", name)
        key = (name, items)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str,
                  edges: tuple[float, ...] = DEFAULT_DURATION_EDGES,
                  **labels) -> Histogram:
        return self._histogram_at(name, label_items(labels), tuple(edges))

    def _histogram_at(self, name: str, items: LabelItems,
                      edges: tuple[float, ...]) -> Histogram:
        self._claim("histogram", name)
        key = (name, items)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(edges)
        elif instrument.edges != edges:
            raise ConfigError(
                f"histogram {name!r} already exists with edges "
                f"{instrument.edges}, cannot redeclare with {edges}")
        return instrument

    def span(self, name: str, edges: tuple[float, ...] = DEFAULT_DURATION_EDGES,
             **labels) -> Span:
        """A context manager timing its body into histogram ``name``.

        Durations are read from the registry's clock: monotonic seconds
        by default, deterministic ticks or simulated minutes when a
        :class:`~repro.obs.timing.TickClock` / ``SimClock`` is injected.
        """
        return Span(self.histogram(name, edges=edges, **labels), self.clock)

    # ------------------------------------------------------------------
    # Snapshot / merge
    # ------------------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """A picklable copy of everything recorded so far."""
        return MetricsSnapshot(
            counters={k: c.value for k, c in self._counters.items()},
            gauges={k: g.value for k, g in self._gauges.items()},
            histograms={
                k: (h.edges, tuple(h.counts), h.sum, h.count)
                for k, h in self._histograms.items()
            },
        )

    def merge(self, other: "MetricsRegistry | MetricsSnapshot | None") -> "MetricsRegistry":
        """Fold another registry (or worker snapshot) into this one.

        Counters and histogram buckets add; gauges add too (see
        :class:`Gauge` for the shard-merge convention).  Histograms must
        agree on bucket edges.  Merging is associative and commutative,
        so K shard registries fold into the parent in any order with the
        same result — the property the parallel runner leans on and the
        hypothesis suite locks down.
        """
        if other is None:
            return self
        snap = other.snapshot() if isinstance(other, MetricsRegistry) else other
        for (name, items), value in snap.counters.items():
            self._counter_at(name, items).value += value
        for (name, items), value in snap.gauges.items():
            self._gauge_at(name, items).value += value
        for (name, items), (edges, counts, total, count) in snap.histograms.items():
            h = self._histogram_at(name, items, tuple(edges))
            if len(h.counts) != len(counts):
                raise ConfigError(
                    f"histogram {name!r} bucket count mismatch on merge")
            for i, c in enumerate(counts):
                h.counts[i] += c
            h.sum += total
            h.count += count
        return self

    # ------------------------------------------------------------------
    # Introspection (the exporters' feed)
    # ------------------------------------------------------------------

    def series(self):
        """Every series as ``(kind, name, labels, instrument)``, sorted.

        Sort order is ``(name, labels)`` — the single deterministic
        ordering all exporters share.
        """
        rows = []
        for (name, items), c in self._counters.items():
            rows.append(("counter", name, items, c))
        for (name, items), g in self._gauges.items():
            rows.append(("gauge", name, items, g))
        for (name, items), h in self._histograms.items():
            rows.append(("histogram", name, items, h))
        rows.sort(key=lambda row: (row[1], row[2]))
        return rows

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def kind_of(self, name: str) -> str | None:
        """The registered kind of a metric name (None if unknown)."""
        return self._kinds.get(name)


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """The disabled registry: every instrument is a shared no-op.

    Same discipline as :func:`repro.faults.chaos_wrap`: instrumented
    components pre-bind their handles once at construction, so with the
    null registry the hot path pays exactly one no-op method call per
    event — no allocation, no branching, no dict lookups.
    """

    enabled = False

    def counter(self, name: str, **labels) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, edges=DEFAULT_DURATION_EDGES,
                  **labels) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def span(self, name: str, edges=DEFAULT_DURATION_EDGES, **labels):
        return NULL_SPAN

    def snapshot(self) -> None:
        return None

    def merge(self, other) -> "NullRegistry":
        return self

    def series(self):
        return []

    def __len__(self) -> int:
        return 0

    def kind_of(self, name: str) -> None:
        return None


#: The shared disabled registry — what components fall back to when no
#: registry is injected and the process-wide one has not been enabled.
NULL_REGISTRY = NullRegistry()
