"""Table 1: update rules of the three VirusTotal APIs.

Reproduces the paper's §3 experiment verbatim: take a sample, call the
upload / rescan / report endpoints repeatedly, record which of the three
metadata fields move, and print the observed rule table.
"""

from __future__ import annotations

from repro.analysis.rendering import ascii_table
from repro.vt import clock
from repro.vt.api import VTClient
from repro.vt.samples import Sample, sha256_of
from repro.vt.service import VirusTotalService

from conftest import run_once, say


def _observe_rules() -> dict[str, dict[str, str]]:
    service = VirusTotalService(seed=0)
    client = VTClient(service, premium=True)
    sample = Sample(
        sha256=sha256_of("table1-probe"),
        file_type="Win32 EXE",
        malicious=True,
        first_seen=clock.minutes(days=3),
    )
    t = sample.first_seen
    baseline = client.upload(sample, t)

    def fields(report):
        return (report.last_analysis_date, report.last_submission_date,
                report.times_submitted)

    observed: dict[str, dict[str, str]] = {}
    previous = fields(baseline)
    probes = {
        "Upload": lambda when: client.upload(sample.sha256, when),
        "Rescan": lambda when: client.rescan(sample.sha256, when),
        "Report": lambda when: client.report(sample.sha256, when),
    }
    names = ("last_analysis_date", "last_submission_date", "times_submitted")
    for i, (operation, call) in enumerate(probes.items()):
        t += clock.minutes(days=2 + i)
        report = call(t)
        now = fields(report)
        observed[operation] = {
            name: ("Update" if now[k] != previous[k] else "Unchange")
            for k, name in enumerate(names)
        }
        previous = now
    return observed


#: The paper's Table 1, verbatim.
PAPER_TABLE1 = {
    "Upload": {"last_analysis_date": "Update",
               "last_submission_date": "Update",
               "times_submitted": "Update"},
    "Rescan": {"last_analysis_date": "Update",
               "last_submission_date": "Unchange",
               "times_submitted": "Unchange"},
    "Report": {"last_analysis_date": "Unchange",
               "last_submission_date": "Unchange",
               "times_submitted": "Unchange"},
}


def test_table1_api_update_rules(benchmark):
    observed = run_once(benchmark, _observe_rules)
    rows = [
        (op, fields["last_analysis_date"], fields["last_submission_date"],
         fields["times_submitted"])
        for op, fields in observed.items()
    ]
    say()
    say("Table 1: update rules per API (observed on the simulator)")
    say(ascii_table(
        ["", "last_analysis_date", "last_submission_date",
         "times_submitted"],
        rows,
    ))
    assert observed == PAPER_TABLE1
