"""Report rendering: human text and byte-deterministic JSON lines.

Same house style as :mod:`repro.obs.export`: the JSON format is one
schema line followed by one compact, key-sorted JSON object per finding,
in the engine's global ``(path, line, col, code)`` order — two runs over
the same tree produce byte-identical reports.

Schema ``reprolint/2`` (the flow-analysis release): findings carry a
``detail`` field (the RPL101/RPL103 call chain, empty otherwise) and
the head reports the incremental-cache and baseline accounting
(``files_reanalyzed``, ``baselined``, ``baseline_stale``).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.config import RULE_SUMMARIES
from repro.lint.engine import LintResult

#: JSON report schema identifier, bumped on incompatible changes.
JSON_SCHEMA = "reprolint/2"


def json_lines(result: LintResult) -> list[str]:
    """Schema line + one sorted JSON line per active finding."""
    head = {
        "schema": JSON_SCHEMA,
        "files_checked": result.files_checked,
        "files_reanalyzed": result.files_reanalyzed,
        "findings": len(result.findings),
        "suppressed": len(result.suppressed),
        "baselined": len(result.baselined),
        "baseline_stale": len(result.baseline_stale),
    }
    lines = [json.dumps(head, sort_keys=True, separators=(",", ":"))]
    for f in result.findings:
        lines.append(json.dumps(
            {"path": f.path, "line": f.line, "col": f.col,
             "code": f.code, "message": f.message, "detail": f.detail},
            sort_keys=True, separators=(",", ":")))
    return lines


def render_json(result: LintResult) -> str:
    return "\n".join(json_lines(result)) + "\n"


def render_text(result: LintResult, explain: bool = False) -> str:
    """The human report: one grep-able line per finding plus a summary.

    With ``explain``, whole-program findings print their evidence (the
    call chain) on an indented continuation line.
    """
    lines = []
    for f in result.findings:
        lines.append(f"{f.path}:{f.line}:{f.col}: {f.code} {f.message}")
        if explain and f.detail:
            lines.append(f"    {f.detail}")
    noun = "finding" if len(result.findings) == 1 else "findings"
    tail = (f"{len(result.findings)} {noun} "
            f"({result.files_checked} files checked, "
            f"{len(result.suppressed)} suppressed by pragmas")
    if result.baselined or result.baseline_stale:
        tail += (f", {len(result.baselined)} baselined, "
                 f"{len(result.baseline_stale)} baseline entries stale")
    lines.append(tail + ")")
    for path, code, message in result.baseline_stale:
        lines.append(f"stale baseline entry (fixed — delete its line): "
                     f"{path}: {code} {message}")
    return "\n".join(lines) + "\n"


def render_rules() -> str:
    """The rule table (``repro-vt lint --explain``)."""
    width = max(len(code) for code in RULE_SUMMARIES)
    return "\n".join(
        f"{code:<{width}}  {RULE_SUMMARIES[code]}"
        for code in sorted(RULE_SUMMARIES)) + "\n"


def write_report(result: LintResult, path: str | Path,
                 fmt: str = "json") -> Path:
    """Write the rendered report to ``path``; returns the path."""
    path = Path(path)
    text = render_json(result) if fmt == "json" else render_text(result)
    path.write_text(text, encoding="utf-8")
    return path
