"""Payload corruption primitives.

The feed's wire format for one report is the compact binary record of
:mod:`repro.store.codec`; a corrupted delivery is those bytes truncated
or structurally damaged.  Every mangle mode here is guaranteed to make
:func:`repro.store.codec.decode_report` raise
:class:`~repro.errors.CorruptRecordError` — a *silently* wrong decode
would defeat the dead-letter accounting the chaos tests assert on — and
is deterministic given the plan's keyed RNG.
"""

from __future__ import annotations

import random
import struct

from repro.store import codec
from repro.vt.reports import ScanReport

#: Byte offset of the engine-count field inside the record header
#: (scan_time, positives, total, first/last submission, last_analysis,
#: times_submitted come first: 8+2+2+8+8+8+4 bytes).
_N_ENGINES_OFFSET = struct.calcsize("<qHHqqqI")


def truncate_payload(record: bytes, rng: random.Random) -> bytes:
    """Cut the record short — a partial read off the wire."""
    if len(record) <= 1:
        return b""
    return record[: rng.randrange(1, len(record))]


def inflate_length_field(record: bytes, rng: random.Random) -> bytes:
    """Bit-damage the engine-count header field.

    The count no longer matches the payload that follows, so the decoder
    sees a truncated labels/versions region.
    """
    mangled = bytearray(record)
    current = struct.unpack_from("<H", mangled, _N_ENGINES_OFFSET)[0]
    inflated = min(0xFFFF, current + rng.randrange(64, 4096))
    struct.pack_into("<H", mangled, _N_ENGINES_OFFSET, inflated)
    return bytes(mangled)


_MODES = (truncate_payload, inflate_length_field)


def corrupt_payload(record: bytes, rng: random.Random) -> bytes:
    """Mangle one encoded record with a randomly chosen (but seeded) mode."""
    return rng.choice(_MODES)(record, rng)


def corrupt_report(report: ScanReport, rng: random.Random) -> bytes:
    """Encode a report to wire bytes and corrupt them."""
    return corrupt_payload(codec.encode_report(report), rng)
