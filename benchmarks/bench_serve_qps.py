"""Serving-layer throughput: QPS and tail latency of the HTTP front-end.

Measures the in-process request path (`ReportServer.handle_request`) over
a generated store — routing, auth, rate-limit bookkeeping, the indexed
point lookup and JSON encoding, everything except socket I/O — with a
zipf-ish hot-hash workload mixing the three endpoints.  Reported per
endpoint mix: QPS, p50/p99 latency, block-cache hit rate, and blocks
decoded per request (the number the point-lookup index exists to hold
near zero; the pre-index server full-scanned the store per request).

Dual mode, like the other benches:

* under pytest-benchmark (``pytest benchmarks/ --benchmark-only``) the
  workload runs once under harness timing with sanity asserts;
* as a script (``python benchmarks/bench_serve_qps.py``) it writes a
  schema'd ``BENCH_serve.json`` artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.experiment import run_experiment
from repro.serve import ReportServer, TenantRegistry
from repro.synth.scenario import dynamics_scenario
from repro.vt.feed import FeedArchive

try:  # pytest mode — absent when run as a plain script
    from conftest import run_once, say
except ImportError:  # pragma: no cover - script mode
    run_once = None

    def say(*args: object) -> None:
        print(*args)

#: Schema identifier for the benchmark artifact (shared across benches).
RESULTS_SCHEMA = "repro-bench/1"

#: Store scale and request count, overridable for quick runs.
SERVE_SAMPLES = int(os.environ.get("REPRO_BENCH_SERVE_SAMPLES", "4000"))
SERVE_REQUESTS = int(os.environ.get("REPRO_BENCH_SERVE_REQUESTS", "5000"))
SERVE_SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))

#: Share of requests going to each endpoint (file / series / feed).
MIX = (0.70, 0.20, 0.10)

#: Hot set: requests draw from this many distinct hashes, rank-weighted
#: so a few hashes dominate (the serving cache's reason to exist).
HOT_HASHES = 64


def _percentile(sorted_vals: list[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(q * (len(sorted_vals) - 1) + 0.5))
    return sorted_vals[idx]


def build_server() -> tuple[ReportServer, list[str], list[int]]:
    """A premium-keyed server over a generated store plus its workload
    inputs (hot hashes rank-weighted, feed minutes)."""
    data = run_experiment(dynamics_scenario(SERVE_SAMPLES, seed=SERVE_SEED))
    store = data.store
    tenants = TenantRegistry()
    tenants.add("bench", "premium")
    archive = FeedArchive.from_store(store)
    server = ReportServer(store, tenants, archive, clock=lambda: 0.0)
    shas = sorted(store.samples())[:HOT_HASHES]
    # Rank weighting: hash k appears (HOT_HASHES - k) times in the pool.
    pool = [sha for k, sha in enumerate(shas)
            for _ in range(len(shas) - k)]
    minutes = list(range(archive.oldest_available,
                         archive.horizon + 1))[-256:]
    return server, pool, minutes


def run_workload(server: ReportServer, pool: list[str],
                 minutes: list[int], n_requests: int) -> dict:
    """Fire the mixed workload; returns aggregate timings and counters."""
    headers = {"x-apikey": "bench"}
    n_file = int(n_requests * MIX[0])
    n_series = int(n_requests * MIX[1])
    n_feed = n_requests - n_file - n_series
    paths = (
        [f"/files/{pool[i % len(pool)]}" for i in range(n_file)]
        + [f"/files/{pool[(i * 7) % len(pool)]}/series"
           for i in range(n_series)]
        + [f"/feeds/files/{minutes[i % len(minutes)]}"
           for i in range(n_feed)]
    )
    # Deterministic interleave (no RNG): stride through the path list.
    stride = 7919  # prime, coprime with any realistic request count
    order = [(i * stride) % len(paths) for i in range(len(paths))]

    store = server.store
    store.drop_caches()
    decoded_before = store.cache_stats().blocks_decoded
    hits_before = store.cache_stats().hits
    lookups_before = hits_before + store.cache_stats().misses

    latencies: list[float] = []
    statuses: dict[int, int] = {}
    started = time.perf_counter()
    for idx in order:
        t0 = time.perf_counter()
        status, _, _ = server.handle_request("GET", paths[idx], headers)
        latencies.append(time.perf_counter() - t0)
        statuses[status] = statuses.get(status, 0) + 1
    wall = time.perf_counter() - started

    stats = store.cache_stats()
    lookups = (stats.hits + stats.misses) - lookups_before
    hits = stats.hits - hits_before
    latencies.sort()
    return {
        "requests": len(paths),
        "wall_seconds": round(wall, 4),
        "qps": round(len(paths) / wall, 1) if wall else 0.0,
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 4),
        "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 4),
        "statuses": {str(k): v for k, v in sorted(statuses.items())},
        "blocks_decoded": stats.blocks_decoded - decoded_before,
        "blocks_decoded_per_request": round(
            (stats.blocks_decoded - decoded_before) / len(paths), 4),
        "cache_hit_rate": round(hits / lookups, 4) if lookups else 0.0,
        "mix": {"file": n_file, "series": n_series, "feed": n_feed},
    }


def run_serve_bench(n_requests: int = SERVE_REQUESTS) -> dict:
    server, pool, minutes = build_server()
    entry = run_workload(server, pool, minutes, n_requests)
    entry["name"] = "serve_qps_mixed"
    entry["hot_hashes"] = HOT_HASHES
    return {
        "schema": RESULTS_SCHEMA,
        "suite": "serve",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "store_samples": SERVE_SAMPLES,
        "store_reports": server.store.report_count,
        "benchmarks": [entry],
    }


def render(results: dict) -> None:
    entry = results["benchmarks"][0]
    say()
    say(f"serve QPS bench ({entry['requests']:,} requests over "
        f"{results['store_reports']:,} stored reports, "
        f"{entry['hot_hashes']} hot hashes)")
    say(f"  mix file/series/feed: {entry['mix']['file']}/"
        f"{entry['mix']['series']}/{entry['mix']['feed']}")
    say(f"  QPS {entry['qps']:,.0f}  "
        f"p50 {entry['p50_ms']:.3f}ms  p99 {entry['p99_ms']:.3f}ms")
    say(f"  cache hit rate {entry['cache_hit_rate']:.2%}  "
        f"blocks decoded/request {entry['blocks_decoded_per_request']}")


def test_serve_qps(benchmark):
    """pytest-benchmark entry point: one timed mixed workload."""
    server, pool, minutes = build_server()
    n = min(SERVE_REQUESTS, 2000)
    entry = run_once(benchmark, lambda: run_workload(server, pool,
                                                     minutes, n))
    say()
    say(f"  QPS {entry['qps']:,.0f}  p50 {entry['p50_ms']:.3f}ms  "
        f"p99 {entry['p99_ms']:.3f}ms  "
        f"hit rate {entry['cache_hit_rate']:.2%}")
    assert entry["statuses"].keys() == {"200"}
    # The index contract at workload scale: with a hot-hash working set
    # the store decodes far fewer blocks than it serves requests.
    assert entry["blocks_decoded_per_request"] < 1.0
    assert entry["cache_hit_rate"] > 0.5


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the serving layer's in-process QPS and "
                    "write a schema'd BENCH_serve.json.")
    parser.add_argument("--requests", type=int, default=SERVE_REQUESTS,
                        help=f"workload size (default: {SERVE_REQUESTS})")
    parser.add_argument("--output", default="BENCH_serve.json",
                        help="artifact path (default: BENCH_serve.json)")
    args = parser.parse_args(argv)

    results = run_serve_bench(args.requests)
    render(results)
    Path(args.output).write_text(json.dumps(results, indent=2) + "\n",
                                 encoding="utf-8")
    say(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
