"""The paper's label-dynamics analysis library.

This subpackage is the primary contribution reproduced from the paper:
given per-sample sequences of VirusTotal scan reports, it measures

* AV-Rank trajectories and the stable/dynamic split (§5.1-5.2,
  :mod:`repro.core.avrank`);
* adjacent-scan δ and overall Δ dynamics metrics (§5.3,
  :mod:`repro.core.metrics`);
* white/black/gray threshold categorisation (§5.4,
  :mod:`repro.core.categorize`) and threshold recommendation
  (:mod:`repro.core.recommend`);
* flip-cause attribution (§5.5, :mod:`repro.core.causes`);
* AV-Rank and label stabilisation (§6, :mod:`repro.core.stabilization`)
  plus the suggested stability-notification feature
  (:mod:`repro.core.monitor`);
* per-engine flips, hazard flips and flip ratios (§7.1,
  :mod:`repro.core.flips`);
* engine correlation graphs and groups (§7.2,
  :mod:`repro.core.correlation`);
* label aggregation strategies (§3.1, :mod:`repro.core.aggregation`).
"""

from repro.core.avrank import AVRankSeries, collect_series, split_stable_dynamic
from repro.core.metrics import (
    adjacent_deltas,
    overall_delta,
    pairwise_differences,
)
from repro.core.categorize import (
    BLACK,
    GRAY,
    WHITE,
    categorize,
    category_distribution,
)
from repro.core.stabilization import (
    AVRankStabilization,
    LabelStabilization,
    avrank_stabilization,
    label_stabilization,
)
from repro.core.flips import FlipStats, analyze_flips
from repro.core.correlation import (
    CorrelationAnalysis,
    build_result_matrix,
    correlation_analysis,
)
from repro.core.aggregation import (
    PercentageAggregator,
    ThresholdAggregator,
    TrustedEnginesAggregator,
    WeightedVoteAggregator,
)
from repro.core.causes import CauseBreakdown, attribute_causes
from repro.core.recommend import recommend_threshold_ranges
from repro.core.reliability import EngineScore, score_engines, select_trusted
from repro.core.monitor import (
    LiveSampleMonitor,
    StabilityCriteria,
    StabilityMonitor,
)

__all__ = [
    "AVRankSeries",
    "collect_series",
    "split_stable_dynamic",
    "adjacent_deltas",
    "overall_delta",
    "pairwise_differences",
    "WHITE",
    "BLACK",
    "GRAY",
    "categorize",
    "category_distribution",
    "AVRankStabilization",
    "LabelStabilization",
    "avrank_stabilization",
    "label_stabilization",
    "FlipStats",
    "analyze_flips",
    "CorrelationAnalysis",
    "build_result_matrix",
    "correlation_analysis",
    "PercentageAggregator",
    "ThresholdAggregator",
    "TrustedEnginesAggregator",
    "WeightedVoteAggregator",
    "CauseBreakdown",
    "attribute_causes",
    "recommend_threshold_ranges",
    "EngineScore",
    "score_engines",
    "select_trusted",
    "LiveSampleMonitor",
    "StabilityCriteria",
    "StabilityMonitor",
]
