"""The resilient minute-by-minute feed collector.

The paper's dataset exists because a pipeline polled the premium feed
once per minute, unattended, for 14 months (§4.1).  :class:`FeedCollector`
is that loop built to survive what a real 14-month run throws at it:

* **transient failures** — polls and API calls that raise
  :class:`~repro.errors.TransientError` are retried under exponential
  backoff with keyed jitter;
* **outages** — a :class:`~repro.errors.ServiceUnavailableError` (or an
  exhausted retry budget) records the missing minutes as a *gap* in the
  checkpoint instead of losing them silently;
* **gap backfill** — once the feed is healthy again, gaps are re-fetched
  through the premium catch-up endpoint
  (:class:`~repro.vt.api.FeedBatchAPI`); minutes past the archive's
  retention fall back to best-effort latest-report recovery through
  :class:`~repro.vt.api.ReportAPI`;
* **corrupt deliveries** — payloads that fail
  :func:`repro.store.codec.decode_report` validation go to the
  dead-letter queue and their poll window is marked for re-fetch;
* **duplicates and replays** — every write goes through
  :meth:`ReportStore.ingest_unique`, so retries, duplicated deliveries
  and backfill overlap can never double-count a report;
* **crashes** — a persisted checkpoint names the last minute that is in
  the saved store snapshot; a restarted collector resumes from it and
  backfills the minutes the dead process lost.

``stats()`` exposes the same kind of health surface ``store.stats()``
does for storage: every retry, gap, dead letter and recovery is counted.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro.collect.backoff import BackoffPolicy
from repro.collect.checkpoint import Checkpoint, load_checkpoint, save_checkpoint
from repro.collect.deadletter import DeadLetterQueue
from repro.errors import (
    ArchiveExpiredError,
    CheckpointError,
    CollectError,
    CorruptRecordError,
    NotFoundError,
    ServiceUnavailableError,
    TransientError,
)
from repro.obs import NULL_REGISTRY
from repro.store import codec
from repro.vt.reports import ScanReport


@dataclass
class CollectorStats:
    """Health counters for one collection run (see ``stats()``)."""

    minutes_processed: int = 0
    minutes_skipped: int = 0
    polls_ok: int = 0
    transient_errors: int = 0
    polls_abandoned: int = 0
    outage_minutes: int = 0
    reports_ingested: int = 0
    duplicates_skipped: int = 0
    dead_letters: int = 0
    store_retries: int = 0
    backoff_minutes: float = 0.0
    gaps_detected: int = 0
    gap_minutes_detected: int = 0
    backfill_calls: int = 0
    minutes_backfilled: int = 0
    reports_backfilled: int = 0
    minutes_expired: int = 0
    report_fallback_calls: int = 0
    reports_recovered_latest: int = 0
    checkpoint_saves: int = 0
    resumes: int = 0
    #: Snapshot field, filled by ``stats()``: minutes still missing.
    pending_gap_minutes: int = 0

    def as_dict(self) -> dict[str, float]:
        return dataclasses.asdict(self)


class FeedCollector:
    """Drives a premium feed into a report store, resiliently."""

    def __init__(
        self,
        feed,
        store,
        client=None,
        *,
        checkpoint_path: str | Path | None = None,
        store_path: str | Path | None = None,
        deadletter_path: str | Path | None = None,
        backoff: BackoffPolicy | None = None,
        persist_every: int | None = None,
        seed: int = 0,
        sleep: Callable[[float], None] | None = None,
        metrics=None,
    ) -> None:
        self.feed = feed
        self.store = store
        self.client = client
        self.checkpoint_path = Path(checkpoint_path) if checkpoint_path else None
        self.store_path = Path(store_path) if store_path else None
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.persist_every = persist_every
        self.seed = seed
        self._sleep = sleep
        self._stats = CollectorStats()
        # Observability: pre-bound handles (no-ops on the null registry),
        # mirroring the CollectorStats counters that matter operationally.
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_minutes = self.metrics.counter(
            "collect.minutes", outcome="processed")
        self._m_skipped = self.metrics.counter(
            "collect.minutes", outcome="skipped")
        self._m_poll_ok = self.metrics.counter("collect.polls", outcome="ok")
        self._m_poll_outage = self.metrics.counter(
            "collect.polls", outcome="outage")
        self._m_poll_abandoned = self.metrics.counter(
            "collect.polls", outcome="abandoned")
        self._m_transient = self.metrics.counter("collect.transient.total")
        self._m_ingested = self.metrics.counter("collect.ingest.reports")
        self._m_duplicates = self.metrics.counter("collect.ingest.duplicates")
        self._m_deadletters = self.metrics.counter("collect.deadletter.total")
        self._m_gap_minutes = self.metrics.counter(
            "collect.gap.minutes_detected")
        self._m_backfill_minutes = self.metrics.counter(
            "collect.backfill.minutes")
        self._m_backfill_reports = self.metrics.counter(
            "collect.backfill.reports")
        self._m_backoff = self.metrics.counter("collect.backoff.minutes")
        self._m_ckpt_saves = self.metrics.counter("collect.checkpoint.saves")
        self.deadletters = DeadLetterQueue(deadletter_path)
        self.checkpoint = Checkpoint()
        self._feed_healthy = True
        self._last_persist_minute: int | None = None
        if self.checkpoint_path is not None and self.checkpoint_path.exists():
            self._resume()
        #: Exclusive upper bound of the last successful poll: the window
        #: a corrupt delivery must have come from.
        self._poll_floor = self.checkpoint.last_minute + 1

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------

    def _resume(self) -> None:
        self.checkpoint = load_checkpoint(self.checkpoint_path)
        if self.checkpoint.report_count != self.store.report_count:
            raise CheckpointError(
                f"checkpoint describes a store with "
                f"{self.checkpoint.report_count} reports but the loaded "
                f"store holds {self.store.report_count}"
            )
        for name, value in self.checkpoint.counters.items():
            if name == "pending_gap_minutes" or not hasattr(self._stats, name):
                continue
            kind = type(getattr(self._stats, name))
            setattr(self._stats, name, kind(value))
        self._stats.resumes += 1

    # ------------------------------------------------------------------
    # The per-minute loop
    # ------------------------------------------------------------------

    def step(self, minute: int) -> None:
        """Collect one simulated minute: poll, validate, ingest, backfill.

        Idempotent across restarts: minutes at or before the checkpoint
        are skipped.  A jump past ``last_minute + 1`` (the driver resumed
        later than the checkpoint) registers the un-polled interval as a
        gap for backfill.
        """
        ckpt = self.checkpoint
        if minute <= ckpt.last_minute:
            self._stats.minutes_skipped += 1
            self._m_skipped.inc()
            return
        if minute > ckpt.last_minute + 1:
            self._register_gap(ckpt.last_minute + 1, minute)
            self._poll_floor = minute
        batch = self._poll(minute)
        if batch is not None:
            self._stats.polls_ok += 1
            self._m_poll_ok.inc()
            self._feed_healthy = True
            self._consume(batch, minute)
            self._poll_floor = minute + 1
        ckpt.last_minute = minute
        self._stats.minutes_processed += 1
        self._m_minutes.inc()
        if self._feed_healthy and self.client is not None and ckpt.gaps:
            self.backfill(minute)
        self._maybe_persist(minute)

    def run(self, minutes: Iterable[int]) -> None:
        """Step through a sequence of minutes, then finalize."""
        for minute in minutes:
            self.step(minute)
        self.finalize()

    def finalize(self) -> None:
        """Last-chance backfill of every pending gap, then persist."""
        if self.client is not None and self.checkpoint.gaps:
            self.backfill(self.checkpoint.last_minute + 1, force=True)
        self.persist()

    # ------------------------------------------------------------------
    # Polling
    # ------------------------------------------------------------------

    def _poll(self, minute: int) -> list | None:
        """One minute's poll under retry; ``None`` means the minute is a gap."""
        rng = random.Random(f"{self.seed}:pollwait:{minute}")
        attempt = 0
        with self.metrics.span("collect.poll.seconds"):
            while True:
                try:
                    return self.feed.poll(until_minute=minute + 1)
                except ServiceUnavailableError:
                    self._stats.outage_minutes += 1
                    self._m_poll_outage.inc()
                    self._register_gap(minute, minute + 1)
                    self._feed_healthy = False
                    return None
                except TransientError:
                    self._stats.transient_errors += 1
                    self._m_transient.inc()
                    attempt += 1
                    if attempt >= self.backoff.max_attempts:
                        self._stats.polls_abandoned += 1
                        self._m_poll_abandoned.inc()
                        self._register_gap(minute, minute + 1)
                        self._feed_healthy = False
                        return None
                    self._wait(self.backoff.delay(attempt - 1, rng))

    # ------------------------------------------------------------------
    # Validation + ingest
    # ------------------------------------------------------------------

    def _consume(self, batch: list, minute: int) -> None:
        """Validate one polled batch and ingest the healthy reports."""
        reports: list[ScanReport] = []
        for item in batch:
            if isinstance(item, (bytes, bytearray, memoryview)):
                payload = bytes(item)
                try:
                    reports.append(codec.decode_report(payload))
                except CorruptRecordError as exc:
                    self.deadletters.add(payload, str(exc), minute)
                    self._stats.dead_letters += 1
                    self._m_deadletters.inc()
                    # The intact copy still exists server-side: mark the
                    # whole un-acknowledged poll window for re-fetch.
                    self._register_gap(self._poll_floor, minute + 1)
            else:
                reports.append(item)
        self._ingest(reports, minute)

    def _ingest(self, reports: list[ScanReport], minute: int) -> tuple[int, int]:
        """Idempotent ingest with whole-batch retry on write failures."""
        ingested = duplicates = 0
        unique: dict[tuple[str, int], ScanReport] = {}
        for report in reports:
            key = (report.sha256, report.scan_time)
            if key in unique:
                duplicates += 1  # delivered twice within one batch
            else:
                unique[key] = report
        rng = random.Random(f"{self.seed}:storewait:{minute}")
        done: set[tuple[str, int]] = set()
        attempt = 0
        while True:
            try:
                for key, report in unique.items():
                    if key in done:
                        continue
                    if self.store.ingest_unique(report):
                        ingested += 1
                    else:
                        duplicates += 1
                    done.add(key)
                break
            except TransientError as exc:
                self._stats.store_retries += 1
                attempt += 1
                if attempt >= self.backoff.max_attempts:
                    raise CollectError(
                        f"store writes kept failing after "
                        f"{attempt} attempts at minute {minute}"
                    ) from exc
                self._wait(self.backoff.delay(attempt - 1, rng))
        self._stats.reports_ingested += ingested
        self._stats.duplicates_skipped += duplicates
        self._m_ingested.inc(ingested)
        self._m_duplicates.inc(duplicates)
        return ingested, duplicates

    # ------------------------------------------------------------------
    # Gap bookkeeping + backfill
    # ------------------------------------------------------------------

    def _register_gap(self, start: int, end: int) -> None:
        before = self.checkpoint.gap_minutes
        self.checkpoint.add_gap(start, end)
        grew = self.checkpoint.gap_minutes - before
        if grew > 0:
            self._stats.gaps_detected += 1
            self._stats.gap_minutes_detected += grew
            self._m_gap_minutes.inc(grew)

    def backfill(self, now: int, force: bool = False) -> None:
        """Re-fetch pending gaps through the catch-up feed endpoint.

        Only gaps that lie fully in the past are attempted (the current
        minute may still be mid-outage) unless ``force``.  Expired
        minutes fall back to latest-report recovery; minutes whose
        fetch keeps failing stay in the checkpoint for the next attempt.
        """
        expired: list[int] = []
        for start, end in list(self.checkpoint.gaps):
            if end > now and not force:
                continue
            for g in range(start, end):
                try:
                    batch = self._call_api(
                        self.client.feed_batch, "feed_batch", g, now)
                except ArchiveExpiredError:
                    self._stats.minutes_expired += 1
                    expired.append(g)
                    self.checkpoint.remove_gap(g, g + 1)
                    continue
                except TransientError:
                    continue  # still in the gap list; retried next round
                self._stats.backfill_calls += 1
                ingested, _ = self._ingest(batch, now)
                self._stats.minutes_backfilled += 1
                self._stats.reports_backfilled += ingested
                self._m_backfill_minutes.inc()
                self._m_backfill_reports.inc(ingested)
                self.checkpoint.remove_gap(g, g + 1)
        if expired:
            self._recover_latest(expired, now)

    def _recover_latest(self, minutes: list[int], now: int) -> None:
        """Best-effort recovery of expired gap minutes via ReportAPI.

        Only a sample whose *latest* analysis landed in the lost minutes
        can be recovered this way — exactly the limitation that makes the
        archive's retention window matter.
        """
        lost = set(minutes)
        for sha256 in list(self.store.samples()):
            try:
                report = self._call_api(self.client.report, "report",
                                        sha256, now)
            except (TransientError, NotFoundError):
                continue
            self._stats.report_fallback_calls += 1
            if report.scan_time in lost:
                if self.store.ingest_unique(report):
                    self._stats.reports_recovered_latest += 1
                    self._stats.reports_ingested += 1
                    self._m_ingested.inc()

    def _call_api(self, endpoint, kind: str, arg, now: int):
        """Call one API endpoint under transient-retry."""
        rng = random.Random(f"{self.seed}:apiwait:{kind}:{arg}")
        attempt = 0
        while True:
            try:
                return endpoint(arg, now)
            except TransientError:
                self._stats.transient_errors += 1
                self._m_transient.inc()
                attempt += 1
                if attempt >= self.backoff.max_attempts:
                    raise
                self._wait(self.backoff.delay(attempt - 1, rng))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def _maybe_persist(self, minute: int) -> None:
        if self.persist_every is None or self.checkpoint_path is None:
            return
        if (self._last_persist_minute is None
                or minute - self._last_persist_minute >= self.persist_every):
            self.persist()
            self._last_persist_minute = minute

    def persist(self) -> None:
        """Snapshot the store, then the checkpoint describing it.

        Ordering is the durability contract: the checkpoint on disk
        always refers to a store snapshot that was fully written first.
        """
        if self.store_path is not None:
            self.store.save(self.store_path)
        if self.checkpoint_path is not None:
            self.checkpoint.report_count = self.store.report_count
            counters = self._stats.as_dict()
            counters.pop("pending_gap_minutes", None)
            self.checkpoint.counters = counters
            save_checkpoint(self.checkpoint, self.checkpoint_path)
            self._stats.checkpoint_saves += 1
            self._m_ckpt_saves.inc()

    # ------------------------------------------------------------------
    # Health surface
    # ------------------------------------------------------------------

    def _wait(self, minutes: float) -> None:
        self._stats.backoff_minutes += minutes
        self._m_backoff.inc(minutes)
        if self._sleep is not None:
            self._sleep(minutes)

    def stats(self) -> CollectorStats:
        """A snapshot of the collector's health counters."""
        return dataclasses.replace(
            self._stats, pending_gap_minutes=self.checkpoint.gap_minutes
        )
