"""Unit tests for transition/agreement helpers (repro.stats.contingency)."""

import math

from repro.stats.contingency import (
    agreement_table,
    count_changes,
    transitions,
)


class TestTransitions:
    def test_pairs(self):
        assert transitions([1, 0, 0, 1]) == [(1, 0), (0, 0), (0, 1)]

    def test_empty_and_single(self):
        assert transitions([]) == []
        assert transitions([1]) == []

    def test_count_changes(self):
        assert count_changes([0, 0, 1, 1, 0]) == 2
        assert count_changes([5, 5, 5]) == 0


class TestAgreementTable:
    def test_counts(self):
        table = agreement_table([1, 0, 1, -1], [1, 1, 1, -1])
        assert table.counts[(1, 1)] == 2
        assert table.counts[(0, 1)] == 1
        assert table.counts[(-1, -1)] == 1
        assert table.n == 4

    def test_agreement_rate(self):
        table = agreement_table([1, 0, 1], [1, 1, 1])
        assert table.agreement_rate == 2 / 3

    def test_empty_agreement_rate_is_nan(self):
        assert math.isnan(agreement_table([], []).agreement_rate)

    def test_marginals(self):
        table = agreement_table([1, 0, 1], [0, 0, 1])
        assert table.marginal_first()[1] == 2
        assert table.marginal_second()[0] == 2
