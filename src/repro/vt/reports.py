"""Scan-report records — the unit of the paper's 847-million-row dataset.

A :class:`ScanReport` mirrors the fields of a real VirusTotal file report
that the paper's analyses consume: the sample's hash, its file-type tag,
the scan timestamp, the ``positives`` count (the paper's **AV-Rank**), the
``total`` number of engines that responded, the three Table 1 metadata
fields, and the per-engine verdicts.

Per-engine verdicts are stored densely: one byte per engine in the fleet's
fixed order (values encode malicious / benign / undetected), plus a vector
of engine signature-database versions so the analysis layer can test
whether a label flip co-occurred with an engine update (§5.5, cause ii).
A dense vector instead of a name-keyed dict keeps a million-report run in
tens of megabytes.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import CorruptRecordError

#: Verdict alphabet used throughout the library.
LABEL_MALICIOUS = 1
LABEL_BENIGN = 0
LABEL_UNDETECTED = -1

#: Byte encoding of verdicts inside ScanReport.labels.
_BYTE_OF_LABEL = {LABEL_BENIGN: 0, LABEL_MALICIOUS: 1, LABEL_UNDETECTED: 2}
_LABEL_OF_BYTE = {0: LABEL_BENIGN, 1: LABEL_MALICIOUS, 2: LABEL_UNDETECTED}


def encode_labels(labels: Sequence[int]) -> bytes:
    """Pack a sequence of verdicts into the dense byte encoding."""
    try:
        return bytes(_BYTE_OF_LABEL[v] for v in labels)
    except KeyError as exc:
        raise CorruptRecordError(f"invalid verdict value: {exc.args[0]}") from None


def decode_labels(blob: bytes) -> list[int]:
    """Unpack the dense byte encoding back into verdicts."""
    try:
        return [_LABEL_OF_BYTE[b] for b in blob]
    except KeyError as exc:
        raise CorruptRecordError(f"invalid verdict byte: {exc.args[0]}") from None


@dataclass(frozen=True)
class EngineResult:
    """One engine's verdict within a scan report."""

    engine: str
    label: int
    version: int
    detection_name: str | None = None

    @property
    def detected(self) -> bool:
        """Whether the engine flagged the sample as malicious."""
        return self.label == LABEL_MALICIOUS

    @property
    def responded(self) -> bool:
        """Whether the engine produced a verdict at all (no timeout)."""
        return self.label != LABEL_UNDETECTED


@dataclass(frozen=True)
class ScanReport:
    """One VirusTotal analysis of one sample at one point in time."""

    sha256: str
    file_type: str
    scan_time: int
    #: Number of engines answering "malicious" — the paper's AV-Rank,
    #: VT's ``positives`` field.
    positives: int
    #: Number of engines that responded (``positives`` denominator).
    total: int
    #: Dense per-engine verdicts in fleet order (see encode_labels).
    labels: bytes
    #: Per-engine signature-database versions in fleet order.
    versions: tuple[int, ...]
    # Table 1 metadata fields.
    first_submission_date: int = 0
    last_submission_date: int = 0
    last_analysis_date: int = 0
    times_submitted: int = 1

    def __post_init__(self) -> None:
        if len(self.labels) != len(self.versions):
            raise CorruptRecordError(
                f"labels/versions length mismatch: "
                f"{len(self.labels)} != {len(self.versions)}"
            )
        if not 0 <= self.positives <= self.total <= len(self.labels):
            raise CorruptRecordError(
                f"inconsistent counts: positives={self.positives} "
                f"total={self.total} engines={len(self.labels)}"
            )

    @property
    def av_rank(self) -> int:
        """Alias for ``positives`` using the paper's terminology."""
        return self.positives

    def label_of(self, engine_idx: int) -> int:
        """Verdict of the engine at fleet index ``engine_idx``."""
        return _LABEL_OF_BYTE[self.labels[engine_idx]]

    def engine_labels(self) -> list[int]:
        """All verdicts in fleet order."""
        return decode_labels(self.labels)

    def iter_results(self, engine_names: Sequence[str]) -> Iterator[EngineResult]:
        """Yield named per-engine results, given the fleet's name order."""
        if len(engine_names) != len(self.labels):
            raise CorruptRecordError(
                f"fleet size {len(engine_names)} does not match report "
                f"with {len(self.labels)} engines"
            )
        for i, name in enumerate(engine_names):
            yield EngineResult(name, _LABEL_OF_BYTE[self.labels[i]], self.versions[i])

    def to_record(self) -> dict:
        """Serialise to the plain-value record stored by repro.store."""
        return {
            "sha256": self.sha256,
            "file_type": self.file_type,
            "scan_time": self.scan_time,
            "positives": self.positives,
            "total": self.total,
            "labels": self.labels,
            "versions": array("I", self.versions).tobytes(),
            "first_submission_date": self.first_submission_date,
            "last_submission_date": self.last_submission_date,
            "last_analysis_date": self.last_analysis_date,
            "times_submitted": self.times_submitted,
        }

    @classmethod
    def from_record(cls, record: dict) -> "ScanReport":
        """Rebuild a report from :meth:`to_record` output."""
        versions = array("I")
        versions.frombytes(record["versions"])
        return cls(
            sha256=record["sha256"],
            file_type=record["file_type"],
            scan_time=record["scan_time"],
            positives=record["positives"],
            total=record["total"],
            labels=record["labels"],
            versions=tuple(versions),
            first_submission_date=record["first_submission_date"],
            last_submission_date=record["last_submission_date"],
            last_analysis_date=record["last_analysis_date"],
            times_submitted=record["times_submitted"],
        )
