"""The repo lints itself: tier-1 runs reprolint over ``src/repro``.

This is the static twin of the serial/parallel digest gate — the
determinism contract is enforced on the *source*, not just observed in
the outputs.  Three assertions:

1. Zero undisabled findings over the shipped package — including the
   whole-program RPL1xx flow rules — with an *empty* checked-in
   baseline (``lint-baseline.json``): no ratcheted debt.
2. Every suppression is accounted: only the sanctioned codes, only in
   the sanctioned files, and every pragma carries a justification
   (a justification-less pragma would surface as an RPL000 finding and
   fail assertion 1).
3. The JSON report is byte-deterministic across consecutive runs, the
   same bar :mod:`repro.obs.export` holds metric exports to.
"""

from pathlib import Path

from repro.lint import (
    ALL_CODES,
    FLOW_CODES,
    RULE_SUMMARIES,
    apply_baseline,
    default_target,
    lint_paths,
    read_baseline,
    render_json,
    render_text,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_package_is_lint_clean():
    target = default_target()
    result = lint_paths([target])
    assert result.files_checked > 50, "self-check must see the whole package"
    pretty = render_text(result)
    assert result.findings == [], (
        "reprolint found undisabled determinism-contract violations in "
        f"src/repro — fix them or add a justified pragma:\n{pretty}"
    )


def test_shipped_baseline_is_empty_and_not_stale():
    # The shrink-only ratchet, fully ratcheted: the checked-in baseline
    # holds zero accepted findings, and applying it changes nothing.
    baseline_path = REPO_ROOT / "lint-baseline.json"
    entries = read_baseline(baseline_path)
    assert entries == [], (
        "lint-baseline.json must stay empty — fix findings instead of "
        "baselining them"
    )
    result = apply_baseline(lint_paths([default_target()]), entries)
    assert result.findings == []
    assert result.baselined == []
    assert result.baseline_stale == []


def test_suppressions_are_rare_and_accounted():
    # Pragmas are an escape hatch, not a lifestyle: the sanctioned
    # suppressions are the CLI's display-only elapsed-time banners
    # (RPL001) and the chaos layer's bounded endpoint-name label
    # (RPL105).  If this ceiling is hit, audit before raising it.
    result = lint_paths([default_target()])
    assert 0 < len(result.suppressed) <= 10
    allowed = {"RPL001"} | (FLOW_CODES & {"RPL105"})
    assert {f.code for f in result.suppressed} <= allowed
    allowed_paths = {"repro/cli.py", "repro/faults/chaos.py"}
    assert {f.path for f in result.suppressed} <= allowed_paths
    # Flow-family suppressions specifically stay rare: the RPL1xx rules
    # are young enough that every carve-out should be structural
    # (config policy) rather than inline.
    flow_suppressed = [f for f in result.suppressed if f.code in FLOW_CODES]
    assert len(flow_suppressed) <= 2


def test_json_report_is_byte_deterministic():
    target = default_target()
    first = render_json(lint_paths([target]))
    second = render_json(lint_paths([target]))
    assert first.encode("utf-8") == second.encode("utf-8")
    head = first.splitlines()[0]
    assert '"schema":"reprolint/2"' in head
    assert '"files_reanalyzed"' in head


def test_every_rule_has_a_summary():
    assert ALL_CODES == frozenset(RULE_SUMMARIES)
    expected = [f"RPL00{i}" for i in range(8)]
    expected += [f"RPL10{i}" for i in range(1, 6)]
    assert sorted(ALL_CODES) == expected
    assert FLOW_CODES < ALL_CODES
