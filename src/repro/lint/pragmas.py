"""Inline suppression pragmas: ``# reprolint: disable=RPL00x``.

Two forms:

* ``# reprolint: disable=RPL001`` — suppresses the listed codes on the
  comment's own line; when the line is a ``def``/``class`` header (or one
  of its decorator lines), the suppression covers the whole definition
  body, so one pragma can bless a sanctioned function without peppering
  every statement.
* ``# reprolint: disable-file=RPL001,RPL004`` — suppresses the listed
  codes for the entire file, wherever the comment appears
  (conventionally in the module docstring area).

Codes must be followed by a non-empty justification (``disable=RPL001 -
operator-facing timing only``): suppressing a determinism-contract rule
without saying *why* is itself a finding (RPL000), as is an unknown rule
code or a pragma that lists no codes at all — a typo'd pragma must never
silently suppress nothing.  The listed codes still suppress even when
the justification is missing, so a hygiene slip surfaces exactly one
RPL000 instead of doubling every finding it was covering.

Comments are found with :mod:`tokenize`, not string scanning, so ``#``
characters inside string literals can never be misread as pragmas.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.lint.config import ALL_CODES

#: ``reprolint:`` marker with the disable kind and the raw argument tail.
_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable-file|disable)\s*=\s*(?P<tail>.*)$")

#: Leading comma-separated code tokens of the argument tail; the
#: remainder must be a ``- why`` justification.
_CODES_RE = re.compile(r"^[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*")

#: The required justification: a dash followed by non-whitespace text.
_WHY_RE = re.compile(r"^-\s*\S")


@dataclass
class BadPragma:
    """A pragma that failed validation (RPL000 material)."""

    line: int
    col: int
    message: str


@dataclass
class Pragmas:
    """All suppression pragmas of one module."""

    file_level: set[str] = field(default_factory=set)
    by_line: dict[int, set[str]] = field(default_factory=dict)
    bad: list[BadPragma] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.file_level) + sum(
            len(codes) for codes in self.by_line.values())


def collect_pragmas(source: str, known: frozenset[str] = ALL_CODES) -> Pragmas:
    """Extract every reprolint pragma (and pragma mistake) from a module."""
    pragmas = Pragmas()
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(token.string)
        if match is None:
            continue
        line, col = token.start
        codes_match = _CODES_RE.match(match.group("tail").strip())
        if codes_match is None:
            pragmas.bad.append(BadPragma(
                line, col, "reprolint pragma lists no rule codes"))
            continue
        codes = {c.strip().upper() for c in codes_match.group(0).split(",")}
        unknown = sorted(codes - known)
        for code in unknown:
            pragmas.bad.append(BadPragma(
                line, col, f"unknown rule code {code!r} in reprolint pragma"))
        why = match.group("tail").strip()[codes_match.end():].strip()
        if not _WHY_RE.match(why):
            pragmas.bad.append(BadPragma(
                line, col, "reprolint pragma missing its '- why' "
                "justification (suppressions must say why)"))
        valid = codes & known
        if not valid:
            continue
        if match.group("kind") == "disable-file":
            pragmas.file_level |= valid
        else:
            pragmas.by_line.setdefault(line, set()).update(valid)
    return pragmas
