"""Write-aware, bytes-bounded caching for decompressed report blocks.

The store's random-access path decompresses one block per index probe;
re-decompressing a hot block on every :meth:`ReportStore.reports_for`
call would dominate lookup cost, so decoded blocks are kept in a small
LRU.  Two properties distinguish this cache from a generic memoiser:

* **Write awareness.**  Only *frozen* blocks are cacheable.  A frozen
  :class:`~repro.store.shard.CompressedBlock` is immutable — its records
  never change for a given ``(month, block)`` key — so a cached entry can
  never go stale.  The *open* (unsealed) buffer of a live shard must
  never enter the cache: its contents grow with every ingest and it
  eventually freezes into a real block under the same key.  The store
  enforces this by routing open-block reads around the cache entirely;
  the cache additionally provides :meth:`invalidate` /
  :meth:`invalidate_month` / :meth:`clear` hooks so mutation paths can
  drop entries explicitly.

* **Bytes bounding.**  Eviction is by resident *decoded bytes*, not
  entry count.  Blocks vary widely in decoded size (a 1-record tail
  block vs. a 256-record run), so an entry-count cap gives no memory
  guarantee; a byte cap does.

Counters (hits, misses, evictions, invalidations, resident bytes) feed
the store-level instrumentation in :class:`~repro.store.stats.StoreStats`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

#: Default cap on resident decoded block bytes (~32 MiB covers hundreds
#: of 256-record blocks of ~420-byte records).
DEFAULT_CACHE_BYTES = 32 * 1024 * 1024

#: Accounted per-record overhead beyond payload bytes (list slot plus
#: bytes-object header, order-of-magnitude).
_RECORD_OVERHEAD = 64

#: ``(month, block)`` for record-list decodes; columnar decodes of the
#: same block cache separately under ``(month, block, "batch")``.
BlockKey = tuple


def _cost(entry) -> int:
    """Approximate resident size of one decoded block.

    Accepts both cacheable shapes: a record list (row decode) or a
    columnar batch, which knows its own array footprint via ``nbytes``.
    """
    nbytes = getattr(entry, "nbytes", None)
    if nbytes is not None:
        return nbytes() if callable(nbytes) else nbytes
    return sum(len(r) for r in entry) + _RECORD_OVERHEAD * len(entry)


@dataclass(frozen=True)
class CacheStats:
    """Retrieval-layer instrumentation snapshot.

    ``hits``/``misses``/``evictions``/``invalidations`` count cache
    events; ``blocks_decoded`` counts actual decompressions (cache
    misses plus sequential-pass decodes); ``open_reads`` counts reads
    served live from an unsealed buffer (never cached);
    ``bytes_resident``/``entries`` describe current occupancy and
    ``peak_stream_reports`` is the high-water mark of reports held
    resident by a streaming :meth:`ReportStore.iter_sample_reports`
    pass.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    blocks_decoded: int = 0
    open_reads: int = 0
    bytes_resident: int = 0
    bytes_limit: int = DEFAULT_CACHE_BYTES
    entries: int = 0
    peak_stream_reports: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 on a cold cache)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


class BlockCache:
    """Bytes-bounded LRU over decoded record blocks."""

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        self.max_bytes = max_bytes
        self._entries: OrderedDict[BlockKey, object] = OrderedDict()
        self._costs: dict[BlockKey, int] = {}
        self._resident = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------

    def get(self, key: BlockKey):
        """The cached decode for ``key``, refreshing recency; None on miss."""
        records = self._entries.get(key)
        if records is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return records

    def put(self, key: BlockKey, records) -> None:
        """Insert a decoded block, evicting LRU entries past the byte cap.

        Blocks larger than the whole cache are not admitted (caching one
        entry only to evict it on the next insert is pure churn).
        """
        if key in self._entries:
            self._drop(key)
        cost = _cost(records)
        if cost > self.max_bytes:
            return
        self._entries[key] = records
        self._costs[key] = cost
        self._resident += cost
        while self._resident > self.max_bytes and self._entries:
            oldest, _ = self._entries.popitem(last=False)
            self._resident -= self._costs.pop(oldest)
            self.evictions += 1

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    def _drop(self, key: BlockKey) -> None:
        del self._entries[key]
        self._resident -= self._costs.pop(key)

    def invalidate(self, key: BlockKey) -> bool:
        """Drop one entry; returns whether it was present."""
        if key not in self._entries:
            return False
        self._drop(key)
        self.invalidations += 1
        return True

    def invalidate_month(self, month: int) -> int:
        """Drop every entry of one shard; returns the count dropped."""
        doomed = [key for key in self._entries if key[0] == month]
        for key in doomed:
            self._drop(key)
        self.invalidations += len(doomed)
        return len(doomed)

    def clear(self) -> None:
        """Drop everything (counters survive)."""
        self.invalidations += len(self._entries)
        self._entries.clear()
        self._costs.clear()
        self._resident = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: BlockKey) -> bool:
        return key in self._entries

    @property
    def bytes_resident(self) -> int:
        return self._resident

    @property
    def lookups(self) -> int:
        """Total :meth:`get` probes (hits + misses) over the cache's life.

        Cumulative like the event counters: :meth:`clear` drops residency
        but never rewinds these, so a long-lived serving process reports
        its true lifetime traffic after cache flushes.
        """
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Hits over lifetime lookups; 0.0 on a never-probed cache.

        Guarded against zero lookups so gauges published off an idle or
        freshly-constructed cache can never divide by zero.
        """
        lookups = self.lookups
        if not lookups:
            return 0.0
        return self.hits / lookups
