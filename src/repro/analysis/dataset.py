"""Dataset-overview analyses: Table 2, Table 3 and Figure 1.

These operate on a report store alone — they are the "what did we
collect" statistics of the paper's §4.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.stats.cdf import EmpiricalCDF
from repro.store.reportstore import ReportStore
from repro.store.stats import StoreStats
from repro.vt.filetypes import TOP20_FILE_TYPES


@dataclass(frozen=True)
class FileTypeRow:
    """One row of Table 3."""

    file_type: str
    samples: int
    sample_share: float
    reports: int
    report_share: float


@dataclass(frozen=True)
class FileTypeDistribution:
    """Table 3: sample/report distribution over file types."""

    rows: tuple[FileTypeRow, ...]
    total_samples: int
    total_reports: int

    def top(self, n: int = 20) -> tuple[FileTypeRow, ...]:
        return self.rows[:n]

    def row_for(self, file_type: str) -> FileTypeRow | None:
        for row in self.rows:
            if row.file_type == file_type:
                return row
        return None

    @property
    def top20_sample_share(self) -> float:
        """Paper: the top-20 types cover 87.04 % of samples (excl. NULL)."""
        named = [r for r in self.rows if r.file_type in TOP20_FILE_TYPES]
        return sum(r.sample_share for r in named[:20])


def file_type_distribution(store: ReportStore) -> FileTypeDistribution:
    """Compute Table 3 from the store's per-sample metadata."""
    sample_counts: Counter = Counter()
    report_counts: Counter = Counter()
    for sha in store.samples():
        ftype = store.sample_file_type(sha)
        sample_counts[ftype] += 1
        report_counts[ftype] += store.report_count_of(sha)
    total_samples = sum(sample_counts.values())
    total_reports = sum(report_counts.values())
    rows = [
        FileTypeRow(
            file_type=ftype,
            samples=count,
            sample_share=count / total_samples if total_samples else 0.0,
            reports=report_counts[ftype],
            report_share=(report_counts[ftype] / total_reports
                          if total_reports else 0.0),
        )
        for ftype, count in sample_counts.most_common()
    ]
    return FileTypeDistribution(
        rows=tuple(rows),
        total_samples=total_samples,
        total_reports=total_reports,
    )


@dataclass(frozen=True)
class ReportsPerSample:
    """Figure 1: the reports-per-sample distribution and its landmarks."""

    cdf: EmpiricalCDF
    single_report_fraction: float
    under_6_fraction: float
    under_20_fraction: float
    max_reports: int
    multi_report_samples: int

    @classmethod
    def from_store(cls, store: ReportStore) -> "ReportsPerSample":
        counts = [store.report_count_of(sha) for sha in store.samples()]
        cdf = EmpiricalCDF(counts)
        return cls(
            cdf=cdf,
            single_report_fraction=cdf.at(1),
            under_6_fraction=cdf.below(6),
            under_20_fraction=cdf.below(20),
            max_reports=int(cdf.max),
            multi_report_samples=sum(1 for c in counts if c > 1),
        )


def store_overview(store: ReportStore) -> StoreStats:
    """Table 2: per-month report counts, sizes, and dataset totals."""
    return store.stats()
