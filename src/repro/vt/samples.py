"""Sample records for the VirusTotal simulator.

A :class:`Sample` is one unique file (identified by SHA-256, as in the
paper, which counts its 571 M samples "by hash").  The simulator never
materialises file *contents* — no analysis in the paper inspects bytes;
the file type tag, size, timestamps and latent ground truth are all the
downstream analyses consume.

Ground truth is latent: whether the file is malicious, which family it
belongs to, and the per-engine detection plan (built lazily by
:mod:`repro.vt.behavior`) that determines what each engine answers at any
point in simulated time.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import InvalidHashError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.vt.behavior import DetectionPlan

_HEX_DIGITS = frozenset("0123456789abcdef")


def sha256_of(token: str) -> str:
    """A deterministic synthetic SHA-256 hex digest for ``token``.

    Real samples are hashed by content; synthetic samples are hashed by a
    unique token (scenario seed + sample index), which preserves the only
    property the analyses rely on: hashes are unique, stable identifiers.
    """
    return hashlib.sha256(token.encode("utf-8")).hexdigest()


def validate_sha256(value: str) -> str:
    """Validate and normalise a SHA-256 hex digest.

    Returns the lowercase digest, raising
    :class:`~repro.errors.InvalidHashError` for malformed input — the
    simulator's API layer mirrors the real service's 400 response here.
    """
    candidate = value.strip().lower()
    if len(candidate) != 64 or not set(candidate) <= _HEX_DIGITS:
        raise InvalidHashError(value)
    return candidate


@dataclass
class Sample:
    """One unique file known to the simulated VirusTotal service.

    Timestamps are simulator minutes (see :mod:`repro.vt.clock`); a
    negative ``first_seen`` means the file predates the collection window,
    i.e. it is *not* one of the paper's 91.76 % "fresh" samples.

    ``times_submitted``, ``last_submission_date`` and ``last_analysis_date``
    are the three mutable report fields whose API-dependent update rules
    the paper's Table 1 documents; they are owned and mutated exclusively
    by :class:`~repro.vt.service.VirusTotalService`.
    """

    sha256: str
    file_type: str
    malicious: bool
    first_seen: int
    size_bytes: int = 65536
    family: str | None = None

    # Mutable service-side state (Table 1 fields).
    times_submitted: int = 0
    last_submission_date: int | None = None
    last_analysis_date: int | None = None

    # Lazily built per-engine behaviour (repro.vt.behavior).
    plan: "DetectionPlan | None" = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.sha256 = validate_sha256(self.sha256)
        if self.size_bytes <= 0:
            raise ValueError(f"sample size must be positive: {self.size_bytes}")

    @property
    def fresh(self) -> bool:
        """Whether the sample was first submitted inside the window."""
        return self.first_seen >= 0

    def clone(self) -> "Sample":
        """A pristine copy with the service-side state reset.

        Identity and latent ground truth (hash, type, truth, timestamps,
        size, family) carry over; the Table 1 mutable fields and the
        lazily built detection plan do not.  Experiment runners register
        clones so a generator's spec objects are never mutated by a run —
        re-running from the same specs starts from the same state.
        """
        return Sample(
            sha256=self.sha256,
            file_type=self.file_type,
            malicious=self.malicious,
            first_seen=self.first_seen,
            size_bytes=self.size_bytes,
            family=self.family,
        )

    def record_submission(self, timestamp: int) -> None:
        """Apply the Upload-API submission side effects (Table 1 row 1)."""
        self.times_submitted += 1
        self.last_submission_date = timestamp

    def record_analysis(self, timestamp: int) -> None:
        """Apply the analysis side effect shared by Upload and Rescan."""
        self.last_analysis_date = timestamp
