"""Scenario configuration and presets.

A :class:`ScenarioConfig` fully determines a synthetic dataset: the same
config and seed always regenerate byte-identical reports.  Three presets
cover the library's uses:

* :func:`paper_scenario` — the full population mix (all 351 file types,
  Figure 1 report counts, 91.76 % fresh) for the dataset-overview
  experiments (Tables 2-3, Figure 1);
* :func:`dynamics_scenario` — the paper's analysis dataset *S* generated
  directly: fresh samples of the top-20 file types with at least two
  reports each (§5.3.1), for the dynamics/stabilisation/engine
  experiments;
* :func:`tiny_scenario` — a fast small config for unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.faults.plan import FaultPlan, standard_chaos_plan
from repro.vt.behavior import BehaviorParams
from repro.vt.filetypes import FILE_TYPES, TOP20_FILE_TYPES

#: Paper Table 2 monthly report counts (millions), used as relative
#: weights for when fresh samples first appear.
MONTHLY_WEIGHTS: tuple[float, ...] = (
    41.3, 51.9, 59.5, 60.4, 64.5, 55.1, 57.7,
    59.4, 69.7, 62.0, 76.8, 68.6, 62.4, 58.2,
)

#: Paper §4.1: share of samples first submitted inside the window.
FRESH_FRACTION = 0.9176


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything needed to generate one synthetic dataset."""

    seed: int = 0
    n_samples: int = 10_000
    #: Restrict generation to these file types (None = full catalogue).
    file_types: tuple[str, ...] | None = None
    #: Force every sample to be fresh (dataset S construction).
    fresh_only: bool = False
    fresh_fraction: float = FRESH_FRACTION
    #: Minimum reports per sample; 2 generates only multi-report samples.
    min_reports: int = 1
    #: Force every sample to exactly this many reports (None = draw from
    #: the Figure 1 mixture).  Used by the rescan-cadence ablation to
    #: emulate Zhu et al.'s daily-snapshot protocol.
    forced_report_count: int | None = None
    #: Baseline probability of a sample being rescanned at least once.
    base_multi_prob: float = 0.1119
    #: Extra rescan propensity for malicious samples (users resubmit
    #: suspicious files), which skews the multi-report population toward
    #: malware as in the paper's dataset S.
    malicious_rescan_boost: float = 4.0
    #: Rescan interval distribution (log-normal, by ground truth).
    interval_median_days_malicious: float = 6.0
    interval_median_days_benign: float = 12.0
    interval_sigma: float = 1.6
    #: Fleet behaviour tunables.
    behavior: BehaviorParams = field(default_factory=BehaviorParams)
    #: Report-store block size.
    block_records: int = 256
    #: Block layout new store blocks freeze into: ``"columnar"`` (the
    #: RPR3 array layout, the default hot path) or ``"row"`` (the
    #: original RPR1 framing).  Digest-neutral by construction — the
    #: differential harness pins that.
    block_format: str = "columnar"
    #: Report-store decoded-block cache budget in bytes (None = the
    #: store's default).
    store_cache_bytes: int | None = None
    #: Fault plan for the resilient-collection pipeline (None = no
    #: injected faults).  Ignored by :func:`run_experiment`; consumed by
    #: :func:`repro.collect.run_collection`.
    fault_plan: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.n_samples <= 0:
            raise ConfigError("n_samples must be positive")
        if self.min_reports < 1:
            raise ConfigError("min_reports must be >= 1")
        if self.forced_report_count is not None and self.forced_report_count < 1:
            raise ConfigError("forced_report_count must be >= 1")
        if not 0.0 <= self.fresh_fraction <= 1.0:
            raise ConfigError("fresh_fraction must be in [0,1]")
        if self.file_types is not None:
            for name in self.file_types:
                if name not in FILE_TYPES:
                    raise ConfigError(f"unknown file type in scenario: {name!r}")
        if self.interval_sigma <= 0:
            raise ConfigError("interval_sigma must be positive")
        if self.store_cache_bytes is not None and self.store_cache_bytes < 0:
            raise ConfigError("store_cache_bytes must be >= 0")
        if self.block_format not in ("row", "columnar"):
            raise ConfigError(
                f"block_format must be 'row' or 'columnar', "
                f"got {self.block_format!r}")

    def with_(self, **overrides) -> "ScenarioConfig":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)


def paper_scenario(n_samples: int = 50_000, seed: int = 0) -> ScenarioConfig:
    """The full-population mix behind Tables 2-3 and Figure 1."""
    return ScenarioConfig(seed=seed, n_samples=n_samples)


def dynamics_scenario(n_samples: int = 20_000, seed: int = 0) -> ScenarioConfig:
    """The paper's dataset *S*: fresh, top-20 types, multi-report (§5.3.1)."""
    return ScenarioConfig(
        seed=seed,
        n_samples=n_samples,
        file_types=TOP20_FILE_TYPES,
        fresh_only=True,
        min_reports=2,
    )


def tiny_scenario(n_samples: int = 400, seed: int = 0) -> ScenarioConfig:
    """A small, fast scenario for unit tests."""
    return ScenarioConfig(
        seed=seed,
        n_samples=n_samples,
        file_types=TOP20_FILE_TYPES,
        min_reports=2,
        fresh_only=True,
    )


def chaos_scenario(n_samples: int = 400, seed: int = 0) -> ScenarioConfig:
    """The tiny scenario under the standard fault plan.

    Used by the chaos smoke test and the ``repro collect --chaos`` CLI
    path: small enough to run in seconds, faulty enough to exercise the
    whole resilience surface (outage + backfill, transients, duplicates,
    corrupt payloads, store write failures).
    """
    return tiny_scenario(n_samples=n_samples, seed=seed).with_(
        fault_plan=standard_chaos_plan(seed)
    )
