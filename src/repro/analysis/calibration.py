"""Calibration self-check: measured headline statistics vs paper targets.

EXPERIMENTS.md records paper-vs-measured once; this module makes that
comparison executable.  :func:`calibration_report` runs every headline
analysis over an :class:`~repro.analysis.experiment.ExperimentData` and
grades each statistic against its published value with a tolerance band,
so a change to the simulator that silently breaks a reproduced shape is
caught by one call (and by the calibration test that wraps it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis import dynamics as dynamics_mod
from repro.analysis import stabilization as stab_mod
from repro.analysis.engines import engine_stability
from repro.analysis.experiment import ExperimentData


@dataclass(frozen=True)
class CalibrationTarget:
    """One headline statistic with its paper value and tolerance."""

    name: str
    paper_value: float
    measured: float
    #: Acceptable absolute deviation from the paper value.  Wide bands
    #: mark statistics EXPERIMENTS.md lists as knowingly partial.
    tolerance: float
    section: str

    @property
    def deviation(self) -> float:
        return abs(self.measured - self.paper_value)

    @property
    def within(self) -> bool:
        return self.deviation <= self.tolerance


@dataclass(frozen=True)
class CalibrationReport:
    """Every graded headline statistic for one run."""

    targets: tuple[CalibrationTarget, ...]

    @property
    def passed(self) -> bool:
        return all(t.within for t in self.targets)

    def failures(self) -> list[CalibrationTarget]:
        return [t for t in self.targets if not t.within]

    def render(self) -> str:
        lines = ["calibration report (measured vs paper):"]
        for t in self.targets:
            flag = "ok  " if t.within else "OFF "
            lines.append(
                f"  [{flag}] {t.section:6s} {t.name:42s} "
                f"paper={t.paper_value:7.3f} measured={t.measured:7.3f} "
                f"(tol ±{t.tolerance:.3f})"
            )
        return "\n".join(lines)


def calibration_report(data: ExperimentData) -> CalibrationReport:
    """Grade a run against the paper's headline numbers."""
    series = data.series()
    dataset_s = data.dataset_s

    split = dynamics_mod.stable_dynamic_split(series)
    stable_profile = dynamics_mod.stable_sample_profile(series)
    deltas = dynamics_mod.delta_distributions(dataset_s)
    impact = dynamics_mod.threshold_impact(dataset_s)
    avrank_stab = stab_mod.avrank_stabilization_profile(dataset_s)
    label_stab = stab_mod.label_stabilization_profile(dataset_s)
    stability = engine_stability(data.store, data.engine_names)

    lo_label, hi_label = label_stab.stabilized_fraction_range()
    overall_gray_peak = max(c.gray_fraction for c in impact.overall)
    low_t_gray = max(c.gray_fraction for c in impact.overall
                     if 3 <= c.threshold <= 11)
    pe_low_gray = max(c.gray_fraction for c in impact.pe_only
                      if 3 <= c.threshold <= 18)

    targets = (
        CalibrationTarget("dynamic share of multi-report samples",
                          0.501, split.dynamic_fraction, 0.08, "Obs 1"),
        CalibrationTarget("stable samples at AV-Rank 0",
                          0.6636, stable_profile.rank_zero_fraction,
                          0.07, "Obs 2"),
        CalibrationTarget("stable samples at AV-Rank <= 5",
                          0.85, stable_profile.rank_at_most_5_fraction,
                          0.10, "Obs 2"),
        CalibrationTarget("adjacent pairs with no change (delta=0)",
                          0.3549, deltas.adjacent_zero_fraction,
                          0.20, "Obs 3"),
        CalibrationTarget("samples with Delta > 2",
                          0.50, deltas.overall_above_2_fraction,
                          0.12, "Obs 3"),
        CalibrationTarget("samples with Delta <= 11",
                          0.90, deltas.overall_within_11_fraction,
                          0.10, "Obs 3"),
        CalibrationTarget("overall gray peak",
                          0.1492, overall_gray_peak, 0.06, "Obs 6"),
        CalibrationTarget("overall gray max over t in 3-11",
                          0.07, low_t_gray, 0.06, "Obs 6"),
        CalibrationTarget("PE gray max over t in 3-18",
                          0.06, pe_low_gray, 0.06, "Obs 6"),
        CalibrationTarget("flips with engine update",
                          0.60, stability.flips.update_coincidence_rate,
                          0.15, "Obs 7"),
        CalibrationTarget("AV-Rank stabilised at r=1",
                          0.551, avrank_stab.stabilized_fraction(1),
                          0.12, "Obs 8"),
        CalibrationTarget("AV-Rank stabilised at r=5",
                          0.8811, avrank_stab.stabilized_fraction(5),
                          0.10, "Obs 8"),
        CalibrationTarget("labels eventually stable (min over t)",
                          0.9314, lo_label, 0.06, "Obs 9"),
        CalibrationTarget("labels eventually stable (max over t)",
                          0.9804, hi_label, 0.04, "Obs 9"),
        CalibrationTarget("0->1 to 1->0 flip ratio",
                          2.69, (stability.up_down_ratio), 1.2, "7.1.1"),
        CalibrationTarget("hazard share of flips",
                          0.0, stability.hazard_share, 0.02, "7.1.1"),
    )
    return CalibrationReport(targets=targets)


def assert_calibrated(
    data: ExperimentData,
    fail: Callable[[str], None] | None = None,
) -> CalibrationReport:
    """Raise (or call ``fail``) when any headline statistic is off."""
    report = calibration_report(data)
    if not report.passed:
        message = "calibration drift:\n" + report.render()
        if fail is not None:
            fail(message)
        else:
            raise AssertionError(message)
    return report
