"""Unit and integration tests for ReportStore (repro.store.reportstore)."""

import pytest

from repro.errors import CorruptRecordError, ShardClosedError, UnknownSampleError
from repro.store.reportstore import ReportStore
from repro.vt import clock

from conftest import make_report, make_sha


def _month_time(month: int, offset: int = 1000) -> int:
    return clock.MONTH_STARTS[month] + offset


@pytest.fixture()
def store():
    return ReportStore(block_records=4)


def _fill(store: ReportStore, n_samples: int = 3, scans_each: int = 3):
    reports = []
    for i in range(n_samples):
        sha = make_sha(f"s{i}")
        for k in range(scans_each):
            report = make_report(
                sha=sha,
                scan_time=_month_time(k, offset=100 * i + k),
                labels=[1, 0, 0, 0, 0],
                first_submission=0 if i % 2 == 0 else -50,
            )
            reports.append(report)
            store.ingest(report)
    return reports


class TestIngest:
    def test_counts(self, store):
        _fill(store)
        assert store.report_count == 9
        assert store.sample_count == 3

    def test_monthly_sharding(self, store):
        _fill(store, scans_each=3)
        assert sorted(store.shards) == [0, 1, 2]

    def test_fresh_sample_accounting(self, store):
        _fill(store, n_samples=4)
        assert store.fresh_sample_count == 2  # i = 0 and 2

    def test_ingest_batch_returns_count(self, store):
        batch = [make_report(sha=make_sha("b"), scan_time=10),
                 make_report(sha=make_sha("b"), scan_time=20)]
        assert store.ingest_batch(batch) == 2

    def test_closed_store_rejects_ingest(self, store):
        _fill(store)
        store.close()
        with pytest.raises(ShardClosedError):
            store.ingest(make_report())


class TestRetrieval:
    def test_contains(self, store):
        _fill(store)
        assert make_sha("s0") in store
        assert make_sha("ghost") not in store

    def test_reports_for_sorted_by_time(self, store):
        _fill(store)
        reports = store.reports_for(make_sha("s1"))
        assert len(reports) == 3
        times = [r.scan_time for r in reports]
        assert times == sorted(times)

    def test_reports_for_unknown_raises(self, store):
        with pytest.raises(UnknownSampleError):
            store.reports_for(make_sha("ghost"))

    def test_sample_metadata(self, store):
        _fill(store)
        assert store.sample_file_type(make_sha("s0")) == "Win32 EXE"
        assert store.sample_is_fresh(make_sha("s0"))
        assert not store.sample_is_fresh(make_sha("s1"))

    def test_metadata_unknown_raises(self, store):
        with pytest.raises(UnknownSampleError):
            store.sample_file_type(make_sha("ghost"))
        with pytest.raises(UnknownSampleError):
            store.report_count_of(make_sha("ghost"))

    def test_iter_reports_visits_everything(self, store):
        ingested = _fill(store)
        assert sorted(r.sha256 + str(r.scan_time)
                      for r in store.iter_reports()) == sorted(
            r.sha256 + str(r.scan_time) for r in ingested
        )

    def test_iter_sample_reports_groups(self, store):
        _fill(store)
        grouped = dict(store.iter_sample_reports())
        assert set(grouped) == {make_sha(f"s{i}") for i in range(3)}
        for reports in grouped.values():
            assert len(reports) == 3

    def test_report_count_of(self, store):
        _fill(store)
        assert store.report_count_of(make_sha("s2")) == 3

    def test_block_cache_consistency(self, store):
        # Read the same sample repeatedly; the block cache must not
        # corrupt results.
        _fill(store, n_samples=6, scans_each=2)
        first = store.reports_for(make_sha("s3"))
        for _ in range(10):
            assert store.reports_for(make_sha("s3")) == first


class TestInterleavedIngestRead:
    """Regression: the block cache used to snapshot the open buffer.

    Any read followed by more ingests into the same month then served
    stale data — an IndexError once the index pointed past the snapshot,
    or silently dropped reports once the buffer froze into a real block
    under the same cache key.
    """

    def test_read_ingest_read_same_month(self, store):
        sha = make_sha("victim")
        times = list(range(1000, 1009))
        for t in times[:5]:  # past one block boundary: block 0 + open buffer
            store.ingest(make_report(sha=sha, scan_time=t))
        assert [r.scan_time for r in store.reports_for(sha)] == times[:5]
        for t in times[5:]:  # freezes block 1 under the cached key
            store.ingest(make_report(sha=sha, scan_time=t))
        assert [r.scan_time for r in store.reports_for(sha)] == times

    def test_read_survives_flush_and_close(self, store):
        sha = make_sha("victim")
        times = list(range(2000, 2009))
        for t in times[:5]:
            store.ingest(make_report(sha=sha, scan_time=t))
        before = store.reports_for(sha)
        assert len(before) == 5
        for t in times[5:]:
            store.ingest(make_report(sha=sha, scan_time=t))
        store.flush()
        assert [r.scan_time for r in store.reports_for(sha)] == times
        store.close()
        assert [r.scan_time for r in store.reports_for(sha)] == times

    def test_open_buffer_reads_are_live_not_snapshots(self, store):
        sha_a, sha_b = make_sha("a"), make_sha("b")
        store.ingest(make_report(sha=sha_a, scan_time=100))
        # This read touches the open buffer; it must not pin a snapshot.
        assert len(store.reports_for(sha_a)) == 1
        store.ingest(make_report(sha=sha_b, scan_time=101))
        assert len(store.reports_for(sha_b)) == 1
        assert store.cache_stats().open_reads >= 2

    def test_interleaved_streaming_grouping(self, store):
        shas = [make_sha(f"x{i}") for i in range(3)]
        for t in range(12):
            store.ingest(make_report(sha=shas[t % 3], scan_time=1000 + t))
        grouped = dict(store.iter_sample_reports())
        assert {s: len(r) for s, r in grouped.items()} == {s: 4 for s in shas}
        store.ingest(make_report(sha=shas[0], scan_time=2000))
        grouped = dict(store.iter_sample_reports())
        assert len(grouped[shas[0]]) == 5


class TestStreaming:
    def test_groups_complete_and_time_sorted(self, store):
        _fill(store, n_samples=5, scans_each=3)
        store.close()
        grouped = dict(store.iter_sample_reports())
        assert set(grouped) == {make_sha(f"s{i}") for i in range(5)}
        for reports in grouped.values():
            times = [r.scan_time for r in reports]
            assert times == sorted(times)

    def test_matches_random_access(self, store):
        _fill(store, n_samples=8, scans_each=3)
        store.close()
        for sha, reports in store.iter_sample_reports():
            assert reports == store.reports_for(sha)

    def test_peak_resident_bounded_by_live_window(self):
        # Samples with contiguous reports complete block by block, so the
        # pass never holds more than ~one block's worth of reports — far
        # below the store total.
        store = ReportStore(block_records=8)
        n_samples, scans_each = 100, 4
        for i in range(n_samples):
            sha = make_sha(f"seq{i}")
            for k in range(scans_each):
                store.ingest(make_report(
                    sha=sha, scan_time=1000 + i * scans_each + k))
        store.close()
        for _ in store.iter_sample_reports():
            pass
        peak = store.cache_stats().peak_stream_reports
        total = n_samples * scans_each
        assert peak <= 2 * 8  # ≤ two block windows of live samples
        assert peak < total / 10

    def test_decodes_each_block_once(self, store):
        _fill(store, n_samples=6, scans_each=2)
        store.close()
        n_blocks = sum(len(s.blocks) for s in store.shards.values())
        before = store.cache_stats().blocks_decoded
        list(store.iter_sample_reports())
        assert store.cache_stats().blocks_decoded - before == n_blocks


class TestCacheInstrumentation:
    def test_counters_via_store_stats(self, store):
        _fill(store, n_samples=6, scans_each=2)
        store.close()
        store.reports_for(make_sha("s1"))
        store.reports_for(make_sha("s1"))
        cache = store.stats().cache
        assert cache.hits > 0
        assert cache.misses > 0
        assert cache.blocks_decoded > 0
        assert cache.bytes_resident > 0
        assert cache.entries > 0
        assert 0.0 < cache.hit_rate <= 1.0

    def test_bytes_bounded_eviction(self):
        # A tiny budget forces evictions while results stay correct.
        store = ReportStore(block_records=2, cache_bytes=1200)
        shas = [make_sha(f"e{i}") for i in range(12)]
        for t, sha in enumerate(shas):
            store.ingest(make_report(sha=sha, scan_time=1000 + t))
        store.close()
        for sha in shas:
            assert len(store.reports_for(sha)) == 1
        cache = store.cache_stats()
        assert cache.evictions > 0
        assert cache.bytes_resident <= cache.bytes_limit

    def test_drop_caches(self, store):
        _fill(store)
        store.close()
        store.reports_for(make_sha("s0"))
        assert store.cache_stats().entries > 0
        store.drop_caches()
        after = store.cache_stats()
        assert after.entries == 0
        assert after.bytes_resident == 0
        assert after.misses > 0  # counters survive

    def test_open_buffer_never_cached(self, store):
        sha = make_sha("live")
        store.ingest(make_report(sha=sha, scan_time=1000))
        for _ in range(5):
            store.reports_for(sha)
        cache = store.cache_stats()
        assert cache.entries == 0
        assert cache.open_reads == 5


class TestStats:
    def test_table2_months(self, store):
        _fill(store)
        stats = store.stats()
        assert len(stats.months) == clock.COLLECTION_MONTHS
        assert stats.months[0].label == "05/2021"
        assert stats.total_reports == 9

    def test_compression_rate_positive(self, store):
        _fill(store, n_samples=10)
        store.close()
        assert store.stats().compression_rate > 1.0

    def test_fresh_fraction(self, store):
        _fill(store, n_samples=4)
        assert store.stats().fresh_fraction == pytest.approx(0.5)

    def test_empty_store_stats(self):
        stats = ReportStore().stats()
        assert stats.total_reports == 0
        assert stats.compression_rate == 0.0
        assert stats.fresh_fraction == 0.0


class TestPersistence:
    def test_save_load_round_trip(self, store, tmp_path):
        ingested = _fill(store, n_samples=5, scans_each=2)
        store.close()
        path = tmp_path / "reports.store"
        store.save(path)
        loaded = ReportStore.load(path)
        assert loaded.report_count == store.report_count
        assert loaded.sample_count == store.sample_count
        assert loaded.fresh_sample_count == store.fresh_sample_count
        for i in range(5):
            sha = make_sha(f"s{i}")
            assert loaded.reports_for(sha) == store.reports_for(sha)
        del ingested

    def test_loaded_store_is_sealed(self, store, tmp_path):
        _fill(store)
        path = tmp_path / "x.store"
        store.save(path)
        loaded = ReportStore.load(path)
        with pytest.raises(ShardClosedError):
            loaded.ingest(make_report())

    def test_load_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"this is not a store")
        with pytest.raises(CorruptRecordError):
            ReportStore.load(path)

    def test_truncated_file_raises_corrupt_record_error(self, store,
                                                        tmp_path):
        # Wherever the cut lands — magic, header, shard table, block
        # payload, index — the decode error crossing the store boundary
        # is CorruptRecordError, never raw struct.error/ValueError.
        _fill(store)
        path = tmp_path / "trunc.store"
        store.save(path)
        blob = path.read_bytes()
        for cut in (3, 9, len(blob) // 3, len(blob) // 2, len(blob) - 3):
            path.write_bytes(blob[:cut])
            with pytest.raises(CorruptRecordError):
                ReportStore.load(path)

    def test_corrupt_mmap_load_releases_the_mapping(self, store, tmp_path,
                                                    monkeypatch):
        from repro.store import reportstore as rs

        _fill(store)
        path = tmp_path / "trunc.store"
        store.save(path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])

        real = rs._mmap
        created = []

        class _Shim:
            ACCESS_READ = real.ACCESS_READ

            @staticmethod
            def mmap(fileno, length, access=None):
                mapping = real.mmap(fileno, length, access=access)
                created.append(mapping)
                return mapping

        monkeypatch.setattr(rs, "_mmap", _Shim())
        with pytest.raises(CorruptRecordError):
            ReportStore.load(path, use_mmap=True)
        assert created and all(m.closed for m in created)

    def test_save_preserves_accounting(self, store, tmp_path):
        _fill(store, n_samples=6)
        path = tmp_path / "acct.store"
        store.save(path)
        loaded = ReportStore.load(path)
        original = store.stats()
        reloaded = loaded.stats()
        assert reloaded.total_reports == original.total_reports
        assert reloaded.verbose_bytes == original.verbose_bytes

    def test_reopen_carries_retrieval_counters(self, store, tmp_path):
        # Regression: a save()+reopen cycle used to zero the cache
        # counters, making collector restarts look like cold caches.
        _fill(store, n_samples=6, scans_each=2)
        store.close()
        store.reports_for(make_sha("s1"))  # miss + decode
        store.reports_for(make_sha("s1"))  # hit
        list(store.iter_sample_reports())  # streaming high-water mark
        before = store.cache_stats()
        assert before.hits > 0 and before.misses > 0
        assert before.blocks_decoded > 0
        assert before.peak_stream_reports > 0

        path = tmp_path / "carry.store"
        store.save(path)
        reopened = ReportStore.load(path, reopen=True)
        after = reopened.cache_stats()
        assert after.hits == before.hits
        assert after.misses == before.misses
        assert after.evictions == before.evictions
        assert after.invalidations == before.invalidations
        assert after.blocks_decoded == before.blocks_decoded
        assert after.open_reads == before.open_reads
        assert after.peak_stream_reports == before.peak_stream_reports

    def test_sealed_load_also_carries_counters(self, store, tmp_path):
        _fill(store)
        store.close()
        store.reports_for(make_sha("s0"))
        before = store.cache_stats()
        path = tmp_path / "sealed.store"
        store.save(path)
        loaded = ReportStore.load(path)
        assert loaded.cache_stats().misses == before.misses
        assert loaded.cache_stats().blocks_decoded == before.blocks_decoded

    def test_load_tolerates_missing_counter_header(self, store, tmp_path,
                                                   monkeypatch):
        # Files written before the counters existed must still load
        # (header key absent → counters start at zero).
        import json as json_mod

        import repro.store.reportstore as rs_mod

        real_dumps = json_mod.dumps

        def strip_counters(obj, *args, **kwargs):
            if isinstance(obj, dict) and "retrieval_counters" in obj:
                obj = {k: v for k, v in obj.items()
                       if k != "retrieval_counters"}
            return real_dumps(obj, *args, **kwargs)

        _fill(store)
        path = tmp_path / "old.store"
        monkeypatch.setattr(rs_mod.json, "dumps", strip_counters)
        store.save(path)
        monkeypatch.undo()
        loaded = ReportStore.load(path)
        assert loaded.report_count == store.report_count
        assert loaded.cache_stats().hits == 0
        assert loaded.cache_stats().blocks_decoded == 0

    def test_save_on_open_store_is_non_mutating(self, store, tmp_path):
        # Saving a live store must not flush its buffers: block layout,
        # buffered records and ingestability are all preserved.
        _fill(store, n_samples=3, scans_each=3)  # block_records=4: open buffers
        layout_before = {m: (len(s.blocks), s.open_record_count)
                         for m, s in store.shards.items()}
        assert any(open_count for _, open_count in layout_before.values())
        store.save(tmp_path / "live.store")
        layout_after = {m: (len(s.blocks), s.open_record_count)
                        for m, s in store.shards.items()}
        assert layout_after == layout_before
        assert not store.closed
        store.ingest(make_report(sha=make_sha("s0"), scan_time=_month_time(0)))

    def test_save_before_close_round_trips(self, store, tmp_path):
        ingested = _fill(store, n_samples=5, scans_each=2)
        path = tmp_path / "open.store"
        store.save(path)  # store still open — buffers serialised as a snapshot
        loaded = ReportStore.load(path)
        assert loaded.report_count == len(ingested)
        for i in range(5):
            sha = make_sha(f"s{i}")
            assert loaded.reports_for(sha) == store.reports_for(sha)

    def test_live_store_usable_after_save(self, store, tmp_path):
        sha = make_sha("s0")
        _fill(store, n_samples=2, scans_each=2)
        store.save(tmp_path / "snap.store")
        store.ingest(make_report(sha=sha, scan_time=_month_time(0, offset=9999)))
        reports = store.reports_for(sha)
        assert len(reports) == 3
        assert _month_time(0, offset=9999) in [r.scan_time for r in reports]


class TestIdempotentIngest:
    def test_has_report_keyed_on_sample_and_minute(self, store):
        report = make_report(sha=make_sha("s"), scan_time=1000)
        store.ingest(report)
        assert store.has_report(report.sha256, 1000)
        assert not store.has_report(report.sha256, 1001)
        assert not store.has_report(make_sha("other"), 1000)

    def test_ingest_unique_skips_duplicates(self, store):
        report = make_report(sha=make_sha("s"), scan_time=1000)
        assert store.ingest_unique(report) is True
        assert store.ingest_unique(report) is False
        assert store.report_count == 1

    def test_ingest_unique_allows_other_minutes(self, store):
        sha = make_sha("s")
        assert store.ingest_unique(make_report(sha=sha, scan_time=1000))
        assert store.ingest_unique(make_report(sha=sha, scan_time=2000))
        assert store.report_count == 2

    def test_scan_index_survives_save_load(self, store, tmp_path):
        report = make_report(sha=make_sha("s"), scan_time=1000)
        store.ingest(report)
        path = tmp_path / "x.store"
        store.save(path)
        loaded = ReportStore.load(path, reopen=True)
        assert loaded.ingest_unique(report) is False
        assert loaded.report_count == 1


class TestReopen:
    def test_reopened_store_accepts_ingest(self, store, tmp_path):
        _fill(store, n_samples=2, scans_each=2)
        path = tmp_path / "x.store"
        store.save(path)
        reopened = ReportStore.load(path, reopen=True)
        extra = make_report(sha=make_sha("new"), scan_time=_month_time(1))
        reopened.ingest(extra)
        assert reopened.report_count == store.report_count + 1
        assert reopened.reports_for(extra.sha256) == [extra]

    def test_reopened_store_preserves_old_reports(self, store, tmp_path):
        _fill(store, n_samples=2, scans_each=2)
        path = tmp_path / "x.store"
        store.save(path)
        reopened = ReportStore.load(path, reopen=True)
        reopened.ingest(make_report(sha=make_sha("new"),
                                    scan_time=_month_time(1)))
        for i in range(2):
            sha = make_sha(f"s{i}")
            assert reopened.reports_for(sha) == store.reports_for(sha)

    def test_reopened_store_round_trips_again(self, store, tmp_path):
        _fill(store, n_samples=2, scans_each=2)
        first = tmp_path / "first.store"
        store.save(first)
        reopened = ReportStore.load(first, reopen=True)
        extra = make_report(sha=make_sha("new"), scan_time=_month_time(0))
        reopened.ingest(extra)
        second = tmp_path / "second.store"
        reopened.save(second)
        final = ReportStore.load(second)
        assert final.report_count == store.report_count + 1
        assert final.reports_for(extra.sha256) == [extra]
