"""Agreement and transition counting helpers.

Small utilities shared by the flip analysis (§7.1) and the correlation
analysis (§7.2): counting transitions in a label sequence and tabulating
pairwise agreement between two verdict sequences.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence


def transitions(sequence: Sequence[int]) -> list[tuple[int, int]]:
    """Consecutive (previous, current) pairs of a sequence."""
    return list(zip(sequence, sequence[1:], strict=False))


def count_changes(sequence: Sequence[int]) -> int:
    """Number of consecutive positions where the value changes."""
    return sum(1 for a, b in zip(sequence, sequence[1:], strict=False) if a != b)


@dataclass(frozen=True)
class AgreementTable:
    """Pairwise agreement between two verdict sequences.

    ``counts[(a, b)]`` is the number of positions where the first sequence
    answered ``a`` and the second ``b``.
    """

    counts: dict[tuple[int, int], int]

    @property
    def n(self) -> int:
        return sum(self.counts.values())

    @property
    def agreement_rate(self) -> float:
        """Fraction of positions with identical verdicts."""
        if self.n == 0:
            return float("nan")
        agree = sum(c for (a, b), c in self.counts.items() if a == b)
        return agree / self.n

    def marginal_first(self) -> Counter:
        out: Counter = Counter()
        for (a, _), c in self.counts.items():
            out[a] += c
        return out

    def marginal_second(self) -> Counter:
        out: Counter = Counter()
        for (_, b), c in self.counts.items():
            out[b] += c
        return out


def agreement_table(
    first: Iterable[int], second: Iterable[int]
) -> AgreementTable:
    """Tabulate pairwise agreement of two aligned verdict sequences."""
    counts: Counter = Counter(zip(first, second, strict=False))
    return AgreementTable(dict(counts))
