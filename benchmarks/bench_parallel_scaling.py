"""Parallel scenario-engine scaling: wall-clock vs worker count.

Runs the same scenario serially and under the sharded parallel engine at
increasing worker counts, asserting the canonical store digest is
byte-identical at every K (the serial/parallel equivalence contract)
and reporting the speedup curve.

Dual mode:

* under pytest-benchmark (``pytest benchmarks/ --benchmark-only``) the
  scaling sweep runs once at the harness scale and prints the curve;
* as a script (``python benchmarks/bench_parallel_scaling.py``) it runs
  the sweep standalone and writes a schema'd ``BENCH_results.json`` —
  the artifact the CI benchmarks job uploads.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.experiment import run_experiment
from repro.obs import MetricsRegistry
from repro.synth.scenario import paper_scenario

try:  # pytest mode — absent when run as a plain script
    from conftest import run_once, say
except ImportError:  # pragma: no cover - script mode
    run_once = None

    def say(*args: object) -> None:
        print(*args)

#: Schema identifier for the benchmark artifact.
RESULTS_SCHEMA = "repro-bench/1"

#: Script-mode defaults (CI pins its own size).
DEFAULT_SAMPLES = 50_000
DEFAULT_WORKERS = (1, 2, 4, 8)
DEFAULT_SEED = 1


def run_metrics_overhead(n_samples: int, seed: int) -> dict:
    """Time a serial run with the disabled (null) registry vs a live one.

    Instrumented components pre-bind no-op handles when no registry is
    injected, so the disabled path should cost one no-op call per event
    — i.e. the two walls should differ only by measurement noise plus
    the real recording cost of the live registry.
    """
    config = paper_scenario(n_samples=n_samples, seed=seed)

    started = time.perf_counter()
    run_experiment(config)  # metrics=None → the shared null registry
    disabled = time.perf_counter() - started

    started = time.perf_counter()
    data = run_experiment(config, metrics=MetricsRegistry())
    enabled = time.perf_counter() - started

    return {
        "n_samples": n_samples,
        "reports": data.store.report_count,
        "disabled_seconds": round(disabled, 3),
        "enabled_seconds": round(enabled, 3),
        "enabled_over_disabled": round(enabled / disabled, 3),
    }


def run_scaling(n_samples: int, seed: int,
                workers_list: tuple[int, ...]) -> dict:
    """Run the sweep; returns the BENCH_results.json payload.

    Worker count 1 is always measured first (it is the baseline every
    speedup is computed against) even if absent from ``workers_list``.
    """
    counts = sorted(set(workers_list) | {1})
    config = paper_scenario(n_samples=n_samples, seed=seed)
    entries = []
    baseline = None
    digest0 = None
    for workers in counts:
        started = time.perf_counter()
        data = run_experiment(config, workers=workers)
        wall = time.perf_counter() - started
        digest = data.store.digest()
        if workers == 1:
            baseline = wall
            digest0 = digest
        entries.append({
            "name": f"scenario_engine_workers_{workers}",
            "workers": workers,
            "workers_effective": data.workers,
            "wall_seconds": round(wall, 3),
            "speedup": round(baseline / wall, 3) if baseline else None,
            "reports": data.store.report_count,
            "dataset_digest": digest,
            "digest_matches_serial": digest == digest0,
        })
    return {
        "schema": RESULTS_SCHEMA,
        "suite": "parallel_scaling",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "scenario": {
            "preset": "paper",
            "n_samples": n_samples,
            "seed": seed,
            "block_records": config.block_records,
        },
        "benchmarks": entries,
        "equivalent": all(e["digest_matches_serial"] for e in entries),
        "metrics_overhead": run_metrics_overhead(
            min(n_samples, 10_000), seed),
    }


def render(results: dict) -> None:
    scenario = results["scenario"]
    say()
    say(f"Parallel scaling bench (paper mix, "
        f"n={scenario['n_samples']:,}, seed={scenario['seed']}, "
        f"{results['cpu_count']} CPUs)")
    for entry in results["benchmarks"]:
        ok = "ok" if entry["digest_matches_serial"] else "DIGEST MISMATCH"
        say(f"  workers={entry['workers']:<3d} "
            f"{entry['wall_seconds']:8.2f}s  "
            f"speedup {entry['speedup']:5.2f}x  "
            f"({entry['reports']:,} reports, digest {ok})")
    overhead = results["metrics_overhead"]
    say(f"  metrics overhead (n={overhead['n_samples']:,}): "
        f"disabled {overhead['disabled_seconds']:.2f}s, "
        f"enabled {overhead['enabled_seconds']:.2f}s "
        f"({overhead['enabled_over_disabled']:.2f}x)")


def test_parallel_scaling(benchmark):
    """pytest-benchmark entry point: sweep at the harness scale."""
    from conftest import BENCH_SAMPLES, BENCH_SEED

    n = min(BENCH_SAMPLES, 20_000)
    results = run_once(
        benchmark, lambda: run_scaling(n, BENCH_SEED, (1, 2, 4)))
    render(results)
    assert results["equivalent"], "parallel digest diverged from serial"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the sharded parallel scenario engine and "
                    "write a schema'd BENCH_results.json.")
    parser.add_argument("--samples", type=int,
                        default=int(os.environ.get(
                            "REPRO_BENCH_PARALLEL_SAMPLES",
                            str(DEFAULT_SAMPLES))),
                        help=f"population size (default: {DEFAULT_SAMPLES})")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--workers", default=",".join(
                            str(w) for w in DEFAULT_WORKERS),
                        help="comma-separated worker counts "
                             "(default: 1,2,4,8)")
    parser.add_argument("--output", default="BENCH_results.json",
                        help="artifact path (default: BENCH_results.json)")
    parser.add_argument("--require-speedup", type=float, default=None,
                        metavar="X",
                        help="exit non-zero unless some parallel run "
                             "reaches X× over serial")
    args = parser.parse_args(argv)

    workers = tuple(int(w) for w in args.workers.split(","))
    results = run_scaling(args.samples, args.seed, workers)
    render(results)
    Path(args.output).write_text(json.dumps(results, indent=2) + "\n",
                                 encoding="utf-8")
    say(f"\nwrote {args.output}")

    if not results["equivalent"]:
        say("FAIL: parallel digest diverged from serial")
        return 1
    if args.require_speedup is not None:
        best = max(e["speedup"] for e in results["benchmarks"]
                   if e["workers"] > 1)
        if best < args.require_speedup:
            say(f"FAIL: best speedup {best:.2f}x < "
                f"required {args.require_speedup:.2f}x")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
