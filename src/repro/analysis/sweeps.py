"""Seed-robustness sweeps.

A single scenario run is one draw from the generator; before trusting a
headline number, sweep seeds and look at the spread.  `sweep_seeds` runs
the same scenario under several seeds, extracts the headline statistics
the calibration module grades, and reports mean, min/max, and a bootstrap
confidence interval per statistic.

This backs the claim that the reproduction is stable in the seed — the
`bench_seed_robustness` benchmark asserts the headline spreads stay
narrow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.calibration import calibration_report
from repro.analysis.experiment import run_experiment
from repro.errors import ConfigError
from repro.stats.bootstrap import ConfidenceInterval, bootstrap_ci
from repro.synth.scenario import ScenarioConfig


@dataclass(frozen=True)
class SweepStatistic:
    """One headline statistic across the sweep's seeds."""

    name: str
    section: str
    paper_value: float
    values: tuple[float, ...]
    interval: ConfidenceInterval

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def spread(self) -> float:
        return max(self.values) - min(self.values)


@dataclass(frozen=True)
class SeedSweep:
    """All headline statistics across all swept seeds."""

    seeds: tuple[int, ...]
    statistics: tuple[SweepStatistic, ...]

    def statistic(self, name: str) -> SweepStatistic:
        for stat in self.statistics:
            if stat.name == name:
                return stat
        raise KeyError(name)

    def max_relative_spread(self) -> float:
        """Largest spread/mean ratio across statistics with nonzero
        mean — the sweep's single instability score."""
        worst = 0.0
        for stat in self.statistics:
            if abs(stat.mean) > 1e-9:
                worst = max(worst, stat.spread / abs(stat.mean))
        return worst

    def render(self) -> str:
        lines = [f"seed sweep over {list(self.seeds)}:"]
        for stat in self.statistics:
            lines.append(
                f"  {stat.section:6s} {stat.name:42s} "
                f"paper={stat.paper_value:7.3f} "
                f"mean={stat.mean:7.3f} "
                f"range=[{min(stat.values):.3f}, {max(stat.values):.3f}]"
            )
        return "\n".join(lines)


def sweep_seeds(
    config: ScenarioConfig, seeds: Sequence[int]
) -> SeedSweep:
    """Run the scenario once per seed and collect headline statistics."""
    if not seeds:
        raise ConfigError("sweep needs at least one seed")
    per_seed_reports = []
    for seed in seeds:
        data = run_experiment(config.with_(seed=seed))
        per_seed_reports.append(calibration_report(data))

    statistics = []
    reference = per_seed_reports[0]
    for index, target in enumerate(reference.targets):
        values = tuple(report.targets[index].measured
                       for report in per_seed_reports)
        statistics.append(SweepStatistic(
            name=target.name,
            section=target.section,
            paper_value=target.paper_value,
            values=values,
            interval=bootstrap_ci(values, seed=index),
        ))
    return SeedSweep(seeds=tuple(seeds), statistics=tuple(statistics))
