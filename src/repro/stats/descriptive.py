"""Descriptive statistics: moments, quantiles, box-plot summaries.

The paper's box plots (Figures 4, 6, 7) mark the median (orange line), the
mean (green triangle), the interquartile box and 1.5-IQR whiskers, with
outliers excluded from the drawing.  :func:`boxplot_stats` computes
exactly that summary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import InsufficientDataError


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise InsufficientDataError(1, 0, "values for mean")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (n-1 denominator)."""
    if len(values) < 2:
        raise InsufficientDataError(2, len(values), "values for stdev")
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (len(values) - 1))


def quantile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of pre-sorted data (numpy default).

    ``q`` is in [0, 1].  The input must already be sorted ascending — the
    callers below compute several quantiles of the same data and sort once.
    """
    if not sorted_values:
        raise InsufficientDataError(1, 0, "values for quantile")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0,1], got {q}")
    n = len(sorted_values)
    if n == 1:
        return float(sorted_values[0])
    position = q * (n - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high or sorted_values[low] == sorted_values[high]:
        # Equal endpoints: return exactly, avoiding interpolation round-off.
        return float(sorted_values[low])
    frac = position - low
    return float(sorted_values[low]) * (1 - frac) + float(sorted_values[high]) * frac


def median(values: Sequence[float]) -> float:
    """Median via the interpolated quantile."""
    return quantile(sorted(values), 0.5)


@dataclass(frozen=True)
class BoxplotStats:
    """Five-number summary plus mean, in the paper's box-plot convention."""

    count: int
    mean: float
    median: float
    q1: float
    q3: float
    whisker_low: float
    whisker_high: float
    outlier_count: int

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def boxplot_stats(values: Iterable[float]) -> BoxplotStats:
    """Compute the summary a matplotlib-style box plot would draw.

    Whiskers extend to the most extreme data point within 1.5 IQR of the
    box; anything beyond is counted as an outlier (the paper excludes
    these from its figures "for conciseness").
    """
    data = sorted(values)
    if not data:
        raise InsufficientDataError(1, 0, "values for boxplot")
    q1 = quantile(data, 0.25)
    q3 = quantile(data, 0.75)
    iqr = q3 - q1
    low_fence = q1 - 1.5 * iqr
    high_fence = q3 + 1.5 * iqr
    inliers = [v for v in data if low_fence <= v <= high_fence]
    # Whiskers extend outward from the box; when every datum on a side is
    # an outlier (or the interpolated quartile exceeds the data), the
    # whisker collapses onto the box edge, as matplotlib draws it.
    whisker_low = min(inliers[0], q1) if inliers else q1
    whisker_high = max(inliers[-1], q3) if inliers else q3
    return BoxplotStats(
        count=len(data),
        mean=sum(data) / len(data),
        median=quantile(data, 0.5),
        q1=q1,
        q3=q3,
        whisker_low=whisker_low,
        whisker_high=whisker_high,
        outlier_count=len(data) - len(inliers),
    )
