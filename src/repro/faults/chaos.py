"""Chaos wrappers: fault interposition around feed, store and client.

Each wrapper composes over the real object, consults the
:class:`~repro.faults.plan.FaultPlan` for keyed, deterministic decisions,
and counts everything it injects so tests can reconcile losses exactly.

The wrappers sit on the *delivery* side only.  Server-side state — the
service's registry, the :class:`~repro.vt.feed.FeedArchive` — is never
perturbed: an outage loses the collector's copy of a minute, not the
service's, which is precisely why archive backfill can recover it.

:func:`chaos_wrap` is the single entry point.  With no plan (or a plan
that can never fire) it returns the *original* objects — the disabled
fault layer is structurally zero-overhead, which
``benchmarks/bench_collector_resilience.py`` asserts.
"""

from __future__ import annotations

from repro.errors import ServiceUnavailableError, TransientError
from repro.faults.injectors import corrupt_report
from repro.faults.plan import FaultPlan
from repro.obs import NULL_REGISTRY
from repro.store.reportstore import ReportStore
from repro.vt.api import VTClient
from repro.vt.feed import PremiumFeed
from repro.vt.reports import ScanReport

#: What a chaos feed poll yields: intact reports, or corrupted wire bytes
#: the consumer must decode (and dead-letter when undecodable).
Delivery = "ScanReport | bytes"


class ChaosFeed:
    """A premium feed whose delivery path misbehaves on plan.

    Mirrors the :class:`~repro.vt.feed.PremiumFeed` surface; ``poll``
    returns a mixed batch of :class:`ScanReport` and corrupted ``bytes``.
    """

    def __init__(self, feed: PremiumFeed, plan: FaultPlan,
                 metrics=None) -> None:
        self._feed = feed
        self.plan = plan
        self._attempts: dict[int, int] = {}
        self.reports_dropped = 0
        self.reports_duplicated = 0
        self.reports_corrupted = 0
        self.reports_lost_to_outage = 0
        self.transient_failures = 0
        self.outage_polls = 0
        metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_drop = metrics.counter("faults.injected.total", kind="drop")
        self._m_dup = metrics.counter(
            "faults.injected.total", kind="duplicate")
        self._m_corrupt = metrics.counter(
            "faults.injected.total", kind="corrupt")
        self._m_outage = metrics.counter(
            "faults.injected.total", kind="outage_poll")
        self._m_transient = metrics.counter(
            "faults.injected.total", kind="transient")

    # Lifecycle / passthrough ------------------------------------------

    def attach(self) -> None:
        self._feed.attach()

    def detach(self) -> None:
        self._feed.detach()

    def __enter__(self) -> "ChaosFeed":
        self._feed.attach()
        return self

    def __exit__(self, *exc_info) -> None:
        self._feed.detach()

    def pending(self) -> int:
        return self._feed.pending()

    @property
    def cursor(self) -> int:
        return self._feed.cursor

    @property
    def batches_served(self) -> int:
        return self._feed.batches_served

    @property
    def reports_served(self) -> int:
        return self._feed.reports_served

    # Consumption ------------------------------------------------------

    def poll(self, until_minute: int | None = None) -> list:
        """Poll the wrapped feed through the fault plan.

        During an outage minute the buffered reports up to the bound are
        *lost* (detached-listener semantics) and the poll raises
        :class:`~repro.errors.ServiceUnavailableError`; a transient
        failure raises :class:`~repro.errors.TransientError` without
        draining anything.
        """
        if until_minute is None:
            return self._mangle(self._feed.poll())
        minute = until_minute - 1
        if self.plan.in_outage(minute):
            self.reports_lost_to_outage += self._feed.drop_before(until_minute)
            self.outage_polls += 1
            self._m_outage.inc()
            raise ServiceUnavailableError(f"feed outage at minute {minute}")
        attempt = self._attempts.get(minute, 0)
        if self.plan.poll_fails(minute, attempt):
            self._attempts[minute] = attempt + 1
            self.transient_failures += 1
            self._m_transient.inc()
            raise TransientError(f"feed poll failed at minute {minute}",
                                 status=429 if attempt == 0 else 500)
        self._attempts.pop(minute, None)
        return self._mangle(self._feed.poll(until_minute))

    def _mangle(self, batch: list[ScanReport]) -> list:
        out: list = []
        for report in batch:
            sha, when = report.sha256, report.scan_time
            if self.plan.drops(sha, when):
                self.reports_dropped += 1
                self._m_drop.inc()
                continue
            if self.plan.corrupts(sha, when):
                self.reports_corrupted += 1
                self._m_corrupt.inc()
                out.append(corrupt_report(
                    report, self.plan.corruption_rng(sha, when)))
            else:
                out.append(report)
            if self.plan.duplicates(sha, when):
                self.reports_duplicated += 1
                self._m_dup.inc()
                out.append(report)
        return out


class ChaosStore:
    """A report store whose writes fail transiently on plan.

    Only :meth:`ingest_unique` (the collector's write path) is
    interposed; every other attribute delegates to the wrapped store.
    """

    def __init__(self, store: ReportStore, plan: FaultPlan,
                 metrics=None) -> None:
        self._store = store
        self.plan = plan
        self._attempts: dict[tuple[str, int], int] = {}
        self.write_failures = 0
        metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_write_fail = metrics.counter(
            "faults.injected.total", kind="store_write")

    def __getattr__(self, name: str):
        return getattr(self._store, name)

    @property
    def wrapped(self) -> ReportStore:
        return self._store

    def ingest_unique(self, report: ScanReport) -> bool:
        key = (report.sha256, report.scan_time)
        attempt = self._attempts.get(key, 0)
        if self.plan.store_write_fails(report.sha256, report.scan_time,
                                       attempt):
            self._attempts[key] = attempt + 1
            self.write_failures += 1
            self._m_write_fail.inc()
            raise TransientError(
                f"store write failed for {report.sha256[:12]}@{report.scan_time}",
                status=503,
            )
        self._attempts.pop(key, None)
        return self._store.ingest_unique(report)


class ChaosEndpoint:
    """One API endpoint with keyed transient failures in front of it."""

    def __init__(self, endpoint, plan: FaultPlan, kind: str,
                 metrics=None) -> None:
        self._endpoint = endpoint
        self.plan = plan
        self.kind = kind
        self._attempts: dict[object, int] = {}
        self.transient_failures = 0
        metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_fail = metrics.counter(
            "faults.injected.total",
            kind=f"api:{kind}")  # reprolint: disable=RPL105 - kind is one of the two wired endpoint names (report, feed_batch)

    def __call__(self, *args, **kwargs):
        key = args[0] if args else None
        attempt = self._attempts.get(key, 0)
        if self.plan.api_fails(self.kind, key, attempt):
            self._attempts[key] = attempt + 1
            self.transient_failures += 1
            self._m_fail.inc()
            raise TransientError(f"{self.kind} call failed for {key!r}",
                                 status=500)
        self._attempts.pop(key, None)
        return self._endpoint(*args, **kwargs)


class ChaosClient:
    """A VT client whose read endpoints fail transiently on plan.

    ``upload``/``rescan`` pass through untouched — the chaos layer models
    the *collector's* failure domain, and the collector never submits.
    """

    def __init__(self, client: VTClient, plan: FaultPlan,
                 metrics=None) -> None:
        self._client = client
        self.plan = plan
        self.report = ChaosEndpoint(client.report, plan, "report",
                                    metrics=metrics)
        self.feed_batch = ChaosEndpoint(client.feed_batch, plan, "feed_batch",
                                        metrics=metrics)
        self.upload = client.upload
        self.rescan = client.rescan

    def __getattr__(self, name: str):
        return getattr(self._client, name)


def chaos_wrap(
    feed: PremiumFeed,
    store: ReportStore,
    client: VTClient | None,
    plan: FaultPlan | None,
    metrics=None,
):
    """Interpose a fault plan, or return the originals untouched.

    Returns ``(feed, store, client)``.  A ``None`` or fully-disabled plan
    short-circuits to the unwrapped objects: no indirection, no per-call
    checks — disabled fault injection costs nothing.  ``metrics`` feeds
    every injection into ``faults.injected.total{kind=...}``.
    """
    if plan is None or plan.disabled:
        return feed, store, client
    return (
        ChaosFeed(feed, plan, metrics=metrics),
        ChaosStore(store, plan, metrics=metrics),
        ChaosClient(client, plan, metrics=metrics)
        if client is not None else None,
    )
