"""Unit tests for AV-Rank series (repro.core.avrank)."""

import pytest

from repro.core.avrank import (
    AVRankSeries,
    collect_series,
    multi_report_series,
    select_dataset_s,
    split_stable_dynamic,
)
from repro.errors import InsufficientDataError

from conftest import make_report, make_sha


def series(ranks, times=None, file_type="Win32 EXE", fresh=True,
           sha=None) -> AVRankSeries:
    times = times or tuple(range(0, len(ranks) * 1000, 1000))
    return AVRankSeries(
        sha256=sha or make_sha(str(ranks)),
        file_type=file_type,
        fresh=fresh,
        times=tuple(times),
        ranks=tuple(ranks),
    )


class TestSeriesGeometry:
    def test_delta_overall(self):
        assert series([3, 7, 5]).delta_overall == 4
        assert series([2, 2, 2]).delta_overall == 0

    def test_stable_iff_delta_zero(self):
        assert series([4, 4]).stable
        assert not series([4, 5]).stable

    def test_multi(self):
        assert not series([1]).multi
        assert series([1, 1]).multi

    def test_adjacent_deltas(self):
        assert series([1, 4, 2, 2]).adjacent_deltas() == [3, 2, 0]

    def test_span(self):
        s = series([0, 0], times=(0, 2880))
        assert s.span_minutes == 2880
        assert s.span_days == 2.0

    def test_labels_under_threshold(self):
        s = series([0, 5, 10])
        assert s.labels_under(5) == ["B", "M", "M"]
        assert s.labels_under(11) == ["B", "B", "B"]

    def test_empty_rejected(self):
        with pytest.raises(InsufficientDataError):
            series([])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            AVRankSeries("a" * 64, "TXT", True, (0, 1), (1,))

    def test_decreasing_times_rejected(self):
        with pytest.raises(ValueError):
            series([1, 2], times=(100, 50))


class TestFromReports:
    def test_builds_from_reports(self):
        sha = make_sha("x")
        reports = [
            make_report(sha=sha, scan_time=100, labels=[1, 0, 0, 0, 0]),
            make_report(sha=sha, scan_time=200, labels=[1, 1, 0, 0, 0]),
        ]
        s = AVRankSeries.from_reports(reports)
        assert s.ranks == (1, 2)
        assert s.times == (100, 200)
        assert s.fresh

    def test_pre_window_sample_not_fresh(self):
        report = make_report(first_submission=-5)
        assert not AVRankSeries.from_reports([report]).fresh

    def test_empty_reports_rejected(self):
        with pytest.raises(InsufficientDataError):
            AVRankSeries.from_reports([])

    def test_collect_series(self):
        sha = make_sha("y")
        grouped = [(sha, [make_report(sha=sha, scan_time=1)])]
        out = collect_series(grouped)
        assert len(out) == 1
        assert out[0].sha256 == sha


class TestSplit:
    def test_split_partitions_multi_only(self):
        pool = [
            series([1]),          # single-report: excluded
            series([2, 2]),       # stable
            series([2, 3]),       # dynamic
        ]
        stable, dynamic = split_stable_dynamic(pool)
        assert [s.ranks for s in stable] == [(2, 2)]
        assert [s.ranks for s in dynamic] == [(2, 3)]

    def test_multi_report_series_filter(self):
        pool = [series([1]), series([1, 1])]
        assert [s.n for s in multi_report_series(pool)] == [2]


class TestDatasetS:
    def test_requires_dynamic_fresh_top20_multi(self):
        top20 = frozenset({"Win32 EXE"})
        pool = [
            series([1, 5]),                              # in S
            series([1, 1]),                              # stable: out
            series([1, 5], fresh=False),                 # not fresh: out
            series([1, 5], file_type="TYPE_021"),        # minor type: out
            series([5]),                                 # single: out
        ]
        selected = select_dataset_s(pool, top20)
        assert len(selected) == 1
        assert selected[0].delta_overall == 4
