"""The VirusTotal file-type catalogue.

Every VT scan report carries a file-type tag assigned by the service; the
paper observed 351 distinct tags, with the top 20 covering 87 % of samples
(Table 3).  This module reproduces that catalogue: the top-20 types carry
the paper's exact sample shares, the ``NULL`` tag (untyped submissions)
carries its 9.6 % share, and the remaining mass is spread over 330
procedurally named minor types so the catalogue totals 351 tags.

Each type also carries a :class:`FileTypeProfile` describing the *label
dynamics* the paper measured for it (Figure 6): how likely samples of the
type are malicious, how many engines eventually detect its malware, how
fast detections roll in, and how prone benign samples are to false-positive
episodes.  These parameters are the calibration surface for the synthetic
workload — see DESIGN.md §4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError

# Engine/type interaction is expressed through coarse categories: each
# engine has per-category affinity multipliers (see repro.vt.engines).
CATEGORIES = (
    "pe",        # Windows portable executables
    "elf",       # Linux executables / shared objects
    "android",   # DEX / APK
    "document",  # PDF, DOCX, EPUB
    "web",       # HTML, PHP, XML
    "script",    # TXT-ish text payloads, JSON, LNK
    "archive",   # ZIP, GZIP
    "image",     # JPEG, FPX
    "other",     # NULL and the long tail
)


@dataclass(frozen=True)
class FileTypeProfile:
    """Calibrated behaviour of one VirusTotal file type.

    The fields below are the knobs DESIGN.md §4 tunes so the simulator
    reproduces the paper's per-type dynamics (Figure 6) and threshold
    behaviour (Figure 8).  All probabilities are per-sample.
    """

    name: str
    category: str
    #: Share of all samples carrying this type (percent, Table 3 column 3).
    sample_share: float
    #: Relative propensity of this type's samples to be rescanned.  Shapes
    #: the reports column of Table 3 (e.g. Win32 DLL: ~4 reports/sample).
    rescan_boost: float = 1.0
    #: Probability a sample of this type is malicious.
    malicious_prob: float = 0.35
    #: Probability *high-mode* (broad-coverage) malware of this type is
    #: already fully signatured when first submitted (it then scans stable
    #: at plateau).  Low-mode malware uses the fleet-wide
    #: ``BehaviorParams.low_mode_known_prob`` instead.
    known_prob: float = 0.30
    #: Probability the detection plateau is "low mode" (a handful of
    #: engines, PUA-style) rather than broad fleet coverage.
    plateau_low_weight: float = 0.45
    #: Mean fraction of the *eligible* fleet detecting at plateau in high
    #: mode.  Large for PE (broad coverage), small for images.
    plateau_high_frac: float = 0.45
    #: Mean fraction of the plateau already detected at the first scan of a
    #: *fresh, not-yet-known* malicious sample.
    initial_frac_mean: float = 0.55
    #: Timescale (days) over which the remaining engines pick the sample
    #: up.  Short => few large AV-Rank jumps (high adjacent δ, e.g. DLL);
    #: long => gradual drift (low δ but comparable Δ, e.g. TXT/ZIP).
    growth_days: float = 25.0
    #: Probability a benign sample suffers a false-positive episode (a few
    #: engines flag it, then retract after days–weeks).
    fp_episode_prob: float = 0.06
    #: Multiplier on per-engine instability churn for this type (drives
    #: Figure 10's per-type flip-ratio contrasts, e.g. Arcabit on ELF).
    churn_scale: float = 1.0
    #: Per-type override of the minimum initial detectors for fresh
    #: high-mode malware (None = the fleet-wide BehaviorParams floor).
    #: PE malware starts highly detected, which is why the paper's gray
    #: fraction for PE stays under 10 % for every threshold up to 24.
    initial_floor: int | None = None

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise ConfigError(f"unknown category {self.category!r} for {self.name}")
        for attr in (
            "malicious_prob",
            "known_prob",
            "plateau_low_weight",
            "plateau_high_frac",
            "initial_frac_mean",
            "fp_episode_prob",
        ):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{self.name}.{attr} must be in [0,1], got {value}")
        if self.sample_share < 0:
            raise ConfigError(f"{self.name}.sample_share must be >= 0")


def _top20() -> list[FileTypeProfile]:
    """The paper's Table 3 top-20 types with calibrated dynamics profiles."""
    P = FileTypeProfile
    return [
        # PE family: broad coverage, high dynamics (Fig 6: Δ mean 14.08 for
        # Win32 EXE; DLL has the largest adjacent jumps, δ mean 3.25).
        P("Win32 EXE", "pe", 25.2139, rescan_boost=1.7, malicious_prob=0.45,
          known_prob=0.40, plateau_low_weight=0.22, plateau_high_frac=0.72,
          initial_frac_mean=0.52, growth_days=10.0, fp_episode_prob=0.077, initial_floor=22),
        P("TXT", "script", 12.8777, rescan_boost=1.3, malicious_prob=0.22,
          known_prob=0.18, plateau_low_weight=0.60, plateau_high_frac=0.40,
          initial_frac_mean=0.45, growth_days=48.0, fp_episode_prob=0.055),
        P("HTML", "web", 9.7600, rescan_boost=1.2, malicious_prob=0.30,
          known_prob=0.17, plateau_low_weight=0.52, plateau_high_frac=0.44,
          initial_frac_mean=0.45, growth_days=30.0, fp_episode_prob=0.066),
        P("ZIP", "archive", 5.5398, rescan_boost=2.6, malicious_prob=0.30,
          known_prob=0.17, plateau_low_weight=0.52, plateau_high_frac=0.45,
          initial_frac_mean=0.42, growth_days=55.0, fp_episode_prob=0.055),
        P("PDF", "document", 3.9489, rescan_boost=1.7, malicious_prob=0.28,
          known_prob=0.18, plateau_low_weight=0.50, plateau_high_frac=0.46,
          initial_frac_mean=0.45, growth_days=30.0, fp_episode_prob=0.055),
        P("XML", "web", 3.8589, rescan_boost=1.1, malicious_prob=0.16,
          known_prob=0.20, plateau_low_weight=0.62, plateau_high_frac=0.22,
          initial_frac_mean=0.48, growth_days=40.0, fp_episode_prob=0.044),
        P("Win32 DLL", "pe", 2.7766, rescan_boost=4.0, malicious_prob=0.48,
          known_prob=0.38, plateau_low_weight=0.22, plateau_high_frac=0.72,
          initial_frac_mean=0.52, growth_days=6.0, fp_episode_prob=0.088, initial_floor=18),
        P("JSON", "script", 2.5284, rescan_boost=1.2, malicious_prob=0.08,
          known_prob=0.25, plateau_low_weight=0.80, plateau_high_frac=0.12,
          initial_frac_mean=0.5, growth_days=60.0, fp_episode_prob=0.028),
        P("DEX", "android", 2.2345, rescan_boost=1.4, malicious_prob=0.40,
          known_prob=0.18, plateau_low_weight=0.45, plateau_high_frac=0.48,
          initial_frac_mean=0.45, growth_days=25.0, fp_episode_prob=0.055),
        P("ELF executable", "elf", 1.9266, rescan_boost=1.15, malicious_prob=0.45,
          known_prob=0.17, plateau_low_weight=0.42, plateau_high_frac=0.52,
          initial_frac_mean=0.45, growth_days=22.0, fp_episode_prob=0.072,
          churn_scale=1.8),
        P("Win64 EXE", "pe", 1.4529, rescan_boost=3.4, malicious_prob=0.45,
          known_prob=0.25, plateau_low_weight=0.34, plateau_high_frac=0.58,
          initial_frac_mean=0.42, growth_days=14.0, fp_episode_prob=0.077, initial_floor=22),
        P("Win64 DLL", "pe", 1.1879, rescan_boost=2.6, malicious_prob=0.46,
          known_prob=0.38, plateau_low_weight=0.22, plateau_high_frac=0.70,
          initial_frac_mean=0.52, growth_days=10.0, fp_episode_prob=0.083, initial_floor=18),
        P("ELF shared library", "elf", 1.0139, rescan_boost=1.1,
          malicious_prob=0.20, known_prob=0.25, plateau_low_weight=0.70,
          plateau_high_frac=0.20, initial_frac_mean=0.5, growth_days=35.0,
          fp_episode_prob=0.033),
        P("EPUB", "document", 0.9268, rescan_boost=1.7, malicious_prob=0.06,
          known_prob=0.28, plateau_low_weight=0.85, plateau_high_frac=0.10,
          initial_frac_mean=0.55, growth_days=40.0, fp_episode_prob=0.022),
        P("LNK", "script", 0.8612, rescan_boost=1.15, malicious_prob=0.42,
          known_prob=0.18, plateau_low_weight=0.50, plateau_high_frac=0.35,
          initial_frac_mean=0.5, growth_days=20.0, fp_episode_prob=0.050),
        P("FPX", "image", 0.7643, rescan_boost=1.3, malicious_prob=0.05,
          known_prob=0.28, plateau_low_weight=0.88, plateau_high_frac=0.08,
          initial_frac_mean=0.55, growth_days=45.0, fp_episode_prob=0.022),
        P("PHP", "web", 0.6959, rescan_boost=1.08, malicious_prob=0.35,
          known_prob=0.22, plateau_low_weight=0.62, plateau_high_frac=0.22,
          initial_frac_mean=0.52, growth_days=30.0, fp_episode_prob=0.033),
        P("DOCX", "document", 0.3792, rescan_boost=1.6, malicious_prob=0.30,
          known_prob=0.18, plateau_low_weight=0.48, plateau_high_frac=0.36,
          initial_frac_mean=0.48, growth_days=25.0, fp_episode_prob=0.055),
        P("GZIP", "archive", 0.3790, rescan_boost=1.6, malicious_prob=0.12,
          known_prob=0.25, plateau_low_weight=0.75, plateau_high_frac=0.14,
          initial_frac_mean=0.52, growth_days=45.0, fp_episode_prob=0.033),
        P("JPEG", "image", 0.3547, rescan_boost=1.4, malicious_prob=0.04,
          known_prob=0.30, plateau_low_weight=0.90, plateau_high_frac=0.06,
          initial_frac_mean=0.55, growth_days=50.0, fp_episode_prob=0.017),
    ]


#: Number of distinct file-type tags the paper observed.
TOTAL_FILE_TYPE_COUNT = 351

#: Sample share (percent) of the NULL (untyped) tag in Table 3.
NULL_SHARE = 9.6048

#: Sample share (percent) of the "Others" row in Table 3, spread over the
#: procedurally generated minor types.
OTHERS_SHARE = 11.7140


def _minor_types() -> list[FileTypeProfile]:
    """The 330 minor types sharing Table 3's "Others" mass.

    Shares decay geometrically so a handful of "medium" types exist along
    with a very long tail, mirroring the real catalogue.
    """
    count = TOTAL_FILE_TYPE_COUNT - 20 - 1  # minus top-20 and NULL
    ratio = 0.98
    weights = [ratio**i for i in range(count)]
    scale = OTHERS_SHARE / sum(weights)
    types = []
    for i, w in enumerate(weights):
        types.append(
            FileTypeProfile(
                name=f"TYPE_{i + 21:03d}",
                category="other",
                sample_share=w * scale,
                rescan_boost=0.6,
                malicious_prob=0.15,
                known_prob=0.55,
                plateau_low_weight=0.75,
                plateau_high_frac=0.15,
                initial_frac_mean=0.55,
                growth_days=40.0,
                fp_episode_prob=0.017,
            )
        )
    return types


_NULL_TYPE = FileTypeProfile(
    name="NULL",
    category="other",
    sample_share=NULL_SHARE,
    rescan_boost=0.75,
    malicious_prob=0.18,
    known_prob=0.55,
    plateau_low_weight=0.70,
    plateau_high_frac=0.18,
    initial_frac_mean=0.55,
    growth_days=35.0,
    fp_episode_prob=0.017,
)

#: Ordered catalogue of every file type: top-20, NULL, then the minor tail.
FILE_TYPES: dict[str, FileTypeProfile] = {
    p.name: p for p in (*_top20(), _NULL_TYPE, *_minor_types())
}

#: The paper's top-20 type names, in Table 3 order.
TOP20_FILE_TYPES: tuple[str, ...] = tuple(p.name for p in _top20())

#: The types the paper folds together as "PE files" in §5.4.3.
PE_FILE_TYPES: frozenset[str] = frozenset(
    {"Win32 EXE", "Win32 DLL", "Win64 EXE", "Win64 DLL"}
)


def file_type_profile(name: str) -> FileTypeProfile:
    """Look up the profile for a file-type tag.

    Raises :class:`~repro.errors.ConfigError` for unknown tags so typos in
    scenario configs fail fast.
    """
    try:
        return FILE_TYPES[name]
    except KeyError:
        raise ConfigError(f"unknown file type: {name!r}") from None


def is_pe_type(name: str) -> bool:
    """Whether ``name`` belongs to the paper's PE grouping (§5.4.3)."""
    return name in PE_FILE_TYPES


def sample_share_weights() -> tuple[tuple[str, ...], tuple[float, ...]]:
    """Parallel (names, weights) tuples for drawing file types by share."""
    names = tuple(FILE_TYPES)
    weights = tuple(FILE_TYPES[n].sample_share for n in names)
    return names, weights
