"""Deterministic sharded parallel execution of scenario experiments.

The serial experiment loop simulates every scan on one core.  This
package partitions a scenario's sample population into K deterministic
shards, runs each shard's generate→scan→ingest loop in its own worker
process (own service, own engine fleet, own store), and merges the frozen
shard stores back into one — **bit-identically** to the serial run:

* every sample's randomness is keyed by its global index and hash, so a
  shard's reports do not depend on K, on scheduling, or on which worker
  ran it (:mod:`repro.parallel.sharding`);
* each worker replays its shard's events in global time order, so
  per-sample RNG streams advance exactly as serially
  (:mod:`repro.parallel.worker`);
* the merge splices per-month record streams by
  ``(scan_time, global_sample_index)`` — the serial ingest order — at
  block granularity where shards do not overlap in time
  (:mod:`repro.store.merge`).

The equivalence contract: ``run_experiment(config, workers=K)`` yields a
store whose :meth:`~repro.store.reportstore.ReportStore.digest` equals
the serial run's, for every K.
"""

from repro.parallel.sharding import ShardSpec, partition_samples, resolve_workers
from repro.parallel.worker import RangeRun, ShardRun, execute_range, run_shard

__all__ = [
    "ShardSpec",
    "partition_samples",
    "resolve_workers",
    "RangeRun",
    "ShardRun",
    "execute_range",
    "run_shard",
]
