"""Ablation: rescan cadence vs hazard-flip share (§7.1.1's disagreement).

The paper finds hazard flips essentially absent in organic scan data and
speculates the disagreement with Zhu et al. (who found >50 % hazards)
comes from measurement protocol: Zhu rescanned every sample daily, which
captures both edges of transient episodes.  This ablation reproduces that
explanation inside the simulator: the same population scanned organically
vs on a forced dense daily schedule.
"""

from __future__ import annotations

from repro.analysis.experiment import run_experiment
from repro.core.flips import analyze_flips
from repro.synth.scenario import dynamics_scenario

from conftest import run_once, say

SAMPLES = 2_500


def _hazard_stats(interval_days: float, sigma: float,
                  forced_reports: int | None) -> tuple[float, float]:
    """Returns (hazards per 1000 samples, hazard share of flips)."""
    config = dynamics_scenario(SAMPLES, seed=77).with_(
        interval_median_days_malicious=interval_days,
        interval_median_days_benign=interval_days,
        interval_sigma=sigma,
        forced_report_count=forced_reports,
    )
    data = run_experiment(config)
    stats = analyze_flips(data.store.iter_sample_reports(),
                          data.engine_names)
    per_sample = 1000.0 * stats.total_hazards / stats.sample_count
    share = (stats.total_hazards / stats.total_flips
             if stats.total_flips else 0.0)
    return per_sample, share


def test_ablation_rescan_cadence(benchmark):
    organic = run_once(benchmark,
                       lambda: _hazard_stats(6.0, 1.6, None))
    daily = _hazard_stats(1.0, 0.15, 150)

    say()
    say("Ablation: hazard flips vs rescan cadence")
    say(f"  organic rescans (median ~6d): {organic[0]:6.2f} hazards per "
          f"1000 samples, {organic[1]:.3%} of flips (paper: ~0%)")
    say(f"  dense daily rescans (150x)  : {daily[0]:6.2f} hazards per "
          "1000 samples (Zhu et al.'s protocol captures both edges of "
          "transient FP episodes)")

    # Organic scanning shows the paper's near-zero hazard share...
    assert organic[1] < 0.02
    # ...and dense daily rescanning captures far more transient episodes.
    assert daily[0] > 1.8 * organic[0]
