"""Unit tests for the file-type catalogue (repro.vt.filetypes)."""

import pytest

from repro.errors import ConfigError
from repro.vt import filetypes as ft


class TestCatalogue:
    def test_total_351_types(self):
        assert len(ft.FILE_TYPES) == 351

    def test_top20_matches_paper_order(self):
        assert ft.TOP20_FILE_TYPES[0] == "Win32 EXE"
        assert ft.TOP20_FILE_TYPES[1] == "TXT"
        assert ft.TOP20_FILE_TYPES[-1] == "JPEG"
        assert len(ft.TOP20_FILE_TYPES) == 20

    def test_win32_exe_share_from_table3(self):
        assert ft.FILE_TYPES["Win32 EXE"].sample_share == pytest.approx(25.2139)

    def test_null_share_from_table3(self):
        assert ft.FILE_TYPES["NULL"].sample_share == pytest.approx(9.6048)

    def test_shares_sum_to_100(self):
        total = sum(p.sample_share for p in ft.FILE_TYPES.values())
        assert total == pytest.approx(100.0, abs=0.01)

    def test_minor_types_carry_others_mass(self):
        minor = [p for name, p in ft.FILE_TYPES.items()
                 if name.startswith("TYPE_")]
        assert len(minor) == 330
        assert sum(p.sample_share for p in minor) == pytest.approx(
            ft.OTHERS_SHARE, abs=1e-6
        )

    def test_minor_type_shares_decay(self):
        minor = [p.sample_share for name, p in ft.FILE_TYPES.items()
                 if name.startswith("TYPE_")]
        assert all(b <= a for a, b in zip(minor, minor[1:], strict=False))

    def test_every_type_has_valid_category(self):
        for profile in ft.FILE_TYPES.values():
            assert profile.category in ft.CATEGORIES


class TestPEGrouping:
    def test_pe_types_match_section_5_4_3(self):
        assert ft.PE_FILE_TYPES == {
            "Win32 EXE", "Win32 DLL", "Win64 EXE", "Win64 DLL"
        }

    def test_is_pe_type(self):
        assert ft.is_pe_type("Win32 EXE")
        assert not ft.is_pe_type("PDF")
        assert not ft.is_pe_type("ELF executable")


class TestProfileValidation:
    def test_unknown_category_rejected(self):
        with pytest.raises(ConfigError):
            ft.FileTypeProfile("X", "nonsense", 1.0)

    def test_probability_bounds_enforced(self):
        with pytest.raises(ConfigError):
            ft.FileTypeProfile("X", "pe", 1.0, malicious_prob=1.5)
        with pytest.raises(ConfigError):
            ft.FileTypeProfile("X", "pe", 1.0, fp_episode_prob=-0.1)

    def test_negative_share_rejected(self):
        with pytest.raises(ConfigError):
            ft.FileTypeProfile("X", "pe", -1.0)

    def test_lookup_unknown_type_raises(self):
        with pytest.raises(ConfigError):
            ft.file_type_profile("definitely-not-a-type")

    def test_lookup_known_type(self):
        assert ft.file_type_profile("PDF").category == "document"


class TestDynamicsCalibration:
    """The per-type knobs must encode the paper's Figure 6 orderings."""

    def test_dll_has_fastest_growth(self):
        dll = ft.FILE_TYPES["Win32 DLL"].growth_days
        assert dll <= min(
            ft.FILE_TYPES[t].growth_days
            for t in ft.TOP20_FILE_TYPES if t != "Win32 DLL"
        )

    def test_pe_plateaus_above_low_dynamics_types(self):
        for quiet in ("JPEG", "FPX", "EPUB", "JSON"):
            assert (ft.FILE_TYPES["Win32 EXE"].plateau_high_frac
                    > ft.FILE_TYPES[quiet].plateau_high_frac)

    def test_quiet_types_mostly_low_mode(self):
        for quiet in ("JPEG", "FPX", "EPUB", "JSON"):
            assert ft.FILE_TYPES[quiet].plateau_low_weight >= 0.7

    def test_elf_executable_has_churn_boost(self):
        # Arcabit's Figure 10 contrast needs extra churn on ELF.
        assert ft.FILE_TYPES["ELF executable"].churn_scale > 1.0

    def test_dll_rescan_boost_highest(self):
        # Table 3: Win32 DLL averages ~4 reports per sample.
        assert ft.FILE_TYPES["Win32 DLL"].rescan_boost == max(
            p.rescan_boost for p in ft.FILE_TYPES.values()
        )

    def test_pe_has_initial_floor_override(self):
        for pe in ft.PE_FILE_TYPES:
            assert ft.FILE_TYPES[pe].initial_floor is not None
        assert ft.FILE_TYPES["TXT"].initial_floor is None


class TestWeights:
    def test_sample_share_weights_aligned(self):
        names, weights = ft.sample_share_weights()
        assert len(names) == len(weights) == 351
        index = names.index("Win32 EXE")
        assert weights[index] == pytest.approx(25.2139)
