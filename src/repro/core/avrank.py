"""AV-Rank trajectories and the stable/dynamic sample split (§5.1-5.2).

The paper's central object is the **AV-Rank** of a sample at a scan — the
number of engines answering "malicious" (VT's ``positives``).  An
:class:`AVRankSeries` is a sample's time-ordered sequence of AV-Ranks;
the dataset-level analyses operate on collections of these.

The paper's stable/dynamic split (§5.1): a sample with more than one
report is *stable* when Δ = p_max − p_min = 0 over all its scans, and
*dynamic* otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import InsufficientDataError
from repro.vt.clock import MINUTES_PER_DAY
from repro.vt.reports import ScanReport


@dataclass(frozen=True)
class AVRankSeries:
    """One sample's AV-Rank trajectory over its scans."""

    sha256: str
    file_type: str
    fresh: bool
    times: tuple[int, ...]
    ranks: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.times) != len(self.ranks):
            raise ValueError("times/ranks length mismatch")
        if not self.times:
            raise InsufficientDataError(1, 0, "reports in series")
        if any(b < a for a, b in zip(self.times, self.times[1:], strict=False)):
            raise ValueError("series times must be non-decreasing")

    @classmethod
    def from_reports(cls, reports: Sequence[ScanReport]) -> "AVRankSeries":
        """Build a series from one sample's time-sorted reports."""
        if not reports:
            raise InsufficientDataError(1, 0, "reports")
        first = reports[0]
        return cls(
            sha256=first.sha256,
            file_type=first.file_type,
            fresh=first.first_submission_date >= 0,
            times=tuple(r.scan_time for r in reports),
            ranks=tuple(r.positives for r in reports),
        )

    # ------------------------------------------------------------------
    # Basic geometry
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of scans."""
        return len(self.ranks)

    @property
    def multi(self) -> bool:
        """Whether dynamics are measurable (more than one scan, §5.1)."""
        return self.n > 1

    @property
    def p_max(self) -> int:
        return max(self.ranks)

    @property
    def p_min(self) -> int:
        return min(self.ranks)

    @property
    def delta_overall(self) -> int:
        """Δ = p_max − p_min over the whole series (§5.1)."""
        return self.p_max - self.p_min

    @property
    def stable(self) -> bool:
        """The paper's stable-sample criterion: Δ = 0."""
        return self.delta_overall == 0

    @property
    def span_minutes(self) -> int:
        """Time between the first and last scan."""
        return self.times[-1] - self.times[0]

    @property
    def span_days(self) -> float:
        return self.span_minutes / MINUTES_PER_DAY

    def adjacent_deltas(self) -> list[int]:
        """δ_i = |p_i − p_{i−1}| for consecutive scans (§5.3.2)."""
        return [abs(b - a) for a, b in zip(self.ranks, self.ranks[1:], strict=False)]

    def labels_under(self, threshold: int) -> list[str]:
        """The "B"/"M" sequence under a voting threshold (§6.2)."""
        return ["M" if rank >= threshold else "B" for rank in self.ranks]


def collect_series(
    sample_reports: Iterable[tuple[str, Sequence[ScanReport]]],
) -> list[AVRankSeries]:
    """Build series for every sample from grouped, time-sorted reports.

    ``sample_reports`` is what
    :meth:`repro.store.ReportStore.iter_sample_reports` yields.
    """
    return [AVRankSeries.from_reports(reports)
            for _, reports in sample_reports]


def multi_report_series(
    series: Iterable[AVRankSeries],
) -> Iterator[AVRankSeries]:
    """Only the series whose dynamics are measurable (n > 1)."""
    return (s for s in series if s.multi)


def split_stable_dynamic(
    series: Iterable[AVRankSeries],
) -> tuple[list[AVRankSeries], list[AVRankSeries]]:
    """Partition multi-report series into (stable, dynamic) per §5.1.

    Single-report series are excluded entirely, as in the paper ("the
    evolutionary trajectory ... could not be captured for the sample with
    only one report").
    """
    stable: list[AVRankSeries] = []
    dynamic: list[AVRankSeries] = []
    for s in series:
        if not s.multi:
            continue
        (stable if s.stable else dynamic).append(s)
    return stable, dynamic


def select_dataset_s(
    series: Iterable[AVRankSeries],
    top20: frozenset[str] | set[str],
) -> list[AVRankSeries]:
    """The paper's analysis dataset *S* (§5.3.1): **dynamic** samples
    (Δ > 0) that are fresh and belong to the top-20 file types.

    Figure 5 shows Δ ranging from 1 and §5.4.1 calls S "the fresh dynamic
    samples", so stable samples are excluded by construction.
    """
    return [
        s for s in series
        if s.multi and s.fresh and s.delta_overall > 0
        and s.file_type in top20
    ]
