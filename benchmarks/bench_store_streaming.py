"""Store hot path: columnar throughput, streaming bound, cache behaviour.

Two benches share this module:

**Columnar ingest+scan throughput.**  The v3 columnar pipeline — array
ingest (`ReportStore.ingest_arrays`), dictionary/delta block encoding
and the `SeriesFrame` numpy kernels — against the row pipeline doing the
same work with per-report `ScanReport` objects and the python analysis
helpers.  Both legs run the identical paper workload (samples scanned in
interleaved waves, ~14 reports per sample as in the 847 M / 60 M ratio
of Table 2) and must agree on the store digest *and* on every analysis
result before either wall-clock counts; the throughput ratio is the
headline number recorded in ``BENCH_results.json``.

**Streaming memory bound.**  The write-aware retrieval rebuild replaced
"materialise every report in one dict" grouping with a block-order
streaming pass whose resident set is bounded by the samples *live*
across the current block window; the bench checks the high-water mark
against the bound and reports the block cache's hit rate.

Dual mode, mirroring ``bench_parallel_scaling.py``:

* under pytest-benchmark (``pytest benchmarks/ --benchmark-only``) both
  benches run once at harness scale and print their tables;
* as a script (``python benchmarks/bench_store_streaming.py``) the
  columnar A/B runs standalone and writes a schema'd results artifact —
  the file the CI benchmarks job uploads beside the scaling results.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.avrank import collect_series, select_dataset_s, split_stable_dynamic
from repro.core.metrics import pairwise_differences
from repro.store.columnar import ColumnarBatch
from repro.store.reportstore import ReportStore
from repro.vt.clock import MINUTES_PER_DAY
from repro.vt.reports import ScanReport, encode_labels
from repro.vt.samples import sha256_of

try:  # pytest mode — absent when run as a plain script
    from conftest import run_once, say
except ImportError:  # pragma: no cover - script mode
    run_once = None

    def say(*args: object) -> None:
        print(*args)

#: Schema identifier for the benchmark artifact.
RESULTS_SCHEMA = "repro-bench/1"

#: Workload shape: samples arrive in waves; scans of one wave interleave.
N_SAMPLES = 5_000
SCANS_EACH = 4
WAVE = 50
BLOCK_RECORDS = 256
_N_ENGINES = 70

#: Columnar A/B defaults: paper-shaped workload (≈14 reports/sample as
#: in Table 2's 847 M reports over 60 M samples), fleet of 70 engines.
AB_SAMPLES = 2_000
AB_SCANS_EACH = 14
AB_WIDTH = 70
AB_BLOCK_RECORDS = 1_024
AB_REPS = 3
AB_SEED = 42
#: Voting thresholds for the §6.2 label-flip counts.
AB_THRESHOLDS = (2, 5, 11)
#: Dataset-S file-type filter for the §5 pairwise extraction.
AB_TOP_TYPES = frozenset(["Win32 EXE", "PDF"])
_AB_FTYPES = ("Win32 EXE", "PDF", "Android", "ELF")


# ---------------------------------------------------------------------------
# Columnar ingest+scan A/B


def _ab_workload(n_samples: int, scans_each: int, width: int, seed: int):
    """Array-form scan feed: every column the two legs will consume.

    Scans interleave across samples (wave order, like the collector's
    rescan queue), ranks random-walk around a per-sample base, and the
    fleet version vector advances one engine every ~1000 records.
    """
    rng = np.random.default_rng(seed)
    n = n_samples * scans_each
    sample = np.repeat(np.arange(n_samples), scans_each)
    wave = np.tile(np.arange(scans_each), n_samples)
    times = (wave * 7200 + sample).astype(np.int64)
    order = np.argsort(times, kind="stable")
    sample, times = sample[order], times[order]
    sha_digests = rng.integers(0, 256, (n_samples, 32), dtype=np.uint8)
    ranks = np.clip(
        rng.integers(0, 30, n_samples)[sample] + rng.integers(-2, 3, n),
        0, width).astype(np.int64)
    ft_codes = (sample % len(_AB_FTYPES)).astype("<u2")
    fresh = (sample % 5 != 0)
    labels = np.zeros((n, width), np.uint8)
    labels[np.repeat(np.arange(n), ranks),
           np.concatenate([np.arange(r) for r in ranks.tolist()])] = 1
    versions = np.full((n, width), 7, "<u4")
    steps = np.arange(n) // 1000
    versions[np.arange(n), steps % width] += steps.astype("<u4")
    return sample, times, sha_digests, ranks, ft_codes, fresh, labels, versions


def _columnar_leg(work, width: int, block_records: int) -> ReportStore:
    """Bulk array ingest through the v3 columnar path."""
    sample, times, sha_digests, ranks, ft_codes, fresh, labels, versions = work
    n = len(times)
    batch = ColumnarBatch(
        scan_time=times.astype("<i8"),
        positives=ranks.astype("<u2"),
        total=np.full(n, width, "<u2"),
        first_submission=np.where(fresh[sample], 0, -1).astype("<i8"),
        last_submission=np.zeros(n, "<i8"),
        last_analysis=times.astype("<i8"),
        times_submitted=np.ones(n, "<u4"),
        n_engines=np.full(n, width, "<u2"),
        ftype_codes=ft_codes[sample].astype("<u2"),
        ftypes=_AB_FTYPES,
        shas=np.ascontiguousarray(sha_digests[sample]).view("S32").ravel(),
        labels=labels.ravel(),
        versions=versions.ravel(),
    )
    store = ReportStore(block_records=block_records, block_format="columnar")
    store.ingest_arrays(batch)
    store.close()
    return store


def _columnar_scan(store: ReportStore, thresholds, top_types) -> tuple:
    """The analysis suite as SeriesFrame kernel passes."""
    frame = store.series_frame()
    multi = frame.multi_mask()
    delta = frame.delta_overall()
    s_mask = frame.dataset_s_mask(top_types)
    sub = frame.select(s_mask)
    intervals, diffs = sub.pairwise_diffs()
    return (int(frame.stable_mask().sum()),
            int(frame.dynamic_mask().sum()),
            int(delta[multi].sum()),
            int(frame.adjacent_deltas().sum()),
            int(s_mask.sum()),
            int(frame.span_minutes().sum()),
            tuple(frame.label_flips(t) for t in thresholds),
            len(diffs), int(diffs.sum()), int(intervals.sum()))


def _row_leg(work, width: int, block_records: int) -> ReportStore:
    """Per-report ingest through the row path."""
    sample, times, sha_digests, ranks, ft_codes, fresh, labels, versions = work
    n = len(times)
    hexes = [sha_digests[i].tobytes().hex() for i in range(len(sha_digests))]
    firsts = np.where(fresh[sample], 0, -1).tolist()
    tl, rl = times.tolist(), ranks.tolist()
    sl, fl = sample.tolist(), ft_codes.tolist()
    lab_blob = labels.tobytes()
    vl = versions.tolist()
    store = ReportStore(block_records=block_records, block_format="row")
    for i in range(n):
        s = sl[i]
        store.ingest(ScanReport(
            sha256=hexes[s],
            file_type=_AB_FTYPES[fl[s]],
            scan_time=tl[i],
            positives=rl[i],
            total=width,
            labels=lab_blob[i * width:(i + 1) * width],
            versions=tuple(vl[i]),
            first_submission_date=firsts[i],
            last_submission_date=0,
            last_analysis_date=tl[i],
            times_submitted=1,
        ))
    store.close()
    return store


def _row_scan(store: ReportStore, thresholds, top_types) -> tuple:
    """The same analysis suite over python AVRankSeries objects."""
    series = collect_series(store.iter_sample_reports())
    stable, dynamic = split_stable_dynamic(series)
    flips = []
    for t in thresholds:
        count = 0
        for s in series:
            lab = s.labels_under(t)
            count += sum(1 for a, b in zip(lab, lab[1:]) if a != b)
        flips.append(count)
    dataset_s = select_dataset_s(series, top_types)
    pairs = pairwise_differences(dataset_s, max_pairs_per_sample=10 ** 9)
    interval_minutes = round(sum(pairs.interval_days) * MINUTES_PER_DAY)
    return (len(stable), len(dynamic),
            sum(s.delta_overall for s in series if s.multi),
            sum(d for s in series for d in s.adjacent_deltas()),
            len(dataset_s),
            sum(s.span_minutes for s in series),
            tuple(flips),
            len(pairs), sum(pairs.rank_diffs), interval_minutes)


def run_columnar_ab(n_samples: int = AB_SAMPLES,
                    scans_each: int = AB_SCANS_EACH,
                    reps: int = AB_REPS,
                    seed: int = AB_SEED,
                    block_records: int = AB_BLOCK_RECORDS) -> dict:
    """Best-of-``reps`` A/B; returns the BENCH artifact payload.

    Every rep cross-checks the two legs: store digests byte-identical,
    all integer analysis results equal, and the float-accumulated
    pairwise interval sum within one minute of the integer kernel's.
    """
    width = AB_WIDTH
    work = _ab_workload(n_samples, scans_each, width, seed)
    best = {"col_ingest": None, "col_scan": None,
            "row_ingest": None, "row_scan": None}

    def keep(key: str, wall: float) -> None:
        if best[key] is None or wall < best[key]:
            best[key] = wall

    digest = None
    for _ in range(max(reps, 1)):
        started = time.perf_counter()
        col_store = _columnar_leg(work, width, block_records)
        keep("col_ingest", time.perf_counter() - started)

        started = time.perf_counter()
        col_metrics = _columnar_scan(col_store, AB_THRESHOLDS, AB_TOP_TYPES)
        keep("col_scan", time.perf_counter() - started)

        started = time.perf_counter()
        row_store = _row_leg(work, width, block_records)
        keep("row_ingest", time.perf_counter() - started)

        started = time.perf_counter()
        row_metrics = _row_scan(row_store, AB_THRESHOLDS, AB_TOP_TYPES)
        keep("row_scan", time.perf_counter() - started)

        digest = col_store.digest()
        if digest != row_store.digest():
            raise AssertionError("columnar digest diverged from row")
        if list(col_metrics)[:9] != list(row_metrics)[:9]:
            raise AssertionError(
                f"analysis mismatch: {col_metrics} != {row_metrics}")
        # The row leg accumulates intervals in float days; allow one
        # minute of rounding drift on the sum.
        if abs(col_metrics[9] - row_metrics[9]) > 1:
            raise AssertionError(
                f"interval sum drift: {col_metrics[9]} vs {row_metrics[9]}")

    n_reports = n_samples * scans_each
    col_wall = best["col_ingest"] + best["col_scan"]
    row_wall = best["row_ingest"] + best["row_scan"]
    return {
        "schema": RESULTS_SCHEMA,
        "suite": "store_columnar",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "scenario": {
            "n_samples": n_samples,
            "scans_each": scans_each,
            "reports": n_reports,
            "engines": width,
            "block_records": block_records,
            "seed": seed,
            "reps_best_of": reps,
        },
        "benchmarks": [
            {"name": "columnar_ingest", "wall_seconds": round(best["col_ingest"], 4),
             "reports_per_second": round(n_reports / best["col_ingest"])},
            {"name": "columnar_scan", "wall_seconds": round(best["col_scan"], 4),
             "reports_per_second": round(n_reports / best["col_scan"])},
            {"name": "row_ingest", "wall_seconds": round(best["row_ingest"], 4),
             "reports_per_second": round(n_reports / best["row_ingest"])},
            {"name": "row_scan", "wall_seconds": round(best["row_scan"], 4),
             "reports_per_second": round(n_reports / best["row_scan"])},
        ],
        "speedup": {
            "ingest": round(best["row_ingest"] / best["col_ingest"], 2),
            "scan": round(best["row_scan"] / best["col_scan"], 2),
            "combined": round(row_wall / col_wall, 2),
        },
        "dataset_digest": digest,
        "digest_matches_row": True,
        "metrics_match_row": True,
    }


def render_columnar(results: dict) -> None:
    scenario = results["scenario"]
    say()
    say(f"Columnar vs row ingest+scan bench "
        f"(n={scenario['reports']:,} reports, "
        f"{scenario['n_samples']:,} samples x {scenario['scans_each']}, "
        f"{scenario['engines']} engines, block={scenario['block_records']}, "
        f"best of {scenario['reps_best_of']})")
    walls = {e["name"]: e["wall_seconds"] for e in results["benchmarks"]}
    say(f"  columnar : ingest {walls['columnar_ingest']:7.3f}s  "
        f"scan {walls['columnar_scan']:7.3f}s")
    say(f"  row      : ingest {walls['row_ingest']:7.3f}s  "
        f"scan {walls['row_scan']:7.3f}s")
    sp = results["speedup"]
    say(f"  speedup  : ingest {sp['ingest']:5.1f}x  scan {sp['scan']:5.1f}x  "
        f"combined {sp['combined']:5.1f}x")
    say(f"  digest   : {results['dataset_digest'][:16]}… "
        f"(row and columnar identical, all analyses equal)")


def test_columnar_throughput(benchmark):
    """pytest-benchmark entry point: the A/B at a reduced scale.

    The equality gates (digest + every analysis result) run at full
    strength; only the wall-clock floor is relaxed because CI machines
    are noisy.
    """
    results = run_once(
        benchmark,
        lambda: run_columnar_ab(n_samples=600, scans_each=8, reps=1))
    render_columnar(results)
    assert results["digest_matches_row"]
    assert results["metrics_match_row"]
    assert results["speedup"]["combined"] >= 2.0


# ---------------------------------------------------------------------------
# Streaming memory bound


def _report(sha: str, when: int, rank: int) -> ScanReport:
    labels = [1] * rank + [0] * (_N_ENGINES - rank)
    return ScanReport(
        sha256=sha,
        file_type="Win32 EXE",
        scan_time=when,
        positives=rank,
        total=_N_ENGINES,
        labels=encode_labels(labels),
        versions=tuple([1] * _N_ENGINES),
        first_submission_date=0,
        last_submission_date=0,
        last_analysis_date=when,
        times_submitted=1,
    )


def _build_store() -> ReportStore:
    store = ReportStore(block_records=BLOCK_RECORDS)
    events = []
    for i in range(N_SAMPLES):
        sha = sha256_of(f"stream{i}")
        wave_start = (i // WAVE) * (WAVE * SCANS_EACH)
        for k in range(SCANS_EACH):
            when = wave_start + k * WAVE + (i % WAVE)
            events.append((when, sha))
    events.sort()
    for when, sha in events:
        store.ingest(_report(sha, when, rank=(when % 30)))
    store.close()
    return store


def test_streaming_memory_bound(benchmark):
    store = _build_store()

    def stream():
        count = 0
        for _, reports in store.iter_sample_reports():
            count += len(reports)
        return count

    streamed = run_once(benchmark, stream)
    stats = store.cache_stats()
    total = store.report_count
    bound = WAVE * SCANS_EACH + BLOCK_RECORDS

    # Random access re-reads over a shuffled sample order, twice, to
    # exercise the bytes-bounded LRU.
    shas = [sha256_of(f"stream{i}") for i in range(N_SAMPLES)]
    random.Random(7).shuffle(shas)
    for sha in shas * 2:
        store.reports_for(sha)
    cache = store.cache_stats()

    say()
    say("Store streaming / cache bench "
        f"(n={total:,} reports, {N_SAMPLES:,} samples, "
        f"block={BLOCK_RECORDS}, wave={WAVE}x{SCANS_EACH})")
    say(f"  peak resident reports : {stats.peak_stream_reports:7,} "
        f"(bound {bound:,}; dict grouping held {total:,})")
    say(f"  residency vs store    : {stats.peak_stream_reports / total:7.1%}")
    say(f"  cache hit rate        : {cache.hit_rate:7.1%} "
        f"({cache.hits:,} hits / {cache.lookups:,} lookups)")
    say(f"  cache resident        : {cache.bytes_resident / 1e6:7.2f} MB "
        f"of {cache.bytes_limit / 1e6:.0f} MB, "
        f"{cache.evictions:,} evictions")

    assert streamed == total
    # The memory bound: block size x live samples per window, not store size.
    assert stats.peak_stream_reports <= bound
    assert stats.peak_stream_reports < total / 10
    # The re-read pass must be mostly cache hits.
    assert cache.hit_rate > 0.5


# ---------------------------------------------------------------------------
# Script mode


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the columnar (v3) store hot path against "
                    "the row pipeline and write a schema'd results file.")
    parser.add_argument("--samples", type=int, default=AB_SAMPLES,
                        help=f"sample count (default: {AB_SAMPLES})")
    parser.add_argument("--scans-each", type=int, default=AB_SCANS_EACH,
                        help=f"reports per sample (default: {AB_SCANS_EACH})")
    parser.add_argument("--reps", type=int, default=AB_REPS,
                        help=f"best-of repetitions (default: {AB_REPS})")
    parser.add_argument("--seed", type=int, default=AB_SEED)
    parser.add_argument("--block-records", type=int,
                        default=AB_BLOCK_RECORDS)
    parser.add_argument("--output", default="BENCH_results.json",
                        help="artifact path (default: BENCH_results.json)")
    parser.add_argument("--require-speedup", type=float, default=None,
                        metavar="X",
                        help="exit non-zero unless the combined "
                             "ingest+scan speedup reaches X×")
    args = parser.parse_args(argv)

    results = run_columnar_ab(
        n_samples=args.samples, scans_each=args.scans_each,
        reps=args.reps, seed=args.seed, block_records=args.block_records)
    render_columnar(results)
    Path(args.output).write_text(json.dumps(results, indent=2) + "\n",
                                 encoding="utf-8")
    say(f"\nwrote {args.output}")

    if args.require_speedup is not None:
        combined = results["speedup"]["combined"]
        if combined < args.require_speedup:
            say(f"FAIL: combined speedup {combined:.2f}x < "
                f"required {args.require_speedup:.2f}x")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
