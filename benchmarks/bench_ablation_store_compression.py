"""Ablation: the store's compression design choices (DESIGN.md §2).

The paper's pipeline claims 10.06x from (i) keeping only relevant fields,
(ii) splitting sample metadata from results and (iii) compression.  This
ablation quantifies each step on the same report stream:

* verbose JSON baseline (what the API returns),
* compact binary records (steps i+ii),
* zlib-compressed record blocks (step iii) at two block sizes.
"""

from __future__ import annotations

import zlib

from repro.store import codec
from repro.store.reportstore import ReportStore

from conftest import run_once, say


def _ingest(reports, block_records):
    store = ReportStore(block_records=block_records)
    store.ingest_batch(reports)
    store.close()
    return store


def test_ablation_store_compression(benchmark, bench_data):
    reports = list(bench_data.store.iter_reports())[:20_000]

    blocked = run_once(benchmark, lambda: _ingest(reports, 256))
    singles = _ingest(reports, 1)

    verbose = sum(codec.verbose_json_size(r) for r in reports)
    binary = sum(codec.record_size(r) for r in reports)
    blocked_bytes = sum(s.compressed_bytes for s in blocked.shards.values())
    single_bytes = sum(s.compressed_bytes for s in singles.shards.values())

    # zlib over whole verbose documents — the naive alternative.
    sample = reports[:500]
    naive = sum(
        len(zlib.compress(
            codec.render_verbose_json(r, bench_data.engine_names).encode()
        ))
        for r in sample
    )
    naive_ratio = (sum(codec.verbose_json_size(r) for r in sample) / naive)

    say()
    say("Ablation: store compression pipeline "
          f"(n={len(reports):,} reports)")
    say(f"  verbose JSON baseline : {verbose / 1e6:9.2f} MB")
    say(f"  compact binary records: {binary / 1e6:9.2f} MB "
          f"({verbose / binary:5.1f}x)")
    say(f"  zlib, 1-record blocks : {single_bytes / 1e6:9.2f} MB "
          f"({verbose / single_bytes:5.1f}x)")
    say(f"  zlib, 256-rec blocks  : {blocked_bytes / 1e6:9.2f} MB "
          f"({verbose / blocked_bytes:5.1f}x)")
    say(f"  naive whole-JSON zlib ratio: {naive_ratio:5.1f}x "
          "(paper pipeline: 10.06x)")

    # Field selection alone must already beat the paper's 10x.
    assert verbose / binary > 10
    # Block compression must beat per-record compression.
    assert blocked_bytes < single_bytes
    # End-to-end must beat the naive whole-document approach.
    assert verbose / blocked_bytes > naive_ratio
