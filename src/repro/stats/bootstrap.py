"""Bootstrap confidence intervals.

The paper reports point estimates from 847 M reports; at scenario scale,
sampling noise matters, so the analysis layer can attach percentile
bootstrap intervals to its headline fractions (e.g. the stable/dynamic
split, the gray fraction at a threshold).  Implemented with numpy
resampling; deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigError, InsufficientDataError


@dataclass(frozen=True)
class ConfidenceInterval:
    """A percentile bootstrap interval around a point estimate."""

    estimate: float
    low: float
    high: float
    confidence: float
    replicates: int

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        return self.high - self.low

    def __str__(self) -> str:
        return (f"{self.estimate:.4f} "
                f"[{self.low:.4f}, {self.high:.4f}]@{self.confidence:.0%}")


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    replicates: int = 1000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile bootstrap CI for ``statistic`` over ``values``."""
    if not 0.0 < confidence < 1.0:
        raise ConfigError(f"confidence must be in (0,1), got {confidence}")
    if replicates < 10:
        raise ConfigError("need at least 10 bootstrap replicates")
    data = np.asarray(values, dtype=np.float64)
    if data.size == 0:
        raise InsufficientDataError(1, 0, "values for bootstrap")
    rng = np.random.default_rng(seed)
    indexes = rng.integers(0, data.size, size=(replicates, data.size))
    stats = np.array([statistic(data[row]) for row in indexes])
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        estimate=float(statistic(data)),
        low=float(np.quantile(stats, alpha)),
        high=float(np.quantile(stats, 1.0 - alpha)),
        confidence=confidence,
        replicates=replicates,
    )


def fraction_ci(
    successes: int,
    total: int,
    confidence: float = 0.95,
    replicates: int = 1000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Bootstrap CI for a binomial fraction (e.g. the dynamic share).

    Resamples the Bernoulli outcomes implied by (successes, total)
    without materialising them: the bootstrap replicate count of
    successes is Binomial(total, p̂).
    """
    if total <= 0:
        raise InsufficientDataError(1, total, "trials")
    if not 0 <= successes <= total:
        raise ConfigError(f"successes {successes} outside [0, {total}]")
    if not 0.0 < confidence < 1.0:
        raise ConfigError(f"confidence must be in (0,1), got {confidence}")
    p_hat = successes / total
    rng = np.random.default_rng(seed)
    replicated = rng.binomial(total, p_hat, size=replicates) / total
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        estimate=p_hat,
        low=float(np.quantile(replicated, alpha)),
        high=float(np.quantile(replicated, 1.0 - alpha)),
        confidence=confidence,
        replicates=replicates,
    )
