"""Unit tests for the stability monitor (repro.core.monitor)."""

import pytest

from repro.core.monitor import StabilityCriteria, StabilityMonitor
from repro.errors import ConfigError

from conftest import make_report, make_sha

DAY = 1440
SHA = make_sha("monitored")


def _report(day: float, rank: int):
    return make_report(
        sha=SHA, scan_time=int(day * DAY),
        labels=[1] * rank + [0] * (10 - rank), n_engines=10,
        versions=[1] * 10,
    )


class TestCriteria:
    def test_validation(self):
        with pytest.raises(ConfigError):
            StabilityCriteria(fluctuation=-1)
        with pytest.raises(ConfigError):
            StabilityCriteria(min_reports=1)
        with pytest.raises(ConfigError):
            StabilityCriteria(alert_jump=0)
        with pytest.raises(ConfigError):
            StabilityCriteria(alert_within_days=0)


class TestStability:
    def test_becomes_stable_after_quiet_window(self):
        events = []
        monitor = StabilityMonitor(
            criteria=StabilityCriteria(fluctuation=0, min_reports=2,
                                       min_days=5),
            on_stable=lambda sha, t: events.append((sha, t)),
        )
        assert not monitor.observe(_report(0, 4))
        assert not monitor.observe(_report(2, 4))   # only 2 days spanned
        assert monitor.observe(_report(7, 4))       # 7 days, 3 reports
        assert events and events[0][0] == SHA
        assert monitor.stable_since == 0

    def test_fluctuation_tolerance(self):
        monitor = StabilityMonitor(
            criteria=StabilityCriteria(fluctuation=1, min_reports=2,
                                       min_days=1),
        )
        monitor.observe(_report(0, 4))
        assert monitor.observe(_report(3, 5))  # within fluctuation 1

    def test_excursion_breaks_stability(self):
        monitor = StabilityMonitor(
            criteria=StabilityCriteria(fluctuation=0, min_reports=2,
                                       min_days=1),
        )
        monitor.observe(_report(0, 4))
        assert monitor.observe(_report(2, 4))
        assert not monitor.observe(_report(3, 9))
        assert monitor.stable_since is None

    def test_on_stable_fires_once(self):
        events = []
        monitor = StabilityMonitor(
            criteria=StabilityCriteria(fluctuation=0, min_reports=2,
                                       min_days=1),
            on_stable=lambda sha, t: events.append(t),
        )
        for day in (0, 2, 4, 6):
            monitor.observe(_report(day, 3))
        assert len(events) == 1

    def test_wrong_sample_rejected(self):
        monitor = StabilityMonitor()
        monitor.observe(_report(0, 1))
        alien = make_report(sha=make_sha("other"), scan_time=DAY)
        with pytest.raises(ConfigError):
            monitor.observe(alien)

    def test_out_of_order_rejected(self):
        monitor = StabilityMonitor()
        monitor.observe(_report(5, 1))
        with pytest.raises(ConfigError):
            monitor.observe(_report(1, 1))


class TestVariationAlerts:
    def test_alert_on_big_fast_jump(self):
        alerts = []
        monitor = StabilityMonitor(
            criteria=StabilityCriteria(alert_jump=5, alert_within_days=3),
            on_variation=lambda sha, t, jump: alerts.append(jump),
        )
        monitor.observe(_report(0, 1))
        monitor.observe(_report(1, 8))  # +7 within a day
        assert alerts == [7]
        assert monitor.alerts == 1

    def test_no_alert_for_slow_drift(self):
        monitor = StabilityMonitor(
            criteria=StabilityCriteria(alert_jump=5, alert_within_days=3),
        )
        monitor.observe(_report(0, 1))
        monitor.observe(_report(30, 8))  # big jump but a month apart
        assert monitor.alerts == 0

    def test_no_alert_for_small_fast_jump(self):
        monitor = StabilityMonitor(
            criteria=StabilityCriteria(alert_jump=5, alert_within_days=3),
        )
        monitor.observe(_report(0, 1))
        monitor.observe(_report(1, 3))
        assert monitor.alerts == 0


class TestLiveSampleMonitor:
    """Read-while-ingest consumption from a live report store."""

    def _live(self, store, **criteria):
        from repro.core.monitor import LiveSampleMonitor
        monitor = StabilityMonitor(criteria=StabilityCriteria(**criteria))
        return LiveSampleMonitor(store=store, sha256=SHA, monitor=monitor)

    def test_poll_before_first_report_is_zero(self):
        from repro.store.reportstore import ReportStore
        live = self._live(ReportStore())
        assert live.poll() == 0
        assert not live.stable

    def test_interleaved_ingest_and_poll(self):
        # Small blocks so ingest crosses block boundaries between polls —
        # the exact interleaving the stale block-cache bug corrupted.
        from repro.store.reportstore import ReportStore
        store = ReportStore(block_records=2)
        live = self._live(store, min_reports=2, min_days=5)
        store.ingest(_report(0, 5))
        assert live.poll() == 1
        store.ingest(_report(2, 5))
        store.ingest(_report(4, 5))
        assert live.poll() == 2
        assert not live.stable  # span 4 days < min_days
        store.ingest(_report(10, 5))
        assert live.poll() == 1
        assert live.stable

    def test_polls_only_see_new_reports(self):
        from repro.store.reportstore import ReportStore
        store = ReportStore(block_records=2)
        live = self._live(store)
        store.ingest(_report(0, 3))
        store.ingest(_report(1, 3))
        assert live.poll() == 2
        assert live.poll() == 0  # nothing new
        store.ingest(_report(2, 3))
        assert live.poll() == 1

    def test_variation_alert_through_live_store(self):
        from repro.store.reportstore import ReportStore
        store = ReportStore(block_records=2)
        live = self._live(store, alert_jump=5, alert_within_days=3)
        store.ingest(_report(0, 1))
        live.poll()
        store.ingest(_report(1, 8))
        live.poll()
        assert live.alerts == 1

    def test_other_samples_do_not_interfere(self):
        from repro.store.reportstore import ReportStore
        store = ReportStore(block_records=2)
        live = self._live(store)
        store.ingest(_report(0, 4))
        for i in range(5):  # unrelated traffic shares the blocks
            store.ingest(make_report(sha=make_sha(f"noise{i}"),
                                     scan_time=i * DAY + 7))
        store.ingest(_report(8, 4))
        assert live.poll() == 2
        assert live.stable
