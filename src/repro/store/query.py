"""A small query layer over the report store.

The analyses in :mod:`repro.analysis` stream everything; downstream users
usually want slices — "PE reports from March", "samples whose AV-Rank
ever exceeded 30".  :class:`ReportQuery` provides a chainable, lazily
evaluated filter/projection API over a :class:`~repro.store.ReportStore`:

>>> q = (ReportQuery(store)
...      .file_types("Win32 EXE", "Win32 DLL")
...      .scanned_between(day_lo=30, day_hi=120)
...      .min_positives(10))
>>> for report in q:                      # doctest: +SKIP
...     ...
>>> q.count()                             # doctest: +SKIP

Queries are immutable: every refinement returns a new query, so partial
queries can be shared and extended safely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator

from repro.errors import ConfigError
from repro.store.reportstore import ReportStore
from repro.vt.clock import MINUTES_PER_DAY
from repro.vt.reports import ScanReport

Predicate = Callable[[ScanReport], bool]


@dataclass(frozen=True)
class ReportQuery:
    """A lazily evaluated, chainable filter over stored reports."""

    store: ReportStore
    _predicates: tuple[Predicate, ...] = field(default=())
    #: Explicit sample restriction: ``None`` means "every sample" (a
    #: full streaming scan); a tuple routes evaluation through the
    #: store's point-lookup index instead.
    _hashes: tuple[str, ...] | None = field(default=None)

    # ------------------------------------------------------------------
    # Refinements
    # ------------------------------------------------------------------

    def where(self, predicate: Predicate) -> "ReportQuery":
        """Add an arbitrary report predicate."""
        return replace(self, _predicates=self._predicates + (predicate,))

    def samples_only(self, *shas: str) -> "ReportQuery":
        """Restrict the query to the given sample hashes.

        Unlike a ``where`` predicate on ``r.sha256`` — which still
        streams and decodes *every block in the store* — this routes
        evaluation through the store's per-sample index, decoding only
        the blocks that actually hold the named samples' reports.  (The
        pre-index serving prototype did exactly that predicate full
        scan per hot-hash request; this refinement is the fix.)

        Hashes are kept in the order given (first occurrence wins on
        duplicates); hashes the store has never seen simply match
        nothing, consistent with filter semantics.  Restricting an
        already-restricted query intersects, preserving the new order.
        """
        if not shas:
            raise ConfigError("samples_only needs at least one hash")
        seen: dict[str, None] = {}
        for sha in shas:
            if self._hashes is None or sha in self._hashes:
                seen.setdefault(sha)
        return replace(self, _hashes=tuple(seen))

    def file_types(self, *names: str) -> "ReportQuery":
        """Keep reports of the given file types."""
        if not names:
            raise ConfigError("file_types needs at least one name")
        wanted = frozenset(names)
        return self.where(lambda r: r.file_type in wanted)

    def scanned_between(
        self, day_lo: float = 0.0, day_hi: float = math.inf
    ) -> "ReportQuery":
        """Keep reports scanned within [day_lo, day_hi] of the window."""
        if day_hi < day_lo:
            raise ConfigError("day_hi must be >= day_lo")
        lo = day_lo * MINUTES_PER_DAY
        hi = day_hi * MINUTES_PER_DAY
        return self.where(lambda r: lo <= r.scan_time <= hi)

    def min_positives(self, threshold: int) -> "ReportQuery":
        """Keep reports with AV-Rank at least ``threshold``."""
        if threshold < 0:
            raise ConfigError("threshold must be >= 0")
        return self.where(lambda r: r.positives >= threshold)

    def max_positives(self, threshold: int) -> "ReportQuery":
        """Keep reports with AV-Rank at most ``threshold``."""
        if threshold < 0:
            raise ConfigError("threshold must be >= 0")
        return self.where(lambda r: r.positives <= threshold)

    def fresh_only(self) -> "ReportQuery":
        """Keep reports of samples first submitted inside the window."""
        return self.where(lambda r: r.first_submission_date >= 0)

    def detected_by(self, engine_index: int) -> "ReportQuery":
        """Keep reports where the engine at ``engine_index`` said
        malicious."""
        if engine_index < 0:
            raise ConfigError("engine_index must be >= 0")
        return self.where(lambda r: r.label_of(engine_index) == 1)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def _match(self, report: ScanReport) -> bool:
        return all(p(report) for p in self._predicates)

    def _restricted_series(self) -> Iterator[tuple[str, list[ScanReport]]]:
        """Per-sample series of the :meth:`samples_only` restriction,
        fetched through the point-lookup index (no full scan)."""
        for sha in self._hashes:
            if sha in self.store:
                yield sha, self.store.report_series(sha)

    def __iter__(self) -> Iterator[ScanReport]:
        if self._hashes is not None:
            for _, reports in self._restricted_series():
                for report in reports:
                    if self._match(report):
                        yield report
            return
        for report in self.store.iter_reports():
            if self._match(report):
                yield report

    def count(self) -> int:
        """Number of matching reports."""
        return sum(1 for _ in self)

    def sample_hashes(self) -> set[str]:
        """Distinct samples with at least one matching report."""
        return {report.sha256 for report in self}

    def positives_histogram(self) -> dict[int, int]:
        """AV-Rank histogram over matching reports."""
        out: dict[int, int] = {}
        for report in self:
            out[report.positives] = out.get(report.positives, 0) + 1
        return out

    def sample_series(self) -> Iterator[tuple[str, list[ScanReport]]]:
        """Matching reports grouped per sample, time-sorted.

        Group membership is report-level: a sample appears with exactly
        its matching reports, and not at all if none match (use
        :meth:`sample_hashes` + ``store.reports_for`` for whole-sample
        retrieval instead).

        Unrestricted queries stream through the store's bounded
        block-order grouping rather than materialising one dict of every
        matching report, so memory is bounded by the samples live in the
        current block window (see :meth:`ReportStore.iter_sample_reports`);
        samples arrive in completion order.  Queries restricted with
        :meth:`samples_only` skip the scan entirely and fetch each named
        sample through the point-lookup index, in the requested order.
        """
        if self._hashes is not None:
            for sha256, reports in self._restricted_series():
                matching = [r for r in reports if self._match(r)]
                if matching:
                    yield sha256, matching
            return
        for sha256, reports in self.store.iter_sample_reports():
            matching = [r for r in reports if self._match(r)]
            if matching:
                yield sha256, matching

    def first(self) -> ScanReport | None:
        """The first matching report in store order, or None."""
        for report in self:
            return report
        return None
