"""Monthly shards of compressed report blocks.

The paper stores its dataset "by month" (Table 2).  A :class:`MonthlyShard`
accumulates encoded report records, freezing them into zlib-compressed
:class:`CompressedBlock` units of a fixed record count.  Blocks are the
random-access granularity: the store's per-sample index addresses a report
as ``(month, block, slot)`` and only that block must be decompressed to
fetch it.

Blocks freeze in one of two layouts (see :mod:`repro.store.codec`): the
row layout (RPR1, length-prefixed records) or the columnar layout (RPR3,
dictionary/delta-encoded columns).  Both decode back to identical record
bytes; readers dispatch on the block magic, so a shard can even hold a
mix (e.g. after a merge spliced foreign blocks in).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.errors import (
    BlockAddressError,
    CorruptRecordError,
    ShardClosedError,
)
from repro.store import codec

if TYPE_CHECKING:
    from repro.store.columnar import ColumnarBatch

#: Default records per compressed block.
DEFAULT_BLOCK_RECORDS = 256

#: zlib level: 6 is the sweet spot for these highly repetitive records.
_ZLIB_LEVEL = 6

#: Columnar blocks compress at level 1: the dictionary/delta/XOR
#: pre-conditioning has already removed most entropy (the planes are
#: near-all-zero), so the fast level costs ~1 point of ratio — still
#: well below the row layout at level 6 — and halves the freeze cost.
#: The store digest covers decompressed record bytes, so the level is
#: not part of any byte-exactness contract *except* that every site
#: freezing a columnar block must use the same one.
_ZLIB_LEVEL_COLUMNAR = 1


def _zlib_level(block_format: str) -> int:
    return (_ZLIB_LEVEL_COLUMNAR
            if block_format == codec.BLOCK_FORMAT_COLUMNAR else _ZLIB_LEVEL)


@dataclass(frozen=True)
class CompressedBlock:
    """One immutable zlib-compressed run of report records."""

    payload: bytes
    record_count: int
    raw_bytes: int

    @property
    def compressed_bytes(self) -> int:
        return len(self.payload)

    def records(self) -> list[bytes]:
        """Decompress and split the block into its records."""
        try:
            framed = zlib.decompress(self.payload)
        except zlib.error as exc:
            raise CorruptRecordError(
                f"undecompressable block: {exc}") from exc
        return codec.decode_block(framed)

    def batch(self, planes: bool = True) -> "ColumnarBatch":
        """Decode the block into a columnar batch.

        With ``planes=False`` a columnar block only decompresses its
        fixed-column prefix (the label/version planes stay compressed);
        row blocks fall back to a full decode either way.
        """
        return codec.decode_compressed_batch(self.payload, planes=planes)

    @classmethod
    def from_records(
        cls, records: list[bytes],
        block_format: str = codec.BLOCK_FORMAT_ROW,
    ) -> "CompressedBlock":
        framed = codec.encode_block(records, block_format)
        return cls(
            payload=zlib.compress(framed, _zlib_level(block_format)),
            record_count=len(records),
            raw_bytes=len(framed),
        )

    @classmethod
    def from_batch(cls, batch: "ColumnarBatch") -> "CompressedBlock":
        """Freeze a columnar batch directly (no row materialisation).

        Byte-identical to ``from_records(batch.to_records(),
        BLOCK_FORMAT_COLUMNAR)``: the columnar encoding is a pure
        function of the record sequence.
        """
        from repro.store.columnar import encode_columnar

        framed = encode_columnar(batch)
        return cls(
            payload=zlib.compress(framed, _ZLIB_LEVEL_COLUMNAR),
            record_count=len(batch),
            raw_bytes=len(framed),
        )


@dataclass
class MonthlyShard:
    """All reports of one collection-window month.

    Appended records buffer until ``block_records`` accumulate, then the
    buffer freezes into a :class:`CompressedBlock`.  ``flush`` freezes a
    partial buffer; ``close`` flushes and rejects further appends.
    ``block_format`` picks the layout new blocks freeze into; existing
    blocks (e.g. loaded from disk) keep whatever layout they have.
    """

    month: int
    block_records: int = DEFAULT_BLOCK_RECORDS
    block_format: str = codec.BLOCK_FORMAT_ROW
    blocks: list[CompressedBlock] = field(default_factory=list)
    _buffer: list[bytes] = field(default_factory=list, repr=False)
    closed: bool = False
    report_count: int = 0
    #: Estimated verbose-JSON bytes of everything ingested (Table 2 size).
    verbose_bytes: int = 0
    #: Encoded (pre-compression) bytes of everything ingested.
    encoded_bytes: int = 0
    #: Mutation counter: bumped on every append and every flush.  Readers
    #: holding derived state (e.g. a snapshot of the open buffer) can
    #: stamp it with the generation and detect staleness.
    generation: int = 0

    def append(self, record: bytes, verbose_size: int) -> tuple[int, int]:
        """Add one encoded record; returns its ``(block, slot)`` address.

        The address is valid immediately: slots in the open buffer belong
        to the block that the buffer will freeze into.
        """
        if self.closed:
            raise ShardClosedError(f"shard for month {self.month} is closed")
        block_idx = len(self.blocks)
        slot = len(self._buffer)
        self._buffer.append(record)
        self.report_count += 1
        self.verbose_bytes += verbose_size
        self.encoded_bytes += len(record)
        self.generation += 1
        if len(self._buffer) >= self.block_records:
            self.flush()
        return block_idx, slot

    def extend_batch(self, batch: "ColumnarBatch") -> None:
        """Bulk-append a columnar batch (the array-ingest fast path).

        Equivalent to appending ``batch.to_records()`` one by one —
        identical block layout, identical accounting — but full blocks
        are encoded straight from array slices, so when the shard is
        columnar no per-record bytes are ever materialised for them.
        """
        if self.closed:
            raise ShardClosedError(f"shard for month {self.month} is closed")
        n = len(batch)
        if n == 0:
            return
        pos = 0
        if self._buffer:
            # Top up the open buffer to a block boundary first.
            take = min(self.block_records - len(self._buffer), n)
            self._buffer.extend(batch.slice(0, take).to_records())
            pos = take
            if len(self._buffer) >= self.block_records:
                self.flush()
        while n - pos >= self.block_records:
            chunk = batch.slice(pos, pos + self.block_records)
            if self.block_format == codec.BLOCK_FORMAT_COLUMNAR:
                self.blocks.append(CompressedBlock.from_batch(chunk))
            else:
                self.blocks.append(CompressedBlock.from_records(
                    chunk.to_records(), self.block_format))
            pos += self.block_records
        if pos < n:
            self._buffer.extend(batch.slice(pos, n).to_records())
        self.report_count += n
        self.verbose_bytes += batch.verbose_bytes()
        self.encoded_bytes += batch.encoded_bytes()
        self.generation += 1

    def flush(self) -> None:
        """Freeze the open buffer into a compressed block."""
        if self._buffer:
            self.blocks.append(
                CompressedBlock.from_records(self._buffer, self.block_format))
            self._buffer = []
            self.generation += 1

    def close(self) -> None:
        """Flush and seal the shard."""
        self.flush()
        self.closed = True

    @property
    def compressed_bytes(self) -> int:
        """Compressed size of the frozen blocks — and only those.

        Records still sitting in the open buffer are *uncompressed*;
        counting them here (as an earlier revision did) inflated the
        "compressed" size of any unflushed shard with raw record bytes
        and skewed the Table 2 compression-rate accounting.  They are
        reported separately as :attr:`buffered_bytes`.
        """
        return sum(b.compressed_bytes for b in self.blocks)

    @property
    def buffered_bytes(self) -> int:
        """Raw encoded bytes waiting in the open (unsealed) buffer."""
        return sum(len(r) for r in self._buffer)

    @property
    def stored_bytes(self) -> int:
        """Actual resident payload: compressed blocks + raw buffer."""
        return self.compressed_bytes + self.buffered_bytes

    @property
    def open_record_count(self) -> int:
        """Records in the open buffer (0 once flushed or closed)."""
        return len(self._buffer)

    def buffered_records(self) -> list[bytes]:
        """A snapshot copy of the open buffer (safe across later appends)."""
        return list(self._buffer)

    def record_at(self, block_idx: int, slot: int) -> bytes:
        """Random access to one record by block address."""
        if block_idx < len(self.blocks):
            return self.blocks[block_idx].records()[slot]
        if block_idx == len(self.blocks) and slot < len(self._buffer):
            return self._buffer[slot]
        raise BlockAddressError(
            f"no record at block={block_idx} slot={slot}")

    def block_records_at(self, block_idx: int) -> list[bytes]:
        """All records of one block (decompressing frozen blocks)."""
        if block_idx < len(self.blocks):
            return self.blocks[block_idx].records()
        if block_idx == len(self.blocks):
            return list(self._buffer)
        raise BlockAddressError(f"no block {block_idx}")

    def iter_records(self) -> Iterator[bytes]:
        """All records in ingest order."""
        for block in self.blocks:
            yield from block.records()
        yield from self._buffer

    def iter_record_blocks(self) -> Iterator[tuple[int, list[bytes]]]:
        """``(block_idx, records)`` in order, decoding each block once.

        The open buffer, if any, is yielded last as a snapshot under the
        block index it will freeze into — the same index its records'
        addresses already carry.
        """
        for block_idx, block in enumerate(self.blocks):
            yield block_idx, block.records()
        if self._buffer:
            yield len(self.blocks), list(self._buffer)

    def iter_batches(self, planes: bool = True) -> Iterator["ColumnarBatch"]:
        """Per-block columnar batches in order, buffer snapshot last.

        The columnar analogue of :meth:`iter_record_blocks`: frozen
        blocks decode straight to arrays (metadata-only when ``planes``
        is off), the open buffer bulk-parses its records.
        """
        from repro.store.columnar import ColumnarBatch

        for block in self.blocks:
            yield block.batch(planes=planes)
        if self._buffer:
            yield ColumnarBatch.from_records(list(self._buffer))
