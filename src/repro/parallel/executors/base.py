"""Executor protocol: messages, shard tasks, and the in-process executor.

An :class:`Executor` owns a set of workers and a pair of directions:
tasks go down (:meth:`Executor.submit`), messages come back
(:meth:`Executor.poll`).  The scheduler in
:mod:`repro.parallel.scheduler` is the only client; it never talks to
``multiprocessing`` directly and never blocks on a single worker — it
polls, reacts to whatever arrived, and checks deadlines.

The wire protocol is four message types, all picklable:

==============  ======================================================
message         meaning
==============  ======================================================
:class:`Claimed`    a worker pulled the task off the queue and started
:class:`Heartbeat`  the worker is alive and making progress
:class:`Completed`  the shard's pickled :class:`~repro.parallel.worker.ShardRun`
                    plus its sha256 digest
:class:`Failed`     an in-band retryable failure (in-process executors
                    translate crash/hang faults into these, since they
                    cannot kill or stall their own process)
==============  ======================================================

:func:`execute_task` is the shared worker body: every executor kind runs
shards through it, so fault injection, heartbeat pumping and payload
digesting behave identically whether the "worker" is the driver process
itself or a forked/spawned child.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.faults.executor import ExecutorFaultPlan
from repro.parallel.heartbeat import ClockFn, HeartbeatEmitter
from repro.parallel.sharding import ShardSpec
from repro.parallel.worker import run_shard
from repro.synth.scenario import ScenarioConfig
from repro.vt.engines import EngineFleet

#: Exit code a chaos-crashed worker process dies with; distinguishes an
#: injected crash from a genuine interpreter fault in test output.
CHAOS_EXIT_CODE = 73


class InjectedCrash(Exception):
    """Signal from :func:`execute_task` that a chaos crash fault fired
    and the worker process should die.

    Raised (rather than calling ``os._exit`` inline) so the process
    worker loop can flush its outbound queue first: ``os._exit`` kills
    the queue's feeder thread mid-write, and a half-written frame wedges
    the driver's reader for every later message.
    """


# --------------------------------------------------------------------------
# Wire protocol
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Claimed:
    """A worker pulled one task off the queue and is about to run it."""

    worker_id: int
    key: str
    attempt: int


@dataclass(frozen=True)
class Heartbeat:
    """Periodic liveness signal while a shard is executing."""

    worker_id: int
    key: str
    attempt: int
    seq: int


@dataclass(frozen=True)
class Completed:
    """One shard's result: pickled ShardRun bytes plus their digest.

    ``digest`` is computed by the worker over the *honest* payload,
    before any injected corruption mangles the bytes — the scheduler's
    integrity check (recompute sha256, compare) is what detects the
    damage and routes the shard to a retry instead of the merge.
    """

    worker_id: int
    key: str
    shard_index: int
    attempt: int
    payload: bytes
    digest: str


@dataclass(frozen=True)
class Failed:
    """An in-band, retryable task failure.

    ``kind`` is one of ``"crash"``, ``"hang"`` or ``"error"``: the first
    two are the in-process translations of process-level faults, the
    last wraps an unexpected exception escaping the shard body.
    """

    worker_id: int
    key: str
    attempt: int
    kind: str
    detail: str = ""


Message = Claimed | Heartbeat | Completed | Failed

#: A sink for outbound worker messages.
SendFn = Callable[[Message], None]


@dataclass(frozen=True)
class ShardTask:
    """One schedulable unit of work: a sample range plus run context."""

    key: str
    shard: ShardSpec
    attempt: int
    config: ScenarioConfig
    fleet: EngineFleet | None
    with_metrics: bool
    plan: ExecutorFaultPlan | None = None

    def retry(self) -> ShardTask:
        """The same range, next attempt."""
        return ShardTask(key=self.key, shard=self.shard,
                         attempt=self.attempt + 1, config=self.config,
                         fleet=self.fleet, with_metrics=self.with_metrics,
                         plan=self.plan)


# --------------------------------------------------------------------------
# Shared worker body
# --------------------------------------------------------------------------


def execute_task(
    task: ShardTask,
    worker_id: int,
    send: SendFn,
    allow_process_faults: bool,
    heartbeat_interval: float | None = None,
    clock: ClockFn | None = None,
) -> None:
    """Run one shard task end to end, reporting through ``send``.

    ``allow_process_faults`` selects how injected crash/hang faults
    manifest: process workers really die (:class:`InjectedCrash`, turned
    into ``os._exit`` by the worker loop after flushing its queue) or
    really stall (``time.sleep``), so the scheduler exercises its
    reap/steal paths; the in-process executor sends in-band
    :class:`Failed` messages instead, exercising the same retry
    accounting without killing the driver.
    """
    plan = task.plan
    send(Claimed(worker_id=worker_id, key=task.key, attempt=task.attempt))

    if plan is not None and plan.crashes_before_result(task.key, task.attempt):
        if allow_process_faults:
            raise InjectedCrash(f"{task.key} attempt {task.attempt}: "
                                f"crash-before-result")
        send(Failed(worker_id=worker_id, key=task.key, attempt=task.attempt,
                    kind="crash", detail="injected crash-before-result"))
        return

    beat = None
    if heartbeat_interval is not None:
        emitter = HeartbeatEmitter(
            send=lambda seq: send(Heartbeat(
                worker_id=worker_id, key=task.key,
                attempt=task.attempt, seq=seq)),
            interval=heartbeat_interval,
            clock=clock,
        )
        beat = emitter.beat

    try:
        run = run_shard(task.config, task.shard, fleet=task.fleet,
                        with_metrics=task.with_metrics, progress=beat)
    except Exception as exc:  # pragma: no cover - defensive surface
        send(Failed(worker_id=worker_id, key=task.key, attempt=task.attempt,
                    kind="error", detail=f"{type(exc).__name__}: {exc}"))
        return

    if plan is not None and plan.crashes_mid_shard(task.key, task.attempt):
        if allow_process_faults:
            raise InjectedCrash(f"{task.key} attempt {task.attempt}: "
                                f"crash-mid-shard")
        send(Failed(worker_id=worker_id, key=task.key, attempt=task.attempt,
                    kind="crash", detail="injected crash-mid-shard"))
        return

    payload = pickle.dumps(run, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(payload).hexdigest()

    if plan is not None and plan.hangs(task.key, task.attempt):
        if allow_process_faults:
            # Really go silent: no heartbeats, deadline fires, the range
            # is stolen, and this (late but honest) result is deduped by
            # digest when it finally ships.
            time.sleep(plan.hang_seconds)
        else:
            send(Failed(worker_id=worker_id, key=task.key,
                        attempt=task.attempt, kind="hang",
                        detail="injected hang-past-deadline"))
            return

    if plan is not None and plan.corrupts_payload(task.key, task.attempt):
        payload = plan.corrupt_payload(payload, task.key, task.attempt)

    send(Completed(worker_id=worker_id, key=task.key,
                   shard_index=task.shard.shard_index, attempt=task.attempt,
                   payload=payload, digest=digest))


# --------------------------------------------------------------------------
# Executor protocol
# --------------------------------------------------------------------------


class Executor(ABC):
    """A pool of workers behind a submit/poll message interface."""

    #: Human-readable kind tag ("in-process", "fork", "spawn").
    kind: str = "abstract"

    @abstractmethod
    def start(self, workers: int) -> None:
        """Bring up the initial worker set."""

    @abstractmethod
    def submit(self, task: ShardTask) -> None:
        """Queue one task; any idle worker may claim it (work-stealing
        falls out of the shared queue: finishing early means pulling the
        next range sooner)."""

    @abstractmethod
    def poll(self, timeout: float) -> list[Message]:
        """Collect pending messages, blocking up to ``timeout`` seconds
        for the first one."""

    @abstractmethod
    def reap(self) -> list[tuple[int, int]]:
        """Workers found dead since the last call: ``(worker_id,
        exitcode)`` pairs.  Reaped workers leave :meth:`live_workers`."""

    @abstractmethod
    def spawn_worker(self) -> int:
        """Add one replacement worker; returns its id."""

    @abstractmethod
    def live_workers(self) -> list[int]:
        """Ids of workers currently believed alive."""

    @abstractmethod
    def shutdown(self) -> None:
        """Stop all workers and release resources (idempotent)."""


class InProcessExecutor(Executor):
    """Run tasks synchronously in the driver process.

    One logical worker, zero processes: :meth:`poll` pops one queued
    task, runs it to completion, and returns every message it emitted.
    Deterministic and dependency-free — the reference executor for
    tests, and the fallback when a platform offers no usable start
    method.  Injected crash/hang faults surface as in-band
    :class:`Failed` messages (``allow_process_faults=False``), so chaos
    plans exercise the scheduler's retry accounting here too.
    """

    kind = "in-process"

    def __init__(self, heartbeat_interval: float | None = None,
                 clock: ClockFn | None = None) -> None:
        self._queue: deque[ShardTask] = deque()
        self._heartbeat_interval = heartbeat_interval
        self._clock = clock
        self._workers: list[int] = []
        self._next_worker_id = 0

    def start(self, workers: int) -> None:
        for _ in range(max(1, workers)):
            self.spawn_worker()

    def submit(self, task: ShardTask) -> None:
        self._queue.append(task)

    def poll(self, timeout: float) -> list[Message]:
        if not self._queue:
            return []
        task = self._queue.popleft()
        messages: list[Message] = []
        worker_id = self._workers[0] if self._workers else 0
        execute_task(task, worker_id, messages.append,
                     allow_process_faults=False,
                     heartbeat_interval=self._heartbeat_interval,
                     clock=self._clock)
        return messages

    def reap(self) -> list[tuple[int, int]]:
        return []

    def spawn_worker(self) -> int:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        self._workers.append(worker_id)
        return worker_id

    def live_workers(self) -> list[int]:
        return list(self._workers)

    def shutdown(self) -> None:
        self._queue.clear()
