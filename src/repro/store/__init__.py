"""The report store substrate.

The paper cached the premium feed into MongoDB, storing sample metadata
and scan results separately and compressing aggressively (10.06× — §4.1).
This subpackage is that pipeline as an embedded library: a compact binary
record codec (:mod:`repro.store.codec`), monthly shards of zlib-compressed
record blocks (:mod:`repro.store.shard`), and :class:`ReportStore`
(:mod:`repro.store.reportstore`) which adds the per-sample index and the
Table 2 style accounting (:mod:`repro.store.stats`).
"""

from repro.store.cache import BlockCache, CacheStats
from repro.store.codec import (
    decode_report,
    encode_report,
    verbose_json_size,
)
from repro.store.index import IndexEntry, decode_index, encode_index
from repro.store.merge import FrozenMonth, FrozenShard, MergeStats, concat_frozen
from repro.store.query import ReportQuery
from repro.store.reportstore import ReportStore
from repro.store.shard import CompressedBlock, MonthlyShard
from repro.store.stats import MonthStats, StoreStats

__all__ = [
    "decode_report",
    "encode_report",
    "verbose_json_size",
    "decode_index",
    "encode_index",
    "BlockCache",
    "CacheStats",
    "IndexEntry",
    "ReportQuery",
    "FrozenMonth",
    "FrozenShard",
    "MergeStats",
    "concat_frozen",
    "ReportStore",
    "CompressedBlock",
    "MonthlyShard",
    "MonthStats",
    "StoreStats",
]
