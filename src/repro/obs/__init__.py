"""``repro.obs`` — the unified observability layer.

One :class:`~repro.obs.registry.MetricsRegistry` carries every counter,
gauge, histogram and span timer a run records; exporters turn it into a
JSONL dump, Prometheus text, or a human summary tree.  The registry is
*process-wide but injectable*:

* every instrumented component (``VirusTotalService``, ``ReportStore``,
  ``FeedCollector``, the chaos wrappers, the parallel runner) accepts a
  ``metrics=`` argument;
* with no argument, components fall back to the process-wide registry —
  which defaults to :data:`~repro.obs.registry.NULL_REGISTRY`, the
  structurally zero-overhead null object, until :func:`enable` (or
  :func:`set_registry`) swaps a live one in.

Determinism contract: metrics recorded on the scenario hot path are
*partition-invariant* (per-sample work — scans, reports, ingested
records — never engine mechanics like poll cadence or pool fan-out), so
a parallel run's merged shard registries export byte-identically to the
serial run's registry.  ``tests/test_obs_golden.py`` gates this next to
the store-digest equivalence gate.
"""

from __future__ import annotations

from repro.obs.export import (
    JSONL_SCHEMA,
    jsonl_lines,
    prometheus_text,
    render_summary,
    summary,
    write_jsonl,
    write_prometheus,
)
from repro.obs.registry import (
    DEFAULT_DURATION_EDGES,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    NullRegistry,
)
from repro.obs.timing import (
    NULL_SPAN,
    MonotonicClock,
    SimClock,
    Span,
    TickClock,
    traced,
)

__all__ = [
    "JSONL_SCHEMA",
    "DEFAULT_DURATION_EDGES",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "MonotonicClock",
    "NullRegistry",
    "SimClock",
    "Span",
    "TickClock",
    "enable",
    "get_registry",
    "jsonl_lines",
    "prometheus_text",
    "render_summary",
    "set_registry",
    "summary",
    "traced",
    "write_jsonl",
    "write_prometheus",
]

#: The process-wide registry; disabled (null) until :func:`enable`.
_global_registry: "MetricsRegistry | NullRegistry" = NULL_REGISTRY


def get_registry() -> "MetricsRegistry | NullRegistry":
    """The process-wide registry (the null object unless enabled)."""
    return _global_registry


def set_registry(registry) -> "MetricsRegistry | NullRegistry":
    """Swap the process-wide registry; returns the previous one.

    Pass :data:`NULL_REGISTRY` to disable observability again.
    """
    global _global_registry
    previous = _global_registry
    _global_registry = registry
    return previous


def enable(clock=None) -> MetricsRegistry:
    """Install (and return) a fresh live process-wide registry."""
    registry = MetricsRegistry(clock=clock)
    set_registry(registry)
    return registry
