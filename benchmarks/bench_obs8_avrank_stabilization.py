"""§6.1 / Observation 8: stabilisation of AV-Rank.

Paper: only 10.9 % of samples end with an exactly constant AV-Rank (r=0),
but allowing a small fluctuation range the share climbs steeply — 55.1 %
(r=1), 69.58 % (2), 77.84 % (3), 83.52 % (4), 88.11 % (5) — and among
stabilising samples more than 90 % settle within 30 days.
"""

from __future__ import annotations

from functools import partial

from repro.analysis.rendering import render_obs8
from repro.analysis.stabilization import avrank_stabilization_profile

from conftest import run_once, say


def test_obs8_avrank_stabilization(benchmark, bench_data):
    profile = run_once(
        benchmark,
        partial(avrank_stabilization_profile, bench_data.dataset_s),
    )
    say()
    say(render_obs8(profile))

    fractions = [profile.stabilized_fraction(r) for r in range(6)]
    # Monotone in the fluctuation range.
    assert all(b >= a for a, b in zip(fractions, fractions[1:], strict=False))
    # Exact constancy is the exception; small-range stability the rule.
    assert fractions[0] < 0.45                # paper: 10.9 %
    assert fractions[1] > 2 * fractions[0] or fractions[1] > 0.45
    assert fractions[5] > 0.75                # paper: 88.11 %
    # Most stabilising samples settle within a month.
    assert profile.within_30_days(1) > 0.55   # paper: 90.36 %
    assert profile.within_30_days(5) > 0.60   # paper: 95.68 %
