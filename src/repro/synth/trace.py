"""Workload trace export and replay.

A downstream user may want to replay *their own* submission history (or a
recorded one) against the simulator instead of the synthetic population.
A trace is a JSON-lines file, one record per sample::

    {"sha256": "…", "file_type": "Win32 EXE", "malicious": true,
     "first_seen": 43200, "scan_times": [43200, 51840, 120960],
     "size_bytes": 94208, "family": "emotet"}

:func:`export_trace` writes a scenario's population in this format;
:func:`load_trace` reads one back into :class:`SampleSpec` records, which
:func:`replay_trace` runs through the full service → feed → store
pipeline.  Export/replay round-trips bit-identically for a fixed seed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import ConfigError
from repro.store.reportstore import ReportStore
from repro.synth.population import PopulationGenerator, SampleSpec
from repro.synth.scenario import ScenarioConfig
from repro.vt.engines import EngineFleet, default_fleet
from repro.vt.feed import PremiumFeed
from repro.vt.filetypes import FILE_TYPES
from repro.vt.samples import Sample
from repro.vt.service import VirusTotalService


def export_trace(
    specs: Iterable[SampleSpec], path: str | Path
) -> int:
    """Write sample specs as a JSON-lines trace; returns the count."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as fh:
        for spec in specs:
            sample = spec.sample
            fh.write(json.dumps({
                "sha256": sample.sha256,
                "file_type": sample.file_type,
                "malicious": sample.malicious,
                "first_seen": sample.first_seen,
                "scan_times": list(spec.scan_times),
                "size_bytes": sample.size_bytes,
                "family": sample.family,
            }, sort_keys=True) + "\n")
            count += 1
    return count


def export_scenario_trace(config: ScenarioConfig, path: str | Path) -> int:
    """Export the population a scenario would generate."""
    return export_trace(PopulationGenerator(config), path)


def load_trace(path: str | Path) -> Iterator[SampleSpec]:
    """Read a JSON-lines trace back into sample specs.

    Validates each record; raises :class:`~repro.errors.ConfigError` with
    the offending line number on malformed input.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                file_type = record["file_type"]
                if file_type not in FILE_TYPES:
                    raise KeyError(f"unknown file type {file_type!r}")
                scan_times = [int(t) for t in record["scan_times"]]
                if not scan_times:
                    raise KeyError("empty scan_times")
                if any(b <= a for a, b in zip(scan_times, scan_times[1:], strict=False)):
                    raise KeyError("scan_times must be strictly increasing")
                sample = Sample(
                    sha256=record["sha256"],
                    file_type=file_type,
                    malicious=bool(record["malicious"]),
                    first_seen=int(record["first_seen"]),
                    size_bytes=int(record.get("size_bytes", 65536)),
                    family=record.get("family"),
                )
            except (KeyError, ValueError, TypeError) as exc:
                raise ConfigError(
                    f"{path}:{lineno}: invalid trace record: {exc}"
                ) from exc
            yield SampleSpec(sample=sample, scan_times=tuple(scan_times))


def replay_trace(
    path: str | Path,
    seed: int = 0,
    fleet: EngineFleet | None = None,
    block_records: int = 256,
) -> tuple[VirusTotalService, ReportStore]:
    """Run a trace through the full scan pipeline.

    Returns the populated service and the sealed report store.  The
    engine behaviour is still governed by ``seed`` (and the trace's
    sample hashes), so replaying the same trace twice is deterministic.
    """
    if fleet is None:
        fleet = default_fleet(seed)
    service = VirusTotalService(fleet=fleet, seed=seed)
    store = ReportStore(block_records=block_records)
    feed = PremiumFeed(service)

    events: list[tuple[int, Sample, int]] = []
    for spec in load_trace(path):
        # Register a clone; the service backfills the pre-window
        # submission at registration time (Table 1 state for files that
        # predate the window), leaving the loaded spec untouched.
        sample = spec.sample.clone()
        service.register(sample)
        for ordinal, when in enumerate(spec.scan_times):
            events.append((when, sample, ordinal))
    events.sort(key=lambda e: (e[0], e[1].sha256, e[2]))

    with feed:
        for i, (when, sample, ordinal) in enumerate(events):
            if ordinal == 0 and sample.fresh:
                service.upload(sample, when)
            else:
                service.rescan(sample.sha256, when)
            if i % 10_000 == 0:
                store.ingest_batch(feed.poll())
        store.ingest_batch(feed.poll())
    store.close()
    return service, store
