"""The reprolint engine: parse, run rules, apply pragmas, sort findings.

One :func:`lint_paths` call is a pure function of (file contents,
config): files are discovered in sorted order, every rule's raw findings
are filtered through the pragma index and the per-rule path policy, and
the result is globally sorted by ``(path, line, col, code)`` — so two
runs over the same tree produce byte-identical reports, which
``tests/test_lint_selfcheck.py`` asserts the same way the store-digest
gate asserts serial/parallel equality.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import LintError
from repro.lint.config import ALL_CODES, LintConfig, normalize_path
from repro.lint.pragmas import Pragmas, collect_pragmas
from repro.lint.resolve import ImportMap
from repro.lint.rules import RULE_CLASSES, Rule


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str


@dataclass
class ModuleInfo:
    """Everything the rules need to know about one parsed module."""

    path: str
    tree: ast.Module
    imports: ImportMap
    pragmas: Pragmas
    #: ``def``/``class`` suppression spans: (first line, last line,
    #: codes disabled by a pragma on the header or a decorator line).
    scopes: list[tuple[int, int, frozenset[str]]]


@dataclass
class LintResult:
    """A lint run's outcome: active findings plus suppression accounting."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


def _parse_module(path: str, source: str) -> ModuleInfo:
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"cannot parse {path}: {exc}") from exc
    pragmas = collect_pragmas(source)
    scopes: list[tuple[int, int, frozenset[str]]] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
            continue
        header_lines = [node.lineno]
        header_lines.extend(d.lineno for d in node.decorator_list)
        codes: set[str] = set()
        for line in header_lines:
            codes.update(pragmas.by_line.get(line, ()))
        if codes:
            scopes.append((min(header_lines), node.end_lineno or node.lineno,
                           frozenset(codes)))
    return ModuleInfo(path=path, tree=tree, imports=ImportMap.from_module(tree),
                      pragmas=pragmas, scopes=scopes)


def _is_disabled(module: ModuleInfo, code: str, line: int) -> bool:
    if code in module.pragmas.file_level:
        return True
    if code in module.pragmas.by_line.get(line, ()):
        return True
    return any(start <= line <= end and code in codes
               for start, end, codes in module.scopes)


def _route(result: LintResult, module: ModuleInfo, config: LintConfig,
           code: str, raw: tuple[int, int, str]) -> None:
    """File one raw finding as active or pragma-suppressed."""
    line, col, message = raw
    finding = Finding(module.path, line, col, code, message)
    # RPL000 (pragma hygiene) cannot itself be pragma'd away — a broken
    # pragma must never silence the report that it is broken.
    if code != "RPL000" and _is_disabled(module, code, line):
        result.suppressed.append(finding)
    else:
        result.findings.append(finding)


def lint_modules(modules: Iterable[tuple[str, str]],
                 config: LintConfig | None = None) -> LintResult:
    """Lint ``(path, source)`` pairs; the core everything else wraps."""
    config = config if config is not None else LintConfig()
    rules: list[Rule] = [cls() for cls in RULE_CLASSES]
    result = LintResult()
    parsed: dict[str, ModuleInfo] = {}

    for path, source in modules:
        display = normalize_path(path)
        module = _parse_module(display, source)
        parsed[display] = module
        result.files_checked += 1
        # Pragma hygiene (RPL000) applies everywhere, always.
        for bad in module.pragmas.bad:
            _route(result, module, config, "RPL000",
                   (bad.line, bad.col, bad.message))
        for rule in rules:
            if not config.rule_applies(rule.code, display):
                continue
            for raw in rule.check(module):
                _route(result, module, config, rule.code, raw)

    # Whole-program passes (the RPL005 kind table).
    for rule in rules:
        for path, raw in rule.finish():
            module = parsed.get(path)
            if module is None or not config.rule_applies(rule.code, path):
                continue
            _route(result, module, config, rule.code, raw)

    result.findings = sorted(set(result.findings))
    result.suppressed = sorted(set(result.suppressed))
    return result


def lint_source(source: str, path: str = "repro/_inline.py",
                config: LintConfig | None = None) -> LintResult:
    """Lint one in-memory module — the unit-test entry point."""
    return lint_modules([(path, source)], config=config)


def _expand(target: Path) -> list[Path]:
    if target.is_dir():
        # rglob order is filesystem order; sort for determinism (the
        # same contract RPL004 enforces on the code under lint).
        return sorted(target.rglob("*.py"))
    return [target]


def lint_paths(paths: Sequence[str | Path],
               config: LintConfig | None = None) -> LintResult:
    """Lint files and directories (directories recurse over ``*.py``)."""
    files: list[Path] = []
    for raw in paths:
        target = Path(raw)
        if not target.exists():
            raise LintError(f"lint target does not exist: {target}")
        files.extend(_expand(target))

    def read(path: Path) -> tuple[str, str]:
        try:
            return str(path), path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"cannot read {path}: {exc}") from exc

    return lint_modules((read(path) for path in files), config=config)


def default_target() -> Path:
    """The tree ``repro-vt lint`` checks by default: this package."""
    import repro

    return Path(repro.__file__).resolve().parent


__all__ = [
    "ALL_CODES",
    "Finding",
    "LintResult",
    "default_target",
    "lint_modules",
    "lint_paths",
    "lint_source",
]
