"""Differential harness for the columnar (v3) hot path.

The columnar pipeline is only allowed to exist because it is
*indistinguishable* from the row pipeline at every observable seam:

* store digests are bit-identical row vs columnar for the same report
  stream (hand-built feeds, bulk array ingest, and full seeded scenario
  runs);
* every analysis result a figure consumes — the AV-Rank series list,
  the stable/dynamic split, the δ/Δ extractions, label flips, the
  pairwise pool — is equal whether computed by the python helpers over
  the row store or the `SeriesFrame` numpy kernels over the columnar
  one;
* `save(format_version=...)` emits byte-exact files across source
  layouts for every supported version, v1/v2 files load unchanged, and
  v3 → load → save is idempotent;
* hostile v3 payloads (truncations, bit flips, out-of-range dictionary
  or sparse-plane indices) surface `CorruptRecordError`, never a bare
  struct.error/IndexError — the same contract `test_store_codec.py`
  pins for the row codec.

A hypothesis property fuzzes the whole stack over random report streams
× block sizes × format versions.
"""

from __future__ import annotations

import dataclasses
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_report, make_sha
from repro.analysis.experiment import run_experiment
from repro.core.avrank import collect_series
from repro.core.metrics import pairwise_differences
from repro.errors import CorruptRecordError
from repro.store import codec, columnar
from repro.store.columnar import ColumnarBatch, SeriesFrame, encode_columnar
from repro.store.reportstore import ReportStore
from repro.vt.clock import MINUTES_PER_DAY, MONTH_STARTS

# ---------------------------------------------------------------------------
# Feed builders


def _feed(n_samples=12, scans_each=4, widths=(5, 5, 5), seed_tag="cf"):
    """A deterministic multi-sample, multi-month report stream.

    Scans interleave across samples, ranks vary per scan, file types
    cycle, and one sample lands in a second month so the shard split is
    exercised.  ``widths`` cycles the fleet width (equal entries = a
    uniform block, mixed = ragged).
    """
    reports = []
    ftypes = ("Win32 EXE", "PDF", "Android")
    month2 = MONTH_STARTS[1]
    for k in range(scans_each):
        for i in range(n_samples):
            width = widths[i % len(widths)]
            rank = (i * 7 + k * 3) % (width + 1)
            labels = [1] * rank + [0] * (width - rank)
            when = k * 500 + i
            if i == n_samples - 1:
                when += month2  # one sample's scans live in month 1
            reports.append(make_report(
                sha=make_sha(f"{seed_tag}{i}"),
                file_type=ftypes[i % len(ftypes)],
                scan_time=when,
                labels=labels,
                versions=[3 + k] * width,
                first_submission=-1 if i % 4 == 0 else 0,
                n_engines=width,
            ))
    return reports


def _store(reports, block_format, block_records=8) -> ReportStore:
    store = ReportStore(block_records=block_records,
                        block_format=block_format)
    for report in reports:
        store.ingest(report)
    store.close()
    return store


def _batch_of(reports) -> ColumnarBatch:
    return ColumnarBatch.from_records(
        [codec.encode_report(r) for r in reports])


# ---------------------------------------------------------------------------
# Digest + analysis differentials


class TestDifferentialDigest:
    def test_hand_built_feed_digest_identical(self):
        reports = _feed()
        assert _store(reports, "row").digest() == \
            _store(reports, "columnar").digest()

    def test_ragged_feed_digest_identical(self):
        reports = _feed(widths=(3, 5, 8))
        assert _store(reports, "row").digest() == \
            _store(reports, "columnar").digest()

    def test_scenario_run_digest_identical(self, tiny_config, tiny_serial):
        row_config = dataclasses.replace(tiny_config, block_format="row")
        row_data = run_experiment(row_config)
        assert tiny_serial.config.block_format == "columnar"
        assert row_data.store.digest() == tiny_serial.store.digest()

    def test_scenario_series_and_figures_identical(self, tiny_config,
                                                   tiny_serial):
        """The figure pipelines consume ``data.series()`` / dataset S —
        equality here makes every downstream figure bit-identical."""
        row_data = run_experiment(
            dataclasses.replace(tiny_config, block_format="row"))
        assert row_data.series() == tiny_serial.series()
        assert row_data.dataset_s == tiny_serial.dataset_s
        assert [s.sha256 for s in row_data.multi_report] == \
            [s.sha256 for s in tiny_serial.multi_report]

    def test_series_frame_matches_row_collect(self, store_block_format):
        reports = _feed()
        store = _store(reports, store_block_format)
        row_series = collect_series(
            _store(reports, "row").iter_sample_reports())
        assert store.series_frame().to_series() == row_series

    def test_series_frame_on_unclosed_store(self):
        reports = _feed()
        store = ReportStore(block_records=8, block_format="columnar")
        for report in reports:
            store.ingest(report)  # no close(): open buffers included
        row_series = collect_series(
            _store(reports, "row").iter_sample_reports())
        assert store.series_frame().to_series() == row_series


class TestIngestArraysEquivalence:
    def test_bulk_array_ingest_digest_matches_per_report(self):
        reports = _feed()
        per_report = _store(reports, "columnar")
        bulk = ReportStore(block_records=8, block_format="columnar")
        assert bulk.ingest_arrays(_batch_of(reports)) == len(reports)
        bulk.close()
        assert bulk.digest() == per_report.digest()

    def test_bulk_ingest_into_row_store_matches(self):
        reports = _feed()
        bulk = ReportStore(block_records=8, block_format="row")
        bulk.ingest_arrays(_batch_of(reports))
        bulk.close()
        assert bulk.digest() == _store(reports, "row").digest()

    def test_bulk_ingest_unsorted_months_matches(self):
        """The sorted-month slice fast path and the mask fallback agree."""
        reports = _feed()
        shuffled = reports[::-1]  # months now descend: mask path
        bulk = ReportStore(block_records=8, block_format="columnar")
        bulk.ingest_arrays(_batch_of(shuffled))
        bulk.close()
        assert bulk.digest() == _store(shuffled, "columnar").digest()

    def test_bulk_ingest_tops_up_open_buffer(self):
        reports = _feed()
        split = 5  # mid-block: the batch must top up the open buffer
        mixed = ReportStore(block_records=8, block_format="columnar")
        for report in reports[:split]:
            mixed.ingest(report)
        mixed.ingest_arrays(_batch_of(reports[split:]))
        mixed.close()
        assert mixed.digest() == _store(reports, "columnar").digest()


# ---------------------------------------------------------------------------
# Format-version round trips


class TestFormatRoundTrips:
    VERSIONS = (1, 2, 3)

    def _save_pair(self, tmp_path, version):
        reports = _feed()
        out = {}
        for fmt in ("row", "columnar"):
            store = _store(reports, fmt)
            path = tmp_path / f"{fmt}-v{version}.store"
            if version == 1:
                store.save(path, include_index=False)
            else:
                store.save(path, format_version=version)
            out[fmt] = path.read_bytes()
        return out

    @pytest.mark.parametrize("version", VERSIONS)
    def test_save_byte_exact_across_source_layouts(self, tmp_path, version):
        pair = self._save_pair(tmp_path, version)
        assert pair["row"] == pair["columnar"]

    @pytest.mark.parametrize("version", VERSIONS)
    def test_load_resave_idempotent(self, tmp_path, version):
        original = self._save_pair(tmp_path, version)["columnar"]
        path = tmp_path / "first.store"
        path.write_bytes(original)
        loaded = ReportStore.load(path)
        again = tmp_path / "again.store"
        if version == 1:
            loaded.save(again, include_index=False)
        else:
            loaded.save(again, format_version=version)
        assert again.read_bytes() == original

    @pytest.mark.parametrize("version", VERSIONS)
    def test_load_preserves_digest_and_reports(self, tmp_path, version):
        reports = _feed()
        store = _store(reports, "columnar")
        path = tmp_path / "s.store"
        if version == 1:
            store.save(path, include_index=False)
        else:
            store.save(path, format_version=version)
        loaded = ReportStore.load(path)
        assert loaded.digest() == store.digest()
        sha = reports[0].sha256
        assert loaded.reports_for(sha) == store.reports_for(sha)

    @pytest.mark.parametrize("version", VERSIONS)
    def test_mmap_load_parity(self, tmp_path, version):
        reports = _feed()
        store = _store(reports, "columnar")
        path = tmp_path / "s.store"
        if version == 1:
            store.save(path, include_index=False)
        else:
            store.save(path, format_version=version)
        mm = ReportStore.load(path, use_mmap=True)
        assert mm.digest() == store.digest()
        for sha in list(mm.samples())[:3]:
            assert mm.latest_report(sha) == store.latest_report(sha)

    def test_saved_version_field_matches(self, tmp_path):
        for version in self.VERSIONS:
            blob = self._save_pair(tmp_path, version)["row"]
            (header_len,) = struct.unpack_from("<I", blob, 8)
            assert f'"version": {version}'.encode() in blob[12:12 + header_len]

    def test_byte_exactness_survives_symmetric_read_traffic(self, tmp_path):
        """Reads bump the persisted retrieval counters, so byte-exact
        saves require the two stores to have seen the *same* traffic —
        asymmetric reads must change only the counter header, never the
        index or block sections."""
        reports = _feed()
        row, col = _store(reports, "row"), _store(reports, "columnar")
        sha = reports[0].sha256
        for store in (row, col):
            store.latest_report(sha)  # symmetric: one read each
        paths = {}
        for name, store in (("row", row), ("columnar", col)):
            paths[name] = tmp_path / f"{name}.store"
            store.save(paths[name], format_version=2)
        assert paths["row"].read_bytes() == paths["columnar"].read_bytes()

        # Asymmetric traffic: only the JSON header may differ.
        row.latest_report(reports[1].sha256)
        skewed = tmp_path / "skewed.store"
        row.save(skewed, format_version=2)
        a, b = skewed.read_bytes(), paths["columnar"].read_bytes()
        (len_a,) = struct.unpack_from("<I", a, 8)
        (len_b,) = struct.unpack_from("<I", b, 8)
        assert a[12 + len_a:] == b[12 + len_b:]


# ---------------------------------------------------------------------------
# ColumnarBatch / v3 payload round trips


class TestColumnarRoundTrip:
    def test_records_round_trip_exactly(self):
        records = [codec.encode_report(r) for r in _feed()]
        assert ColumnarBatch.from_records(records).to_records() == records

    def test_payload_round_trip_uniform(self):
        batch = _batch_of(_feed(widths=(6, 6, 6)))
        decoded = columnar.decode_columnar(encode_columnar(batch))
        assert decoded.to_records() == batch.to_records()

    def test_payload_round_trip_ragged(self):
        batch = _batch_of(_feed(widths=(2, 9, 4)))
        payload = encode_columnar(batch)
        (flags,) = struct.unpack_from("<B", payload, 14)
        assert not flags & columnar._FLAG_UNIFORM
        decoded = columnar.decode_columnar(payload)
        assert decoded.to_records() == batch.to_records()

    def test_empty_batch_round_trip(self):
        payload = encode_columnar(ColumnarBatch.empty())
        assert columnar.decode_columnar(payload).to_records() == []

    def test_encoding_is_pure_function_of_records(self):
        """A take()-derived batch drags no dictionary history into its
        encoding: same records, same bytes."""
        batch = _batch_of(_feed())
        pdf_only = batch.take(
            np.asarray([batch.ftypes[c] == "PDF"
                        for c in batch.ftype_codes.tolist()]))
        rebuilt = ColumnarBatch.from_records(pdf_only.to_records())
        assert encode_columnar(pdf_only) == encode_columnar(rebuilt)

    def test_metadata_only_decode(self):
        batch = _batch_of(_feed())
        payload = encode_columnar(batch)
        meta = columnar.decode_columnar(
            payload[:columnar.meta_section_end(payload)], planes=False)
        assert not meta.has_planes
        assert meta.scan_time.tolist() == batch.scan_time.tolist()
        assert meta.positives.tolist() == batch.positives.tolist()
        with pytest.raises(CorruptRecordError):
            meta.to_records()

    def test_report_slot_materialisation(self):
        reports = _feed()
        batch = _batch_of(reports)
        payload = encode_columnar(batch)
        decoded = columnar.decode_columnar(payload)
        assert decoded.report(0) == reports[0]
        assert decoded.report(len(reports) - 1) == reports[-1]


class TestSparseVersionPlane:
    def _payload(self, versions_of):
        """Encode 8 uniform-width records whose versions come from
        ``versions_of(record_index) -> list[int]``."""
        width = len(versions_of(0))
        reports = [make_report(sha=make_sha(f"sv{i}"), scan_time=100 + i,
                               labels=[i % 2] * width,
                               versions=versions_of(i), n_engines=width)
                   for i in range(8)]
        return encode_columnar(_batch_of(reports)), reports

    @staticmethod
    def _flags(payload):
        return struct.unpack_from("<B", payload, 14)[0]

    def test_constant_versions_choose_sparse(self):
        payload, reports = self._payload(lambda i: [7, 7, 7, 7])
        assert self._flags(payload) & columnar._FLAG_SPARSE_VERSIONS
        decoded = columnar.decode_columnar(payload)
        assert [decoded.report(i) for i in range(8)] == reports

    def test_churning_versions_choose_dense(self):
        payload, reports = self._payload(lambda i: [i + 1, i + 2, i + 3, 9])
        assert not self._flags(payload) & columnar._FLAG_SPARSE_VERSIONS
        decoded = columnar.decode_columnar(payload)
        assert [decoded.report(i) for i in range(8)] == reports

    def test_occasional_bump_round_trips(self):
        payload, reports = self._payload(
            lambda i: [7 + (i >= 5), 3, 4, 5])
        decoded = columnar.decode_columnar(payload)
        assert [decoded.report(i) for i in range(8)] == reports

    def test_ragged_block_never_sparse(self):
        batch = _batch_of(_feed(widths=(3, 6, 3)))
        assert not self._flags(encode_columnar(batch)) & \
            columnar._FLAG_SPARSE_VERSIONS

    def test_sparse_and_dense_decode_identically(self):
        payload, _ = self._payload(lambda i: [7, 7, 7, 7])
        assert self._flags(payload) & columnar._FLAG_SPARSE_VERSIONS
        sparse = columnar.decode_columnar(payload)
        rebuilt = encode_columnar(
            ColumnarBatch.from_records(sparse.to_records()))
        assert rebuilt == payload  # idempotent re-encode


# ---------------------------------------------------------------------------
# Corruption surface (mirrors TestCorruptionSurface in test_store_codec)


def _small_payload(sparse=False):
    if sparse:
        versions_of = [[5, 5]] * 3
    else:
        versions_of = [[1, 2], [3, 4], [5, 6]]
    reports = [make_report(sha=make_sha(f"c{i}"), scan_time=50 * i,
                           labels=[1, 0], versions=versions_of[i],
                           n_engines=2)
               for i in range(3)]
    return encode_columnar(_batch_of(reports))


class TestV3CorruptionSurface:
    """Hostile v3 payloads must surface CorruptRecordError, never a
    struct.error / IndexError / ValueError leaking codec internals."""

    def test_every_truncation_point_rejected_cleanly(self):
        payload = _small_payload()
        for cut in range(len(payload)):
            with pytest.raises(CorruptRecordError):
                columnar.decode_columnar(payload[:cut])

    def test_every_truncation_point_rejected_sparse(self):
        payload = _small_payload(sparse=True)
        for cut in range(len(payload)):
            with pytest.raises(CorruptRecordError):
                columnar.decode_columnar(payload[:cut])

    @pytest.mark.parametrize("sparse", [False, True])
    def test_bit_flips_never_leak_internal_errors(self, sparse):
        payload = _small_payload(sparse=sparse)
        for pos in range(len(payload)):
            for bit in (0x01, 0x80):
                mangled = bytearray(payload)
                mangled[pos] ^= bit
                try:
                    columnar.decode_columnar(bytes(mangled))
                except CorruptRecordError:
                    pass  # detected corruption: the contract
                # A silent decode is acceptable (no checksum); an
                # escaping struct/Index/ValueError is not.

    def test_metadata_only_bit_flips_never_leak(self):
        payload = _small_payload()
        meta_end = columnar.meta_section_end(payload)
        for pos in range(meta_end):
            mangled = bytearray(payload[:meta_end])
            mangled[pos] ^= 0x80
            try:
                columnar.decode_columnar(bytes(mangled), planes=False)
            except CorruptRecordError:
                pass

    def test_bad_magic_rejected(self):
        payload = _small_payload()
        with pytest.raises(CorruptRecordError):
            columnar.decode_columnar(b"XXXX" + payload[4:])

    def test_empty_payload_rejected(self):
        with pytest.raises(CorruptRecordError):
            columnar.decode_columnar(b"")

    def test_dictionary_code_out_of_range(self):
        payload = bytearray(_small_payload())
        # ftype code column sits right before the sha column.
        dict_end = len(payload) - (len(_small_payload())
                                   - columnar.meta_section_end(payload))
        del dict_end  # offsets below are computed structurally
        magic_n = struct.unpack_from("<4sIIHBI", bytes(payload), 0)
        _, n, _, _, _, dict_bytes = magic_n
        codes_at = (19 + dict_bytes
                    + n * (8 + 2 + 2 + 8 + 8 + 8 + 4 + 2))
        struct.pack_into("<H", payload, codes_at, 60_000)
        with pytest.raises(CorruptRecordError):
            columnar.decode_columnar(bytes(payload))

    def test_engine_count_disagreement_rejected(self):
        payload = bytearray(_small_payload())
        _, n, _, _, _, dict_bytes = struct.unpack_from(
            "<4sIIHBI", bytes(payload), 0)
        n_engines_at = 19 + dict_bytes + n * (8 + 2 + 2 + 8 + 8 + 8 + 4)
        struct.pack_into("<H", payload, n_engines_at, 40_000)
        with pytest.raises(CorruptRecordError):
            columnar.decode_columnar(bytes(payload))

    def test_uniform_flag_on_ragged_block_rejected(self):
        batch = _batch_of(_feed(widths=(2, 4, 2), n_samples=4,
                                scans_each=1))
        payload = bytearray(encode_columnar(batch))
        payload[14] |= columnar._FLAG_UNIFORM
        with pytest.raises(CorruptRecordError):
            columnar.decode_columnar(bytes(payload))

    def test_sparse_flag_on_non_uniform_block_rejected(self):
        batch = _batch_of(_feed(widths=(2, 4, 2), n_samples=4,
                                scans_each=1))
        payload = bytearray(encode_columnar(batch))
        payload[14] |= columnar._FLAG_SPARSE_VERSIONS
        with pytest.raises(CorruptRecordError):
            columnar.decode_columnar(bytes(payload))

    def _sparse_parts(self):
        payload = _small_payload(sparse=True)
        _, n, total_engines, _, flags, dict_bytes = struct.unpack_from(
            "<4sIIHBI", payload, 0)
        assert flags & columnar._FLAG_SPARSE_VERSIONS
        labels_end = (19 + dict_bytes
                      + n * columnar._META_BYTES_PER_RECORD
                      + total_engines)
        return bytearray(payload), labels_end

    def test_sparse_count_exceeding_records_rejected(self):
        payload, count_at = self._sparse_parts()
        struct.pack_into("<I", payload, count_at, 1_000)
        with pytest.raises(CorruptRecordError):
            columnar.decode_columnar(bytes(payload))

    def test_sparse_row_index_out_of_range_rejected(self):
        payload, count_at = self._sparse_parts()
        struct.pack_into("<I", payload, count_at + 4, 9_999)
        with pytest.raises(CorruptRecordError):
            columnar.decode_columnar(bytes(payload))

    def test_store_level_block_corruption_surfaces(self, tmp_path):
        """A flipped byte inside a saved v3 file surfaces as corruption
        (or a digest change), never an internal error, when read back."""
        store = _store(_feed(), "columnar")
        path = tmp_path / "s.store"
        store.save(path)
        blob = bytearray(path.read_bytes())
        blob[-30] ^= 0xFF  # inside the last block's zlib payload
        path.write_bytes(bytes(blob))
        try:
            loaded = ReportStore.load(path)
            assert loaded.digest() != store.digest()
        except CorruptRecordError:
            pass


# ---------------------------------------------------------------------------
# SeriesFrame kernel parity


class TestKernelParity:
    @pytest.fixture()
    def frame_and_series(self):
        reports = _feed(n_samples=14, scans_each=5)
        store = _store(reports, "columnar")
        frame = store.series_frame()
        return frame, frame.to_series()

    def test_label_flips_matches_python(self, frame_and_series):
        frame, series = frame_and_series
        for threshold in (1, 2, 3, 5):
            expected = sum(
                sum(1 for a, b in zip(s.labels_under(threshold),
                                      s.labels_under(threshold)[1:])
                    if a != b)
                for s in series)
            assert frame.label_flips(threshold) == expected

    def test_select_preserves_order_and_content(self, frame_and_series):
        frame, series = frame_and_series
        mask = frame.multi_mask() & frame.fresh
        sub = frame.select(mask)
        assert sub.to_series() == [s for s, keep in zip(series, mask)
                                   if keep]

    def test_select_with_index_array(self, frame_and_series):
        frame, series = frame_and_series
        idx = np.asarray([3, 0, 7], np.int64)
        assert frame.select(idx).to_series() == [series[3], series[0],
                                                 series[7]]

    def test_pairwise_diffs_matches_python_enumeration(
            self, frame_and_series):
        frame, series = frame_and_series
        intervals, diffs = frame.pairwise_diffs()
        reference = pairwise_differences(series,
                                         max_pairs_per_sample=10 ** 9)
        assert diffs.tolist() == list(reference.rank_diffs)
        assert [round(d * MINUTES_PER_DAY)
                for d in reference.interval_days] == intervals.tolist()

    def test_adjacent_deltas_match_python(self, frame_and_series):
        frame, series = frame_and_series
        expected = [d for s in series for d in s.adjacent_deltas()]
        assert frame.adjacent_deltas().tolist() == expected

    def test_delta_and_masks_match_python(self, frame_and_series):
        frame, series = frame_and_series
        assert frame.delta_overall().tolist() == \
            [s.delta_overall for s in series]
        assert frame.stable_mask().tolist() == \
            [s.multi and s.delta_overall == 0 for s in series]
        assert frame.span_minutes().tolist() == \
            [s.span_minutes for s in series]

    def test_empty_frame_kernels(self):
        frame = SeriesFrame.from_batches([])
        assert frame.label_flips(2) == 0
        assert frame.pairwise_diffs()[0].tolist() == []
        assert frame.select(np.zeros(0, bool)).n_samples == 0


# ---------------------------------------------------------------------------
# Property fuzz: random streams × block sizes × format versions


_report_strategy = st.builds(
    lambda sha_i, when, labels, versions_seed, first: make_report(
        sha=make_sha(f"h{sha_i}"),
        scan_time=when,
        labels=labels,
        versions=[versions_seed] * len(labels),
        first_submission=first,
        n_engines=len(labels),
    ),
    sha_i=st.integers(0, 5),
    when=st.integers(0, MONTH_STARTS[2] - 1),
    labels=st.lists(st.sampled_from([-1, 0, 1]), min_size=0, max_size=9),
    versions_seed=st.integers(0, 3),
    first=st.sampled_from([-1, 0, 40]),
)


class TestPropertyFuzz:
    @settings(max_examples=25, deadline=None)
    @given(reports=st.lists(_report_strategy, min_size=1, max_size=24),
           block_records=st.integers(1, 6),
           version=st.sampled_from([1, 2, 3]))
    def test_random_streams_are_format_invariant(self, tmp_path_factory,
                                                 reports, block_records,
                                                 version):
        tmp_path = tmp_path_factory.mktemp("fuzz")
        stores = {
            fmt: _store(reports, fmt, block_records=block_records)
            for fmt in ("row", "columnar")
        }
        # Saves come first: reads bump the persisted retrieval counters,
        # and the two layouts account them differently.
        saved = {}
        for fmt, store in stores.items():
            path = tmp_path / f"{fmt}.store"
            if version == 1:
                store.save(path, include_index=False)
            else:
                store.save(path, format_version=version)
            saved[fmt] = path.read_bytes()
        assert saved["row"] == saved["columnar"]

        assert stores["row"].digest() == stores["columnar"].digest()
        assert stores["columnar"].series_frame().to_series() == \
            collect_series(stores["row"].iter_sample_reports())

        reloaded = ReportStore.load(tmp_path / "columnar.store")
        assert reloaded.digest() == stores["row"].digest()

    @settings(max_examples=25, deadline=None)
    @given(reports=st.lists(_report_strategy, min_size=0, max_size=16))
    def test_random_batches_round_trip_v3(self, reports):
        records = [codec.encode_report(r) for r in reports]
        batch = ColumnarBatch.from_records(records)
        assert batch.to_records() == records
        decoded = columnar.decode_columnar(encode_columnar(batch))
        assert decoded.to_records() == records
