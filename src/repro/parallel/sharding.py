"""Deterministic sample partitioning for the parallel scenario engine.

A scenario's sample population is split into K contiguous index ranges.
Because every sample's randomness is keyed by its *global* index (see
:mod:`repro.synth.population`) — not by anything a worker does — the
partition is purely an assignment of work: shard outputs are independent
of K, of scheduling, and of which process runs which shard.  That is the
property the serial/parallel equivalence gate rests on.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class ShardSpec:
    """One shard's slice of the sample population: ``[start, stop)``."""

    shard_index: int
    n_shards: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start

    def indices(self) -> range:
        return range(self.start, self.stop)


def partition_samples(n_samples: int, n_shards: int) -> tuple[ShardSpec, ...]:
    """Split ``n_samples`` into ``n_shards`` contiguous, balanced ranges.

    A pure function of its arguments: shard ``k`` always covers
    ``[k*n//K, (k+1)*n//K)``, so every caller — workers, the merge
    driver, a resumed run — derives the same partition independently.
    Shard sizes differ by at most one; when ``n_shards > n_samples`` the
    surplus shards are empty (callers typically skip them).
    """
    if n_shards < 1:
        raise ConfigError(f"n_shards must be >= 1, got {n_shards}")
    if n_samples < 0:
        raise ConfigError(f"n_samples must be >= 0, got {n_samples}")
    bounds = [n_samples * k // n_shards for k in range(n_shards + 1)]
    return tuple(
        ShardSpec(shard_index=k, n_shards=n_shards,
                  start=bounds[k], stop=bounds[k + 1])
        for k in range(n_shards)
    )


#: Environment override capping what ``workers="auto"`` resolves to —
#: for shared CI runners and containers where ``os.cpu_count()`` reports
#: the host's cores, not the job's quota.  Explicit integer ``workers``
#: values are never capped: a stated count is an instruction.
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"


def _env_max_workers() -> int | None:
    """The ``REPRO_MAX_WORKERS`` cap, validated; ``None`` when unset."""
    raw = os.environ.get(MAX_WORKERS_ENV)
    if raw is None or not raw.strip():
        return None
    try:
        cap = int(raw)
    except ValueError:
        raise ConfigError(
            f"{MAX_WORKERS_ENV} must be a positive integer, "
            f"got {raw!r}") from None
    if cap < 1:
        raise ConfigError(
            f"{MAX_WORKERS_ENV} must be >= 1, got {cap}")
    return cap


def resolve_workers(workers: int | str) -> int:
    """Normalise a ``workers`` argument (``int`` or ``"auto"``) to a count.

    ``"auto"`` resolves to the machine's CPU count — clamped to at least
    1 (``os.cpu_count()`` may return ``None`` on exotic platforms) and
    capped by the ``REPRO_MAX_WORKERS`` environment variable when set.
    Anything else must be a positive integer; ``ConfigError`` otherwise,
    so a bad CLI value fails loudly before any work is scheduled.
    """
    if workers == "auto":
        resolved = max(1, os.cpu_count() or 1)
        cap = _env_max_workers()
        if cap is not None:
            resolved = min(resolved, cap)
        return max(1, resolved)
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ConfigError(f"workers must be a positive int or 'auto', "
                          f"got {workers!r}")
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    return workers
