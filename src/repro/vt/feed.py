"""The premium per-minute report feed.

The paper's dataset was collected by polling VirusTotal's premium feed
endpoint once per minute; each poll returns every report the service
generated in that minute (§4.1).  :class:`PremiumFeed` reproduces that
interface: it subscribes to a :class:`~repro.vt.service.VirusTotalService`
and exposes the accumulated reports as per-minute batches.

The feed is the *only* sanctioned path from the simulator into the report
store — mirroring how the authors' pipeline never queried per-sample but
consumed the firehose.

:class:`FeedArchive` models the real feed's bounded catch-up window: the
service keeps every per-minute batch for a retention period (the real
endpoint serves the last 7 days), so a collector that missed minutes —
an outage, a crash — can re-fetch exactly what it lost.  The archive is
*server-side* state: it survives a collector crash and is never touched
by the delivery-path fault injection in :mod:`repro.faults`.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.errors import ArchiveExpiredError, FeedNotAttachedError, PermissionError_
from repro.vt.clock import MINUTES_PER_DAY
from repro.vt.reports import ScanReport
from repro.vt.service import VirusTotalService

#: How long the feed archive retains per-minute batches (the real
#: premium feed allows catch-up fetches for the last 7 days).
DEFAULT_ARCHIVE_RETENTION_MINUTES = 7 * MINUTES_PER_DAY


class PremiumFeed:
    """A per-minute batch view over every report the service generates."""

    def __init__(self, service: VirusTotalService, premium: bool = True) -> None:
        if not premium:
            raise PermissionError_("premium feed")
        self._service = service
        self._buffer: deque[ScanReport] = deque()
        self._attached = False
        self._ever_attached = False
        self.batches_served = 0
        self.reports_served = 0
        #: Minute cursor: the exclusive upper bound of the last bounded
        #: poll — i.e. every report scanned strictly before ``cursor``
        #: has been delivered (or deliberately dropped).  Collectors use
        #: it to detect gaps between polls.
        self.cursor = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def attach(self) -> None:
        """Start receiving reports from the service."""
        if not self._attached:
            self._service.add_listener(self._deliver)
            self._attached = True
            self._ever_attached = True

    def detach(self) -> None:
        """Stop receiving reports."""
        if self._attached:
            self._service.remove_listener(self._deliver)
            self._attached = False

    def __enter__(self) -> "PremiumFeed":
        self.attach()
        return self

    def __exit__(self, *exc_info) -> None:
        self.detach()

    # ------------------------------------------------------------------
    # Delivery (the fault-interposition point)
    # ------------------------------------------------------------------

    def _deliver(self, report: ScanReport) -> None:
        """Receive one report from the service.

        This bound method is what the feed registers as the service
        listener; :mod:`repro.faults` interposes on the *consumption*
        side instead (wrapping :meth:`poll`), but subclasses may override
        delivery directly.
        """
        self._buffer.append(report)

    def drop_before(self, minute: int) -> int:
        """Discard buffered reports scanned strictly before ``minute``.

        The outage hook: a detached-listener outage loses exactly the
        reports the feed would otherwise have served, and the fault layer
        expresses that loss through this method.  Returns the number of
        reports dropped.
        """
        dropped = 0
        while self._buffer and self._buffer[0].scan_time < minute:
            self._buffer.popleft()
            dropped += 1
        self.cursor = max(self.cursor, minute)
        return dropped

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------

    def pending(self) -> int:
        """Number of buffered reports not yet served."""
        return len(self._buffer)

    def poll(self, until_minute: int | None = None) -> list[ScanReport]:
        """Drain buffered reports, optionally only up to a minute bound.

        With ``until_minute`` set, only reports scanned strictly before
        that minute are returned — the caller is emulating the authors'
        minute-by-minute polling loop.  Polling a feed that was never
        attached raises :class:`~repro.errors.FeedNotAttachedError`
        instead of silently serving an empty batch: a misconfigured
        collector must be distinguishable from a quiet feed.
        """
        if not self._ever_attached:
            raise FeedNotAttachedError()
        batch: list[ScanReport] = []
        while self._buffer:
            if (until_minute is not None
                    and self._buffer[0].scan_time >= until_minute):
                break
            batch.append(self._buffer.popleft())
        self.batches_served += 1
        self.reports_served += len(batch)
        if until_minute is not None:
            self.cursor = max(self.cursor, until_minute)
        return batch

    def minute_batches(self) -> Iterator[tuple[int, list[ScanReport]]]:
        """Group the currently buffered reports into per-minute batches.

        Yields ``(minute, reports)`` in time order and drains the buffer.
        Reports within one run of the simulator are generated in
        non-decreasing time order, which this method asserts.
        """
        current_minute: int | None = None
        batch: list[ScanReport] = []
        while self._buffer:
            report = self._buffer.popleft()
            if current_minute is not None and report.scan_time < current_minute:
                raise AssertionError("feed received reports out of order")
            if report.scan_time != current_minute:
                if batch:
                    self.batches_served += 1
                    self.reports_served += len(batch)
                    yield current_minute, batch
                current_minute = report.scan_time
                batch = []
            batch.append(report)
        if batch:
            self.batches_served += 1
            self.reports_served += len(batch)
            yield current_minute, batch


class FeedArchive:
    """Server-side retention of per-minute feed batches.

    Subscribes to the service like a feed, but groups reports by scan
    minute and retains them for a bounded window.  :meth:`batch` serves a
    past minute's reports for gap backfill; minutes that have aged out
    raise :class:`~repro.errors.ArchiveExpiredError`, forcing the
    collector onto its best-effort latest-report fallback.

    The retention boundary is a *closed* interval and single-sourced:
    both pruning and serving derive from :attr:`oldest_available`, so a
    request for exactly ``oldest_available`` is always **served** (its
    batch may be empty if nothing scanned that minute) and only minutes
    strictly below it raise.  An earlier revision computed the pruning
    floor and the serving floor independently, leaving the behaviour at
    the exact boundary to coincidence; ``tests/test_feed.py`` now pins
    every edge (floor−1, floor, floor+1, horizon).

    An archive can also be built *without* a live service, replaying a
    frozen :class:`~repro.store.ReportStore` (:meth:`from_store`) — the
    backing the ``repro.serve`` front-end uses for
    ``GET /feeds/files/{minute}`` over saved stores.
    """

    def __init__(
        self,
        service: VirusTotalService | None,
        retention_minutes: int = DEFAULT_ARCHIVE_RETENTION_MINUTES,
    ) -> None:
        self._service = service
        self.retention_minutes = retention_minutes
        self._minutes: dict[int, list[ScanReport]] = {}
        self._order: deque[int] = deque()
        #: Highest scan minute observed — the archive's notion of "now".
        self.horizon = 0
        self._attached = False

    @classmethod
    def from_store(
        cls,
        store,
        retention_minutes: int = DEFAULT_ARCHIVE_RETENTION_MINUTES,
    ) -> "FeedArchive":
        """Rebuild the archive a service *would* hold from a saved store.

        Replays every stored report grouped by scan minute, in minute
        order (stores reopened for backfill may hold records slightly
        out of time order, so the replay sorts first).  Retention prunes
        exactly as it would have live: only the last
        ``retention_minutes`` below the store's highest scan minute
        survive.
        """
        by_minute: dict[int, list[ScanReport]] = {}
        for report in store.iter_reports():
            by_minute.setdefault(report.scan_time, []).append(report)
        archive = cls(None, retention_minutes=retention_minutes)
        for minute in sorted(by_minute):
            for report in by_minute[minute]:
                archive._record(report)
        return archive

    def attach(self) -> None:
        if not self._attached:
            if self._service is None:
                raise FeedNotAttachedError()
            self._service.add_listener(self._record)
            self._attached = True

    def detach(self) -> None:
        if self._attached:
            self._service.remove_listener(self._record)
            self._attached = False

    def __enter__(self) -> "FeedArchive":
        self.attach()
        return self

    def __exit__(self, *exc_info) -> None:
        self.detach()

    def _record(self, report: ScanReport) -> None:
        minute = report.scan_time
        if minute not in self._minutes:
            self._minutes[minute] = []
            self._order.append(minute)
        self._minutes[minute].append(report)
        if minute > self.horizon:
            self.horizon = minute
            # Prune strictly below the same boundary batch() serves
            # from — the minute at oldest_available itself is retained.
            floor = self.oldest_available
            while self._order and self._order[0] < floor:
                del self._minutes[self._order.popleft()]

    @property
    def oldest_available(self) -> int:
        """The oldest minute still fetchable (inclusive boundary).

        ``batch(oldest_available)`` is always served — possibly as an
        empty batch — never raised on.  The window is the closed
        interval ``[oldest_available, horizon]``; this property is the
        single source of truth for both pruning and serving.
        """
        return max(0, self.horizon - self.retention_minutes)

    def minutes_retained(self) -> int:
        """Number of distinct minutes currently held."""
        return len(self._minutes)

    def batch(self, minute: int) -> list[ScanReport]:
        """The per-minute batch for ``minute`` (a copy; possibly empty).

        Raises :class:`~repro.errors.ArchiveExpiredError` only for
        minutes *strictly below* :attr:`oldest_available`; the boundary
        minute itself is inside the retention window and is served.
        """
        if minute < self.oldest_available:
            raise ArchiveExpiredError(minute, self.oldest_available)
        return list(self._minutes.get(minute, ()))
