"""``repro.lint`` (reprolint) — static enforcement of the determinism
contract.

Every equivalence gate in this repo — the serial/parallel digest gate,
byte-identical metric exports, chaos crash/resume convergence — rests on
one unwritten rule: *no unseeded randomness, no wall-clock reads, no
order-unstable iteration anywhere on the simulation path*.  reprolint
makes the rule written and machine-checked: an AST pass over the source
with per-rule codes (RPL001-RPL007), inline ``# reprolint:
disable=RPL00x`` pragmas with justifications, a config-driven path
policy for the sanctioned owners (clock modules, the parallel runner),
and byte-deterministic text/JSON reports.

The repo lints itself in tier-1 (``tests/test_lint_selfcheck.py``) and
in CI (``repro-vt lint --format json``): zero undisabled findings, the
same bar the dynamic gates hold the runtime to.
"""

from __future__ import annotations

from repro.lint.config import (
    ALL_CODES,
    DEFAULT_POLICIES,
    RULE_SUMMARIES,
    LintConfig,
    PathPolicy,
    normalize_path,
    parse_select,
)
from repro.lint.engine import (
    Finding,
    LintResult,
    default_target,
    lint_modules,
    lint_paths,
    lint_source,
)
from repro.lint.pragmas import BadPragma, Pragmas, collect_pragmas
from repro.lint.report import (
    JSON_SCHEMA,
    json_lines,
    render_json,
    render_rules,
    render_text,
    write_report,
)
from repro.lint.rules import RULE_CLASSES

__all__ = [
    "ALL_CODES",
    "DEFAULT_POLICIES",
    "JSON_SCHEMA",
    "RULE_CLASSES",
    "RULE_SUMMARIES",
    "Finding",
    "LintConfig",
    "LintResult",
    "PathPolicy",
    "default_target",
    "json_lines",
    "lint_modules",
    "lint_paths",
    "lint_source",
    "normalize_path",
    "parse_select",
    "render_json",
    "render_rules",
    "render_text",
    "write_report",
]
