"""Label aggregation strategies (§3.1).

Given one scan report, an aggregator reduces the 70 engine verdicts to a
single malicious/benign decision.  The paper surveys the strategies the
community actually uses, all implemented here:

* :class:`ThresholdAggregator` — malicious when AV-Rank >= t (thresholds
  of 1, 2 and 10 appear in the cited literature);
* :class:`PercentageAggregator` — malicious when the share of responding
  engines that flag the sample reaches a fraction (e.g. 50 %);
* :class:`TrustedEnginesAggregator` — count only a hand-picked set of
  reputable engines;
* :class:`WeightedVoteAggregator` — per-engine weights (the
  Kantchelian et al. style of learned vendor trust), e.g. down-weighting
  engines in the same correlation group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ConfigError
from repro.vt.reports import LABEL_MALICIOUS, ScanReport


class Aggregator:
    """Interface: reduce a report to one boolean verdict."""

    def is_malicious(self, report: ScanReport) -> bool:
        raise NotImplementedError

    def label(self, report: ScanReport) -> str:
        """The paper's "M"/"B" coding of the decision."""
        return "M" if self.is_malicious(report) else "B"


@dataclass(frozen=True)
class ThresholdAggregator(Aggregator):
    """Malicious when AV-Rank (positives) >= threshold."""

    threshold: int

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ConfigError(f"threshold must be >= 1, got {self.threshold}")

    def is_malicious(self, report: ScanReport) -> bool:
        return report.positives >= self.threshold


@dataclass(frozen=True)
class PercentageAggregator(Aggregator):
    """Malicious when positives / responding engines >= fraction."""

    fraction: float

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ConfigError(f"fraction must be in (0,1], got {self.fraction}")

    def is_malicious(self, report: ScanReport) -> bool:
        if report.total == 0:
            return False
        return report.positives / report.total >= self.fraction


class TrustedEnginesAggregator(Aggregator):
    """Threshold voting restricted to a trusted engine subset.

    Needs the fleet's name order to map names to label-vector columns.
    """

    def __init__(
        self,
        trusted: Sequence[str],
        engine_names: Sequence[str],
        threshold: int = 1,
    ) -> None:
        if threshold < 1:
            raise ConfigError(f"threshold must be >= 1, got {threshold}")
        if not trusted:
            raise ConfigError("trusted engine set must be non-empty")
        index = {name: i for i, name in enumerate(engine_names)}
        try:
            self._columns = tuple(index[name] for name in trusted)
        except KeyError as exc:
            raise ConfigError(f"unknown trusted engine: {exc.args[0]}") from None
        self.trusted = tuple(trusted)
        self.threshold = threshold

    def is_malicious(self, report: ScanReport) -> bool:
        votes = sum(
            1 for c in self._columns
            if report.label_of(c) == LABEL_MALICIOUS
        )
        return votes >= self.threshold


class WeightedVoteAggregator(Aggregator):
    """Weighted engine voting against a score threshold.

    A natural use (suggested by Observation 11) is weighting each engine
    by ``1 / len(its correlation group)`` so an OEM family of eight
    engines counts as one independent opinion.
    """

    def __init__(
        self,
        weights: Mapping[str, float],
        engine_names: Sequence[str],
        threshold: float,
    ) -> None:
        if threshold <= 0:
            raise ConfigError(f"score threshold must be > 0, got {threshold}")
        index = {name: i for i, name in enumerate(engine_names)}
        resolved: list[tuple[int, float]] = []
        for name, weight in weights.items():
            if name not in index:
                raise ConfigError(f"unknown engine in weights: {name!r}")
            if weight < 0:
                raise ConfigError(f"negative weight for {name!r}")
            resolved.append((index[name], weight))
        self._weighted_columns = tuple(resolved)
        self.threshold = threshold

    def is_malicious(self, report: ScanReport) -> bool:
        score = sum(
            weight for column, weight in self._weighted_columns
            if report.label_of(column) == LABEL_MALICIOUS
        )
        return score >= self.threshold

    @classmethod
    def from_correlation_groups(
        cls,
        groups: Sequence[Sequence[str]],
        engine_names: Sequence[str],
        threshold: float,
    ) -> "WeightedVoteAggregator":
        """Build group-deduplicated weights from §7.2 correlation groups."""
        weights = {name: 1.0 for name in engine_names}
        for group in groups:
            if not group:
                continue
            share = 1.0 / len(group)
            for name in group:
                weights[name] = share
        return cls(weights, engine_names, threshold)
