"""Figure 7 / Observation 5: AV-Rank differences grow with scan interval.

Paper: over all scan pairs of dataset S, the difference between two
results correlates strongly with the interval separating them (Spearman
rho = 0.9181, p = 2.6e-167, intervals up to 418 days).
"""

from __future__ import annotations

from functools import partial

from repro.analysis.dynamics import interval_effect
from repro.analysis.rendering import render_fig7

from conftest import run_once, say


def test_fig7_interval_effect(benchmark, bench_data):
    effect = run_once(
        benchmark, partial(interval_effect, bench_data.dataset_s)
    )
    say()
    say(render_fig7(effect))

    # Clear positive trend with high significance (paper: rho 0.9181;
    # bucket noise at small scenario scale keeps this conservative).
    assert effect.correlation.rho > 0.35
    assert effect.correlation.p_value < 0.05
    # Long-interval boxes sit above short-interval boxes.
    buckets = sorted(effect.binned_boxes)
    if len(buckets) >= 4:
        early = effect.binned_boxes[buckets[0]].mean
        late_means = [effect.binned_boxes[b].mean for b in buckets[3:]
                      if effect.binned_boxes[b].count >= 30]
        if late_means:
            assert max(late_means) > early
    # Intervals span months, as in the paper's 418-day maximum.
    assert effect.max_interval_days > 120
