"""Property-based tests (hypothesis) for core data structures and
invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.avrank import AVRankSeries
from repro.core.categorize import categorize, category_distribution
from repro.core.stabilization import avrank_stabilization, label_stabilization
from repro.stats.cdf import EmpiricalCDF
from repro.stats.descriptive import boxplot_stats, quantile
from repro.stats.ranking import fractional_ranks
from repro.stats.spearman import spearman
from repro.store import codec
from repro.vt.reports import ScanReport, decode_labels, encode_labels

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

ranks_strategy = st.lists(st.integers(min_value=0, max_value=70),
                          min_size=1, max_size=30)
labels_strategy = st.lists(st.sampled_from([-1, 0, 1]),
                           min_size=1, max_size=70)


def _series(ranks: list[int]) -> AVRankSeries:
    return AVRankSeries(
        sha256="ab" * 32,
        file_type="TXT",
        fresh=True,
        times=tuple(range(0, len(ranks) * 1000, 1000)),
        ranks=tuple(ranks),
    )


# ---------------------------------------------------------------------------
# Report encoding
# ---------------------------------------------------------------------------


@given(labels_strategy)
def test_label_encoding_round_trips(labels):
    assert decode_labels(encode_labels(labels)) == labels


@given(
    labels=labels_strategy,
    scan_time=st.integers(min_value=0, max_value=10**7),
    first_sub=st.integers(min_value=-10**6, max_value=10**6),
)
def test_report_codec_round_trips(labels, scan_time, first_sub):
    report = ScanReport(
        sha256="cd" * 32,
        file_type="Win32 EXE",
        scan_time=scan_time,
        positives=sum(1 for v in labels if v == 1),
        total=sum(1 for v in labels if v != -1),
        labels=encode_labels(labels),
        versions=tuple(range(len(labels))),
        first_submission_date=first_sub,
        last_submission_date=max(first_sub, 0),
        last_analysis_date=scan_time,
        times_submitted=1,
    )
    assert codec.decode_report(codec.encode_report(report)) == report


@given(st.lists(st.binary(max_size=200), max_size=30))
def test_block_framing_round_trips(records):
    assert codec.decode_block(codec.encode_block(records)) == records


# ---------------------------------------------------------------------------
# Statistics invariants
# ---------------------------------------------------------------------------


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=200))
def test_cdf_is_monotone_and_normalised(values):
    cdf = EmpiricalCDF(values)
    steps = list(cdf.steps())
    fractions = [f for _, f in steps]
    assert fractions == sorted(fractions)
    assert fractions[-1] == 1.0
    assert cdf.at(cdf.max) == 1.0
    assert cdf.at(cdf.min - 1) == 0.0


@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100),
       st.floats(0.0, 1.0))
def test_quantile_within_data_range(values, q):
    data = sorted(values)
    result = quantile(data, q)
    assert data[0] <= result <= data[-1]


@given(st.lists(st.integers(-50, 50), min_size=1, max_size=150))
def test_boxplot_geometry(values):
    stats = boxplot_stats(values)
    assert stats.q1 <= stats.median <= stats.q3
    assert stats.whisker_low <= stats.q1
    assert stats.q3 <= stats.whisker_high
    assert 0 <= stats.outlier_count < len(values) or len(values) == stats.outlier_count == 0


@given(st.lists(st.integers(-5, 5), min_size=1, max_size=100))
def test_fractional_ranks_are_a_permutation_mean(values):
    ranks = fractional_ranks(values)
    n = len(values)
    assert sum(ranks) == (n * (n + 1)) / 2
    assert min(ranks) >= 1
    assert max(ranks) <= n


@given(st.lists(st.tuples(st.integers(-3, 3), st.integers(-3, 3)),
                min_size=3, max_size=100))
def test_spearman_symmetry_and_bounds(pairs):
    x = [a for a, _ in pairs]
    y = [b for _, b in pairs]
    rho_xy = spearman(x, y).rho
    rho_yx = spearman(y, x).rho
    if math.isnan(rho_xy):
        assert math.isnan(rho_yx)
    else:
        assert rho_xy == rho_yx
        assert -1.0 <= rho_xy <= 1.0


@given(st.lists(st.integers(-3, 3), min_size=3, max_size=80))
def test_spearman_self_correlation_is_one(values):
    result = spearman(values, values)
    if not math.isnan(result.rho):
        assert result.rho == 1.0


# ---------------------------------------------------------------------------
# AV-Rank analysis invariants
# ---------------------------------------------------------------------------


@given(ranks_strategy)
def test_delta_bounds(ranks):
    s = _series(ranks)
    assert 0 <= s.delta_overall <= 70
    for d in s.adjacent_deltas():
        assert 0 <= d <= s.delta_overall or s.delta_overall == 0


@given(ranks_strategy)
def test_adjacent_delta_never_exceeds_overall(ranks):
    s = _series(ranks)
    if s.multi:
        assert max(s.adjacent_deltas()) <= s.delta_overall


@given(ranks_strategy, st.integers(1, 70))
def test_categorize_consistent_with_label_rule(ranks, threshold):
    s = _series(ranks)
    category = categorize(s, threshold)
    labels = {rank >= threshold for rank in ranks}
    if category == "white":
        assert labels == {False}
    elif category == "black":
        assert labels == {True}
    else:
        assert labels == {True, False}


@given(st.lists(ranks_strategy, min_size=1, max_size=20))
def test_category_counts_partition(pools):
    series_pool = [_series(r) for r in pools]
    for counts in category_distribution(series_pool, [1, 5, 25, 50]):
        assert counts.white + counts.black + counts.gray == len(series_pool)


@given(ranks_strategy, st.integers(0, 5))
def test_stabilization_monotone_in_fluctuation(ranks, r):
    s = _series(ranks)
    narrow = avrank_stabilization(s, r)
    wide = avrank_stabilization(s, r + 1)
    if narrow.stabilized:
        assert wide.stabilized
        assert wide.scan_index <= narrow.scan_index


@given(ranks_strategy, st.integers(1, 70))
def test_label_stabilization_consistent(ranks, threshold):
    s = _series(ranks)
    out = label_stabilization(s, threshold)
    labels = s.labels_under(threshold)
    if out.stabilized:
        suffix = labels[out.scan_index - 2:]
        assert len(set(suffix)) == 1
        assert suffix[-1] == out.final_label
    elif s.multi:
        # Not stabilised means the last two labels differ.
        assert labels[-1] != labels[-2]


@given(ranks_strategy)
def test_stable_sample_never_has_positive_delta(ranks):
    s = _series(ranks)
    assert s.stable == (s.delta_overall == 0)


# ---------------------------------------------------------------------------
# Correlation matrix invariants
# ---------------------------------------------------------------------------


@settings(max_examples=25)
@given(st.integers(0, 10_000))
def test_spearman_matrix_bounds(seed):
    from repro.stats.spearman import spearman_matrix

    rng = np.random.default_rng(seed)
    matrix = rng.integers(-1, 2, size=(30, 5))
    rho = spearman_matrix(matrix)
    finite = rho[np.isfinite(rho)]
    assert np.all(finite <= 1.0 + 1e-9)
    assert np.all(finite >= -1.0 - 1e-9)
