"""Reusable discrete and continuous samplers for workload generation.

Everything takes an explicit :class:`random.Random` stream — the library
never touches global random state, so scenarios are reproducible from
their seed alone.
"""

from __future__ import annotations

import bisect
import itertools
import math
import random
from typing import Sequence

from repro.errors import ConfigError


class WeightedChoice:
    """O(log n) weighted sampling over a fixed support.

    Precomputes cumulative weights once; the population generator draws a
    file type per sample from a 351-way distribution, so this matters.
    """

    def __init__(self, items: Sequence, weights: Sequence[float]) -> None:
        if len(items) != len(weights):
            raise ConfigError("items/weights length mismatch")
        if not items:
            raise ConfigError("empty support")
        if any(w < 0 for w in weights):
            raise ConfigError("negative weight")
        self.items = list(items)
        self.cumulative = list(itertools.accumulate(weights))
        if self.cumulative[-1] <= 0:
            raise ConfigError("weights sum to zero")

    def sample(self, rng: random.Random):
        x = rng.random() * self.cumulative[-1]
        return self.items[bisect.bisect_right(self.cumulative, x)]


def lognormal_minutes(
    rng: random.Random, median_days: float, sigma: float
) -> int:
    """A log-normal duration in minutes with the given median (days)."""
    if median_days <= 0:
        raise ConfigError("median_days must be positive")
    days = math.exp(math.log(median_days) + sigma * rng.gauss(0.0, 1.0))
    return max(1, int(days * 24 * 60))


def pareto_count(
    rng: random.Random, minimum: int, alpha: float, cap: int
) -> int:
    """A Pareto-tailed integer count >= minimum, capped.

    Figure 1's reports-per-sample distribution has a heavy tail (one
    sample reached 64 168 reports); the tail branch of the report-count
    mixture uses this sampler.
    """
    if alpha <= 0:
        raise ConfigError("alpha must be positive")
    value = minimum / (1.0 - rng.random()) ** (1.0 / alpha)
    return min(cap, max(minimum, int(value)))


def lognormal_bytes(
    rng: random.Random, median_bytes: int, sigma: float = 1.2
) -> int:
    """A log-normal file size in bytes."""
    size = math.exp(math.log(median_bytes) + sigma * rng.gauss(0.0, 1.0))
    return max(16, int(size))


#: Fig 1 landmark: share of samples with exactly one report.
SINGLE_REPORT_SHARE = 0.8881

#: Conditional distribution of report counts among multi-report samples,
#: matching Figure 2's landmarks (~69 % have exactly two reports, ~94 %
#: at most four); the remainder draws from the Pareto tail.
MULTI_REPORT_PMF: tuple[tuple[int, float], ...] = (
    (2, 0.69),
    (3, 0.17),
    (4, 0.08),
)
MULTI_REPORT_TAIL_ALPHA = 1.45
MULTI_REPORT_TAIL_MIN = 5
MULTI_REPORT_TAIL_CAP = 2000


def multi_report_count(rng: random.Random, tail_boost: float = 1.0) -> int:
    """Draw a report count >= 2 from the calibrated mixture.

    ``tail_boost`` > 1 shifts mass into the heavy tail, used for file
    types the paper shows being rescanned intensively (Win32 DLL averages
    ~4 reports per sample in Table 3).
    """
    x = rng.random()
    acc = 0.0
    for count, p in MULTI_REPORT_PMF:
        # A boosted tail proportionally thins the small counts.
        acc += p / tail_boost if tail_boost > 1.0 else p
        if x < acc:
            return count
    return pareto_count(
        rng, MULTI_REPORT_TAIL_MIN, MULTI_REPORT_TAIL_ALPHA,
        MULTI_REPORT_TAIL_CAP,
    )


def report_count(
    rng: random.Random,
    multi_prob: float = 1.0 - SINGLE_REPORT_SHARE,
    tail_boost: float = 1.0,
) -> int:
    """Draw a sample's total report count (Figure 1 mixture)."""
    if rng.random() >= multi_prob:
        return 1
    return multi_report_count(rng, tail_boost=tail_boost)
