"""Chaos acceptance for the elastic executor.

The gate mirrors the collection pipeline's: a parallel run battered by
injected worker crashes, hangs and corrupted payloads must converge to
**exactly** the fault-free serial store — same digest, byte-identical
injected-registry metric export — because shard bytes are a pure
function of ``(config, range)`` and the scheduler never merges a payload
that fails its digest check.

Fault decisions are pure functions of ``(seed, shard key, attempt)``
(:class:`repro.faults.ExecutorFaultPlan`), so each test dials in exactly
the failure mode it wants and the run replays identically.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiment import run_experiment
from repro.errors import ShardFailedError
from repro.faults import ExecutorFaultPlan, standard_executor_chaos_plan
from repro.obs import MetricsRegistry, jsonl_lines
from repro.parallel import ExecutorPolicy
from repro.parallel.executors import fork_available
from repro.synth.scenario import tiny_scenario

#: One scenario shared by every test: small enough for process pools,
#: large enough that the standard chaos mix injects every fault kind.
CONFIG = tiny_scenario(n_samples=150, seed=13)

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="platform has no fork")


@pytest.fixture(scope="module")
def serial_digest() -> str:
    return run_experiment(CONFIG).store.digest()


def chaos_policy(kind: str, *, deadline: float = 1.5,
                 hang_seconds: float = 2.5, seed: int = 0,
                 **plan_kwargs) -> ExecutorPolicy:
    if plan_kwargs:
        plan = ExecutorFaultPlan(seed=seed, hang_seconds=hang_seconds,
                                 **plan_kwargs)
    else:
        plan = standard_executor_chaos_plan(seed=seed,
                                            hang_seconds=hang_seconds)
    return ExecutorPolicy(kind=kind, heartbeat_deadline=deadline,
                          fault_plan=plan)


class TestChaosConvergence:
    """The acceptance gate: chaos digest == fault-free serial digest."""

    @needs_fork
    def test_fork_standard_chaos_converges(self, serial_digest):
        data = run_experiment(CONFIG, workers=3,
                              executor=chaos_policy("fork"))
        assert data.store.digest() == serial_digest
        report = data.executor_report
        assert report is not None and not report.clean
        # The standard mix at these rates must actually exercise the
        # failure paths, or this gate tests nothing.
        assert report.retried > 0
        assert report.workers_lost > 0
        assert report.completed == report.tasks
        assert not report.dead_shards

    def test_in_process_standard_chaos_converges(self, serial_digest):
        data = run_experiment(CONFIG, workers=3,
                              executor=chaos_policy("in-process"))
        assert data.store.digest() == serial_digest
        assert not data.executor_report.clean
        assert data.executor_report.executor == "in-process"

    def test_spawn_standard_chaos_converges(self, serial_digest):
        data = run_experiment(CONFIG, workers=2,
                              executor=chaos_policy("spawn"))
        assert data.store.digest() == serial_digest
        assert data.executor_report.executor == "spawn"
        assert data.executor_report.completed == data.executor_report.tasks


class TestFaultKinds:
    """Each injected failure mode, isolated."""

    @needs_fork
    def test_crash_before_result_retries_and_converges(self, serial_digest):
        policy = chaos_policy("fork", crash_before_result_rate=0.4)
        data = run_experiment(CONFIG, workers=3, executor=policy)
        assert data.store.digest() == serial_digest
        report = data.executor_report
        assert report.workers_lost > 0
        assert report.workers_respawned > 0
        assert report.retried >= report.workers_lost

    @needs_fork
    def test_crash_mid_shard_resumes_to_same_digest(self, serial_digest):
        """Work lost mid-flight (computed but never shipped) is redone
        from the range's start and merges identically."""
        policy = chaos_policy("fork", crash_mid_shard_rate=0.5)
        data = run_experiment(CONFIG, workers=3, executor=policy)
        assert data.store.digest() == serial_digest
        assert data.executor_report.workers_lost > 0

    @needs_fork
    def test_hang_past_deadline_is_stolen(self, serial_digest):
        """A silent worker trips the heartbeat deadline; its range is
        reassigned and the late duplicate is discarded by digest."""
        policy = chaos_policy("fork", deadline=0.3, hang_seconds=1.2,
                              hang_rate=0.5)
        data = run_experiment(CONFIG, workers=2, executor=policy)
        assert data.store.digest() == serial_digest
        report = data.executor_report
        assert report.ranges_stolen > 0
        assert report.completed == report.tasks

    def test_corrupt_payload_never_merged(self, serial_digest):
        """A payload that fails its integrity check is retried — the
        poisoned bytes never reach the merge, so the digest still
        matches even at a 60% corruption rate."""
        policy = chaos_policy("in-process", corrupt_payload_rate=0.6)
        data = run_experiment(CONFIG, workers=3, executor=policy)
        assert data.store.digest() == serial_digest
        report = data.executor_report
        assert report.corrupt_payloads > 0
        assert report.retried >= report.corrupt_payloads

    def test_exhausted_retries_raise_structured_error(self):
        """Every attempt of every shard crashes → after the bounded
        retry budget the run fails loudly, naming every dead range."""
        plan = ExecutorFaultPlan(seed=0, crash_before_result_rate=1.0,
                                 max_faulty_attempts=99)
        policy = ExecutorPolicy(kind="in-process", max_attempts=2,
                                retry_backoff=0.0, fault_plan=plan)
        with pytest.raises(ShardFailedError) as excinfo:
            run_experiment(CONFIG, workers=2, executor=policy)
        err = excinfo.value
        assert len(err.shard_keys) == 8  # 2 workers × fanout 4
        assert list(err.shard_keys) == sorted(err.shard_keys)
        assert all(key.startswith("shard-") for key in err.shard_keys)
        assert err.report is not None
        assert err.report.completed == 0
        assert "shard-000" in str(err)


class TestMetricEquivalence:
    """The metric side of the gate: chaos must not perturb the
    experiment's injected-registry export by a single byte."""

    def test_chaos_export_byte_identical_to_serial(self):
        serial = MetricsRegistry()
        run_experiment(CONFIG, metrics=serial)
        chaos = MetricsRegistry()
        data = run_experiment(CONFIG, workers=3, metrics=chaos,
                              executor=chaos_policy("in-process"))
        assert not data.executor_report.clean
        assert jsonl_lines(chaos) == jsonl_lines(serial)

    def test_scheduling_telemetry_lands_process_wide(self):
        from repro.obs import set_registry

        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            data = run_experiment(CONFIG, workers=3,
                                  executor=chaos_policy("in-process"))
        finally:
            set_registry(previous)
        retried = registry.counter("parallel.shards.retried",
                                   executor="in-process").value
        assert retried == data.executor_report.retried > 0
