"""Unit tests for white/black/gray categorisation (repro.core.categorize)."""

import pytest

from repro.core.categorize import (
    BLACK,
    GRAY,
    WHITE,
    CategoryCounts,
    categorize,
    category_distribution,
)
from repro.errors import ConfigError

from test_avrank import series


class TestCategorize:
    def test_white_when_all_ranks_below_threshold(self):
        assert categorize(series([0, 2, 3]), 5) == WHITE

    def test_black_when_all_ranks_at_least_threshold(self):
        assert categorize(series([5, 7, 9]), 5) == BLACK

    def test_gray_when_crossing(self):
        assert categorize(series([3, 7]), 5) == GRAY

    def test_boundary_rank_equal_threshold_is_black(self):
        """rank >= t labels malicious, so p_min == t is black not white."""
        assert categorize(series([5, 5]), 5) == BLACK

    def test_boundary_pmax_just_below(self):
        assert categorize(series([4, 4]), 5) == WHITE

    def test_threshold_must_be_positive(self):
        with pytest.raises(ConfigError):
            categorize(series([1, 2]), 0)


class TestDistribution:
    def test_counts_partition(self):
        pool = [series([0, 1]), series([9, 9]), series([3, 8])]
        (counts,) = category_distribution(pool, [5])
        assert counts.white == 1
        assert counts.black == 1
        assert counts.gray == 1
        assert counts.total == 3

    def test_fractions(self):
        counts = CategoryCounts(threshold=5, white=1, black=1, gray=2)
        assert counts.gray_fraction == 0.5
        assert counts.white_fraction == 0.25
        assert counts.black_fraction == 0.25

    def test_empty_pool(self):
        (counts,) = category_distribution([], [3])
        assert counts.total == 0
        assert counts.gray_fraction == 0.0

    def test_multiple_thresholds_one_pass(self):
        pool = [series([2, 10])]
        results = category_distribution(pool, range(1, 15))
        # crossing band is (2, 10]: gray for 3..10
        for counts in results:
            expected = GRAY if 3 <= counts.threshold <= 10 else (
                BLACK if counts.threshold <= 2 else WHITE
            )
            got = (GRAY if counts.gray else
                   BLACK if counts.black else WHITE)
            assert got == expected, counts.threshold

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ConfigError):
            category_distribution([series([1, 2])], [0])
