"""Flow-rule tests: RPL101-RPL105 over single- and multi-module fixtures.

The two whole-program rules (RPL101 lock discipline, RPL103 digest
purity) are exercised through :func:`repro.lint.lint_modules` with
fixture modules placed at the *real* root paths the config names
(``repro/serve/...``, ``repro/store/reportstore.py``), so root matching,
policy gating and the call-chain evidence all run exactly as they do on
the shipped tree.
"""

import textwrap

from repro.lint import LintConfig, lint_modules, lint_source, render_text


def run_modules(modules, select):
    pairs = [(path, textwrap.dedent(src)) for path, src in modules]
    return lint_modules(pairs, config=LintConfig(select=frozenset(select)))


def run_one(source, path, select):
    return lint_source(textwrap.dedent(source), path=path,
                       config=LintConfig(select=frozenset(select)))


class TestLockDiscipline:
    HANDLER = """
        import threading

        class Handler:
            def __init__(self):
                self._lock = threading.Lock()
                self.hits = 0

            def do_GET(self):
                self.hits += 1

            def do_POST(self):
                with self._lock:
                    self.hits += 1
                self.close_connection = True
    """

    def test_unlocked_write_on_handler_path_is_flagged(self):
        result = run_modules(
            [("repro/serve/fixture.py", self.HANDLER)], {"RPL101"})
        assert [f.code for f in result.findings] == ["RPL101"]
        finding = result.findings[0]
        assert "self.hits" in finding.message
        assert finding.detail.startswith("unlocked call chain: ")
        assert "do_GET" in finding.detail

    def test_locked_write_and_thread_confined_attr_are_clean(self):
        # do_POST's write is inside `with self._lock`, and
        # close_connection is the declared thread-confined carve-out —
        # the only finding is do_GET's.
        result = run_modules(
            [("repro/serve/fixture.py", self.HANDLER)], {"RPL101"})
        assert all("do_GET" in f.detail for f in result.findings)

    def test_cross_module_write_reports_full_chain(self):
        registry = """
            class Registry:
                def record(self):
                    self.total = 1
        """
        handler = """
            from repro.serve.registry_fix import Registry

            class Handler:
                def __init__(self):
                    self._registry = Registry()

                def do_GET(self):
                    self._registry.record()
        """
        result = run_modules(
            [("repro/serve/registry_fix.py", registry),
             ("repro/serve/handler_fix.py", handler)], {"RPL101"})
        assert [f.path for f in result.findings] == \
            ["repro/serve/registry_fix.py"]
        assert result.findings[0].detail == (
            "unlocked call chain: "
            "repro.serve.handler_fix.Handler.do_GET -> "
            "repro.serve.registry_fix.Registry.record")

    def test_outside_thread_roots_is_clean(self):
        # The same shape under a non-serve path has no thread roots.
        result = run_modules(
            [("repro/analysis/fixture.py", self.HANDLER)], {"RPL101"})
        assert result.findings == []


class TestDigestPurity:
    def test_cross_module_taint_reports_full_chain_in_explain(self):
        store = """
            from repro.store.stamp_fix import stamp

            class ReportStore:
                def ingest(self, report):
                    return stamp(report)
        """
        stamp = """
            import time

            def stamp(report):
                return (time.time(), report)
        """
        result = run_modules(
            [("repro/store/reportstore.py", store),
             ("repro/store/stamp_fix.py", stamp)], {"RPL103"})
        assert [f.code for f in result.findings] == ["RPL103"]
        finding = result.findings[0]
        assert finding.path == "repro/store/stamp_fix.py"
        assert "time.time" in finding.message
        assert finding.detail == (
            "digest call chain: "
            "repro.store.reportstore.ReportStore.ingest -> "
            "repro.store.stamp_fix.stamp")
        # --explain renders the chain as an indented evidence line.
        text = render_text(result, explain=True)
        assert "\n    digest call chain: " in text

    def test_taint_does_not_descend_into_sanctioned_clock_owner(self):
        store = """
            from repro.vt.clock import tick

            class ReportStore:
                def ingest(self, report):
                    return tick(report)
        """
        clock = """
            import time

            def tick(report):
                return time.time()
        """
        result = run_modules(
            [("repro/store/reportstore.py", store),
             ("repro/vt/clock.py", clock)], {"RPL103"})
        assert result.findings == []

    def test_unreachable_impurity_is_not_flagged(self):
        store = """
            class ReportStore:
                def ingest(self, report):
                    return report
        """
        loose = """
            import time

            def banner():
                return time.time()
        """
        result = run_modules(
            [("repro/store/reportstore.py", store),
             ("repro/store/loose_fix.py", loose)], {"RPL103"})
        assert result.findings == []


class TestResourceLeaks:
    def test_never_closed_binding_is_flagged(self):
        result = run_one("""
            def leak(p):
                f = open(p)
                return 1
        """, "repro/fix/res.py", {"RPL102"})
        assert [f.code for f in result.findings] == ["RPL102"]
        assert "never closed" in result.findings[0].message

    def test_discarded_acquisition_is_flagged(self):
        result = run_one("""
            def drop(p):
                open(p)
        """, "repro/fix/res.py", {"RPL102"})
        assert [f.code for f in result.findings] == ["RPL102"]
        assert "discarded" in result.findings[0].message

    def test_with_block_close_and_handoff_are_clean(self):
        result = run_one("""
            def ok_with(p):
                with open(p) as f:
                    return f.read()

            def ok_close(p):
                f = open(p)
                try:
                    return f.read()
                finally:
                    f.close()

            def ok_handoff(p):
                f = open(p)
                return f

            def ok_chained(p):
                return open(p).read()
        """, "repro/fix/res.py", {"RPL102"})
        assert result.findings == []

    def test_handoff_across_raising_statements_needs_cleanup(self):
        result = run_one("""
            def risky(self, p, parse):
                f = open(p)
                parse(f)
                self.f = f
        """, "repro/fix/res.py", {"RPL102"})
        assert [f.code for f in result.findings] == ["RPL102"]
        assert "can raise" in result.findings[0].message

    def test_cleanup_close_discharges_risky_handoff(self):
        result = run_one("""
            def careful(self, p, parse):
                f = open(p)
                try:
                    parse(f)
                except Exception:
                    f.close()
                    raise
                self.f = f
        """, "repro/fix/res.py", {"RPL102"})
        assert result.findings == []

    def test_store_load_counts_as_acquisition(self):
        result = run_one("""
            from repro.store.reportstore import ReportStore

            def peek(path):
                store = ReportStore.load(path)
                return 1
        """, "repro/fix/res.py", {"RPL102"})
        assert [f.code for f in result.findings] == ["RPL102"]
        assert "ReportStore.load" in result.findings[0].message


class TestExceptionContract:
    def test_raw_banned_raise_in_store_is_flagged(self):
        result = run_one("""
            def at(i):
                if i < 0:
                    raise IndexError("no")
                return i
        """, "repro/store/fix.py", {"RPL104"})
        assert [f.code for f in result.findings] == ["RPL104"]
        assert "IndexError" in result.findings[0].message

    def test_unwrapped_decoder_is_flagged(self):
        result = run_one("""
            import struct

            def head(buf):
                return struct.unpack("<I", buf)
        """, "repro/store/fix.py", {"RPL104"})
        assert [f.code for f in result.findings] == ["RPL104"]
        assert "struct.unpack" in result.findings[0].message

    def test_wrapped_decoders_and_unpack_from_are_clean(self):
        result = run_one("""
            import json
            import struct

            from repro.errors import CorruptRecordError

            def head(buf):
                try:
                    return struct.unpack("<I", buf)
                except struct.error as exc:
                    raise CorruptRecordError(str(exc)) from exc

            def meta(blob):
                try:
                    return json.loads(blob)
                except ValueError as exc:
                    raise CorruptRecordError(str(exc)) from exc

            def peek(buf):
                return struct.unpack_from("<I", buf, 0)
        """, "repro/store/fix.py", {"RPL104"})
        assert result.findings == []

    def test_contract_is_scoped_to_store_and_serve(self):
        result = run_one("""
            def at(i):
                raise IndexError("no")
        """, "repro/analysis/fix.py", {"RPL104"})
        assert result.findings == []


class TestLabelCardinality:
    def test_fstring_converter_and_fragment_labels_are_flagged(self):
        result = run_one("""
            def record(metrics, sha256, kind):
                metrics.counter("reports.total", kind=f"t:{kind}")
                metrics.counter("reports.total", sample=sha256)
                metrics.counter("reports.total", kind=str(kind))
        """, "repro/fix/labels.py", {"RPL105"})
        assert [f.code for f in result.findings] == ["RPL105"] * 3
        messages = " | ".join(f.message for f in result.findings)
        assert "f-string" in messages
        assert "sha256" in messages
        assert "str(...)" in messages

    def test_bounded_labels_are_clean(self):
        result = run_one("""
            def record(metrics, kind, labels):
                metrics.counter("reports.total", kind=kind)
                metrics.counter("reports.total", kind="fixed")
                metrics.histogram("reports.bytes", edges=(1, 2, 4))
                metrics.counter("reports.total", **labels)
        """, "repro/fix/labels.py", {"RPL105"})
        assert result.findings == []
