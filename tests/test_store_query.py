"""Tests for the store query layer (repro.store.query)."""

import pytest

from repro.errors import ConfigError
from repro.store.query import ReportQuery
from repro.store.reportstore import ReportStore
from repro.vt.clock import MINUTES_PER_DAY

from conftest import make_report, make_sha


@pytest.fixture()
def store():
    store = ReportStore()
    # Two PE samples (one hot), one TXT sample, spread over time.
    store.ingest(make_report(sha=make_sha("pe1"), file_type="Win32 EXE",
                             scan_time=5 * MINUTES_PER_DAY,
                             labels=[1, 1, 1, 0, 0]))
    store.ingest(make_report(sha=make_sha("pe1"), file_type="Win32 EXE",
                             scan_time=60 * MINUTES_PER_DAY,
                             labels=[1, 1, 1, 1, 0]))
    store.ingest(make_report(sha=make_sha("pe2"), file_type="Win64 EXE",
                             scan_time=10 * MINUTES_PER_DAY,
                             labels=[0, 0, 0, 0, 0],
                             first_submission=-99))
    store.ingest(make_report(sha=make_sha("txt"), file_type="TXT",
                             scan_time=100 * MINUTES_PER_DAY,
                             labels=[1, 0, 0, 0, 0]))
    return store


class TestFilters:
    def test_no_filters_matches_everything(self, store):
        assert ReportQuery(store).count() == 4

    def test_file_types(self, store):
        q = ReportQuery(store).file_types("Win32 EXE", "Win64 EXE")
        assert q.count() == 3

    def test_scanned_between(self, store):
        q = ReportQuery(store).scanned_between(day_lo=8, day_hi=70)
        assert q.count() == 2

    def test_min_max_positives(self, store):
        assert ReportQuery(store).min_positives(3).count() == 2
        assert ReportQuery(store).max_positives(0).count() == 1

    def test_fresh_only(self, store):
        q = ReportQuery(store).fresh_only()
        assert make_sha("pe2") not in q.sample_hashes()

    def test_detected_by(self, store):
        q = ReportQuery(store).detected_by(3)
        assert q.count() == 1

    def test_chaining_is_conjunction(self, store):
        q = (ReportQuery(store)
             .file_types("Win32 EXE")
             .min_positives(4))
        assert q.count() == 1

    def test_where_custom_predicate(self, store):
        q = ReportQuery(store).where(lambda r: r.positives % 2 == 0)
        assert q.count() == 2  # ranks 4 and 0

    def test_immutability(self, store):
        base = ReportQuery(store).file_types("TXT")
        refined = base.min_positives(5)
        assert base.count() == 1
        assert refined.count() == 0

    def test_validation(self, store):
        with pytest.raises(ConfigError):
            ReportQuery(store).file_types()
        with pytest.raises(ConfigError):
            ReportQuery(store).scanned_between(10, 5)
        with pytest.raises(ConfigError):
            ReportQuery(store).min_positives(-1)
        with pytest.raises(ConfigError):
            ReportQuery(store).detected_by(-2)


class TestProjections:
    def test_sample_hashes(self, store):
        q = ReportQuery(store).file_types("Win32 EXE")
        assert q.sample_hashes() == {make_sha("pe1")}

    def test_positives_histogram(self, store):
        histogram = ReportQuery(store).positives_histogram()
        assert histogram == {3: 1, 4: 1, 0: 1, 1: 1}

    def test_sample_series_sorted(self, store):
        series = dict(ReportQuery(store)
                      .file_types("Win32 EXE").sample_series())
        reports = series[make_sha("pe1")]
        assert [r.positives for r in reports] == [3, 4]

    def test_first(self, store):
        assert ReportQuery(store).min_positives(99).first() is None
        first = ReportQuery(store).file_types("TXT").first()
        assert first is not None
        assert first.file_type == "TXT"


class TestSampleSeries:
    """sample_series membership/ordering over a mixed fresh/pre-window store."""

    @pytest.fixture()
    def mixed_store(self):
        store = ReportStore(block_records=2)
        # Fresh sample, 3 reports out of time order across blocks.
        for day, ranks in [(30, [1, 1, 0, 0, 0]),
                           (5, [1, 0, 0, 0, 0]),
                           (90, [1, 1, 1, 1, 0])]:
            store.ingest(make_report(sha=make_sha("fresh"),
                                     scan_time=day * MINUTES_PER_DAY,
                                     labels=ranks, first_submission=0))
        # Pre-window sample (first submitted before the window), 2 reports.
        for day in (10, 40):
            store.ingest(make_report(sha=make_sha("old"),
                                     scan_time=day * MINUTES_PER_DAY,
                                     labels=[1, 1, 0, 0, 0],
                                     first_submission=-7))
        # Fresh sample whose only report is low-rank.
        store.ingest(make_report(sha=make_sha("quiet"),
                                 scan_time=50 * MINUTES_PER_DAY,
                                 labels=[0, 0, 0, 0, 0], first_submission=3))
        return store

    def test_unfiltered_groups_every_sample(self, mixed_store):
        series = dict(ReportQuery(mixed_store).sample_series())
        assert set(series) == {make_sha("fresh"), make_sha("old"),
                               make_sha("quiet")}
        assert [len(r) for r in (series[make_sha("fresh")],
                                 series[make_sha("old")],
                                 series[make_sha("quiet")])] == [3, 2, 1]

    def test_groups_are_time_sorted(self, mixed_store):
        for _, reports in ReportQuery(mixed_store).sample_series():
            times = [r.scan_time for r in reports]
            assert times == sorted(times)

    def test_fresh_only_drops_pre_window_samples(self, mixed_store):
        series = dict(ReportQuery(mixed_store).fresh_only().sample_series())
        assert make_sha("old") not in series
        assert set(series) == {make_sha("fresh"), make_sha("quiet")}
        assert len(series[make_sha("fresh")]) == 3

    def test_membership_is_report_level(self, mixed_store):
        # min_positives(2) keeps only 2 of fresh's 3 reports, drops the
        # rest of the store entirely — samples with no match don't appear.
        series = dict(ReportQuery(mixed_store)
                      .min_positives(2).sample_series())
        assert set(series) == {make_sha("fresh"), make_sha("old")}
        assert [r.positives for r in series[make_sha("fresh")]] == [2, 4]
        assert [r.positives for r in series[make_sha("old")]] == [2, 2]

    def test_fresh_only_composes_with_rank_filter(self, mixed_store):
        series = dict(ReportQuery(mixed_store)
                      .fresh_only().min_positives(2).sample_series())
        assert set(series) == {make_sha("fresh")}

    def test_series_on_live_store_after_interleaved_ingest(self, mixed_store):
        # Reading mid-ingest then ingesting more must not corrupt grouping
        # (regression guard for the stale block-cache bug).
        first = dict(ReportQuery(mixed_store).sample_series())
        assert len(first[make_sha("fresh")]) == 3
        mixed_store.ingest(make_report(sha=make_sha("fresh"),
                                       scan_time=120 * MINUTES_PER_DAY,
                                       labels=[1, 1, 1, 1, 1],
                                       first_submission=0))
        again = dict(ReportQuery(mixed_store).sample_series())
        assert len(again[make_sha("fresh")]) == 4


class TestOnExperiment:
    def test_query_consistent_with_store(self, experiment):
        total = ReportQuery(experiment.store).count()
        assert total == experiment.store.report_count

    def test_partition_by_freshness(self, experiment):
        fresh = ReportQuery(experiment.store).fresh_only().count()
        # The dynamics scenario is fresh-only.
        assert fresh == experiment.store.report_count

    def test_rank_partition(self, experiment):
        q = ReportQuery(experiment.store)
        low = q.max_positives(9).count()
        high = q.min_positives(10).count()
        assert low + high == experiment.store.report_count
