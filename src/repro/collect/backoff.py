"""Exponential backoff with deterministic jitter.

Delays are in *simulated minutes*: the collector accounts waiting time in
its stats rather than sleeping, and a real deployment injects a sleep
callable.  Jitter is drawn from a keyed RNG supplied by the caller, so a
resumed run backs off exactly as a straight run would.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff: ``base * factor**attempt``, capped, jittered."""

    base_minutes: float = 1.0
    factor: float = 2.0
    max_minutes: float = 32.0
    #: Attempts per operation before the collector gives up and records
    #: the failure (a gap minute, a dead letter) instead of retrying.
    max_attempts: int = 8
    #: Symmetric jitter fraction: a delay d becomes d * (1 ± jitter).
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.base_minutes <= 0 or self.factor < 1 or self.max_minutes <= 0:
            raise ConfigError("backoff base/factor/max must be positive")
        if self.max_attempts < 1:
            raise ConfigError("backoff max_attempts must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigError("backoff jitter must be in [0,1)")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Delay in minutes before retry number ``attempt`` (0-based)."""
        raw = min(self.max_minutes, self.base_minutes * self.factor ** attempt)
        if self.jitter:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return raw
