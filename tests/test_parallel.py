"""Parallel scenario engine: sharding, equivalence, fallbacks.

The central contract under test is the serial/parallel equivalence gate:
``run_experiment(config, workers=K)`` must produce a store whose
canonical digest is byte-identical to the serial run's for every K.
Everything else here — partition properties, worker resolution, the
in-process fast path — supports that contract.
"""

from __future__ import annotations

import multiprocessing

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.experiment import run_experiment
from repro.errors import ConfigError
from repro.parallel.sharding import ShardSpec, partition_samples, resolve_workers
from repro.parallel.worker import execute_range, run_shard
from repro.synth.population import PopulationGenerator
from repro.synth.scenario import ScenarioConfig, tiny_scenario
from repro.vt.samples import Sample
from repro.vt.service import VirusTotalService


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------


def test_partition_covers_all_samples_contiguously():
    shards = partition_samples(101, 7)
    assert shards[0].start == 0
    assert shards[-1].stop == 101
    for left, right in zip(shards, shards[1:], strict=False):
        assert left.stop == right.start
    assert sum(s.size for s in shards) == 101


def test_partition_is_balanced():
    for n, k in ((100, 7), (5, 3), (1, 1), (64, 8)):
        sizes = [s.size for s in partition_samples(n, k)]
        assert max(sizes) - min(sizes) <= 1


def test_partition_more_shards_than_samples_leaves_empties():
    shards = partition_samples(3, 8)
    assert len(shards) == 8
    assert sum(s.size for s in shards) == 3
    assert sorted(i for s in shards for i in s.indices()) == [0, 1, 2]
    assert any(s.size == 0 for s in shards)


def test_partition_is_pure():
    assert partition_samples(977, 13) == partition_samples(977, 13)


def test_partition_rejects_bad_shard_count():
    with pytest.raises(ConfigError):
        partition_samples(10, 0)
    with pytest.raises(ConfigError):
        partition_samples(-1, 2)


def test_resolve_workers():
    assert resolve_workers(1) == 1
    assert resolve_workers(4) == 4
    assert resolve_workers("auto") >= 1
    for bad in (0, -3, 2.5, "four", None, True):
        with pytest.raises(ConfigError):
            resolve_workers(bad)


def test_shard_spec_indices():
    shard = ShardSpec(shard_index=1, n_shards=3, start=4, stop=9)
    assert shard.size == 5
    assert list(shard.indices()) == [4, 5, 6, 7, 8]


# ----------------------------------------------------------------------
# Serial/parallel equivalence
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def serial_digest(tiny_store) -> str:
    return tiny_store.digest()


@pytest.mark.parametrize("workers", [2, 3, 4])
def test_parallel_digest_matches_serial(tiny_config, serial_digest, workers):
    data = run_experiment(tiny_config, workers=workers)
    assert data.store.digest() == serial_digest
    assert data.workers == workers
    assert data.service is None
    assert data.merge_stats is not None
    assert data.merge_stats.records == data.store.report_count


def test_parallel_store_is_fully_queryable(tiny_config, tiny_store):
    parallel = run_experiment(tiny_config, workers=3)
    assert parallel.store.sample_count == tiny_store.sample_count
    for sha in list(tiny_store.samples())[:20]:
        assert [r.scan_time for r in parallel.store.reports_for(sha)] == \
            [r.scan_time for r in tiny_store.reports_for(sha)]
        assert (parallel.store.sample_file_type(sha)
                == tiny_store.sample_file_type(sha))


def test_workers_exceeding_samples(tiny_config, serial_digest):
    data = run_experiment(tiny_config, workers=200)
    assert data.store.digest() == serial_digest
    # Empty shards are skipped, so at most n_samples workers really ran.
    assert data.workers <= tiny_config.n_samples


def test_single_report_samples_parallelise():
    # forced_report_count=1 → every shard holds only single-report
    # samples, the degenerate case for the merge-key ordering.
    config = tiny_scenario(n_samples=80, seed=5).with_(
        min_reports=1, forced_report_count=1)
    serial = run_experiment(config)
    parallel = run_experiment(config, workers=4)
    assert serial.store.report_count == config.n_samples
    assert parallel.store.digest() == serial.store.digest()


def test_workers_one_never_touches_multiprocessing(monkeypatch):
    def boom(*args, **kwargs):  # pragma: no cover - must not be reached
        raise AssertionError("multiprocessing used with workers=1")

    monkeypatch.setattr(multiprocessing, "get_context", boom)
    monkeypatch.setattr(multiprocessing, "Pool", boom)
    data = run_experiment(tiny_scenario(n_samples=40, seed=1), workers=1)
    assert data.workers == 1
    assert data.service is not None


def test_no_fork_falls_back_to_spawn(monkeypatch):
    """Without fork, 'auto' now degrades to the spawn pool — still a
    real parallel run, still digest-identical to serial."""
    import repro.parallel.runner as runner

    monkeypatch.setattr(runner, "fork_available", lambda: False)
    config = tiny_scenario(n_samples=40, seed=1)
    data = run_experiment(config, workers=4)
    assert data.workers == 4
    assert data.service is None
    assert data.executor_report is not None
    assert data.executor_report.executor == "spawn"
    assert data.store.digest() == run_experiment(config).store.digest()


def test_run_experiment_rejects_bad_workers():
    config = tiny_scenario(n_samples=10, seed=0)
    with pytest.raises(ConfigError):
        run_experiment(config, workers=0)
    with pytest.raises(ConfigError):
        run_experiment(config, workers=-2)
    with pytest.raises(ConfigError):
        run_experiment(config, workers="many")


@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(n_samples=st.integers(min_value=10, max_value=60),
       seed=st.integers(min_value=0, max_value=1000))
def test_digest_equivalence_property(n_samples, seed):
    config = tiny_scenario(n_samples=n_samples, seed=seed)
    reference = run_experiment(config).store.digest()
    for workers in (2, 3, 5):
        data = run_experiment(config, workers=workers)
        assert data.store.digest() == reference, (
            f"digest diverged at workers={workers} "
            f"(n={n_samples}, seed={seed})")


# ----------------------------------------------------------------------
# Worker internals
# ----------------------------------------------------------------------


def test_execute_range_covers_exact_slice():
    config = tiny_scenario(n_samples=30, seed=9)
    generator = PopulationGenerator(config)
    expected = {generator.sha_for(i) for i in range(10, 20)}
    run = execute_range(config, 10, 20)
    assert set(run.store.samples()) == expected


def test_run_shard_ships_all_merge_keys():
    config = tiny_scenario(n_samples=30, seed=9)
    shard = partition_samples(config.n_samples, 3)[1]
    result = run_shard(config, shard)
    shipped = sum(len(m.keys) for m in result.months.values())
    assert shipped == result.report_count
    for month in result.months.values():
        assert month.keys == sorted(month.keys)
        for _, index in month.keys:
            assert shard.start <= index < shard.stop


def test_iter_range_bounds_checked():
    generator = PopulationGenerator(tiny_scenario(n_samples=10, seed=0))
    with pytest.raises(IndexError):
        list(generator.iter_range(-1, 5))
    with pytest.raises(IndexError):
        list(generator.iter_range(0, 11))


# ----------------------------------------------------------------------
# Benchmark artifact schema
# ----------------------------------------------------------------------


def test_bench_artifact_schema(tmp_path):
    import importlib.util
    from pathlib import Path

    bench_path = (Path(__file__).resolve().parent.parent
                  / "benchmarks" / "bench_parallel_scaling.py")
    spec = importlib.util.spec_from_file_location("bench_parallel", bench_path)
    bench = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(bench)

    out = tmp_path / "BENCH_results.json"
    rc = bench.main(["--samples", "60", "--workers", "1,2",
                     "--output", str(out)])
    assert rc == 0
    results = __import__("json").loads(out.read_text())

    assert results["schema"] == "repro-bench/1"
    assert results["python"]
    assert results["cpu_count"] >= 1
    assert results["scenario"]["n_samples"] == 60
    assert results["equivalent"] is True
    names = set()
    for entry in results["benchmarks"]:
        for key in ("name", "workers", "wall_seconds", "speedup",
                    "reports", "dataset_digest", "digest_matches_serial"):
            assert key in entry, f"missing {key}"
        assert entry["wall_seconds"] >= 0
        assert len(entry["dataset_digest"]) == 64
        names.add(entry["name"])
    assert len(names) == len(results["benchmarks"])
    assert any(e["workers"] == 1 for e in results["benchmarks"])
    overhead = results["metrics_overhead"]
    for key in ("n_samples", "reports", "disabled_seconds",
                "enabled_seconds", "enabled_over_disabled"):
        assert key in overhead, f"missing metrics_overhead.{key}"
    assert overhead["enabled_over_disabled"] > 0


# ----------------------------------------------------------------------
# Spec immutability (the in-place mutation fix)
# ----------------------------------------------------------------------


def test_run_does_not_mutate_generator_specs():
    config = ScenarioConfig(seed=21, n_samples=60)  # mixed fresh/pre-window
    specs = list(PopulationGenerator(config))
    run_experiment(config)
    for spec in specs:
        assert spec.sample.times_submitted == 0
        assert spec.sample.last_submission_date is None
        assert spec.sample.last_analysis_date is None


def test_register_backfills_prewindow_state_on_the_clone():
    original = Sample(sha256="a" * 64, file_type="Win32 EXE",
                      malicious=False, first_seen=-500)
    clone = original.clone()
    service = VirusTotalService(seed=0)
    service.register(clone)
    # The pre-window sample arrives with one historical submission …
    assert clone.times_submitted == 1
    assert clone.last_submission_date == -500
    # … and the source object is untouched.
    assert original.times_submitted == 0
    assert original.last_submission_date is None


def test_register_does_not_backfill_fresh_samples():
    fresh = Sample(sha256="b" * 64, file_type="Win32 EXE",
                   malicious=False, first_seen=100)
    service = VirusTotalService(seed=0)
    service.register(fresh)
    assert fresh.times_submitted == 0
    assert fresh.last_submission_date is None
