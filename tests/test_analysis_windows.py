"""Tests for measurement-window sensitivity (repro.analysis.windows)."""

import pytest

from repro.analysis.windows import (
    gap_growth_curve,
    window_sensitivity,
)
from repro.errors import ConfigError

from test_avrank import series

DAY = 1440


def grower():
    """A sample whose Δ keeps growing past the 30-day mark."""
    return series([5, 10, 20, 30],
                  times=(0, 10 * DAY, 60 * DAY, 85 * DAY))


def early_settler():
    """All dynamics inside the first month."""
    return series([5, 12, 12], times=(0, 10 * DAY, 80 * DAY))


class TestWindowSensitivity:
    def test_growth_detected(self):
        result = window_sensitivity([grower()], 30, 90)
        assert result.n_comparable == 1
        assert result.n_grew == 1
        assert result.grew_fraction == 1.0
        assert result.mean_gap_long > result.mean_gap_short

    def test_settled_sample_does_not_grow(self):
        result = window_sensitivity([early_settler()], 30, 90)
        assert result.n_grew == 0
        assert result.grew_fraction == 0.0

    def test_mixture(self):
        result = window_sensitivity([grower(), early_settler()], 30, 90)
        assert result.n_comparable == 2
        assert result.grew_fraction == 0.5

    def test_single_scan_in_window_excluded(self):
        lonely = series([1, 9], times=(0, 200 * DAY))
        result = window_sensitivity([lonely], 30, 90)
        assert result.n_comparable == 0

    def test_first_month_restriction(self):
        late = series([0, 9, 9], times=(200 * DAY, 210 * DAY, 260 * DAY))
        restricted = window_sensitivity([late], 30, 90,
                                        first_month_only=True)
        assert restricted.n_comparable == 0
        unrestricted = window_sensitivity([late], 30, 90,
                                          first_month_only=False)
        assert unrestricted.n_comparable == 1

    def test_window_order_validated(self):
        with pytest.raises(ConfigError):
            window_sensitivity([], 90, 30)

    def test_experiment_gap_growth_exists(self, experiment):
        result = window_sensitivity(experiment.dataset_s,
                                    first_month_only=False)
        # Paper: 8.6 % of samples grew their gap from 1 to 3 months.
        assert 0.0 < result.grew_fraction < 0.5
        assert result.mean_gap_long >= result.mean_gap_short


class TestGapGrowthCurve:
    def test_monotone_for_growing_pool(self):
        pool = [grower() for _ in range(5)]
        curve = gap_growth_curve(pool, windows_days=(30, 60, 90))
        gaps = [g for _, g in curve]
        assert gaps == sorted(gaps)

    def test_windows_without_data_skipped(self):
        lonely = series([1, 2], times=(0, 300 * DAY))
        curve = gap_growth_curve([lonely], windows_days=(30, 365))
        assert [w for w, _ in curve] == [365]

    def test_experiment_curve_increases_overall(self, experiment):
        curve = gap_growth_curve(experiment.dataset_s,
                                 first_month_only=False)
        assert len(curve) >= 3
        assert curve[-1][1] > curve[0][1]
