"""The VirusTotal scanning service simulator.

:class:`VirusTotalService` owns the sample registry and the engine fleet,
and produces :class:`~repro.vt.reports.ScanReport` records.  Its three
entry points implement exactly the paper's Table 1 semantics:

==========  ===================  =====================  ================
operation   last_analysis_date   last_submission_date   times_submitted
==========  ===================  =====================  ================
upload      update               update                 increment
rescan      update               unchanged              unchanged
report      unchanged            unchanged              unchanged
==========  ===================  =====================  ================

Every *analysis* (upload or rescan) fans the sample out to all 70 engines:
each engine either times out (probability ``1 - activity``, reported as
*undetected*) or answers with its current verdict from the sample's
:class:`~repro.vt.behavior.DetectionPlan`.  The ``positives`` count over
responding engines is the paper's AV-Rank.

Listeners (e.g. the premium feed) receive every newly generated report.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.errors import NotFoundError
from repro.obs import NULL_REGISTRY
from repro.vt.behavior import BehaviorContext, BehaviorParams, build_plan
from repro.vt.clock import MINUTES_PER_DAY
from repro.vt.engines import EngineFleet, default_fleet
from repro.vt.reports import ScanReport
from repro.vt.samples import Sample, validate_sha256

ReportListener = Callable[[ScanReport], None]

#: Fixed bucket edges for the per-report positives (AV-Rank) histogram.
POSITIVES_EDGES: tuple[int, ...] = (0, 1, 2, 3, 5, 8, 13, 21, 34, 55, 70)

#: Fixed bucket edges (simulator minutes) for the interval between
#: consecutive analyses of one sample — the paper's rescan-latency axis.
RESCAN_INTERVAL_EDGES: tuple[int, ...] = (
    60, 6 * 60, MINUTES_PER_DAY, 3 * MINUTES_PER_DAY, 7 * MINUTES_PER_DAY,
    14 * MINUTES_PER_DAY, 30 * MINUTES_PER_DAY, 90 * MINUTES_PER_DAY,
    180 * MINUTES_PER_DAY,
)


class VirusTotalService:
    """An in-process stand-in for the VirusTotal backend."""

    #: How often a copying follower's availability tracks its leader's.
    COPIED_AVAILABILITY_FIDELITY = 0.9

    def __init__(
        self,
        fleet: EngineFleet | None = None,
        params: BehaviorParams | None = None,
        seed: int = 0,
        metrics=None,
    ) -> None:
        self.fleet = fleet if fleet is not None else default_fleet(seed)
        self.params = params if params is not None else BehaviorParams()
        self.seed = seed
        self.ctx = BehaviorContext(self.fleet, self.params, seed)
        self._samples: dict[str, Sample] = {}
        self._last_report: dict[str, ScanReport] = {}
        self._listeners: list[ReportListener] = []
        self.reports_generated = 0
        # Observability: pre-bound handles (no-ops on the null registry).
        # Everything recorded here is per-sample work, so a sharded run's
        # merged registries reproduce a serial run's exactly.
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_register = self.metrics.counter("vt.register.total")
        self._m_upload = self.metrics.counter("vt.scan.total", kind="upload")
        self._m_rescan = self.metrics.counter("vt.scan.total", kind="rescan")
        self._m_reports = self.metrics.counter("vt.report.total")
        self._m_positives = self.metrics.histogram(
            "vt.report.positives", edges=POSITIVES_EDGES)
        self._m_interval = self.metrics.histogram(
            "vt.rescan.interval_minutes", edges=RESCAN_INTERVAL_EDGES)

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------

    def register(self, sample: Sample) -> None:
        """Make a sample known to the service without submitting it.

        A pre-window sample (negative ``first_seen``) that has never been
        submitted gets its historical submission backfilled here: such a
        file already exists on the service, so its Table 1 fields must
        read as "submitted once, at first_seen".  This used to be every
        runner's job (mutating generator spec objects in place); doing it
        at registration time keeps the adjustment in one place and leaves
        the caller's objects alone when clones are registered.
        """
        if (not sample.fresh and sample.times_submitted == 0
                and sample.last_submission_date is None):
            sample.times_submitted = 1
            sample.last_submission_date = sample.first_seen
        if sample.sha256 not in self._samples:
            self._m_register.inc()
        self._samples[sample.sha256] = sample

    def known(self, sha256: str) -> bool:
        """Whether the service has ever seen this hash."""
        return validate_sha256(sha256) in self._samples

    def get_sample(self, sha256: str) -> Sample:
        """Look up a registered sample, raising NotFoundError otherwise."""
        key = validate_sha256(sha256)
        try:
            return self._samples[key]
        except KeyError:
            raise NotFoundError(key) from None

    def samples(self) -> Iterable[Sample]:
        """All registered samples."""
        return self._samples.values()

    # ------------------------------------------------------------------
    # Listeners (feed integration)
    # ------------------------------------------------------------------

    def add_listener(self, listener: ReportListener) -> None:
        """Subscribe a callable to every newly generated report."""
        self._listeners.append(listener)

    def remove_listener(self, listener: ReportListener) -> None:
        self._listeners.remove(listener)

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def _analyze(self, sample: Sample, timestamp: int) -> ScanReport:
        """Run all engines over a sample and emit a report."""
        if sample.plan is None:
            sample.plan = build_plan(sample, self.ctx)
        plan = sample.plan
        fleet = self.fleet
        rng = plan.scan_rng
        n = len(fleet)
        labels = bytearray(n)
        engines = fleet.engines
        # Per-engine availability; one draw per engine keeps the sample's
        # random stream aligned across scans.
        active = [rng.random() < engines[idx].activity for idx in range(n)]
        # OEM followers share infrastructure with their leader: when the
        # copy rule fired for this sample, the follower's availability
        # tracks the leader's most of the time (see DetectionPlan.copied).
        for follower in sorted(plan.copied):
            if rng.random() < self.COPIED_AVAILABILITY_FIDELITY:
                active[follower] = active[plan.copied[follower]]
        positives = 0
        total = 0
        for idx in range(n):
            if not active[idx]:
                labels[idx] = 2  # undetected / timeout
                continue
            total += 1
            verdict = plan.label_at(idx, timestamp)
            if verdict:
                labels[idx] = 1
                positives += 1
        versions = tuple(fleet.version_at(i, timestamp) for i in range(n))
        previous_analysis = sample.last_analysis_date
        sample.record_analysis(timestamp)
        report = ScanReport(
            sha256=sample.sha256,
            file_type=sample.file_type,
            scan_time=timestamp,
            positives=positives,
            total=total,
            labels=bytes(labels),
            versions=versions,
            first_submission_date=sample.first_seen,
            last_submission_date=(
                sample.last_submission_date
                if sample.last_submission_date is not None
                else sample.first_seen
            ),
            last_analysis_date=timestamp,
            times_submitted=max(sample.times_submitted, 1),
        )
        self._last_report[sample.sha256] = report
        self.reports_generated += 1
        self._m_reports.inc()
        self._m_positives.observe(positives)
        if previous_analysis is not None:
            self._m_interval.observe(timestamp - previous_analysis)
        self._emit(report)
        return report

    def _emit(self, report: ScanReport) -> None:
        """Fan a freshly generated report out to every listener.

        The delivery interposition point: fault layers that model lossy
        or flaky fan-out (see :mod:`repro.faults`) wrap the consumption
        side of the feed, but a subclass can override this to perturb
        delivery for *all* listeners at once.
        """
        for listener in self._listeners:
            listener(report)

    # ------------------------------------------------------------------
    # Table 1 operations
    # ------------------------------------------------------------------

    def upload(self, sample: Sample | str, timestamp: int) -> ScanReport:
        """Submit a file: registers it if new, updates all three Table 1
        fields, and runs an analysis."""
        if isinstance(sample, str):
            sample = self.get_sample(sample)
        elif sample.sha256 not in self._samples:
            self.register(sample)
        sample.record_submission(timestamp)
        self._m_upload.inc()
        return self._analyze(sample, timestamp)

    def rescan(self, sha256: str, timestamp: int) -> ScanReport:
        """Re-analyse an existing file: only last_analysis_date moves."""
        self._m_rescan.inc()
        return self._analyze(self.get_sample(sha256), timestamp)

    def report(self, sha256: str) -> ScanReport:
        """Return the most recent report without generating a new one."""
        sample = self.get_sample(sha256)
        try:
            return self._last_report[sample.sha256]
        except KeyError:
            raise NotFoundError(sample.sha256) from None
