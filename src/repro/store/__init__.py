"""The report store substrate.

The paper cached the premium feed into MongoDB, storing sample metadata
and scan results separately and compressing aggressively (10.06× — §4.1).
This subpackage is that pipeline as an embedded library: a compact binary
record codec (:mod:`repro.store.codec`), monthly shards of zlib-compressed
record blocks (:mod:`repro.store.shard`), and :class:`ReportStore`
(:mod:`repro.store.reportstore`) which adds the per-sample index and the
Table 2 style accounting (:mod:`repro.store.stats`).  Blocks freeze in
either the row layout or the columnar RPR3 layout
(:mod:`repro.store.columnar`), whose batches back the numpy analysis
kernels.
"""

from repro.store.cache import BlockCache, CacheStats
from repro.store.codec import (
    BLOCK_FORMAT_COLUMNAR,
    BLOCK_FORMAT_ROW,
    BLOCK_FORMATS,
    decode_report,
    encode_report,
    resolve_block_format,
    verbose_json_size,
)
from repro.store.columnar import ColumnarBatch, SeriesFrame
from repro.store.index import IndexEntry, decode_index, encode_index, sample_ranks
from repro.store.merge import FrozenMonth, FrozenShard, MergeStats, concat_frozen
from repro.store.query import ReportQuery
from repro.store.reportstore import ReportStore
from repro.store.shard import CompressedBlock, MonthlyShard
from repro.store.stats import MonthStats, StoreStats

__all__ = [
    "BLOCK_FORMAT_COLUMNAR",
    "BLOCK_FORMAT_ROW",
    "BLOCK_FORMATS",
    "ColumnarBatch",
    "SeriesFrame",
    "decode_report",
    "encode_report",
    "resolve_block_format",
    "sample_ranks",
    "verbose_json_size",
    "decode_index",
    "encode_index",
    "BlockCache",
    "CacheStats",
    "IndexEntry",
    "ReportQuery",
    "FrozenMonth",
    "FrozenShard",
    "MergeStats",
    "concat_frozen",
    "ReportStore",
    "CompressedBlock",
    "MonthlyShard",
    "MonthStats",
    "StoreStats",
]
