"""The resilient feed-collection pipeline.

The production-shaped counterpart of the in-memory drain loop in
:mod:`repro.analysis.experiment`: a minute-by-minute collector
(:class:`~repro.collect.collector.FeedCollector`) with exponential
backoff, durable checkpoints, gap detection + backfill, idempotent
ingest and a dead-letter queue — built to survive the fault plans in
:mod:`repro.faults` and come out with the exact same dataset a
fault-free run produces.
"""

from repro.collect.backoff import BackoffPolicy
from repro.collect.checkpoint import Checkpoint, load_checkpoint, save_checkpoint
from repro.collect.collector import CollectorStats, FeedCollector
from repro.collect.deadletter import DeadLetter, DeadLetterQueue
from repro.collect.driver import (
    CollectionPaths,
    CollectionResult,
    auto_resume_minute,
    collection_paths,
    run_collection,
)

__all__ = [
    "BackoffPolicy",
    "Checkpoint",
    "CollectionPaths",
    "CollectionResult",
    "CollectorStats",
    "DeadLetter",
    "DeadLetterQueue",
    "FeedCollector",
    "auto_resume_minute",
    "collection_paths",
    "load_checkpoint",
    "run_collection",
    "save_checkpoint",
]
