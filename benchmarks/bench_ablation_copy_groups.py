"""Ablation: label copying vs detected engine correlation (§7.2).

The design claims the strong-correlation graph (Figure 11) is produced by
the copy-group mechanism, not by coincidental agreement between capable
engines.  Running the identical scenario against a fleet with all copy
rules stripped should collapse the strong pairs.
"""

from __future__ import annotations

from repro.analysis.experiment import run_experiment
from repro.core.correlation import correlation_analysis
from repro.synth.scenario import dynamics_scenario
from repro.vt.engines import default_fleet

from conftest import run_once, say

SAMPLES = 3_000
PAIRS = (("Avast", "AVG"), ("Paloalto", "APEX"),
         ("BitDefender", "FireEye"))


def _strong_pairs(copy_rules: bool):
    config = dynamics_scenario(SAMPLES, seed=55)
    fleet = default_fleet(config.seed, copy_rules=copy_rules)
    data = run_experiment(config, fleet=fleet)
    analysis = correlation_analysis(
        list(data.store.iter_reports()), data.engine_names
    )
    return analysis


def test_ablation_copy_groups(benchmark):
    with_copying = run_once(benchmark, lambda: _strong_pairs(True))
    without_copying = _strong_pairs(False)

    say()
    say("Ablation: copy groups vs detected strong correlations")
    say(f"  strong pairs with copying   : "
          f"{len(with_copying.strong_pairs())}")
    say(f"  strong pairs without copying: "
          f"{len(without_copying.strong_pairs())}")
    for a, b in PAIRS:
        say(f"  rho({a}, {b}): {with_copying.rho_of(a, b):.3f} -> "
              f"{without_copying.rho_of(a, b):.3f}")

    assert (len(without_copying.strong_pairs())
            < len(with_copying.strong_pairs()) / 2)
    for a, b in PAIRS:
        assert with_copying.rho_of(a, b) > 0.8
        assert without_copying.rho_of(a, b) < 0.8
