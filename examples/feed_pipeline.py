#!/usr/bin/env python3
"""Re-creating the paper's data-collection pipeline (§4.1).

The authors polled VirusTotal's premium feed every minute, parsed and
compressed the reports, and stored them by month.  This example drives
the same loop explicitly — client, service, feed, store — instead of
using the packaged experiment runner, then persists the store to disk
and reloads it, printing the Table 2 accounting both times.

Run:  python examples/feed_pipeline.py
"""

import tempfile
from pathlib import Path

from repro import PremiumFeed, ReportStore, VirusTotalService, VTClient
from repro.analysis.rendering import render_table2
from repro.synth.population import PopulationGenerator
from repro.synth.scenario import paper_scenario

config = paper_scenario(n_samples=3_000, seed=99)
service = VirusTotalService(seed=config.seed)
client = VTClient(service, key="premium-key", premium=True)
client.require_premium("feed")          # the gate the paper paid for
feed = PremiumFeed(service)
store = ReportStore(block_records=256)

# Generate the workload and flatten it into a time-ordered event list.
events = []
for spec in PopulationGenerator(config):
    sample = spec.sample
    if not sample.fresh:
        sample.times_submitted = 1
        sample.last_submission_date = sample.first_seen
    service.register(sample)
    for ordinal, when in enumerate(spec.scan_times):
        events.append((when, sample, ordinal))
events.sort(key=lambda e: e[0])

# The collection loop: submissions hit the API; every poll of the feed
# returns the reports generated since the last poll, which go straight
# into the compressed store.
with feed:
    for i, (when, sample, ordinal) in enumerate(events):
        if ordinal == 0 and sample.fresh:
            client.upload(sample, when)
        else:
            client.rescan(sample.sha256, when)
        if i % 2_000 == 0:
            store.ingest_batch(feed.poll())
    store.ingest_batch(feed.poll())
store.close()

print(f"collected {store.report_count:,} reports "
      f"({feed.reports_served:,} served over {feed.batches_served} polls)")
print()
print(render_table2(store.stats()))

# Persist and reload, as the paper's MongoDB allowed across sessions.
with tempfile.TemporaryDirectory() as tmp:
    path = Path(tmp) / "vt-reports.store"
    store.save(path)
    print(f"\nsaved store: {path.stat().st_size / 1e6:.2f} MB on disk")
    reloaded = ReportStore.load(path)
    assert reloaded.report_count == store.report_count
    sha = next(iter(reloaded.samples()))
    print(f"reloaded OK; sample {sha[:12]}… has "
          f"{reloaded.report_count_of(sha)} report(s)")
