"""Columnar (v3) block layout and the numpy analysis kernels over it.

The paper's pipeline survives 847 M reports by exploiting cross-report
redundancy: consecutive reports of a block share their engine fleet,
their file-type strings and most of their metadata.  The v3 block format
stores a block's records **by column** instead of by row:

* the fixed header fields become one packed array per field;
* scan timestamps are **delta-encoded** (records within a block are
  near-sorted by time, so deltas are tiny and compress to almost
  nothing) and ``last_analysis_date`` is stored relative to the scan
  time;
* file-type strings are **dictionary-encoded** per block (a handful of
  distinct strings per 256 records);
* the per-engine label and version planes are XOR-delta-encoded along
  the record axis when every record shares the fleet width — version
  vectors change a few entries per scan, so the plane is almost all
  zeros after the transform.

Decoding a v3 block yields a :class:`ColumnarBatch` — numpy arrays, one
element per record — instead of per-report python objects.  The analysis
kernels in :class:`SeriesFrame` (AV-Rank series grouping, the paper's
stable/dynamic split, the δ/Δ extractions of §5.1-5.3) then run as
vectorised array passes, and :meth:`ColumnarBatch.to_records` rebuilds
the exact row-format record bytes, which is what keeps
:meth:`~repro.store.reportstore.ReportStore.digest` bit-identical across
the row and columnar paths.

Everything here must satisfy the same corruption contract as the row
codec: any truncated, bit-flipped or out-of-range payload surfaces
:class:`~repro.errors.CorruptRecordError`, never ``struct.error`` or
``IndexError``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.core.avrank import AVRankSeries
from repro.errors import BlockAddressError, CorruptRecordError
from repro.vt.clock import COLLECTION_MONTHS, MONTH_STARTS
from repro.vt.reports import ScanReport

#: Magic prefix of a columnar block payload (the row format uses RPR1).
COLUMNAR_MAGIC = b"RPR3"

#: Fixed block header: magic, record count, total engine entries,
#: dictionary size, flags, dictionary byte length.
_V3_HEADER = struct.Struct("<4sIIHBI")

#: Flag bit: every record shares one fleet width, so the label/version
#: planes are rectangular and XOR-delta-encoded along the record axis.
_FLAG_UNIFORM = 0x01

#: Flag bit (uniform blocks only): the XOR-delta version plane is stored
#: sparsely — a row count, the indices of the rows that are not all
#: zero, then just those rows.  Engine versions change rarely within a
#: block, so after the XOR transform most rows vanish entirely and the
#: dominant plane (4 bytes per engine per record) shrinks to almost
#: nothing *before* compression ever sees it.
_FLAG_SPARSE_VERSIONS = 0x02

#: Bytes per record across the fixed (meta) columns:
#: scan_time(8) positives(2) total(2) first(8) last(8) last_analysis(8)
#: times_submitted(4) n_engines(2) ftype_code(2) sha256(32).
_META_BYTES_PER_RECORD = 76

#: Row-format record header (see repro.store.codec._HEADER) as a packed
#: little-endian structured dtype, for bulk record (de)serialisation.
_RECORD_HEADER_DTYPE = np.dtype([
    ("scan_time", "<i8"),
    ("positives", "<u2"),
    ("total", "<u2"),
    ("first_submission", "<i8"),
    ("last_submission", "<i8"),
    ("last_analysis", "<i8"),
    ("times_submitted", "<u4"),
    ("n_engines", "<u2"),
    ("ftype_len", "<u2"),
])
assert _RECORD_HEADER_DTYPE.itemsize == 44

#: Month boundaries (exclusive upper edges) for the vectorised
#: month_index: one entry per month of the collection window.
_MONTH_EDGES = np.asarray(MONTH_STARTS[1:], dtype=np.int64)

#: First-probe decompression budget for a metadata-only block decode:
#: enough for the header, any realistic dictionary and the fixed
#: columns of a small block in one pass; bigger blocks extend the
#: probe once the exact metadata size is known from the header.
META_PREFIX_PROBE = 4096


def meta_section_end(head: bytes) -> int:
    """Offset past the fixed columns of a v3 payload, from its header.

    ``head`` needs only the first 19 bytes; everything past the returned
    offset is the label/version planes, which a metadata-only decode
    never inflates.
    """
    try:
        magic, n, _, _, _, dict_bytes = _V3_HEADER.unpack_from(head, 0)
    except struct.error as exc:
        raise CorruptRecordError(f"truncated columnar block: {exc}") from exc
    if magic != COLUMNAR_MAGIC:
        raise CorruptRecordError("bad columnar block magic")
    return _V3_HEADER.size + dict_bytes + _META_BYTES_PER_RECORD * n


def month_indices(scan_times: np.ndarray) -> np.ndarray:
    """Vectorised :func:`repro.vt.clock.month_index` over an array.

    Matches the scalar function exactly, including the clamping of
    pre-window timestamps to month 0 and post-window ones to the last
    month.
    """
    idx = np.searchsorted(_MONTH_EDGES, scan_times, side="right")
    return np.clip(idx, 0, COLLECTION_MONTHS - 1).astype(np.int64)


def _ranges(lens: np.ndarray) -> np.ndarray:
    """``concatenate([arange(l) for l in lens])`` without the loop."""
    total = int(lens.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    out_starts = np.zeros(len(lens), dtype=np.int64)
    np.cumsum(lens[:-1], out=out_starts[1:])
    return np.arange(total, dtype=np.int64) - np.repeat(out_starts, lens)


@dataclass
class ColumnarBatch:
    """One block of records as parallel numpy columns.

    ``labels``/``versions`` are flat planes (record ``i`` owns the slice
    ``engine_offsets[i]:engine_offsets[i+1]``); they are ``None`` on a
    metadata-only decode (``planes=False``), which is all the series
    kernels need.  All columns use explicit little-endian dtypes so
    ``tobytes()`` output is platform-independent.
    """

    scan_time: np.ndarray      # <i8 [n]
    positives: np.ndarray      # <u2 [n]
    total: np.ndarray          # <u2 [n]
    first_submission: np.ndarray   # <i8 [n]
    last_submission: np.ndarray    # <i8 [n]
    last_analysis: np.ndarray      # <i8 [n]
    times_submitted: np.ndarray    # <u4 [n]
    n_engines: np.ndarray      # <u2 [n]
    ftype_codes: np.ndarray    # <u2 [n] — indices into ``ftypes``
    ftypes: tuple[str, ...]    # per-block dictionary
    shas: np.ndarray           # S32 [n] — raw sha256 digests
    labels: np.ndarray | None = field(default=None, repr=False)    # u8 [L]
    versions: np.ndarray | None = field(default=None, repr=False)  # <u4 [L]
    _offsets: np.ndarray | None = field(
        default=None, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.scan_time)

    @property
    def has_planes(self) -> bool:
        return self.labels is not None

    @property
    def engine_offsets(self) -> np.ndarray:
        """Prefix offsets into the flat label/version planes (``[n+1]``).

        Cached: ``n_engines`` never changes after construction, and the
        bulk-ingest path slices one batch many times.
        """
        if self._offsets is None:
            out = np.zeros(len(self) + 1, dtype=np.int64)
            np.cumsum(self.n_engines.astype(np.int64), out=out[1:])
            self._offsets = out
        return self._offsets

    @property
    def uniform(self) -> bool:
        """Whether every record shares one fleet width."""
        n = len(self)
        return n == 0 or bool((self.n_engines == self.n_engines[0]).all())

    @property
    def nbytes(self) -> int:
        """Approximate resident size (cache accounting)."""
        total = sum(
            col.nbytes for col in (
                self.scan_time, self.positives, self.total,
                self.first_submission, self.last_submission,
                self.last_analysis, self.times_submitted, self.n_engines,
                self.ftype_codes, self.shas,
            )
        )
        if self.labels is not None:
            total += self.labels.nbytes
        if self.versions is not None:
            total += self.versions.nbytes
        return total

    def _record_sizes(self) -> np.ndarray:
        """Exact row-format encoded size of each record."""
        ftype_lens = np.asarray(
            [len(name.encode("utf-8")) for name in self.ftypes],
            dtype=np.int64,
        )
        per_ftype = (ftype_lens[self.ftype_codes.astype(np.int64)]
                     if len(self.ftypes) else np.zeros(len(self), np.int64))
        return 76 + per_ftype + 5 * self.n_engines.astype(np.int64)

    def encoded_bytes(self) -> int:
        """Total row-format encoded bytes of the batch."""
        return int(self._record_sizes().sum())

    def verbose_bytes(self) -> int:
        """Total estimated verbose-JSON bytes (Table 2 accounting)."""
        # Mirrors codec.verbose_json_size: fixed overhead + per engine.
        return int((2200 + 160 * self.n_engines.astype(np.int64)).sum())

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls) -> "ColumnarBatch":
        z8 = np.zeros(0, "<i8")
        z2 = np.zeros(0, "<u2")
        return cls(
            scan_time=z8, positives=z2, total=z2.copy(),
            first_submission=z8.copy(), last_submission=z8.copy(),
            last_analysis=z8.copy(), times_submitted=np.zeros(0, "<u4"),
            n_engines=z2.copy(), ftype_codes=z2.copy(), ftypes=(),
            shas=np.zeros(0, "S32"), labels=np.zeros(0, np.uint8),
            versions=np.zeros(0, "<u4"),
        )

    @classmethod
    def from_records(cls, records: Sequence[bytes]) -> "ColumnarBatch":
        """Bulk-parse row-format records into columns (numpy gathers)."""
        n = len(records)
        if n == 0:
            return cls.empty()
        try:
            lens = np.fromiter((len(r) for r in records), np.int64, count=n)
            buf = np.frombuffer(b"".join(records), np.uint8)
            starts = np.zeros(n, np.int64)
            np.cumsum(lens[:-1], out=starts[1:])
            if int(lens.min()) < 76:
                raise CorruptRecordError("record shorter than fixed header")
            hdr = buf[np.add.outer(starts, np.arange(44, dtype=np.int64))]
            hdr = np.ascontiguousarray(hdr).view(_RECORD_HEADER_DTYPE).ravel()
            n_engines = hdr["n_engines"].astype("<u2")
            ftype_lens = hdr["ftype_len"].astype(np.int64)
            expected = 76 + ftype_lens + 5 * n_engines.astype(np.int64)
            if not (expected == lens).all():
                raise CorruptRecordError("record length mismatch in batch")
            sha_g = buf[np.add.outer(starts, np.arange(44, 76, dtype=np.int64))]
            shas = np.ascontiguousarray(sha_g).view("S32").ravel()
            # File-type strings: short and few — a python loop over the
            # records builds the per-block dictionary in appearance order.
            codes = np.zeros(n, "<u2")
            dictionary: dict[str, int] = {}
            for i, record in enumerate(records):
                name = bytes(record[76:76 + ftype_lens[i]]).decode("utf-8")
                codes[i] = dictionary.setdefault(name, len(dictionary))
            plane_starts = starts + 76 + ftype_lens
            counts = n_engines.astype(np.int64)
            lab_idx = np.repeat(plane_starts, counts) + _ranges(counts)
            labels = np.ascontiguousarray(buf[lab_idx])
            ver_starts = plane_starts + counts
            ver_idx = np.repeat(ver_starts, 4 * counts) + _ranges(4 * counts)
            versions = np.ascontiguousarray(buf[ver_idx]).view("<u4")
        except (ValueError, struct.error) as exc:
            raise CorruptRecordError(f"undecodable record batch: {exc}") from exc
        return cls(
            scan_time=hdr["scan_time"].astype("<i8"),
            positives=hdr["positives"].astype("<u2"),
            total=hdr["total"].astype("<u2"),
            first_submission=hdr["first_submission"].astype("<i8"),
            last_submission=hdr["last_submission"].astype("<i8"),
            last_analysis=hdr["last_analysis"].astype("<i8"),
            times_submitted=hdr["times_submitted"].astype("<u4"),
            n_engines=n_engines,
            ftype_codes=codes,
            ftypes=tuple(dictionary),
            shas=shas,
            labels=labels,
            versions=versions,
        )

    @classmethod
    def from_reports(cls, reports: Sequence[ScanReport]) -> "ColumnarBatch":
        """Build a batch straight from report objects (bulk-ingest path)."""
        n = len(reports)
        if n == 0:
            return cls.empty()
        dictionary: dict[str, int] = {}
        codes = np.zeros(n, "<u2")
        for i, report in enumerate(reports):
            codes[i] = dictionary.setdefault(report.file_type, len(dictionary))
        return cls(
            scan_time=np.array([r.scan_time for r in reports], "<i8"),
            positives=np.array([r.positives for r in reports], "<u2"),
            total=np.array([r.total for r in reports], "<u2"),
            first_submission=np.array(
                [r.first_submission_date for r in reports], "<i8"),
            last_submission=np.array(
                [r.last_submission_date for r in reports], "<i8"),
            last_analysis=np.array(
                [r.last_analysis_date for r in reports], "<i8"),
            times_submitted=np.array(
                [r.times_submitted for r in reports], "<u4"),
            n_engines=np.array([len(r.labels) for r in reports], "<u2"),
            ftype_codes=codes,
            ftypes=tuple(dictionary),
            shas=np.array([bytes.fromhex(r.sha256) for r in reports], "S32"),
            labels=np.frombuffer(
                b"".join(r.labels for r in reports), np.uint8).copy(),
            versions=np.concatenate(
                [np.array(r.versions, "<u4") for r in reports])
            if any(len(r.versions) for r in reports) else np.zeros(0, "<u4"),
        )

    # ------------------------------------------------------------------
    # Row materialisation
    # ------------------------------------------------------------------

    def to_records(self) -> list[bytes]:
        """Rebuild the exact row-format record bytes of every record.

        Byte-for-byte identical to what :func:`repro.store.codec.
        encode_report` produced for the original reports — the digest
        invariant rests on this.
        """
        n = len(self)
        if n == 0:
            return []
        if not self.has_planes:
            raise CorruptRecordError(
                "cannot materialise records from a metadata-only batch")
        ftype_blobs = [name.encode("utf-8") for name in self.ftypes]
        ftype_lens = np.asarray([len(b) for b in ftype_blobs], np.int64)
        codes = self.ftype_codes.astype(np.int64)
        per_ftype = ftype_lens[codes] if len(ftype_blobs) else np.zeros(n, np.int64)
        counts = self.n_engines.astype(np.int64)
        sizes = 76 + per_ftype + 5 * counts
        offsets = np.zeros(n + 1, np.int64)
        np.cumsum(sizes, out=offsets[1:])
        out = np.zeros(int(offsets[-1]), np.uint8)
        starts = offsets[:-1]

        hdr = np.empty(n, dtype=_RECORD_HEADER_DTYPE)
        hdr["scan_time"] = self.scan_time
        hdr["positives"] = self.positives
        hdr["total"] = self.total
        hdr["first_submission"] = self.first_submission
        hdr["last_submission"] = self.last_submission
        hdr["last_analysis"] = self.last_analysis
        hdr["times_submitted"] = self.times_submitted
        hdr["n_engines"] = self.n_engines
        hdr["ftype_len"] = per_ftype.astype("<u2")
        out[np.add.outer(starts, np.arange(44, dtype=np.int64))] = (
            hdr.view(np.uint8).reshape(n, 44))
        out[np.add.outer(starts, np.arange(44, 76, dtype=np.int64))] = (
            self.shas.view(np.uint8).reshape(n, 32))
        for code, blob in enumerate(ftype_blobs):
            sel = starts[codes == code]
            if len(sel) and len(blob):
                out[np.add.outer(sel, np.arange(76, 76 + len(blob),
                                                dtype=np.int64))] = (
                    np.frombuffer(blob, np.uint8))
        plane_starts = starts + 76 + per_ftype
        if int(counts.sum()):
            lab_idx = np.repeat(plane_starts, counts) + _ranges(counts)
            out[lab_idx] = self.labels
            ver_starts = plane_starts + counts
            ver_idx = np.repeat(ver_starts, 4 * counts) + _ranges(4 * counts)
            out[ver_idx] = self.versions.view(np.uint8)
        blob = out.tobytes()
        bounds = offsets.tolist()
        return [blob[bounds[i]:bounds[i + 1]] for i in range(n)]

    def report(self, slot: int) -> ScanReport:
        """Materialise one record as a :class:`ScanReport` (point lookup)."""
        if not 0 <= slot < len(self):
            raise BlockAddressError(f"no record at slot {slot}")
        if not self.has_planes:
            raise CorruptRecordError(
                "cannot materialise a report from a metadata-only batch")
        offsets = self.engine_offsets
        a, b = int(offsets[slot]), int(offsets[slot + 1])
        return ScanReport(
            # Slice-then-tobytes keeps the full 32-byte width; indexing an
            # S32 array yields np.bytes_, which strips trailing NULs.
            sha256=self.shas[slot:slot + 1].tobytes().hex(),
            file_type=self.ftypes[int(self.ftype_codes[slot])],
            scan_time=int(self.scan_time[slot]),
            positives=int(self.positives[slot]),
            total=int(self.total[slot]),
            labels=self.labels[a:b].tobytes(),
            versions=tuple(self.versions[a:b].tolist()),
            first_submission_date=int(self.first_submission[slot]),
            last_submission_date=int(self.last_submission[slot]),
            last_analysis_date=int(self.last_analysis[slot]),
            times_submitted=int(self.times_submitted[slot]),
        )

    # ------------------------------------------------------------------
    # Slicing
    # ------------------------------------------------------------------

    def take(self, selector: np.ndarray) -> "ColumnarBatch":
        """A new batch of the selected records (mask or index array)."""
        if not self.has_planes:
            raise CorruptRecordError("cannot slice a metadata-only batch")
        if selector.dtype == np.bool_:
            selector = np.flatnonzero(selector)
        offsets = self.engine_offsets
        counts = self.n_engines.astype(np.int64)[selector]
        plane_idx = (np.repeat(offsets[:-1][selector], counts)
                     + _ranges(counts))
        return ColumnarBatch(
            scan_time=self.scan_time[selector],
            positives=self.positives[selector],
            total=self.total[selector],
            first_submission=self.first_submission[selector],
            last_submission=self.last_submission[selector],
            last_analysis=self.last_analysis[selector],
            times_submitted=self.times_submitted[selector],
            n_engines=self.n_engines[selector],
            ftype_codes=self.ftype_codes[selector],
            ftypes=self.ftypes,
            shas=self.shas[selector],
            labels=self.labels[plane_idx],
            versions=self.versions[plane_idx],
        )

    def slice(self, start: int, stop: int) -> "ColumnarBatch":
        """A contiguous sub-batch (cheap views into the planes)."""
        if not self.has_planes:
            raise CorruptRecordError("cannot slice a metadata-only batch")
        offsets = self.engine_offsets
        a, b = int(offsets[start]), int(offsets[stop])
        return ColumnarBatch(
            scan_time=self.scan_time[start:stop],
            positives=self.positives[start:stop],
            total=self.total[start:stop],
            first_submission=self.first_submission[start:stop],
            last_submission=self.last_submission[start:stop],
            last_analysis=self.last_analysis[start:stop],
            times_submitted=self.times_submitted[start:stop],
            n_engines=self.n_engines[start:stop],
            ftype_codes=self.ftype_codes[start:stop],
            ftypes=self.ftypes,
            shas=self.shas[start:stop],
            labels=self.labels[a:b],
            versions=self.versions[a:b],
        )


# ----------------------------------------------------------------------
# v3 payload encode/decode
# ----------------------------------------------------------------------


def _canonical_dictionary(batch: ColumnarBatch) -> tuple[list[bytes], np.ndarray]:
    """Re-normalise the batch dictionary to first-use order.

    A batch produced by :meth:`ColumnarBatch.take` can carry unused
    dictionary entries; encoding must not depend on that history, so the
    dictionary is rebuilt from the codes actually present — a block's
    bytes are then a pure function of its record sequence.
    """
    n = len(batch)
    if n == 0:
        return [], np.zeros(0, "<u2")
    codes = batch.ftype_codes.astype(np.int64)
    n_names = len(batch.ftypes)
    first_pos = np.full(n_names, n, np.int64)
    np.minimum.at(first_pos, codes, np.arange(n, dtype=np.int64))
    used = np.flatnonzero(first_pos < n)
    order = used[np.argsort(first_pos[used], kind="stable")]
    remap = np.zeros(n_names, np.int64)
    remap[order] = np.arange(len(order), dtype=np.int64)
    blobs = [batch.ftypes[i].encode("utf-8") for i in order.tolist()]
    return blobs, remap[codes].astype("<u2")


def encode_columnar(batch: ColumnarBatch) -> bytes:
    """Serialise a batch into one (uncompressed) v3 block payload."""
    if not batch.has_planes:
        raise CorruptRecordError("cannot encode a metadata-only batch")
    n = len(batch)
    counts = batch.n_engines.astype(np.int64)
    total_engines = int(counts.sum())
    blobs, codes = _canonical_dictionary(batch)
    dict_blob = b"".join(
        struct.pack("<H", len(b)) + b for b in blobs)
    uniform = batch.uniform and n > 0
    flags = _FLAG_UNIFORM if uniform else 0

    scan = batch.scan_time.astype("<i8", copy=True)
    scan[1:] -= batch.scan_time[:-1]          # deltas; first stays absolute
    ana_rel = (batch.last_analysis.astype(np.int64)
               - batch.scan_time.astype(np.int64)).astype("<i8")

    if uniform:
        width = int(batch.n_engines[0])
        labels = batch.labels.reshape(n, width).copy()
        labels[1:] ^= batch.labels.reshape(n, width)[:-1]
        versions = batch.versions.reshape(n, width).astype("<u4", copy=True)
        versions[1:] ^= batch.versions.reshape(n, width)[:-1]
    else:
        labels = batch.labels
        versions = batch.versions.astype("<u4", copy=False)

    version_section = versions.tobytes()
    if uniform and width:
        live = np.flatnonzero((versions != 0).any(axis=1)).astype("<u4")
        sparse_bytes = 4 + len(live) * (4 + 4 * width)
        if sparse_bytes < versions.nbytes:
            flags |= _FLAG_SPARSE_VERSIONS
            version_section = (struct.pack("<I", len(live))
                               + live.tobytes()
                               + versions[live.astype(np.int64)].tobytes())

    header = _V3_HEADER.pack(COLUMNAR_MAGIC, n, total_engines, len(blobs),
                             flags, len(dict_blob))
    return b"".join((
        header,
        dict_blob,
        scan.tobytes(),
        batch.positives.astype("<u2", copy=False).tobytes(),
        batch.total.astype("<u2", copy=False).tobytes(),
        batch.first_submission.astype("<i8", copy=False).tobytes(),
        batch.last_submission.astype("<i8", copy=False).tobytes(),
        ana_rel.tobytes(),
        batch.times_submitted.astype("<u4", copy=False).tobytes(),
        batch.n_engines.astype("<u2", copy=False).tobytes(),
        codes.tobytes(),
        batch.shas.tobytes(),
        labels.tobytes(),
        version_section,
    ))


def _column(payload: bytes, dtype: str, count: int, offset: int) -> np.ndarray:
    return np.frombuffer(payload, dtype=dtype, count=count, offset=offset)


def decode_columnar(payload, planes: bool = True) -> ColumnarBatch:
    """Parse a v3 block payload into a :class:`ColumnarBatch`.

    With ``planes=False`` only the fixed columns are required — the
    payload may be truncated anywhere at or past the end of the metadata
    section (the partial-decompression fast path) and the returned batch
    carries no label/version planes.

    Every structural defect — truncation, bad magic, a dictionary code
    out of range, plane sizes disagreeing with the engine counts —
    raises :class:`~repro.errors.CorruptRecordError`.
    """
    payload = bytes(payload)
    try:
        magic, n, total_engines, dict_size, flags, dict_bytes = (
            _V3_HEADER.unpack_from(payload, 0))
    except struct.error as exc:
        raise CorruptRecordError(f"truncated columnar block: {exc}") from exc
    if magic != COLUMNAR_MAGIC:
        raise CorruptRecordError("bad columnar block magic")
    offset = _V3_HEADER.size
    names: list[str] = []
    dict_end = offset + dict_bytes
    if dict_end > len(payload):
        raise CorruptRecordError("truncated columnar dictionary")
    for _ in range(dict_size):
        if offset + 2 > dict_end:
            raise CorruptRecordError("truncated columnar dictionary")
        (name_len,) = struct.unpack_from("<H", payload, offset)
        offset += 2
        if offset + name_len > dict_end:
            raise CorruptRecordError("truncated columnar dictionary")
        try:
            names.append(payload[offset:offset + name_len].decode("utf-8"))
        except ValueError as exc:
            raise CorruptRecordError(
                f"undecodable file-type string: {exc}") from exc
        offset += name_len
    if offset != dict_end:
        raise CorruptRecordError("columnar dictionary length mismatch")

    meta_end = dict_end + _META_BYTES_PER_RECORD * n
    if len(payload) < meta_end:
        raise CorruptRecordError("truncated columnar block")

    at = dict_end
    scan_deltas = _column(payload, "<i8", n, at); at += 8 * n
    positives = _column(payload, "<u2", n, at); at += 2 * n
    total = _column(payload, "<u2", n, at); at += 2 * n
    first_sub = _column(payload, "<i8", n, at); at += 8 * n
    last_sub = _column(payload, "<i8", n, at); at += 8 * n
    ana_rel = _column(payload, "<i8", n, at); at += 8 * n
    times_submitted = _column(payload, "<u4", n, at); at += 4 * n
    n_engines = _column(payload, "<u2", n, at); at += 2 * n
    codes = _column(payload, "<u2", n, at); at += 2 * n
    shas = _column(payload, "S32", n, at); at += 32 * n

    if n and (codes >= dict_size).any():
        raise CorruptRecordError("file-type code out of dictionary range")
    counts = n_engines.astype(np.int64)
    if int(counts.sum()) != total_engines:
        raise CorruptRecordError(
            "engine counts disagree with plane size")
    uniform = bool(flags & _FLAG_UNIFORM)
    if uniform and (n == 0 or not (n_engines == n_engines[0]).all()):
        raise CorruptRecordError("uniform flag on a ragged block")

    scan = np.cumsum(scan_deltas, dtype=np.int64).astype("<i8")
    last_analysis = (scan.astype(np.int64)
                     + ana_rel.astype(np.int64)).astype("<i8")

    sparse = bool(flags & _FLAG_SPARSE_VERSIONS)
    if sparse and not uniform:
        raise CorruptRecordError("sparse version plane on a non-uniform block")

    labels = versions = None
    if planes:
        width = int(n_engines[0]) if uniform else 0
        labels_end = meta_end + total_engines
        if sparse:
            if labels_end + 4 > len(payload):
                raise CorruptRecordError("truncated columnar block")
            (live_count,) = struct.unpack_from("<I", payload, labels_end)
            if live_count > n:
                raise CorruptRecordError(
                    "sparse version rows exceed record count")
            expected_total = labels_end + 4 + live_count * (4 + 4 * width)
        else:
            expected_total = labels_end + 4 * total_engines
        if len(payload) != expected_total:
            raise CorruptRecordError(
                f"columnar block length mismatch: "
                f"{len(payload)} != {expected_total}")
        labels = _column(payload, "u1", total_engines, at)
        at += total_engines
        if sparse:
            at += 4
            live = _column(payload, "<u4", live_count, at).astype(np.int64)
            at += 4 * live_count
            if live_count and int(live[-1]) >= n:
                raise CorruptRecordError(
                    "sparse version row index out of range")
            if live_count > 1 and (np.diff(live) <= 0).any():
                raise CorruptRecordError("sparse version rows out of order")
            rows = _column(payload, "<u4", live_count * width, at)
            dense = np.zeros((n, width), "<u4")
            dense[live] = rows.reshape(live_count, width)
            versions = dense.ravel()
        else:
            versions = _column(payload, "<u4", total_engines, at)
        if uniform:
            labels = np.bitwise_xor.accumulate(
                labels.reshape(n, width), axis=0).ravel()
            versions = np.bitwise_xor.accumulate(
                versions.reshape(n, width).astype(np.uint32), axis=0
            ).astype("<u4").ravel()
        else:
            labels = labels.copy()
            versions = versions.copy()

    return ColumnarBatch(
        scan_time=scan,
        positives=positives,
        total=total,
        first_submission=first_sub,
        last_submission=last_sub,
        last_analysis=last_analysis,
        times_submitted=times_submitted,
        n_engines=n_engines,
        ftype_codes=codes,
        ftypes=tuple(names),
        shas=shas,
        labels=labels,
        versions=versions,
    )


def decode_columnar_records(payload) -> list[bytes]:
    """Decode a v3 payload straight to row-format record bytes."""
    return decode_columnar(payload, planes=True).to_records()


# ----------------------------------------------------------------------
# Series kernels
# ----------------------------------------------------------------------


@dataclass
class SeriesFrame:
    """Every sample's AV-Rank trajectory as flat arrays.

    The columnar counterpart of
    :func:`repro.core.avrank.collect_series` over
    :meth:`~repro.store.reportstore.ReportStore.iter_sample_reports`:
    sample ``s`` owns ``times[offsets[s]:offsets[s+1]]`` (time-sorted)
    and the parallel ``ranks`` slice.  Samples appear in the exact order
    the streaming row pass yields them (completion order, ties by
    first-ingest rank), so :meth:`to_series` is bit-identical to the row
    path — the differential harness pins this.
    """

    sha256: list[str]
    file_types: list[str]
    fresh: np.ndarray          # bool [S]
    offsets: np.ndarray        # i64 [S+1]
    times: np.ndarray          # i64 [N], grouped per sample, time-sorted
    ranks: np.ndarray          # i64 [N]

    @property
    def n_samples(self) -> int:
        return len(self.sha256)

    @property
    def n_reports(self) -> int:
        return len(self.times)

    @classmethod
    def from_batches(
        cls,
        batches: Iterable[ColumnarBatch],
        rank_of: dict[str, int] | None = None,
    ) -> "SeriesFrame":
        """Group a store's record stream into per-sample trajectories.

        ``batches`` must arrive in store block order (months ascending,
        blocks ascending).  ``rank_of`` maps sha256 hex to first-ingest
        rank (the store's index insertion order); without it, first
        occurrence in the stream is used — identical for chronologically
        ingested stores.
        """
        times_parts: list[np.ndarray] = []
        ranks_parts: list[np.ndarray] = []
        sha_parts: list[np.ndarray] = []
        fresh_parts: list[np.ndarray] = []
        ftype_parts: list[np.ndarray] = []
        block_parts: list[np.ndarray] = []
        names: dict[str, int] = {}
        for ordinal, batch in enumerate(batches):
            n = len(batch)
            if n == 0:
                continue
            times_parts.append(batch.scan_time.astype(np.int64))
            ranks_parts.append(batch.positives.astype(np.int64))
            sha_parts.append(batch.shas)
            fresh_parts.append(batch.first_submission.astype(np.int64) >= 0)
            local = np.zeros(max(len(batch.ftypes), 1), np.int64)
            for i, name in enumerate(batch.ftypes):
                local[i] = names.setdefault(name, len(names))
            ftype_parts.append(local[batch.ftype_codes.astype(np.int64)])
            block_parts.append(np.full(n, ordinal, np.int64))
        if not times_parts:
            return cls(sha256=[], file_types=[],
                       fresh=np.zeros(0, bool),
                       offsets=np.zeros(1, np.int64),
                       times=np.zeros(0, np.int64),
                       ranks=np.zeros(0, np.int64))

        times = np.concatenate(times_parts)
        ranks = np.concatenate(ranks_parts)
        shas = np.concatenate(sha_parts)
        fresh = np.concatenate(fresh_parts)
        ftype_codes = np.concatenate(ftype_parts)
        block_ord = np.concatenate(block_parts)
        n_total = len(times)

        uniq, inv = np.unique(shas, return_inverse=True)
        n_uniq = len(uniq)
        if rank_of is not None:
            # tobytes() pads every element back to 32 bytes (np.bytes_
            # elements strip trailing NULs).
            uniq_blob = uniq.tobytes()
            uid_rank = np.asarray(
                [rank_of[uniq_blob[32 * i:32 * i + 32].hex()]
                 for i in range(n_uniq)], np.int64)
        else:
            uid_rank = np.full(n_uniq, n_total, np.int64)
            np.minimum.at(uid_rank, inv, np.arange(n_total, dtype=np.int64))
        last_block = np.full(n_uniq, -1, np.int64)
        np.maximum.at(last_block, inv, block_ord)

        # Yield order of the streaming pass: a sample completes at the
        # last block holding one of its reports; within that block,
        # samples complete in first-ingest order.
        order = np.lexsort((uid_rank, last_block))
        out_rank = np.empty(n_uniq, np.int64)
        out_rank[order] = np.arange(n_uniq, dtype=np.int64)
        group = out_rank[inv]

        # Stable (group, scan_time, stream position) sort reproduces the
        # row path's per-sample `sort(key=scan_time)` exactly.
        perm = np.lexsort((np.arange(n_total, dtype=np.int64), times, group))
        counts = np.bincount(group, minlength=n_uniq)
        offsets = np.zeros(n_uniq + 1, np.int64)
        np.cumsum(counts, out=offsets[1:])
        firsts = perm[offsets[:-1]]

        names_list = list(names)
        first_blob = shas[firsts].tobytes()
        return cls(
            sha256=[first_blob[32 * i:32 * i + 32].hex()
                    for i in range(len(firsts))],
            file_types=[names_list[g] for g in ftype_codes[firsts].tolist()],
            fresh=fresh[firsts],
            offsets=offsets,
            times=times[perm],
            ranks=ranks[perm],
        )

    # ------------------------------------------------------------------
    # Kernels (§5.1-5.3 geometry, vectorised)
    # ------------------------------------------------------------------

    def counts(self) -> np.ndarray:
        """Reports per sample."""
        return np.diff(self.offsets)

    def p_min(self) -> np.ndarray:
        return np.minimum.reduceat(self.ranks, self.offsets[:-1]) \
            if self.n_samples else np.zeros(0, np.int64)

    def p_max(self) -> np.ndarray:
        return np.maximum.reduceat(self.ranks, self.offsets[:-1]) \
            if self.n_samples else np.zeros(0, np.int64)

    def delta_overall(self) -> np.ndarray:
        """Δ = p_max − p_min per sample (§5.1)."""
        return self.p_max() - self.p_min()

    def multi_mask(self) -> np.ndarray:
        """Samples whose dynamics are measurable (n > 1)."""
        return self.counts() > 1

    def stable_mask(self) -> np.ndarray:
        """The paper's stable criterion: multi-report and Δ = 0."""
        return self.multi_mask() & (self.delta_overall() == 0)

    def dynamic_mask(self) -> np.ndarray:
        return self.multi_mask() & (self.delta_overall() > 0)

    def span_minutes(self) -> np.ndarray:
        """Last minus first scan time per sample."""
        if not self.n_samples:
            return np.zeros(0, np.int64)
        return self.times[self.offsets[1:] - 1] - self.times[self.offsets[:-1]]

    def adjacent_deltas(self) -> np.ndarray:
        """All δ_i = |p_i − p_{i−1}| within samples, in frame order."""
        if self.n_reports < 2:
            return np.zeros(0, np.int64)
        deltas = np.abs(np.diff(self.ranks))
        keep = np.ones(self.n_reports - 1, bool)
        keep[self.offsets[1:-1] - 1] = False  # pairs straddling samples
        return deltas[keep]

    def label_flips(self, threshold: int) -> int:
        """Adjacent B↔M transitions under a voting threshold (§6.2).

        The numpy counterpart of counting changes in
        :meth:`~repro.core.avrank.AVRankSeries.labels_under` across every
        sample's consecutive scans.
        """
        if self.n_reports < 2:
            return 0
        malicious = self.ranks >= threshold
        flips = malicious[1:] != malicious[:-1]
        keep = np.ones(self.n_reports - 1, bool)
        keep[self.offsets[1:-1] - 1] = False  # pairs straddling samples
        return int((flips & keep).sum())

    def dataset_s_mask(self, top20: Iterable[str]) -> np.ndarray:
        """The paper's dataset *S* (§5.3.1): fresh ∧ dynamic ∧ top-20."""
        wanted = frozenset(top20)
        in_top = np.asarray([ft in wanted for ft in self.file_types], bool)
        return self.dynamic_mask() & self.fresh & in_top

    def select(self, mask: np.ndarray) -> "SeriesFrame":
        """A sub-frame of the selected samples (mask or index array).

        Sample order is preserved, so kernels over the selection match
        a python pass over the equivalent filtered series list.
        """
        idx = np.flatnonzero(mask) if mask.dtype == np.bool_ \
            else np.asarray(mask, np.int64)
        counts = self.counts()[idx]
        pos = (np.repeat(self.offsets[:-1][idx], counts)
               + _ranges(counts))
        offsets = np.zeros(len(idx) + 1, np.int64)
        np.cumsum(counts, out=offsets[1:])
        picks = idx.tolist()
        return SeriesFrame(
            sha256=[self.sha256[i] for i in picks],
            file_types=[self.file_types[i] for i in picks],
            fresh=self.fresh[idx],
            offsets=offsets,
            times=self.times[pos],
            ranks=self.ranks[pos],
        )

    def pairwise_diffs(self) -> tuple[np.ndarray, np.ndarray]:
        """All within-sample scan pairs: ``(intervals, rank_diffs)``.

        The §5.3.5 / Figure 7 measurement, uncapped: for every sample
        and every pair ``i < j`` of its scans, the interval
        ``t_j − t_i`` (minutes) and ``|p_j − p_i|``, pooled
        sample-major in the same ``(i, j)`` order as the python
        all-pairs enumeration in
        :func:`repro.core.metrics.pairwise_differences`.
        """
        counts = self.counts()
        rec_rep = np.repeat(counts, counts) - 1 - _ranges(counts)
        first = np.repeat(np.arange(self.n_reports, dtype=np.int64), rec_rep)
        second = first + 1 + _ranges(rec_rep)
        return (self.times[second] - self.times[first],
                np.abs(self.ranks[second] - self.ranks[first]))

    def to_series(self) -> list[AVRankSeries]:
        """Materialise :class:`AVRankSeries` objects, row-path order."""
        times = self.times.tolist()
        ranks = self.ranks.tolist()
        bounds = self.offsets.tolist()
        fresh = self.fresh.tolist()
        return [
            AVRankSeries(
                sha256=self.sha256[s],
                file_type=self.file_types[s],
                fresh=fresh[s],
                times=tuple(times[bounds[s]:bounds[s + 1]]),
                ranks=tuple(ranks[bounds[s]:bounds[s + 1]]),
            )
            for s in range(self.n_samples)
        ]
