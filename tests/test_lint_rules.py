"""Per-rule fixture tests for reprolint (repro.lint.rules).

Every rule gets at least one hit fixture and one non-hit fixture,
including the adversarial shapes the engine must see through: aliased
imports (``from time import time as now``), attribute chains through
module aliases, and ``functools.partial`` indirection.
"""

import textwrap

import pytest

from repro.lint import LintConfig, lint_source


def codes(source: str, path: str = "repro/_fixture.py", **kwargs):
    result = lint_source(textwrap.dedent(source), path=path, **kwargs)
    return [f.code for f in result.findings]


class TestWallClock:
    def test_time_time_hit(self):
        assert codes("""
            import time
            def stamp():
                return time.time()
        """) == ["RPL001"]

    def test_aliased_import_hit(self):
        assert codes("""
            from time import time as now
            def stamp():
                return now()
        """) == ["RPL001"]

    def test_datetime_attribute_chain_hit(self):
        assert codes("""
            import datetime as dt
            def stamp():
                return dt.datetime.now()
        """) == ["RPL001"]

    def test_utcnow_and_today_hit(self):
        found = codes("""
            from datetime import datetime, date
            a = datetime.utcnow()
            b = date.today()
        """)
        assert found == ["RPL001", "RPL001"]

    def test_partial_indirection_hit(self):
        assert codes("""
            import functools
            import time
            clock = functools.partial(time.time)
        """) == ["RPL001"]

    def test_monotonic_family_hit(self):
        assert codes("""
            import time
            t = time.perf_counter()
        """) == ["RPL001"]

    def test_clock_modules_exempt(self):
        source = """
            import time
            def read():
                return time.perf_counter()
        """
        assert codes(source, path="repro/obs/timing.py") == []
        assert codes(source, path="src/repro/vt/clock.py") == []

    def test_sim_clock_use_is_clean(self):
        assert codes("""
            from repro.vt.clock import SimulationClock
            clock = SimulationClock()
            clock.advance(5)
        """) == []


class TestUnseededRandom:
    def test_module_function_hit(self):
        assert codes("""
            import random
            x = random.random()
        """) == ["RPL002"]

    def test_aliased_function_hit(self):
        assert codes("""
            from random import randint as roll
            x = roll(1, 6)
        """) == ["RPL002"]

    def test_argless_random_constructor_hit(self):
        assert codes("""
            import random
            rng = random.Random()
        """) == ["RPL002"]

    def test_numpy_legacy_global_hit(self):
        assert codes("""
            import numpy as np
            x = np.random.rand(10)
        """) == ["RPL002"]

    def test_argless_default_rng_hit(self):
        assert codes("""
            import numpy as np
            rng = np.random.default_rng()
        """) == ["RPL002"]

    def test_keyed_random_clean(self):
        assert codes("""
            import random
            def rng_for(seed, sha):
                return random.Random(f"{seed}:scan:{sha}")
        """) == []

    def test_seeded_default_rng_clean(self):
        assert codes("""
            import numpy as np
            def rng_for(seed):
                return np.random.default_rng(seed)
        """) == []

    def test_instance_method_on_keyed_stream_clean(self):
        assert codes("""
            import random
            rng = random.Random(7)
            x = rng.random() + rng.randint(1, 6)
        """) == []


class TestEntropy:
    def test_uuid4_hit(self):
        assert codes("""
            import uuid
            token = uuid.uuid4()
        """) == ["RPL003"]

    def test_urandom_hit(self):
        assert codes("""
            import os
            blob = os.urandom(16)
        """) == ["RPL003"]

    def test_secrets_hit(self):
        assert codes("""
            import secrets
            token = secrets.token_hex(8)
        """) == ["RPL003"]

    def test_secrets_from_import_hit(self):
        assert codes("""
            from secrets import token_bytes
            blob = token_bytes(8)
        """) == ["RPL003"]

    def test_content_hash_clean(self):
        assert codes("""
            import hashlib
            def sha_for(seed, index):
                return hashlib.sha256(f"{seed}:{index}".encode()).hexdigest()
        """) == []


class TestUnorderedIteration:
    def test_set_literal_for_hit(self):
        assert codes("""
            out = []
            for x in {"b", "a"}:
                out.append(x)
        """) == ["RPL004"]

    def test_set_call_comprehension_hit(self):
        assert codes("""
            def dedupe(items):
                return [x for x in set(items)]
        """) == ["RPL004"]

    def test_listdir_hit(self):
        assert codes("""
            import os
            def walk(root):
                for name in os.listdir(root):
                    yield name
        """) == ["RPL004"]

    def test_glob_hit(self):
        assert codes("""
            import glob
            def files():
                for path in glob.glob("*.py"):
                    yield path
        """) == ["RPL004"]

    def test_enumerate_wrapper_still_hit(self):
        assert codes("""
            def числа(items):
                for i, x in enumerate(set(items)):
                    yield i, x
        """) == ["RPL004"]

    def test_sorted_wrapper_clean(self):
        assert codes("""
            import os
            def walk(root):
                for name in sorted(os.listdir(root)):
                    yield name
            def dedupe(items):
                return [x for x in sorted(set(items))]
        """) == []

    def test_order_insensitive_consumer_clean(self):
        assert codes("""
            def total(counts):
                return sum(v for v in set(counts))
            def smallest(items):
                return sorted(x for x in {i for i in items})
        """) == []

    def test_dict_iteration_clean(self):
        assert codes("""
            def render(table):
                for key in table:
                    yield key, table[key]
        """) == []


class TestMetricDiscipline:
    def test_non_literal_name_hit(self):
        assert codes("""
            def instrument(metrics, name):
                return metrics.counter(name)
        """) == ["RPL005"]

    def test_grammar_violation_hit(self):
        assert codes("""
            def instrument(metrics):
                return metrics.counter("Store.IngestBytes")
        """) == ["RPL005"]

    def test_kind_conflict_across_files_hit(self):
        from repro.lint import lint_modules

        result = lint_modules([
            ("repro/a.py",
             'def f(m):\n    return m.counter("store.rows")\n'),
            ("repro/b.py",
             'def g(m):\n    return m.gauge("store.rows")\n'),
        ])
        assert [f.code for f in result.findings] == ["RPL005"]
        assert result.findings[0].path == "repro/b.py"
        assert "one instrument kind per name" in result.findings[0].message

    def test_span_counts_as_histogram(self):
        from repro.lint import lint_modules

        result = lint_modules([
            ("repro/a.py",
             'def f(m):\n    with m.span("poll.seconds"):\n        pass\n'),
            ("repro/b.py",
             'def g(m):\n    return m.histogram("poll.seconds")\n'),
        ])
        assert result.findings == []

    def test_traced_decorator_checked(self):
        assert codes("""
            from repro.obs import traced

            @traced("Save.Seconds")
            def save():
                pass
        """) == ["RPL005"]

    def test_consistent_literal_sites_clean(self):
        assert codes("""
            def instrument(metrics):
                a = metrics.counter("vt.scan.total", kind="upload")
                b = metrics.counter("vt.scan.total", kind="rescan")
                c = metrics.histogram("vt.scan.positives")
                return a, b, c
        """) == []


class TestSwallow:
    def test_bare_except_hit(self):
        assert codes("""
            def poll():
                try:
                    return 1
                except:
                    pass
        """, path="repro/collect/driver.py") == ["RPL006"]

    def test_swallow_exception_hit(self):
        assert codes("""
            def poll():
                try:
                    return 1
                except Exception:
                    pass
        """, path="repro/faults/chaos.py") == ["RPL006"]

    def test_outside_resilience_layers_not_flagged(self):
        assert codes("""
            def poll():
                try:
                    return 1
                except Exception:
                    pass
        """, path="repro/analysis/report.py") == []

    def test_counted_handler_clean(self):
        assert codes("""
            def poll(stats):
                try:
                    return 1
                except Exception:
                    stats.errors += 1
                    raise
        """, path="repro/collect/driver.py") == []


class TestRoguePool:
    def test_direct_pool_hit(self):
        assert codes("""
            import multiprocessing
            def fan_out(tasks):
                with multiprocessing.Pool(4) as pool:
                    return pool.map(str, tasks)
        """) == ["RPL007"]

    def test_context_pool_hit(self):
        assert codes("""
            import multiprocessing
            def fan_out(tasks):
                ctx = multiprocessing.get_context("fork")
                with ctx.Pool(4) as pool:
                    return pool.map(str, tasks)
        """) == ["RPL007"]

    def test_from_import_process_hit(self):
        assert codes("""
            from multiprocessing import Process
            def spawn(fn):
                return Process(target=fn)
        """) == ["RPL007"]

    def test_executors_package_exempt(self):
        assert codes("""
            import multiprocessing
            def fan_out(tasks):
                ctx = multiprocessing.get_context("fork")
                with ctx.Pool(4) as pool:
                    return pool.map(str, tasks)
        """, path="repro/parallel/executors/pool.py") == []

    def test_runner_module_no_longer_exempt(self):
        assert codes("""
            import multiprocessing
            def fan_out(tasks):
                return multiprocessing.Process(target=str)
        """, path="repro/parallel/runner.py") == ["RPL007"]

    def test_other_multiprocessing_attrs_clean(self):
        assert codes("""
            import multiprocessing
            def can_fork():
                return "fork" in multiprocessing.get_all_start_methods()
        """) == []


class TestSelectAndPolicy:
    def test_select_narrows_rules(self):
        source = """
            import time
            import uuid
            a = time.time()
            b = uuid.uuid4()
        """
        config = LintConfig(select=frozenset({"RPL003"}))
        assert codes(source, config=config) == ["RPL003"]

    def test_unknown_select_code_raises(self):
        from repro.errors import LintError

        with pytest.raises(LintError, match="RPL999"):
            LintConfig(select=frozenset({"RPL999"}))

    def test_findings_sorted_and_deduped(self):
        result = lint_source(textwrap.dedent("""
            import time
            b = time.time()
            a = time.time()
        """))
        positions = [(f.line, f.col) for f in result.findings]
        assert positions == sorted(positions)
