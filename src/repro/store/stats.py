"""Store accounting — the numbers behind the paper's Table 2.

Table 2 reports, per collection-window month, the number of reports and
their raw size, plus dataset totals and the achieved compression rate
(10.06×).  :class:`StoreStats` derives all of these from a
:class:`~repro.store.reportstore.ReportStore`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vt.clock import COLLECTION_MONTHS, month_label


@dataclass(frozen=True)
class MonthStats:
    """One Table 2 row."""

    month: int
    label: str
    report_count: int
    verbose_bytes: int
    compressed_bytes: int

    @property
    def verbose_gb(self) -> float:
        return self.verbose_bytes / 1e9

    @property
    def compressed_gb(self) -> float:
        return self.compressed_bytes / 1e9


@dataclass(frozen=True)
class StoreStats:
    """Whole-store accounting: Table 2 rows plus dataset totals."""

    months: tuple[MonthStats, ...]
    total_reports: int
    total_samples: int
    fresh_samples: int
    verbose_bytes: int
    compressed_bytes: int

    @property
    def compression_rate(self) -> float:
        """Verbose-JSON bytes over stored compressed bytes (paper: 10.06)."""
        if self.compressed_bytes == 0:
            return 0.0
        return self.verbose_bytes / self.compressed_bytes

    @property
    def fresh_fraction(self) -> float:
        """Share of samples first submitted inside the window (paper: 91.76 %)."""
        if self.total_samples == 0:
            return 0.0
        return self.fresh_samples / self.total_samples


def compute_store_stats(store) -> StoreStats:
    """Build :class:`StoreStats` from a report store.

    Accepts any object with the ReportStore accounting surface (``shards``,
    ``sample_count``, ``fresh_sample_count``).
    """
    months = []
    total_reports = 0
    verbose = 0
    compressed = 0
    for month in range(COLLECTION_MONTHS):
        shard = store.shards.get(month)
        if shard is None:
            months.append(MonthStats(month, month_label(month), 0, 0, 0))
            continue
        months.append(
            MonthStats(
                month=month,
                label=month_label(month),
                report_count=shard.report_count,
                verbose_bytes=shard.verbose_bytes,
                compressed_bytes=shard.compressed_bytes,
            )
        )
        total_reports += shard.report_count
        verbose += shard.verbose_bytes
        compressed += shard.compressed_bytes
    return StoreStats(
        months=tuple(months),
        total_reports=total_reports,
        total_samples=store.sample_count,
        fresh_samples=store.fresh_sample_count,
        verbose_bytes=verbose,
        compressed_bytes=compressed,
    )
