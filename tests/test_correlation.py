"""Unit tests for engine correlation analysis (repro.core.correlation)."""

import numpy as np
import pytest

from repro.core.correlation import (
    build_result_matrix,
    correlation_analysis,
    per_type_analyses,
)
from repro.errors import InsufficientDataError

from conftest import make_report

NAMES = ("leader", "copier", "indep", "noisy")


def _reports(n=200, copy_fidelity=1.0, seed=0, file_type="TXT"):
    rng = np.random.default_rng(seed)
    reports = []
    for i in range(n):
        leader = int(rng.random() < 0.3)
        copier = leader if rng.random() < copy_fidelity else 1 - leader
        indep = int(rng.random() < 0.3)
        noisy = int(rng.random() < 0.5)
        reports.append(make_report(
            sha=f"{i:064x}", scan_time=i * 10, file_type=file_type,
            labels=[leader, copier, indep, noisy],
            versions=[1, 1, 1, 1],
        ))
    return reports


class TestResultMatrix:
    def test_values_in_paper_alphabet(self):
        reports = [make_report(labels=[1, 0, -1, 0, 1])]
        matrix = build_result_matrix(reports, 5)
        assert matrix.tolist() == [[1, 0, -1, 0, 1]]

    def test_row_per_scan(self):
        matrix = build_result_matrix(_reports(50), 4)
        assert matrix.shape == (50, 4)

    def test_empty_rejected(self):
        with pytest.raises(InsufficientDataError):
            build_result_matrix([], 4)

    def test_engine_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            build_result_matrix(_reports(5), 9)


class TestAnalysis:
    def test_copier_pair_is_strong(self):
        analysis = correlation_analysis(_reports(400), NAMES)
        assert analysis.rho_of("leader", "copier") > 0.95
        assert ("leader", "copier") in {
            (a, b) for a, b, _ in analysis.strong_pairs()
        }

    def test_independent_pair_is_weak(self):
        analysis = correlation_analysis(_reports(400), NAMES)
        assert abs(analysis.rho_of("leader", "indep")) < 0.3

    def test_imperfect_copier_below_perfect(self):
        perfect = correlation_analysis(_reports(400, 1.0), NAMES)
        sloppy = correlation_analysis(_reports(400, 0.8, seed=1), NAMES)
        assert (sloppy.rho_of("leader", "copier")
                < perfect.rho_of("leader", "copier"))

    def test_strong_pairs_sorted_desc(self):
        analysis = correlation_analysis(_reports(400), NAMES, threshold=0.1)
        values = [v for _, _, v in analysis.strong_pairs()]
        assert values == sorted(values, reverse=True)

    def test_groups_are_connected_components(self):
        analysis = correlation_analysis(_reports(400), NAMES)
        groups = analysis.groups()
        assert ["copier", "leader"] in groups

    def test_involved_engines(self):
        analysis = correlation_analysis(_reports(400), NAMES)
        assert analysis.involved_engines() >= {"leader", "copier"}

    def test_graph_carries_rho(self):
        analysis = correlation_analysis(_reports(400), NAMES)
        graph = analysis.graph()
        assert graph["leader"]["copier"]["rho"] > 0.95

    def test_n_scans_recorded(self):
        analysis = correlation_analysis(_reports(123), NAMES)
        assert analysis.n_scans == 123


class TestPerType:
    def test_groups_by_type_with_min_scans(self):
        reports = (_reports(100, file_type="TXT")
                   + _reports(10, file_type="PDF", seed=3))
        out = per_type_analyses(reports, NAMES, ["TXT", "PDF"],
                                min_scans=50)
        assert "TXT" in out
        assert "PDF" not in out  # only 10 scans

    def test_unrequested_types_excluded(self):
        reports = _reports(100, file_type="TXT")
        out = per_type_analyses(reports, NAMES, ["PDF"], min_scans=1)
        assert out == {}
