"""Pluggable executors for the elastic parallel layer.

Three kinds, one protocol (:class:`~repro.parallel.executors.base.Executor`):

==============  ==========================================================
kind            what it is
==============  ==========================================================
``in-process``  synchronous execution in the driver; zero processes
``fork``        forked worker pool (cheap bring-up; POSIX only)
``spawn``       spawned worker pool (fresh interpreters; works everywhere)
==============  ==========================================================

``auto`` resolves to ``fork`` where available and ``spawn`` otherwise;
:func:`make_executor` is the factory the runner uses.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.parallel.executors.base import (
    CHAOS_EXIT_CODE,
    Claimed,
    Completed,
    Executor,
    Failed,
    Heartbeat,
    InProcessExecutor,
    Message,
    ShardTask,
    execute_task,
)
from repro.parallel.executors.pool import ProcessExecutor, fork_available

#: Accepted values for the ``--executor`` CLI flag / ``kind`` policy field.
EXECUTOR_KINDS = ("auto", "in-process", "fork", "spawn")


def resolve_kind(kind: str) -> str:
    """Map an executor kind request to a concrete kind.

    ``auto`` prefers fork (no re-import, no re-pickle of the config) and
    falls back to spawn on platforms without it.  An *explicit* request
    for an unavailable kind is a :class:`~repro.errors.ConfigError` —
    silently substituting a different process model would make "it
    worked on my machine" bugs invisible.
    """
    if kind not in EXECUTOR_KINDS:
        raise ConfigError(
            f"unknown executor kind {kind!r} (expected one of "
            f"{', '.join(EXECUTOR_KINDS)})")
    if kind == "auto":
        return "fork" if fork_available() else "spawn"
    if kind == "fork" and not fork_available():
        raise ConfigError("executor kind 'fork' is unavailable on this "
                          "platform; use 'spawn' or 'auto'")
    return kind


def make_executor(kind: str,
                  heartbeat_interval: float | None = None) -> Executor:
    """Build the executor for a (concrete or ``auto``) kind."""
    concrete = resolve_kind(kind)
    if concrete == "in-process":
        return InProcessExecutor(heartbeat_interval=heartbeat_interval)
    return ProcessExecutor(concrete, heartbeat_interval=heartbeat_interval)


__all__ = [
    "CHAOS_EXIT_CODE",
    "Claimed",
    "Completed",
    "EXECUTOR_KINDS",
    "Executor",
    "Failed",
    "Heartbeat",
    "InProcessExecutor",
    "Message",
    "ProcessExecutor",
    "ShardTask",
    "execute_task",
    "fork_available",
    "make_executor",
    "resolve_kind",
]
