"""Empirical cumulative distribution functions.

Several of the paper's figures are CDFs with specific quoted landmarks —
Figure 1 ("88.81 % of samples have only one report"), Figure 3 ("66.36 %
of stable samples have AV-Rank 0"), Figure 5 ("35.49 % of δ are 0").
:class:`EmpiricalCDF` supports both directions used in those quotes:
``at(x)`` (fraction ≤ x) and ``quantile(p)`` (smallest x with CDF ≥ p).
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator

from repro.errors import InsufficientDataError


class EmpiricalCDF:
    """The right-continuous empirical CDF of a finite dataset."""

    def __init__(self, values: Iterable[float]) -> None:
        self._sorted = sorted(values)
        if not self._sorted:
            raise InsufficientDataError(1, 0, "values for CDF")
        self.n = len(self._sorted)

    def at(self, x: float) -> float:
        """P(X <= x)."""
        return bisect_right(self._sorted, x) / self.n

    def below(self, x: float) -> float:
        """P(X < x) — the paper sometimes quotes strict landmarks
        ("99.90 % of the samples have less than 20 scan reports")."""
        return bisect_left(self._sorted, x) / self.n

    def quantile(self, p: float) -> float:
        """Smallest x with CDF(x) >= p (inverse CDF, right-continuous)."""
        if not 0.0 < p <= 1.0:
            raise ValueError(f"p must be in (0,1], got {p}")
        # Ceiling of p*n, clamped to the last index.
        index = min(self.n - 1, max(0, math.ceil(p * self.n) - 1))
        return float(self._sorted[index])

    @property
    def min(self) -> float:
        return float(self._sorted[0])

    @property
    def max(self) -> float:
        return float(self._sorted[-1])

    def support(self) -> list[float]:
        """Distinct values in ascending order."""
        out: list[float] = []
        for v in self._sorted:
            if not out or v != out[-1]:
                out.append(v)
        return out

    def steps(self) -> Iterator[tuple[float, float]]:
        """(value, CDF(value)) at each distinct value — a plottable series."""
        seen = 0
        previous: float | None = None
        for v in self._sorted:
            if previous is not None and v != previous:
                yield previous, seen / self.n
            seen += 1
            previous = v
        if previous is not None:
            yield previous, 1.0

    def table(self, points: Iterable[float]) -> list[tuple[float, float]]:
        """CDF evaluated at the given points (for rendered figures)."""
        return [(x, self.at(x)) for x in points]
