"""Store retrieval layer: streaming memory bound and cache behaviour.

The write-aware retrieval rebuild replaced "materialise every report in
one dict" grouping with a block-order streaming pass whose resident set
is bounded by the samples *live* across the current block window.  This
bench demonstrates the bound directly: a feed-ordered workload of waves
of interleaved samples is streamed end to end, and the measured
high-water mark of resident reports is checked against

    live-window reports (wave size × scans each) + one block of records

— a constant in store size — while the old approach held every report
(`report_count`) at the yield point.  It also exercises the random-access
path to report the bytes-bounded block cache's hit rate.
"""

from __future__ import annotations

import random

from repro.store.reportstore import ReportStore
from repro.vt.reports import ScanReport, encode_labels
from repro.vt.samples import sha256_of

from conftest import run_once, say

#: Workload shape: samples arrive in waves; scans of one wave interleave.
N_SAMPLES = 5_000
SCANS_EACH = 4
WAVE = 50
BLOCK_RECORDS = 256
_N_ENGINES = 70


def _report(sha: str, when: int, rank: int) -> ScanReport:
    labels = [1] * rank + [0] * (_N_ENGINES - rank)
    return ScanReport(
        sha256=sha,
        file_type="Win32 EXE",
        scan_time=when,
        positives=rank,
        total=_N_ENGINES,
        labels=encode_labels(labels),
        versions=tuple([1] * _N_ENGINES),
        first_submission_date=0,
        last_submission_date=0,
        last_analysis_date=when,
        times_submitted=1,
    )


def _build_store() -> ReportStore:
    store = ReportStore(block_records=BLOCK_RECORDS)
    events = []
    for i in range(N_SAMPLES):
        sha = sha256_of(f"stream{i}")
        wave_start = (i // WAVE) * (WAVE * SCANS_EACH)
        for k in range(SCANS_EACH):
            when = wave_start + k * WAVE + (i % WAVE)
            events.append((when, sha))
    events.sort()
    for when, sha in events:
        store.ingest(_report(sha, when, rank=(when % 30)))
    store.close()
    return store


def test_streaming_memory_bound(benchmark):
    store = _build_store()

    def stream():
        count = 0
        for _, reports in store.iter_sample_reports():
            count += len(reports)
        return count

    streamed = run_once(benchmark, stream)
    stats = store.cache_stats()
    total = store.report_count
    bound = WAVE * SCANS_EACH + BLOCK_RECORDS

    # Random access re-reads over a shuffled sample order, twice, to
    # exercise the bytes-bounded LRU.
    shas = [sha256_of(f"stream{i}") for i in range(N_SAMPLES)]
    random.Random(7).shuffle(shas)
    for sha in shas * 2:
        store.reports_for(sha)
    cache = store.cache_stats()

    say()
    say("Store streaming / cache bench "
        f"(n={total:,} reports, {N_SAMPLES:,} samples, "
        f"block={BLOCK_RECORDS}, wave={WAVE}x{SCANS_EACH})")
    say(f"  peak resident reports : {stats.peak_stream_reports:7,} "
        f"(bound {bound:,}; dict grouping held {total:,})")
    say(f"  residency vs store    : {stats.peak_stream_reports / total:7.1%}")
    say(f"  cache hit rate        : {cache.hit_rate:7.1%} "
        f"({cache.hits:,} hits / {cache.lookups:,} lookups)")
    say(f"  cache resident        : {cache.bytes_resident / 1e6:7.2f} MB "
        f"of {cache.bytes_limit / 1e6:.0f} MB, "
        f"{cache.evictions:,} evictions")

    assert streamed == total
    # The memory bound: block size x live samples per window, not store size.
    assert stats.peak_stream_reports <= bound
    assert stats.peak_stream_reports < total / 10
    # The re-read pass must be mostly cache hits.
    assert cache.hit_rate > 0.5
