"""Tests for the persistent point-lookup index (repro.store.index).

Covers the codec round-trip, the v2/v3 file formats, the v1 lazy-rebuild
fallback, and the regression this layer exists for: single-hash lookups
must decode only the blocks holding that sample's reports — never scan
the store.  Every store-backed test runs against both block layouts via
the ``store_block_format`` fixture (tests/conftest.py).
"""

import pytest

from repro.errors import ConfigError, CorruptRecordError, UnknownSampleError
from repro.store import ReportQuery, ReportStore, decode_index, encode_index
from repro.store.index import latest_entry, sample_ranks
from tests.conftest import make_report, make_sha


def _spread_store(block_records: int = 4, n_samples: int = 12,
                  reports_per_sample: int = 3,
                  block_format: str = "columnar") -> ReportStore:
    """A store whose samples spread across many blocks and two months."""
    store = ReportStore(block_records=block_records,
                        block_format=block_format)
    shas = [make_sha(f"s{i}") for i in range(n_samples)]
    for rep in range(reports_per_sample):
        for i, sha in enumerate(shas):
            # Second half of the reports land one month later.
            base = 0 if rep < reports_per_sample // 2 else 44_640
            store.ingest(make_report(
                sha=sha, scan_time=base + rep * 1000 + i))
    store.close()
    return store


@pytest.fixture()
def spread_store(store_block_format) -> ReportStore:
    return _spread_store(block_format=store_block_format)


class TestCodec:
    def test_round_trip_preserves_entries_meta_and_order(self):
        index = {
            make_sha("a"): [(0, 0, 0, 10), (0, 1, 3, 25), (1, 0, 0, 99)],
            make_sha("b"): [(0, 0, 1, 11)],
        }
        meta = {
            make_sha("a"): ("Win32 EXE", True),
            make_sha("b"): ("PDF", False),
        }
        decoded_index, decoded_meta = decode_index(encode_index(index, meta))
        assert decoded_index == index
        assert decoded_meta == meta
        assert list(decoded_index) == list(index)  # first-ingest order

    def test_empty_index_round_trips(self):
        assert decode_index(encode_index({}, {})) == ({}, {})

    def test_negative_month_survives(self):
        # Months are signed (pre-window scan times index below zero).
        index = {make_sha("a"): [(-3, 0, 0, -5)]}
        meta = {make_sha("a"): ("TXT", False)}
        assert decode_index(encode_index(index, meta))[0] == index

    def test_garbage_payload_rejected(self):
        with pytest.raises(CorruptRecordError):
            decode_index(b"not zlib at all")

    def test_bad_magic_rejected(self):
        import zlib

        with pytest.raises(CorruptRecordError):
            decode_index(zlib.compress(b"WRONGMAG" + b"\x00" * 16))

    def test_truncation_rejected(self):
        import zlib

        payload = encode_index(
            {make_sha("a"): [(0, 0, 0, 1)]}, {make_sha("a"): ("TXT", True)})
        raw = zlib.decompress(payload)
        with pytest.raises(CorruptRecordError):
            decode_index(zlib.compress(raw[:-4]))

    def test_trailing_bytes_rejected(self):
        import zlib

        payload = encode_index(
            {make_sha("a"): [(0, 0, 0, 1)]}, {make_sha("a"): ("TXT", True)})
        raw = zlib.decompress(payload)
        with pytest.raises(CorruptRecordError):
            decode_index(zlib.compress(raw + b"\x00\x00"))

    def test_sample_ranks_follow_insertion_order(self):
        index = {make_sha("b"): [(0, 0, 0, 1)],
                 make_sha("a"): [(0, 0, 1, 2)]}
        ranks = sample_ranks(index)
        assert ranks == {make_sha("b"): 0, make_sha("a"): 1}


class TestLatestEntry:
    def test_picks_max_scan_time(self):
        entries = [(0, 0, 0, 10), (0, 1, 0, 99), (0, 2, 0, 50)]
        assert latest_entry(entries) == (0, 1, 0, 99)

    def test_tie_resolves_to_last_ingested(self):
        entries = [(0, 0, 0, 99), (0, 1, 0, 99)]
        assert latest_entry(entries) == (0, 1, 0, 99)


class TestPointLookup:
    def test_latest_report_matches_series_tail(self, spread_store):
        store = spread_store
        for sha in store.samples():
            series = store.report_series(sha)
            latest = store.latest_report(sha)
            assert latest == series[-1]

    def test_latest_report_decodes_exactly_one_block_cold(self, spread_store):
        """The O(1) contract: one point lookup on a cold cache decodes
        one block, regardless of store size (the full-scan bug decoded
        all of them)."""
        store = spread_store
        total_blocks = sum(len(s.blocks) for s in store.shards.values())
        assert total_blocks > 3  # the test is vacuous on a 1-block store
        sha = next(iter(store.samples()))
        store.drop_caches()
        before = store.cache_stats().blocks_decoded
        store.latest_report(sha)
        assert store.cache_stats().blocks_decoded - before == 1

    def test_latest_report_warm_cache_decodes_nothing(self, spread_store):
        store = spread_store
        sha = next(iter(store.samples()))
        store.latest_report(sha)
        before = store.cache_stats().blocks_decoded
        store.latest_report(sha)
        assert store.cache_stats().blocks_decoded == before

    def test_series_decodes_only_the_samples_blocks(self, spread_store):
        store = spread_store
        sha = next(iter(store.samples()))
        distinct_blocks = {
            (month, block) for month, block, _, _ in store._entries(sha)}
        total_blocks = sum(len(s.blocks) for s in store.shards.values())
        assert len(distinct_blocks) < total_blocks
        store.drop_caches()
        before = store.cache_stats().blocks_decoded
        store.report_series(sha)
        decoded = store.cache_stats().blocks_decoded - before
        assert decoded == len(distinct_blocks)

    def test_latest_report_sees_open_buffer(self, store_factory):
        """A point lookup on a live store reaches reports still in the
        unsealed buffer (served live, never cached)."""
        store = store_factory(block_records=64)
        sha = make_sha("live")
        store.ingest(make_report(sha=sha, scan_time=10))
        store.ingest(make_report(sha=sha, scan_time=20))
        assert store.latest_report(sha).scan_time == 20
        assert store.cache_stats().open_reads > 0

    def test_unknown_sample_raises(self, spread_store):
        store = spread_store
        with pytest.raises(UnknownSampleError):
            store.latest_report("0" * 64)
        with pytest.raises(UnknownSampleError):
            store.report_series("0" * 64)


class TestPersistence:
    def test_indexed_round_trip(self, spread_store, tmp_path):
        store = spread_store
        path = tmp_path / "indexed.store"
        store.save(path)
        loaded = ReportStore.load(path)
        assert list(loaded.samples()) == list(store.samples())
        for sha in store.samples():
            assert loaded.report_series(sha) == store.report_series(sha)
            assert loaded.sample_file_type(sha) == store.sample_file_type(sha)
        assert loaded.digest() == store.digest()

    def test_indexed_load_decodes_no_blocks(self, spread_store, tmp_path):
        store = spread_store
        path = tmp_path / "indexed.store"
        store.save(path)
        loaded = ReportStore.load(path)
        # Metadata access and a sample listing must not touch blocks.
        assert loaded.sample_count == store.sample_count
        assert loaded.cache_stats().blocks_decoded == \
            store.cache_stats().blocks_decoded

    def test_v1_file_still_loads_with_lazy_rebuild(self, spread_store,
                                                   tmp_path):
        store = spread_store
        path = tmp_path / "v1.store"
        store.save(path, include_index=False)
        loaded = ReportStore.load(path)
        assert not loaded._index_ready
        # First per-sample access triggers the rebuild; results match.
        assert list(loaded.samples()) == list(store.samples())
        assert loaded._index_ready
        for sha in store.samples():
            assert loaded.report_series(sha) == store.report_series(sha)

    def test_v1_header_has_no_index_section(self, spread_store, tmp_path):
        import json
        import struct

        store = spread_store
        v1 = tmp_path / "v1.store"
        indexed = tmp_path / "indexed.store"
        store.save(v1, include_index=False)
        store.save(indexed)

        def header_of(path):
            blob = path.read_bytes()
            (hlen,) = struct.unpack_from("<I", blob, 8)
            return json.loads(blob[12:12 + hlen])

        h1, h2 = header_of(v1), header_of(indexed)
        assert h1["version"] == 1 and "index" not in h1
        # A default save carries the layout's native version: row → v2,
        # columnar → v3 — both with the embedded index.
        expected = 3 if store.block_format == "columnar" else 2
        assert h2["version"] == expected and h2["index"]["samples"] == \
            store.sample_count

    def test_corrupt_index_section_rejected(self, spread_store, tmp_path):
        import json
        import struct

        store = spread_store
        path = tmp_path / "indexed.store"
        store.save(path)
        blob = bytearray(path.read_bytes())
        (hlen,) = struct.unpack_from("<I", blob, 8)
        header = json.loads(bytes(blob[12:12 + hlen]))
        # Flip a byte in the middle of the index payload.
        idx_start = 12 + hlen
        blob[idx_start + header["index"]["bytes"] // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CorruptRecordError):
            ReportStore.load(path)

    def test_reopened_store_accepts_new_ingest(self, spread_store, tmp_path):
        store = spread_store
        path = tmp_path / "indexed.store"
        store.save(path)
        reopened = ReportStore.load(path, reopen=True)
        sha = next(iter(reopened.samples()))
        latest = reopened.latest_report(sha).scan_time
        reopened.ingest(make_report(sha=sha, scan_time=latest + 777))
        assert reopened.latest_report(sha).scan_time == latest + 777


class TestQueryRouting:
    def test_samples_only_routes_through_index(self, spread_store):
        store = spread_store
        shas = list(store.samples())[:2]
        store.drop_caches()
        before = store.cache_stats().blocks_decoded
        result = dict(ReportQuery(store).samples_only(*shas).sample_series())
        decoded = store.cache_stats().blocks_decoded - before
        total_blocks = sum(len(s.blocks) for s in store.shards.values())
        assert decoded < total_blocks
        assert set(result) == set(shas)
        for sha in shas:
            assert result[sha] == store.report_series(sha)

    def test_samples_only_matches_full_scan(self, spread_store):
        store = spread_store
        sha = list(store.samples())[3]
        restricted = list(ReportQuery(store).samples_only(sha))
        full = [r for r in ReportQuery(store) if r.sha256 == sha]
        assert sorted(r.scan_time for r in restricted) == \
            sorted(r.scan_time for r in full)

    def test_samples_only_preserves_request_order(self, spread_store):
        store = spread_store
        shas = list(store.samples())
        wanted = [shas[5], shas[1], shas[5], shas[3]]
        got = [sha for sha, _
               in ReportQuery(store).samples_only(*wanted).sample_series()]
        assert got == [shas[5], shas[1], shas[3]]  # dedup, order kept

    def test_unknown_hash_matches_nothing(self, spread_store):
        store = spread_store
        q = ReportQuery(store).samples_only("0" * 64)
        assert list(q) == []
        assert q.count() == 0

    def test_restriction_intersects(self, spread_store):
        store = spread_store
        shas = list(store.samples())
        q = ReportQuery(store).samples_only(*shas[:4])
        narrowed = q.samples_only(shas[2], shas[9])
        assert [s for s, _ in narrowed.sample_series()] == [shas[2]]

    def test_empty_restriction_rejected(self, spread_store):
        store = spread_store
        with pytest.raises(ConfigError):
            ReportQuery(store).samples_only()

    def test_predicates_still_apply(self, spread_store):
        store = spread_store
        sha = next(iter(store.samples()))
        series = store.report_series(sha)
        cutoff = series[-1].scan_time
        q = (ReportQuery(store).samples_only(sha)
             .where(lambda r: r.scan_time >= cutoff))
        assert [r.scan_time for r in q] == [cutoff]
