"""Scenario driver for the resilient collector.

:func:`run_collection` is the chaos-capable sibling of
:func:`repro.analysis.experiment.run_experiment`: it generates the same
deterministic population and replays the same submission/rescan events,
but consumes the feed through a :class:`~repro.collect.collector.FeedCollector`
stepping minute by minute — optionally with a
:class:`~repro.faults.FaultPlan` injecting failures along the way.

Crash/resume is modelled faithfully: ``stop_at`` kills a run after a
given minute *without* flushing (only what the collector persisted on
its own cadence survives), and a second call with ``resume_from`` loads
the store snapshot + checkpoint, deterministically re-executes the
simulation up to the resume point with the feed detached (the service is
server-side state a collector crash never touches), and lets the
collector detect and backfill whatever the dead process lost.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.collect.backoff import BackoffPolicy
from repro.collect.checkpoint import load_checkpoint
from repro.collect.collector import CollectorStats, FeedCollector
from repro.errors import CheckpointError
from repro.faults import ChaosFeed, FaultPlan, chaos_wrap
from repro.store.reportstore import ReportStore
from repro.synth.population import PopulationGenerator
from repro.synth.scenario import ScenarioConfig
from repro.vt.api import VTClient
from repro.vt.engines import EngineFleet, default_fleet
from repro.vt.feed import (
    DEFAULT_ARCHIVE_RETENTION_MINUTES,
    FeedArchive,
    PremiumFeed,
)
from repro.vt.service import VirusTotalService

#: Default checkpoint cadence: once per simulated day.
DEFAULT_PERSIST_EVERY = 24 * 60


@dataclass(frozen=True)
class CollectionPaths:
    """Well-known file layout inside a collection working directory."""

    root: Path

    @property
    def store(self) -> Path:
        return self.root / "store.rpr"

    @property
    def checkpoint(self) -> Path:
        return self.root / "checkpoint.json"

    @property
    def deadletters(self) -> Path:
        return self.root / "deadletters.jsonl"


@dataclass
class CollectionResult:
    """Everything a test or analysis needs from one collection run."""

    config: ScenarioConfig
    plan: FaultPlan | None
    service: VirusTotalService
    archive: FeedArchive
    store: ReportStore
    collector: FeedCollector
    chaos_feed: ChaosFeed | None
    crashed: bool
    paths: CollectionPaths | None

    @property
    def stats(self) -> CollectorStats:
        return self.collector.stats()


def collection_paths(out_dir: str | Path) -> CollectionPaths:
    return CollectionPaths(Path(out_dir))


def auto_resume_minute(out_dir: str | Path) -> int:
    """The minute a crashed run in ``out_dir`` should resume from."""
    paths = collection_paths(out_dir)
    if not paths.checkpoint.exists():
        raise CheckpointError(f"no checkpoint to resume from in {paths.root}")
    return load_checkpoint(paths.checkpoint).last_minute + 1


def run_collection(
    config: ScenarioConfig,
    *,
    plan: FaultPlan | None = None,
    fleet: EngineFleet | None = None,
    out_dir: str | Path | None = None,
    persist_every: int | None = DEFAULT_PERSIST_EVERY,
    resume_from: int | None = None,
    stop_at: int | None = None,
    until_minute: int | None = None,
    archive_retention: int = DEFAULT_ARCHIVE_RETENTION_MINUTES,
    backoff: BackoffPolicy | None = None,
    metrics=None,
) -> CollectionResult:
    """Run one scenario through the resilient collection pipeline.

    ``plan`` defaults to ``config.fault_plan``; ``None``/disabled means
    the chaos layer is bypassed entirely (the collector drives the raw
    objects).  ``until_minute`` truncates the simulation horizon — handy
    for tests that only need the first weeks of the window.  ``stop_at``
    simulates a crash: the run returns (``crashed=True``) right after
    stepping that minute, without the final backfill/persist.
    ``resume_from`` continues a crashed run from its ``out_dir``; use
    :func:`auto_resume_minute` to pick the minute after the checkpoint.
    ``metrics`` threads one registry through the service, store,
    collector and chaos wrappers.
    """
    if plan is None:
        plan = config.fault_plan
    paths = collection_paths(out_dir) if out_dir is not None else None
    if resume_from is not None:
        if paths is None:
            raise CheckpointError("resume requires out_dir")
        if not paths.checkpoint.exists() or not paths.store.exists():
            raise CheckpointError(
                f"cannot resume: missing checkpoint or store snapshot "
                f"in {paths.root}"
            )
    elif paths is not None:
        # A fresh run owns its working directory: stale state from a
        # previous run must not be mistaken for something to resume.
        paths.root.mkdir(parents=True, exist_ok=True)
        paths.checkpoint.unlink(missing_ok=True)
        paths.deadletters.unlink(missing_ok=True)

    if fleet is None:
        fleet = default_fleet(config.seed)
    service = VirusTotalService(fleet=fleet, params=config.behavior,
                                seed=config.seed, metrics=metrics)
    archive = FeedArchive(service, retention_minutes=archive_retention)
    feed = PremiumFeed(service)
    if resume_from is not None:
        store = ReportStore.load(paths.store, reopen=True, metrics=metrics)
    else:
        store_kwargs = {"block_records": config.block_records,
                        "block_format": config.block_format}
        if config.store_cache_bytes is not None:
            store_kwargs["cache_bytes"] = config.store_cache_bytes
        store = ReportStore(metrics=metrics, **store_kwargs)
    client = VTClient(service, premium=True, archive=archive)

    try:
        cfeed, cstore, cclient = chaos_wrap(feed, store, client, plan,
                                            metrics=metrics)
        collector = FeedCollector(
            cfeed,
            cstore,
            cclient,
            checkpoint_path=paths.checkpoint if paths else None,
            store_path=paths.store if paths else None,
            deadletter_path=paths.deadletters if paths else None,
            backoff=backoff,
            persist_every=persist_every if paths else None,
            seed=config.seed,
            metrics=metrics,
        )

        # Same deterministic population + event schedule as run_experiment.
        generator = PopulationGenerator(config)
        # Register clones: the service applies the pre-window submission
        # backfill at registration time, and the generator's spec objects
        # stay pristine for any later re-run from the same specs.
        samples: list = []
        events: list[tuple[int, int, int]] = []
        for sample_idx, spec in enumerate(generator):
            sample = spec.sample.clone()
            service.register(sample)
            samples.append(sample)
            for ordinal, when in enumerate(spec.scan_times):
                events.append((when, sample_idx, ordinal))
        events.sort()

        end = (events[-1][0] + 1) if events else 0
        if until_minute is not None:
            end = min(end, until_minute)
        start = resume_from if resume_from is not None else 0

        crashed = False
        archive.attach()
        try:
            idx = 0
            n_events = len(events)
            for minute in range(end):
                if minute == start:
                    # The collector's live subscription begins here; earlier
                    # minutes are re-executed server-side only (resume path).
                    feed.attach()
                while idx < n_events and events[idx][0] == minute:
                    _, sample_idx, ordinal = events[idx]
                    sample = samples[sample_idx]
                    if ordinal == 0 and sample.fresh:
                        service.upload(sample, minute)
                    else:
                        service.rescan(sample.sha256, minute)
                    idx += 1
                if minute >= start:
                    collector.step(minute)
                    if stop_at is not None and minute >= stop_at:
                        crashed = True  # simulated crash: no finalize/flush
                        break
            if not crashed:
                collector.finalize()
        finally:
            feed.detach()
            archive.detach()
    except BaseException:
        # A simulated crash (stop_at) exits normally via `crashed`;
        # a real exception abandons the run, so release the store
        # (resume-loaded or fresh) before propagating.
        store.close()
        raise

    return CollectionResult(
        config=config,
        plan=plan,
        service=service,
        archive=archive,
        store=cstore.wrapped if hasattr(cstore, "wrapped") else cstore,
        collector=collector,
        chaos_feed=cfeed if isinstance(cfeed, ChaosFeed) else None,
        crashed=crashed,
        paths=paths,
    )
