"""Baseline comparison: the Zhu et al. snapshot protocol vs organic data.

The paper positions itself against Zhu et al. (USENIX Sec'20), who built
their dataset by rescanning a fixed PE set daily for a year.  Here both
protocols observe the *same simulated ground truth*: the organic
submission stream on one side, a daily-rescan campaign over a subset of
the same samples on the other.  The snapshot protocol should see far
more of each sample's trajectory — more flips, more captured transients
(hazards) — which is the paper's explanation for the disagreement.
"""

from __future__ import annotations

from functools import partial

from repro.analysis.comparison import compare_protocols
from repro.synth.scenario import dynamics_scenario

from conftest import run_once, say


def test_baseline_snapshot_protocol(benchmark):
    comparison = run_once(
        benchmark,
        partial(
            compare_protocols,
            dynamics_scenario(2_000, seed=88),
            snapshot_samples=250,
            cadence_days=1.0,
            duration_days=120.0,
        ),
    )
    say()
    say("Baseline: organic observation vs Zhu-style daily snapshots")
    say(comparison.render())

    organic = comparison.organic
    snapshot = comparison.snapshot

    # The snapshot protocol watches every sample far more often...
    assert (snapshot.n_reports / snapshot.n_samples
            > 10 * organic.n_reports / organic.n_samples)
    # ...so it sees more of the trajectory: more flips per sample and
    # more captured transient episodes.
    assert snapshot.flips_per_sample > organic.flips_per_sample
    assert (snapshot.hazards_per_1000_samples
            >= organic.hazards_per_1000_samples)
    # And almost every snapshot sample shows *some* dynamics.
    assert snapshot.dynamic_fraction > organic.dynamic_fraction
