"""Tests for seed sweeps (repro.analysis.sweeps)."""

import pytest

from repro.analysis.sweeps import sweep_seeds
from repro.errors import ConfigError
from repro.synth.scenario import tiny_scenario


@pytest.fixture(scope="module")
def sweep():
    return sweep_seeds(tiny_scenario(350), seeds=(1, 2))


class TestSweep:
    def test_covers_all_calibration_targets(self, sweep):
        assert len(sweep.statistics) >= 14
        assert sweep.seeds == (1, 2)

    def test_values_per_seed(self, sweep):
        for stat in sweep.statistics:
            assert len(stat.values) == 2

    def test_statistic_lookup(self, sweep):
        stat = sweep.statistic("dynamic share of multi-report samples")
        assert stat.section == "Obs 1"
        with pytest.raises(KeyError):
            sweep.statistic("nonsense")

    def test_mean_and_spread(self, sweep):
        stat = sweep.statistics[0]
        assert min(stat.values) <= stat.mean <= max(stat.values)
        assert stat.spread == max(stat.values) - min(stat.values)

    def test_interval_brackets_mean(self, sweep):
        for stat in sweep.statistics:
            assert stat.interval.low <= stat.mean <= stat.interval.high

    def test_render(self, sweep):
        text = sweep.render()
        assert "seed sweep over [1, 2]" in text
        assert "Obs 1" in text

    def test_relative_spread_finite(self, sweep):
        assert 0.0 <= sweep.max_relative_spread() < 10.0

    def test_empty_seeds_rejected(self):
        with pytest.raises(ConfigError):
            sweep_seeds(tiny_scenario(100), seeds=())

    def test_seeds_differ_in_measurements(self, sweep):
        assert any(stat.spread > 0 for stat in sweep.statistics)
