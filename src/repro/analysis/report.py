"""One-shot markdown reproduction report.

:func:`write_report` runs every analysis pipeline over one experiment and
emits a single self-contained markdown document mirroring the paper's
evaluation section: Tables 1-3, Figures 1-12 (as tables/series), the
observations with paper-vs-measured call-outs, and the calibration
grade.  The CLI exposes it as ``repro-vt report``.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import dataset as dataset_mod
from repro.analysis import dynamics as dynamics_mod
from repro.analysis import engines as engines_mod
from repro.analysis import rendering
from repro.analysis import stabilization as stab_mod
from repro.analysis.calibration import calibration_report
from repro.analysis.experiment import ExperimentData
from repro.analysis.windows import gap_growth_curve, window_sensitivity


def _block(text: str) -> str:
    return "```text\n" + text + "\n```\n"


def build_report(data: ExperimentData) -> str:
    """Render the full reproduction report as markdown."""
    series = data.series()
    dataset_s = data.dataset_s
    names = data.engine_names

    sections: list[str] = []
    sections.append(
        "# VirusTotal label-dynamics reproduction report\n\n"
        f"Scenario: seed {data.config.seed}, "
        f"{data.store.sample_count:,} samples, "
        f"{data.store.report_count:,} reports, "
        f"dataset S = {len(dataset_s):,} fresh dynamic samples.\n"
    )

    sections.append("## Dataset overview (§4)\n")
    sections.append(_block(rendering.render_table2(data.store.stats())))
    sections.append(_block(rendering.render_table3(
        dataset_mod.file_type_distribution(data.store))))
    sections.append(_block(rendering.render_fig1(
        dataset_mod.ReportsPerSample.from_store(data.store))))

    sections.append("## Label dynamics (§5)\n")
    sections.append(_block(rendering.render_fig2(
        dynamics_mod.stable_dynamic_split(series))))
    sections.append(_block(rendering.render_fig3_fig4(
        dynamics_mod.stable_sample_profile(series))))
    sections.append(_block(rendering.render_fig5(
        dynamics_mod.delta_distributions(dataset_s))))
    sections.append(_block(rendering.render_fig6(
        dynamics_mod.per_type_dynamics(dataset_s))))
    sections.append(_block(rendering.render_fig7(
        dynamics_mod.interval_effect(dataset_s))))
    sections.append(_block(rendering.render_fig8(
        dynamics_mod.threshold_impact(dataset_s))))

    sections.append("## Stabilisation (§6)\n")
    sections.append(_block(rendering.render_obs8(
        stab_mod.avrank_stabilization_profile(dataset_s))))
    sections.append(_block(rendering.render_fig9(
        stab_mod.label_stabilization_profile(dataset_s))))

    sections.append("## Individual engines (§7)\n")
    stability = engines_mod.engine_stability(data.store, names)
    sections.append(_block(rendering.render_fig10(
        stability.flips, engines_mod.APPENDIX_FILE_TYPES)))
    correlation = engines_mod.engine_correlation(data.store, names)
    sections.append(_block(rendering.render_fig11(correlation.overall)))
    sections.append(_block(rendering.render_group_tables(
        correlation.per_type)))

    sections.append("## Measurement-window sensitivity (§8)\n")
    window = window_sensitivity(dataset_s, first_month_only=False)
    curve = gap_growth_curve(dataset_s, first_month_only=False)
    window_lines = [
        f"gap grew from 30d to 90d window for "
        f"{window.grew_fraction:.1%} of samples (paper: 8.6% for 1->3 "
        "months)",
        "mean measurable gap by window: "
        + ", ".join(f"{w:.0f}d={g:.2f}" for w, g in curve),
    ]
    sections.append(_block("\n".join(window_lines)))

    sections.append("## Calibration vs paper\n")
    sections.append(_block(calibration_report(data).render()))
    return "\n".join(sections)


def write_report(data: ExperimentData, path: str | Path) -> Path:
    """Build the report and write it to ``path``; returns the path."""
    path = Path(path)
    path.write_text(build_report(data), encoding="utf-8")
    return path
