"""ASCII rendering of reproduced tables and figures.

The benchmark harness prints the same rows/series the paper reports;
this module owns all formatting so benches and the CLI stay tiny.
Numbers are formatted to the paper's precision where it quotes one.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.analysis.dataset import FileTypeDistribution, ReportsPerSample
from repro.analysis.dynamics import (
    DeltaDistributions,
    IntervalEffect,
    PerTypeDynamics,
    StableDynamicSplit,
    StableSampleProfile,
    ThresholdImpact,
)
from repro.analysis.stabilization import (
    AVRankStabilizationProfile,
    LabelStabilizationProfile,
)
from repro.core.flips import FlipStats
from repro.core.correlation import CorrelationAnalysis
from repro.stats.cdf import EmpiricalCDF
from repro.store.stats import StoreStats


def ascii_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render a fixed-width table with a header rule."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in materialised)
    return "\n".join(lines)


def pct(value: float, digits: int = 2) -> str:
    """Format a fraction as the paper's percent notation."""
    return f"{100.0 * value:.{digits}f}%"


def sparkline(values: Sequence[float], width: int = 50) -> str:
    """A coarse one-line chart for CDFs and gray curves."""
    if not values:
        return ""
    blocks = " .:-=+*#%@"
    lo = min(values)
    hi = max(values)
    span = (hi - lo) or 1.0
    step = max(1, len(values) // width)
    picked = values[::step][:width]
    return "".join(
        blocks[min(len(blocks) - 1,
                   int((v - lo) / span * (len(blocks) - 1)))]
        for v in picked
    )


def render_cdf(cdf: EmpiricalCDF, points: Sequence[float], title: str) -> str:
    """A CDF as a value/percentile table plus sparkline."""
    rows = [(f"<= {x:g}", pct(cdf.at(x))) for x in points]
    body = ascii_table(["value", "CDF"], rows)
    curve = sparkline([cdf.at(x) for x in points])
    return f"{title}\n{body}\n[{curve}]"


# ---------------------------------------------------------------------------
# Per-experiment renderers
# ---------------------------------------------------------------------------


def render_table2(stats: StoreStats) -> str:
    rows = [
        (m.label + " Reports", f"{m.report_count:,}", f"{m.verbose_gb:.3f} GB")
        for m in stats.months
    ]
    rows.append(("Total # Reports", f"{stats.total_reports:,}",
                 f"{stats.verbose_bytes / 1e9:.3f} GB"))
    rows.append(("Total # Samples", f"{stats.total_samples:,}", "-"))
    footer = (
        f"fresh samples: {pct(stats.fresh_fraction)} (paper: 91.76%) | "
        f"compression rate: {stats.compression_rate:.2f}x (paper: 10.06x)"
    )
    return ascii_table(["Month", "Count", "Size"], rows) + "\n" + footer


def render_table3(dist: FileTypeDistribution, top: int = 20) -> str:
    rows = [
        (row.file_type, f"{row.samples:,}", pct(row.sample_share, 4),
         f"{row.reports:,}", pct(row.report_share, 4))
        for row in dist.top(top)
    ]
    rows.append(("Total", f"{dist.total_samples:,}", "100%",
                 f"{dist.total_reports:,}", "100%"))
    return ascii_table(
        ["File Type", "# Samples", "% Samples", "# Reports", "% Reports"],
        rows,
    )


def render_fig1(result: ReportsPerSample) -> str:
    lines = [
        "Figure 1: CDF of the number of reports per sample",
        f"  samples with one report : {pct(result.single_report_fraction)}"
        "  (paper: 88.81%)",
        f"  samples with < 6 reports: {pct(result.under_6_fraction)}"
        "  (paper: 99.10%)",
        f"  samples with < 20 reports: {pct(result.under_20_fraction)}"
        "  (paper: 99.90%)",
        f"  max reports for one sample: {result.max_reports:,}"
        "  (paper: 64,168)",
    ]
    return "\n".join(lines)


def render_fig2(split: StableDynamicSplit) -> str:
    return "\n".join([
        "Figure 2 / Observation 1: stable vs dynamic samples",
        f"  multi-report samples: {split.n_multi:,}",
        f"  stable : {split.n_stable:,} ({pct(1 - split.dynamic_fraction)})"
        "  (paper: 49.90%)",
        f"  dynamic: {split.n_dynamic:,} ({pct(split.dynamic_fraction)})"
        "  (paper: 50.10%)",
        f"  two-report share, stable : {pct(split.stable_two_report_fraction)}"
        "  (paper: 67.09%)",
        f"  two-report share, dynamic: {pct(split.dynamic_two_report_fraction)}"
        "  (paper: 71.30%)",
    ])


def render_fig3_fig4(profile: StableSampleProfile) -> str:
    lines = [
        "Figure 3 / Observation 2: AV-Ranks of stable samples",
        f"  AV-Rank = 0 : {pct(profile.rank_zero_fraction)}  (paper: 66.36%)",
        f"  AV-Rank <= 5: {pct(profile.rank_at_most_5_fraction)}"
        "  (paper: >80%)",
        f"  median stable span: {profile.median_span_days:.1f} days"
        "  (paper: 17 days)",
        f"  benign mean span  : {profile.benign_mean_span_days:.2f} days"
        "  (paper: 20.34 days)",
        "Figure 4: stable time span by AV-Rank "
        "(rank: mean days / median days)",
    ]
    for rank in sorted(profile.span_by_rank):
        box = profile.span_by_rank[rank]
        label = f"{rank}" if rank < 10 else f"{rank}+"
        lines.append(f"  rank {label:>3}: {box.mean:6.2f} / {box.median:6.2f}"
                     f"   (n={box.count})")
    return "\n".join(lines)


def render_fig5(dist: DeltaDistributions) -> str:
    return "\n".join([
        "Figure 5 / Observation 3: delta distributions over S",
        f"  adjacent delta == 0: {pct(dist.adjacent_zero_fraction)}"
        "  (paper: 35.49%)",
        f"  overall Delta > 2  : {pct(dist.overall_above_2_fraction)}"
        "  (paper: ~50%)",
        f"  overall Delta <= 11: {pct(dist.overall_within_11_fraction)}"
        "  (paper: ~90%)",
    ])


def render_fig6(dynamics: PerTypeDynamics) -> str:
    rows = []
    for ftype, _ in dynamics.ranked_by_adjacent_mean():
        box_a = dynamics.adjacent[ftype]
        box_o = dynamics.overall[ftype]
        rows.append((ftype, f"{box_a.mean:.2f}", f"{box_a.median:.1f}",
                     f"{box_o.mean:.2f}", f"{box_o.median:.1f}"))
    return ("Figure 6 / Observation 4: per-type dynamics "
            "(paper: DLL tops delta, EXE tops Delta, JSON/JPEG lowest)\n"
            + ascii_table(
                ["File Type", "d mean", "d median", "D mean", "D median"],
                rows))


def render_fig7(effect: IntervalEffect) -> str:
    lines = [
        "Figure 7 / Observation 5: AV-Rank difference vs scan interval",
        f"  pairs analysed: {len(effect.pairs):,} | "
        f"max interval {effect.max_interval_days:.0f} days (paper: 418)",
        f"  Spearman rho = {effect.correlation.rho:.4f} "
        f"(paper: 0.9181), p = {effect.correlation.p_value:.3g}",
        "  interval bucket (days): mean diff / median diff",
    ]
    for bucket, box in effect.binned_boxes.items():
        lines.append(
            f"  {bucket * 30:>4}-{bucket * 30 + 29:<4}: "
            f"{box.mean:6.2f} / {box.median:6.2f}  (n={box.count})"
        )
    return "\n".join(lines)


def render_fig8(impact: ThresholdImpact) -> str:
    rows = []
    for overall, pe in zip(impact.overall, impact.pe_only, strict=False):
        rows.append((
            overall.threshold,
            pct(overall.white_fraction), pct(overall.gray_fraction),
            pct(overall.black_fraction), pct(pe.gray_fraction),
        ))
    t_peak, g_peak = impact.overall_peak
    t_pe, g_pe = impact.pe_peak
    header = (
        "Figure 8 / Observation 6: sample categories vs threshold\n"
        f"  overall gray peak: {pct(g_peak)} at t={t_peak} "
        "(paper: 14.92% at t=24)\n"
        f"  PE gray peak     : {pct(g_pe)} at t={t_pe} "
        "(paper: 16.41% at t=50)\n"
    )
    return header + ascii_table(
        ["t", "white", "gray", "black", "PE gray"], rows
    )


def render_obs8(profile: AVRankStabilizationProfile) -> str:
    paper = {0: "10.9%", 1: "55.1%", 2: "69.58%", 3: "77.84%",
             4: "83.52%", 5: "88.11%"}
    rows = [
        (r, pct(profile.stabilized_fraction(r)), paper.get(r, "-"),
         pct(profile.within_30_days(r)))
        for r in sorted(profile.by_fluctuation)
    ]
    return ("Observation 8: AV-Rank stabilisation by fluctuation range\n"
            + ascii_table(["r", "stabilised", "paper", "within 30d"], rows))


def render_fig9(profile: LabelStabilizationProfile) -> str:
    rows = []
    for t in sorted(profile.all_samples):
        full = profile.all_samples[t]
        trimmed = profile.exclude_two_scan[t]
        rows.append((
            t,
            pct(full.stabilized_fraction),
            f"{full.mean_scan_index:.1f}" if full.mean_scan_index else "-",
            f"{full.mean_days:.1f}" if full.mean_days is not None else "-",
            f"{trimmed.mean_scan_index:.1f}" if trimmed.mean_scan_index else "-",
            f"{trimmed.mean_days:.1f}" if trimmed.mean_days is not None else "-",
        ))
    lo, hi = profile.stabilized_fraction_range()
    lo30, hi30 = profile.within_30_days_range()
    header = (
        "Figure 9 / Observation 9: label stabilisation by threshold\n"
        f"  stabilised: {pct(lo)}-{pct(hi)} (paper: 93.14%-98.04%)\n"
        f"  within 30 days: {pct(lo30)}-{pct(hi30)} "
        "(paper: 91.09%-92.31%)\n"
    )
    return header + ascii_table(
        ["t", "stabilised", "scan#", "days", "scan# (n>2)", "days (n>2)"],
        rows,
    )


def render_fig10(flips: FlipStats, file_types: Sequence[str]) -> str:
    types, matrix = flips.flip_ratio_matrix(file_types)
    lines = [
        "Figure 10 / Observation 10: flip ratios per engine x file type",
        f"  total flips: {flips.total_flips:,} "
        f"(0->1: {flips.total_flips_up:,}, 1->0: {flips.total_flips_down:,})",
        f"  hazards: {flips.total_hazards} (paper: 9 in 109M reports)",
        f"  flips with engine update: {pct(flips.update_coincidence_rate)}"
        "  (paper: ~60%)",
        "  flippiest engines: "
        + ", ".join(f"{name} ({ratio:.1%})"
                    for name, ratio in flips.flippiest_engines(5)),
        "  stablest engines : "
        + ", ".join(f"{name} ({ratio:.2%})"
                    for name, ratio in flips.stablest_engines(5)),
    ]
    for row, ftype in enumerate(types):
        cells = matrix[row]
        shown = sorted(
            ((flips.engine_names[i], cells[i])
             for i in range(len(cells)) if not math.isnan(cells[i])),
            key=lambda item: -item[1],
        )[:5]
        lines.append(
            f"  {ftype:<20}: "
            + ", ".join(f"{n} {v:.1%}" for n, v in shown)
        )
    return "\n".join(lines)


def render_fig11(analysis: CorrelationAnalysis) -> str:
    lines = [
        "Figure 11 / Observation 11: strong engine correlations (rho > "
        f"{analysis.threshold})",
        f"  scans analysed: {analysis.n_scans:,} | engines involved: "
        f"{len(analysis.involved_engines())} (paper: 17)",
    ]
    for first, second, value in analysis.strong_pairs()[:20]:
        lines.append(f"  {first} -- {second}: {value:.4f}")
    lines.append("  groups:")
    for group in analysis.groups():
        lines.append("    " + ", ".join(group))
    return "\n".join(lines)


def render_group_tables(
    per_type: dict[str, "CorrelationAnalysis"],
) -> str:
    lines = ["Tables 4-8: highly correlated engine groups per file type"]
    for ftype, analysis in per_type.items():
        lines.append(f"  {ftype}:")
        groups = analysis.groups()
        if not groups:
            lines.append("    (no strong correlations)")
        for i, group in enumerate(groups, 1):
            lines.append(f"    Group {i}: " + ", ".join(group))
    return "\n".join(lines)
