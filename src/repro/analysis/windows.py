"""Measurement-window sensitivity (§8, "Measurement Time Window").

The paper closes with a methodological warning: conclusions drawn from a
short measurement window understate the dynamics.  Its concrete check:
take the samples first seen in the initial month and compare the AV-Rank
gap (Δ) measured with a 1-month observation window against a 3-month
window — 8.6 % of samples exhibited a *growing* gap, and the gap
distribution keeps shifting as the window lengthens.

:func:`window_sensitivity` reproduces that check for arbitrary window
lengths, and :func:`gap_growth_curve` sweeps the window to show the
distribution never quite freezes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.avrank import AVRankSeries
from repro.errors import ConfigError
from repro.vt.clock import MINUTES_PER_DAY


def _delta_within(series: AVRankSeries, window_days: float) -> int | None:
    """Δ over the scans within ``window_days`` of the first scan.

    Returns None when fewer than two scans fall inside the window (the
    gap is unmeasurable there, as in the paper's setup).
    """
    horizon = series.times[0] + int(window_days * MINUTES_PER_DAY)
    ranks = [rank for t, rank in zip(series.times, series.ranks, strict=False)
             if t <= horizon]
    if len(ranks) < 2:
        return None
    return max(ranks) - min(ranks)


@dataclass(frozen=True)
class WindowComparison:
    """Gap growth between a short and an extended observation window."""

    short_days: float
    long_days: float
    n_comparable: int
    n_grew: int
    mean_gap_short: float
    mean_gap_long: float

    @property
    def grew_fraction(self) -> float:
        """Share of samples whose Δ grew with the longer window
        (paper: 8.6 % from one to three months)."""
        return self.n_grew / self.n_comparable if self.n_comparable else 0.0


def window_sensitivity(
    series: Iterable[AVRankSeries],
    short_days: float = 30.0,
    long_days: float = 90.0,
    first_month_only: bool = True,
) -> WindowComparison:
    """The paper's §8 check: does extending the window grow the gaps?

    ``first_month_only`` restricts to samples first scanned in the first
    30 days of the collection window, as the paper did, so every sample
    has the full long window available.
    """
    if long_days <= short_days:
        raise ConfigError("long window must exceed the short window")
    n_comparable = 0
    n_grew = 0
    short_gaps: list[int] = []
    long_gaps: list[int] = []
    for s in series:
        if first_month_only and s.times[0] > 30 * MINUTES_PER_DAY:
            continue
        short_gap = _delta_within(s, short_days)
        long_gap = _delta_within(s, long_days)
        if short_gap is None or long_gap is None:
            continue
        n_comparable += 1
        short_gaps.append(short_gap)
        long_gaps.append(long_gap)
        if long_gap > short_gap:
            n_grew += 1
    return WindowComparison(
        short_days=short_days,
        long_days=long_days,
        n_comparable=n_comparable,
        n_grew=n_grew,
        mean_gap_short=(sum(short_gaps) / len(short_gaps)
                        if short_gaps else 0.0),
        mean_gap_long=(sum(long_gaps) / len(long_gaps)
                       if long_gaps else 0.0),
    )


def gap_growth_curve(
    series: Sequence[AVRankSeries],
    windows_days: Sequence[float] = (30, 60, 90, 180, 270, 365),
    first_month_only: bool = True,
) -> list[tuple[float, float]]:
    """Mean measurable Δ as the observation window lengthens.

    A monotone-ish increasing curve is the paper's argument for long
    measurement windows: "the resulting AV-Rank gap distribution of the
    samples is always variable".
    """
    out: list[tuple[float, float]] = []
    pool = [s for s in series
            if not first_month_only or s.times[0] <= 30 * MINUTES_PER_DAY]
    for window in windows_days:
        gaps = [g for s in pool
                if (g := _delta_within(s, window)) is not None]
        if gaps:
            out.append((window, sum(gaps) / len(gaps)))
    return out
