"""The per-shard generate→scan→ingest loop.

:func:`execute_range` is the single implementation of the experiment
event loop: the serial runner calls it over ``[0, n_samples)`` in
process, and each parallel worker calls it over its shard's range with
its own :class:`~repro.vt.service.VirusTotalService`, engine fleet and
:class:`~repro.store.reportstore.ReportStore`.  Both paths replay the
shard's scan events in global time order, so every sample's per-scan RNG
stream advances exactly as it would in a serial run — per-report bytes
are identical by construction.

:func:`run_shard` wraps ``execute_range`` for a worker process: it runs
the shard, freezes the store, and repackages it as a picklable
:class:`ShardRun` carrying the compressed blocks plus the per-record
``(scan_time, global_sample_index)`` merge keys the driver needs to
splice shards back together in serial order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import NULL_REGISTRY, MetricsRegistry, MetricsSnapshot
from repro.parallel.sharding import ShardSpec
from repro.store.reportstore import ReportStore
from repro.store.shard import CompressedBlock
from repro.synth.population import PopulationGenerator
from repro.synth.scenario import ScenarioConfig
from repro.vt.clock import month_index
from repro.vt.engines import EngineFleet, default_fleet
from repro.vt.feed import PremiumFeed
from repro.vt.service import VirusTotalService

#: Drain the feed into the store every this many scan events.
FEED_DRAIN_EVERY = 10_000

#: Invoke the caller's progress callback every this many scan events.
#: Cheap relative to a scan (one callable invocation per 64 events, and
#: the heartbeat emitter behind it throttles to one clock read per
#: call); small enough that even short shards beat a few times.
PROGRESS_EVERY = 64

#: Merge key of one record: (scan_time, global sample index).  Unique
#: across the whole scenario (a sample never has two scans in the same
#: minute) and non-decreasing within a shard's per-month stream.
MergeKey = tuple[int, int]


@dataclass
class RangeRun:
    """Everything one in-process event-loop execution produced."""

    service: VirusTotalService
    fleet: EngineFleet
    store: ReportStore
    events_executed: int
    #: Per-month merge keys, one per ingested record in ingest order.
    keys_by_month: dict[int, list[MergeKey]] = field(repr=False)


@dataclass
class ShardMonth:
    """Picklable snapshot of one month of a worker's frozen store."""

    blocks: list[tuple[bytes, int, int]]  # (payload, record_count, raw_bytes)
    report_count: int
    verbose_bytes: int
    encoded_bytes: int
    keys: list[MergeKey] = field(repr=False)

    def compressed_blocks(self) -> list[CompressedBlock]:
        return [CompressedBlock(payload, count, raw)
                for payload, count, raw in self.blocks]


@dataclass
class ShardRun:
    """A worker's result: frozen month payloads plus merge metadata."""

    shard_index: int
    months: dict[int, ShardMonth]
    sample_meta: dict[str, tuple[str, bool]]
    events_executed: int
    report_count: int
    #: Snapshot of the worker's metrics registry (None when the driver
    #: ran without observability).  Folded into the parent registry in
    #: shard order; merge commutativity makes the order irrelevant.
    metrics: MetricsSnapshot | None = None


def execute_range(
    config: ScenarioConfig,
    start: int,
    stop: int,
    fleet: EngineFleet | None = None,
    collect_keys: bool = False,
    metrics=None,
    progress=None,
) -> RangeRun:
    """Generate, scan and store samples ``[start, stop)`` of the scenario.

    Registers a *clone* of every generated sample, so the generator's
    spec objects are never mutated (the pre-window submission backfill
    happens at registration time, on the clone).  With ``collect_keys``
    the per-record merge keys are recorded alongside ingest — the worker
    path; the serial path skips the bookkeeping.

    ``metrics`` is handed to the service and the store.  Everything this
    loop records is per-sample work (partition-invariant), so the merged
    registries of a sharded run reproduce the serial registry exactly.

    ``progress`` (optional zero-arg callable) is invoked every
    ``PROGRESS_EVERY`` events.  It must not affect simulation state: the
    executor layer hangs throttled heartbeat emission off it.
    """
    if metrics is None:
        metrics = NULL_REGISTRY
    if fleet is None:
        fleet = default_fleet(config.seed)
    service = VirusTotalService(fleet=fleet, params=config.behavior,
                                seed=config.seed, metrics=metrics)
    store_kwargs = {"block_records": config.block_records,
                    "block_format": config.block_format}
    if config.store_cache_bytes is not None:
        store_kwargs["cache_bytes"] = config.store_cache_bytes
    store = ReportStore(metrics=metrics, **store_kwargs)
    feed = PremiumFeed(service)
    m_events = metrics.counter("run.events.total")

    generator = PopulationGenerator(config)
    samples = {}
    events: list[tuple[int, int, int]] = []
    for index, spec in generator.iter_range(start, stop):
        sample = spec.sample.clone()
        service.register(sample)
        samples[index] = sample
        for ordinal, when in enumerate(spec.scan_times):
            events.append((when, index, ordinal))
    events.sort()

    keys_by_month: dict[int, list[MergeKey]] = {}
    executed = 0
    with feed:
        for when, index, ordinal in events:
            sample = samples[index]
            if ordinal == 0 and sample.fresh:
                service.upload(sample, when)
            else:
                service.rescan(sample.sha256, when)
            if collect_keys:
                keys_by_month.setdefault(month_index(when), []).append(
                    (when, index))
            executed += 1
            m_events.inc()
            if progress is not None and executed % PROGRESS_EVERY == 0:
                progress()
            if executed % FEED_DRAIN_EVERY == 0:
                store.ingest_batch(feed.poll())
        store.ingest_batch(feed.poll())
    store.close()

    return RangeRun(service=service, fleet=fleet, store=store,
                    events_executed=executed, keys_by_month=keys_by_month)


def run_shard(
    config: ScenarioConfig,
    shard: ShardSpec,
    fleet: EngineFleet | None = None,
    with_metrics: bool = False,
    progress=None,
) -> ShardRun:
    """Execute one shard and package the frozen store for the driver.

    With ``with_metrics`` the shard records into its own fresh registry
    and ships the picklable snapshot back with the result.
    """
    registry = MetricsRegistry() if with_metrics else None
    run = execute_range(config, shard.start, shard.stop, fleet=fleet,
                        collect_keys=True, metrics=registry,
                        progress=progress)
    store = run.store
    months = {}
    for month, mshard in store.shards.items():
        months[month] = ShardMonth(
            blocks=[(b.payload, b.record_count, b.raw_bytes)
                    for b in mshard.blocks],
            report_count=mshard.report_count,
            verbose_bytes=mshard.verbose_bytes,
            encoded_bytes=mshard.encoded_bytes,
            keys=run.keys_by_month.get(month, []),
        )
    sample_meta = {
        sha: (store.sample_file_type(sha), store.sample_is_fresh(sha))
        for sha in store.samples()
    }
    return ShardRun(
        shard_index=shard.shard_index,
        months=months,
        sample_meta=sample_meta,
        events_executed=run.events_executed,
        report_count=store.report_count,
        metrics=registry.snapshot() if registry is not None else None,
    )


def _run_shard_task(args: tuple[ScenarioConfig, ShardSpec,
                                EngineFleet | None, bool]) -> ShardRun:
    """Module-level pool target (must be importable by worker processes)."""
    config, shard, fleet, with_metrics = args
    return run_shard(config, shard, fleet=fleet, with_metrics=with_metrics)
