"""Command-line interface: ``repro-vt``.

Subcommands mirror the reproduction workflow:

* ``generate`` — run a scenario and save the report store to disk;
* ``collect`` — run the resilient minute-by-minute collection pipeline
  (optionally under the standard chaos fault plan) into a working
  directory with checkpoint/store/dead-letter files;
* ``overview`` — Tables 2-3 and Figure 1 from a saved (or fresh) store;
* ``dynamics`` — Figures 2-8;
* ``stabilization`` — Figure 9 and Observation 8;
* ``engines`` — Figures 10-11 and the Tables 4-8 groups;
* ``metrics`` — the observability registry of a run (or a loaded
  store's accounting gauges) as a summary tree, Prometheus text or
  JSONL;
* ``serve`` — serve a saved store over HTTP (latest report, AV-Rank
  series, premium per-minute feed) with API keys and tiered quotas;
* ``lint`` — reprolint, the static determinism/invariant linter, over
  this package's own source (or ``--paths``);
* ``all`` — everything above in one run.

The global ``--metrics-out PATH`` flag works with every subcommand:
the run records into a live :class:`~repro.obs.MetricsRegistry` and the
export is written on exit (``.prom`` suffix → Prometheus text,
anything else → JSONL).

Exit codes are uniform across subcommands (pytest convention):

* ``0`` — success, and nothing to report;
* ``1`` — the command ran fine but *found* something: lint findings,
  a digest difference (``digest A B``), a failed calibration band;
* ``2`` — internal error or bad usage (bad flags, unreadable files,
  unknown lint codes).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time

from repro.analysis import dataset as dataset_mod
from repro.errors import ConfigError, LintError, ReproError
from repro.analysis import dynamics as dynamics_mod
from repro.analysis import engines as engines_mod
from repro.analysis import rendering, stabilization as stab_mod
from repro.analysis.experiment import ExperimentData, run_experiment
from repro.core.avrank import collect_series, select_dataset_s
from repro.obs import (
    MetricsRegistry,
    jsonl_lines,
    prometheus_text,
    render_summary,
    write_jsonl,
    write_prometheus,
)
from repro.store.reportstore import ReportStore
from repro.synth.scenario import dynamics_scenario, paper_scenario
from repro.vt.feed import DEFAULT_ARCHIVE_RETENTION_MINUTES
from repro.vt.engines import default_fleet
from repro.vt.filetypes import TOP20_FILE_TYPES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-vt",
        description="Reproduce the IMC'23 VirusTotal label-dynamics study "
                    "on a simulated VT ecosystem.",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="exit codes: 0 = success; 1 = findings or differences "
               "(lint findings, digest mismatch, failed calibration); "
               "2 = internal error or bad usage",
    )
    parser.add_argument("--samples", type=int, default=10_000,
                        help="population size (default: 10000)")
    parser.add_argument("--seed", type=int, default=0,
                        help="scenario seed (default: 0)")
    parser.add_argument("--scenario", choices=("paper", "dynamics"),
                        default="dynamics",
                        help="population preset: full paper mix or the "
                             "dynamics-focused dataset S")
    parser.add_argument("--store", metavar="PATH",
                        help="load reports from a saved store instead of "
                             "generating")
    parser.add_argument("--store-format", choices=("columnar", "row"),
                        default="columnar",
                        help="block layout for generated stores: columnar "
                             "(v3, the fast path) or row (v2 legacy); the "
                             "canonical digest is identical either way "
                             "(default: columnar)")
    parser.add_argument("--workers", metavar="N|auto", default="1",
                        help="shard the scenario across N worker processes "
                             "('auto' = CPU count, capped by "
                             "REPRO_MAX_WORKERS); bit-identical to a "
                             "serial run (default: 1)")
    parser.add_argument("--executor",
                        choices=("auto", "in-process", "fork", "spawn"),
                        default="auto",
                        help="executor backend for --workers > 1: forked "
                             "or spawned process pool, or an in-process "
                             "queue (default: auto = fork where "
                             "available, else spawn)")
    parser.add_argument("--executor-chaos", action="store_true",
                        help="inject the standard executor fault plan "
                             "(worker crashes, hangs, corrupted shard "
                             "payloads); the run must still converge to "
                             "the fault-free digest")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="record run metrics and write the export here "
                             "on exit (.prom = Prometheus text, anything "
                             "else = JSONL)")
    sub = parser.add_subparsers(dest="command", required=True)
    gen = sub.add_parser("generate", help="generate and save a store")
    gen.add_argument("output", help="path for the saved store")
    dig = sub.add_parser(
        "digest",
        help="print the canonical content digest of a saved store "
             "(the serial/parallel equivalence gate compares these); "
             "with two paths, compare them (exit 1 on mismatch)")
    dig.add_argument("path", help="saved store to digest")
    dig.add_argument("path2", nargs="?", default=None,
                     help="second store to compare against (exit 1 if "
                          "the digests differ)")
    collect = sub.add_parser(
        "collect",
        help="run the resilient collection pipeline into a directory")
    collect.add_argument("outdir",
                         help="working directory (store, checkpoint, "
                              "dead letters)")
    collect.add_argument("--chaos", action="store_true",
                         help="inject the standard fault plan "
                              "(outage, transients, duplicates, corruption)")
    collect.add_argument("--resume", action="store_true",
                         help="resume a crashed run from its checkpoint")
    collect.add_argument("--until-days", type=float, default=None,
                         help="truncate the simulation horizon (days)")
    collect.add_argument("--crash-at-days", type=float, default=None,
                         help="simulate a crash after this many days "
                              "(no final flush; use --resume to continue)")
    collect.add_argument("--persist-every", type=int, default=24 * 60,
                         metavar="MINUTES",
                         help="checkpoint cadence in simulated minutes "
                              "(default: daily)")
    sub.add_parser("overview", help="Tables 2-3, Figure 1")
    sub.add_parser("dynamics", help="Figures 2-8")
    sub.add_parser("stabilization", help="Figure 9, Observation 8")
    sub.add_parser("engines", help="Figures 10-11, Tables 4-8")
    serve = sub.add_parser(
        "serve",
        help="serve a saved store over HTTP: GET /files/{sha256}, "
             "/files/{sha256}/series, /feeds/files/{minute} "
             "(premium keys only)")
    serve.add_argument("store_path", help="saved report store to serve")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8228,
                       help="bind port; 0 picks a free port "
                            "(default: 8228)")
    serve.add_argument("--api-key", action="append", default=None,
                       metavar="KEY:TIER",
                       help="register an API key (repeatable; tier is "
                            "'free' — 500/day at 4/min — or 'premium'). "
                            "Default: demo-free:free demo-premium:premium")
    serve.add_argument("--mmap", action="store_true",
                       help="memory-map the store file instead of reading "
                            "it up front; blocks decode lazily on first "
                            "touch, so multiple serve processes share one "
                            "page cache")
    serve.add_argument("--no-feed", action="store_true",
                       help="disable the /feeds endpoint (skips building "
                            "the archive)")
    serve.add_argument("--feed-retention", type=int,
                       default=DEFAULT_ARCHIVE_RETENTION_MINUTES,
                       metavar="MINUTES",
                       help="feed archive retention window in simulated "
                            "minutes (default: 7 days)")
    met = sub.add_parser(
        "metrics",
        help="print the metrics registry of a run (or of a loaded store)")
    met.add_argument("--format", choices=("summary", "prom", "jsonl"),
                     default="summary",
                     help="output format (default: human summary tree)")
    lint = sub.add_parser(
        "lint",
        help="reprolint: statically enforce the determinism contract "
             "(wall clocks, unseeded RNG, unordered iteration, metric "
             "discipline); exit 1 on findings")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="report format (default: grep-able text; json "
                           "is byte-deterministic)")
    lint.add_argument("--select", default=None, metavar="CODES",
                      help="comma-separated rule codes to run "
                           "(e.g. RPL001,RPL004; default: all)")
    lint.add_argument("--paths", nargs="*", default=None, metavar="PATH",
                      help="files/directories to lint (default: the "
                           "installed repro package source)")
    lint.add_argument("--output", default=None, metavar="PATH",
                      help="also write the report to this file")
    lint.add_argument("--explain", action="store_true",
                      help="with --paths: include whole-program evidence "
                           "(call chains) per finding; alone: list every "
                           "rule code with its summary and exit")
    lint.add_argument("--cache", default=None, metavar="PATH",
                      help="incremental cache file: warm runs re-analyze "
                           "only files whose content hash changed")
    lint.add_argument("--changed", action="store_true",
                      help="with --cache: report only findings in changed "
                           "files plus their reverse-import cone")
    lint.add_argument("--baseline", default=None, metavar="PATH",
                      help="subtract accepted findings from this baseline "
                           "file; stale entries (fixed findings) are "
                           "reported and fail the run (shrink-only ratchet)")
    lint.add_argument("--write-baseline", action="store_true",
                      help="with --baseline: snapshot the current findings "
                           "as the new baseline instead of checking")
    sub.add_parser("all", help="every table and figure")
    sub.add_parser("calibrate", help="grade headline stats vs the paper")
    report = sub.add_parser("report", help="write a full markdown report")
    report.add_argument("output", help="path for the markdown report")
    return parser


def _config(args: argparse.Namespace):
    if args.scenario == "paper":
        config = paper_scenario(n_samples=args.samples, seed=args.seed)
    else:
        config = dynamics_scenario(n_samples=args.samples, seed=args.seed)
    if config.block_format != args.store_format:
        config = dataclasses.replace(config, block_format=args.store_format)
    return config


def _data(args: argparse.Namespace, metrics=None) -> ExperimentData:
    if args.store:
        store = ReportStore.load(args.store, metrics=metrics)
        if metrics is not None:
            # No run happened: the registry carries only the loaded
            # store's accounting gauges (plus any later cache traffic).
            try:
                store.publish_metrics()
            except BaseException:
                store.close()
                raise
        return ExperimentData(
            config=_config(args),
            fleet=default_fleet(args.seed),
            service=None,  # analyses never need the live service
            store=store,
            metrics=metrics,
        )
    # Wall time below is operator-facing elapsed display only; it never
    # feeds simulation state or stored bytes.
    started = time.perf_counter()  # reprolint: disable=RPL001 - display only
    data = run_experiment(_config(args), workers=_workers(args),
                          metrics=metrics, executor=_executor(args))
    elapsed = time.perf_counter() - started  # reprolint: disable=RPL001 - display only
    print(f"[generated {data.store.report_count:,} reports from "
          f"{data.store.sample_count:,} samples in "
          f"{elapsed:.1f}s "
          f"({data.workers} worker{'s' if data.workers != 1 else ''})]\n",
          file=sys.stderr)
    return data


def _executor(args: argparse.Namespace):
    """The executor policy implied by ``--executor``/``--executor-chaos``.

    Returns the bare kind string in the common case (the runner applies
    its defaults); chaos builds a full policy with a deadline short
    enough that injected hangs are detected and stolen well within the
    run, not just tolerated.
    """
    if not args.executor_chaos:
        return args.executor
    from repro.faults import standard_executor_chaos_plan
    from repro.parallel import ExecutorPolicy

    return ExecutorPolicy(
        kind=args.executor,
        heartbeat_deadline=1.5,
        fault_plan=standard_executor_chaos_plan(
            seed=args.seed, hang_seconds=2.5),
    )


def _workers(args: argparse.Namespace) -> int | str:
    value = args.workers
    if value == "auto":
        return value
    try:
        return int(value)
    except ValueError as exc:
        # ConfigError → exit code 2 via main()'s uniform error handling.
        raise ConfigError(
            f"--workers must be an integer or 'auto', got {value!r}"
        ) from exc


def _series_and_s(data: ExperimentData):
    series = collect_series(data.store.iter_sample_reports())
    return series, select_dataset_s(series, frozenset(TOP20_FILE_TYPES))


def cmd_overview(data: ExperimentData) -> None:
    print(rendering.render_table2(data.store.stats()))
    print()
    print(rendering.render_table3(
        dataset_mod.file_type_distribution(data.store)))
    print()
    print(rendering.render_fig1(
        dataset_mod.ReportsPerSample.from_store(data.store)))


def cmd_dynamics(data: ExperimentData) -> None:
    series, dataset_s = _series_and_s(data)
    print(rendering.render_fig2(dynamics_mod.stable_dynamic_split(series)))
    print()
    print(rendering.render_fig3_fig4(
        dynamics_mod.stable_sample_profile(series)))
    print()
    print(rendering.render_fig5(dynamics_mod.delta_distributions(dataset_s)))
    print()
    print(rendering.render_fig6(dynamics_mod.per_type_dynamics(dataset_s)))
    print()
    print(rendering.render_fig7(dynamics_mod.interval_effect(dataset_s)))
    print()
    print(rendering.render_fig8(dynamics_mod.threshold_impact(dataset_s)))


def cmd_stabilization(data: ExperimentData) -> None:
    _, dataset_s = _series_and_s(data)
    print(rendering.render_obs8(
        stab_mod.avrank_stabilization_profile(dataset_s)))
    print()
    print(rendering.render_fig9(
        stab_mod.label_stabilization_profile(dataset_s)))


def cmd_engines(data: ExperimentData) -> None:
    names = data.engine_names
    stability = engines_mod.engine_stability(data.store, names)
    print(rendering.render_fig10(stability.flips,
                                 engines_mod.APPENDIX_FILE_TYPES))
    print()
    correlation = engines_mod.engine_correlation(data.store, names)
    print(rendering.render_fig11(correlation.overall))
    print()
    print(rendering.render_group_tables(correlation.per_type))


def cmd_collect(args: argparse.Namespace, metrics=None) -> int:
    from repro.collect import auto_resume_minute, run_collection
    from repro.faults import standard_chaos_plan

    config = _config(args)
    if args.chaos:
        config = config.with_(fault_plan=standard_chaos_plan(args.seed))
    minutes_per_day = 24 * 60
    until = (int(args.until_days * minutes_per_day)
             if args.until_days is not None else None)
    stop_at = (int(args.crash_at_days * minutes_per_day)
               if args.crash_at_days is not None else None)
    resume_from = auto_resume_minute(args.outdir) if args.resume else None

    started = time.perf_counter()  # reprolint: disable=RPL001 - display only
    result = run_collection(
        config,
        out_dir=args.outdir,
        persist_every=args.persist_every,
        resume_from=resume_from,
        stop_at=stop_at,
        until_minute=until,
        metrics=metrics,
    )
    stats = result.stats
    elapsed = time.perf_counter() - started  # reprolint: disable=RPL001 - display only
    verb = "crashed (simulated)" if result.crashed else "completed"
    print(f"collection {verb} in {elapsed:.1f}s: "
          f"{result.store.report_count:,} reports from "
          f"{result.store.sample_count:,} samples in {args.outdir}")
    print(f"  minutes processed    {stats.minutes_processed:,}")
    print(f"  reports ingested     {stats.reports_ingested:,} "
          f"({stats.duplicates_skipped:,} duplicates skipped)")
    print(f"  transient errors     {stats.transient_errors:,} "
          f"({stats.backoff_minutes:.0f} simulated backoff minutes)")
    print(f"  outage minutes       {stats.outage_minutes:,}")
    print(f"  gaps backfilled      {stats.minutes_backfilled:,} minutes / "
          f"{stats.reports_backfilled:,} reports")
    print(f"  dead letters         {stats.dead_letters:,}")
    print(f"  checkpoint saves     {stats.checkpoint_saves:,}")
    if stats.pending_gap_minutes:
        print(f"  UNRECOVERED gap minutes: {stats.pending_gap_minutes:,}")
    return 0


def _write_metrics(registry, path: str) -> None:
    if path.endswith(".prom"):
        write_prometheus(registry, path)
    else:
        write_jsonl(registry, path)
    print(f"[wrote metrics to {path}]", file=sys.stderr)


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import (
        LintConfig,
        apply_baseline,
        default_target,
        lint_paths,
        lint_paths_cached,
        parse_select,
        read_baseline,
        render_json,
        render_rules,
        render_text,
        write_baseline,
    )

    # Bare --explain keeps its original meaning (the rule table); with
    # explicit --paths it switches the findings report to evidence mode.
    if args.explain and not args.paths:
        print(render_rules(), end="")
        return 0
    if args.changed and not args.cache:
        raise LintError("--changed requires --cache (the cache is how "
                        "changed files are detected)")
    if args.write_baseline and not args.baseline:
        raise LintError("--write-baseline requires --baseline PATH")
    select = parse_select(args.select) if args.select else None
    config = LintConfig(select=select)
    targets = args.paths if args.paths else [default_target()]
    if args.cache:
        result = lint_paths_cached(targets, args.cache, config=config,
                                   changed_only=args.changed)
    else:
        result = lint_paths(targets, config=config)
    if args.baseline:
        if args.write_baseline:
            write_baseline(result, args.baseline)
            print(f"[wrote {len(result.findings)} baseline entries to "
                  f"{args.baseline}]", file=sys.stderr)
            return 0
        result = apply_baseline(result, read_baseline(args.baseline))
    text = (render_json(result) if args.format == "json"
            else render_text(result, explain=args.explain))
    print(text, end="")
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text, encoding="utf-8")
        print(f"[wrote lint report to {args.output}]", file=sys.stderr)
    ok = result.ok and not result.baseline_stale
    return 0 if ok else 1


def cmd_serve(args: argparse.Namespace, metrics=None) -> int:
    from repro.serve import ReportServer, TenantRegistry
    from repro.vt.feed import FeedArchive

    store = ReportStore.load(args.store_path, metrics=metrics,
                             use_mmap=args.mmap)
    try:
        tenants = TenantRegistry()
        specs = args.api_key or ["demo-free:free", "demo-premium:premium"]
        for spec in specs:
            tenants.add_spec(spec)
        archive = None
        if not args.no_feed:
            archive = FeedArchive.from_store(
                store, retention_minutes=args.feed_retention)
        server = ReportServer(store, tenants, archive,
                              host=args.host, port=args.port, metrics=metrics)
        host, port = server.address
        print(f"serving {store.report_count:,} reports "
              f"({store.sample_count:,} samples) from {args.store_path} "
              f"at http://{host}:{port}")
        if archive is not None:
            print(f"feed archive: minutes {archive.oldest_available}"
                  f"..{archive.horizon} "
                  f"({archive.minutes_retained():,} retained)")
        for tenant in tenants.tenants():
            print(f"  api key {tenant.key}  tier={tenant.tier.name}")
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("shutting down", file=sys.stderr)
        finally:
            server.shutdown()
    finally:
        store.close()
    return 0


def cmd_digest(args: argparse.Namespace) -> int:
    digest = ReportStore.load(args.path).digest()
    if args.path2 is None:
        print(digest)
        return 0
    other = ReportStore.load(args.path2).digest()
    print(f"{digest}  {args.path}")
    print(f"{other}  {args.path2}")
    if digest != other:
        print("digests DIFFER")
        return 1
    print("digests match")
    return 0


def cmd_metrics(args: argparse.Namespace, registry) -> int:
    _data(args, metrics=registry)
    if args.format == "jsonl":
        print("\n".join(jsonl_lines(registry)))
    elif args.format == "prom":
        print(prometheus_text(registry), end="")
    else:
        print(render_summary(registry))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    registry = (MetricsRegistry()
                if args.metrics_out or args.command == "metrics" else None)
    try:
        status = _dispatch(args, registry)
    except ReproError as exc:
        # Uniform convention: findings/differences exit 1 (returned by
        # the command), internal errors and bad usage exit 2.
        print(f"repro-vt: error: {exc}", file=sys.stderr)
        return 2
    if registry is not None and args.metrics_out:
        _write_metrics(registry, args.metrics_out)
    return status


def _dispatch(args: argparse.Namespace, registry) -> int:
    if args.command == "lint":
        return cmd_lint(args)
    if args.command == "metrics":
        return cmd_metrics(args, registry)
    if args.command == "collect":
        return cmd_collect(args, metrics=registry)
    if args.command == "serve":
        return cmd_serve(args, metrics=registry)
    if args.command == "generate":
        data = run_experiment(_config(args), workers=_workers(args),
                              metrics=registry, executor=_executor(args))
        data.store.save(args.output)
        print(f"saved {data.store.report_count:,} reports to {args.output}")
        return 0
    if args.command == "digest":
        return cmd_digest(args)
    data = _data(args, metrics=registry)
    if args.command == "calibrate":
        from repro.analysis.calibration import calibration_report

        report = calibration_report(data)
        print(report.render())
        return 0 if report.passed else 1
    if args.command == "report":
        from repro.analysis.report import write_report

        path = write_report(data, args.output)
        print(f"wrote report to {path}")
        return 0
    if args.command in ("overview", "all"):
        cmd_overview(data)
    if args.command in ("dynamics", "all"):
        print()
        cmd_dynamics(data)
    if args.command in ("stabilization", "all"):
        print()
        cmd_stabilization(data)
    if args.command in ("engines", "all"):
        print()
        cmd_engines(data)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
