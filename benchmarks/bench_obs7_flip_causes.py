"""§5.5 / Observation 7: causes of label dynamics.

Paper: engine updates co-occur with ~60 % of verdict flips (cause ii);
the rest arrive through cloud/latency channels with no visible version
change (cause i); engine activity (timeouts) shifts AV-Rank without any
verdict flip (cause iii).
"""

from __future__ import annotations

from functools import partial

from repro.analysis.engines import dataset_s_reports
from repro.core.causes import attribute_causes

from conftest import run_once, say


def test_obs7_flip_causes(benchmark, bench_data):
    breakdown = run_once(
        benchmark,
        partial(attribute_causes,
                list(dataset_s_reports(bench_data.store))),
    )
    say()
    say("Observation 7: flip-cause attribution over dataset S")
    say(f"  adjacent scan pairs : {breakdown.total_pairs:,} "
          f"({breakdown.changed_pairs:,} with AV-Rank change)")
    say(f"  update flips        : {breakdown.update_flips:,}")
    say(f"  latency/cloud flips : {breakdown.latency_flips:,}")
    say(f"  activity events     : {breakdown.activity_events:,}")
    say(f"  update share of flips: {breakdown.update_share:.1%} "
          "(paper: ~60%)")

    # All three causes present.
    assert breakdown.update_flips > 0
    assert breakdown.latency_flips > 0
    assert breakdown.activity_events > 0
    # Engine updates behind the majority-but-not-all of flips.
    assert 0.40 < breakdown.update_share < 0.85
