#!/usr/bin/env python3
"""Engine correlation and correlation-aware voting (§7.2, Observation 11).

The paper shows groups of engines copy each other's labels, so counting
them as independent votes inflates confidence.  This example:

1. recovers the strong-correlation groups from scan data;
2. builds a correlation-aware weighted voter (each group counts once);
3. shows where naive and deduplicated voting disagree;
4. runs the AVClass-style family-label baseline over one report.

Run:  python examples/engine_correlation_study.py
"""

from repro import dynamics_scenario, run_experiment
from repro.core.aggregation import ThresholdAggregator, WeightedVoteAggregator
from repro.core.correlation import correlation_analysis
from repro.labeling import detection_string, label_family
from repro.vt.filetypes import FILE_TYPES

data = run_experiment(dynamics_scenario(n_samples=4_000, seed=11))
reports = list(data.store.iter_reports())
print(f"analysing {len(reports):,} scan reports")

# ---------------------------------------------------------------------------
# 1. Strong correlations (Figure 11).
# ---------------------------------------------------------------------------
analysis = correlation_analysis(reports, data.engine_names)
print(f"\nstrong pairs (rho > 0.8): {len(analysis.strong_pairs())}, "
      f"involving {len(analysis.involved_engines())} engines "
      "(paper: 17 engines)")
for first, second, rho in analysis.strong_pairs()[:8]:
    print(f"  {first:22s} -- {second:22s} rho={rho:.4f}")
print("groups:")
for group in analysis.groups():
    print("  " + ", ".join(group))

# ---------------------------------------------------------------------------
# 2. Correlation-aware voting: one vote per group.
# ---------------------------------------------------------------------------
naive = ThresholdAggregator(threshold=8)
deduplicated = WeightedVoteAggregator.from_correlation_groups(
    analysis.groups(), data.engine_names, threshold=8.0
)

disagreements = 0
checked = 0
example = None
for report in reports:
    if report.positives == 0:
        continue
    checked += 1
    naive_verdict = naive.is_malicious(report)
    dedup_verdict = deduplicated.is_malicious(report)
    if naive_verdict != dedup_verdict:
        disagreements += 1
        if example is None:
            example = report
print(f"\nnaive vs deduplicated voting disagree on "
      f"{disagreements:,}/{checked:,} flagged reports")
if example is not None:
    print(f"example: {example.sha256[:16]}… AV-Rank {example.positives} "
          "- naive says malicious, but much of its support is one "
          "OEM family voting in lockstep")

# ---------------------------------------------------------------------------
# 3. Family labelling baseline (AVClass-style plurality vote).
# ---------------------------------------------------------------------------
sample = next(s for s in data.service.samples()
              if s.malicious and s.family)
category = FILE_TYPES[sample.file_type].category
report = data.store.reports_for(sample.sha256)[-1]
detections = {
    result.engine: (detection_string(result.engine, sample.family,
                                     category, sample.sha256)
                    if result.detected else None)
    for result in report.iter_results(data.engine_names)
}
vote = label_family(detections)
print(f"\nfamily baseline: ground truth '{sample.family}', "
      f"plurality vote '{vote.family}' "
      f"({vote.support}/{vote.total_votes} votes, "
      f"confident={vote.confident})")
