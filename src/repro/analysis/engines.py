"""Section 7 pipelines: engine flips (Figure 10) and correlation
(Figures 11-12, Tables 4-8).

These are the only pipelines that read per-engine verdict vectors rather
than AV-Rank series, so they take the store (or a report iterable) plus
the fleet's engine-name order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.correlation import (
    CorrelationAnalysis,
    correlation_analysis,
    per_type_analyses,
)
from repro.core.flips import FlipStats, analyze_flips
from repro.store.reportstore import ReportStore
from repro.vt.filetypes import TOP20_FILE_TYPES
from repro.vt.reports import ScanReport

#: The file types the paper's appendix tabulates (Tables 4-8).
APPENDIX_FILE_TYPES: tuple[str, ...] = ("Win32 EXE", "TXT", "HTML", "ZIP", "PDF")


def dataset_s_reports(
    store: ReportStore, top20: Sequence[str] = TOP20_FILE_TYPES
) -> Iterable[tuple[str, list[ScanReport]]]:
    """Grouped reports restricted to the paper's dataset S membership
    (fresh, top-20 type, multi-report, dynamic)."""
    wanted = set(top20)
    for sha, reports in store.iter_sample_reports():
        if len(reports) < 2:
            continue
        if reports[0].file_type not in wanted:
            continue
        if reports[0].first_submission_date < 0:
            continue
        ranks = [r.positives for r in reports]
        if max(ranks) == min(ranks):
            continue
        yield sha, reports


@dataclass(frozen=True)
class EngineStabilityResult:
    """Figure 10 plus §7.1.1's headline flip counts."""

    flips: FlipStats

    @property
    def up_down_ratio(self) -> float:
        """Paper: 12.27 M 0→1 vs 4.57 M 1→0 (≈2.7×)."""
        down = self.flips.total_flips_down
        return self.flips.total_flips_up / down if down else float("inf")

    @property
    def hazard_share(self) -> float:
        """Hazards per flip — the paper found this effectively zero,
        contradicting Zhu et al.'s >50 % under daily rescans."""
        total = self.flips.total_flips
        return self.flips.total_hazards / total if total else 0.0


def engine_stability(
    store: ReportStore,
    engine_names: Sequence[str],
    dataset_s_only: bool = True,
) -> EngineStabilityResult:
    """Run the §7.1 flip analysis (Figure 10)."""
    source = (dataset_s_reports(store) if dataset_s_only
              else store.iter_sample_reports())
    return EngineStabilityResult(flips=analyze_flips(source, engine_names))


@dataclass(frozen=True)
class EngineCorrelationResult:
    """Figures 11-12 and Tables 4-8."""

    overall: CorrelationAnalysis
    per_type: dict[str, CorrelationAnalysis]

    def overall_groups(self) -> list[list[str]]:
        """Figure 11's strongly-correlated engine groups."""
        return self.overall.groups()

    def groups_for(self, file_type: str) -> list[list[str]]:
        """Tables 4-8: groups for one file type (empty if not analysed)."""
        analysis = self.per_type.get(file_type)
        return analysis.groups() if analysis is not None else []


def engine_correlation(
    store: ReportStore,
    engine_names: Sequence[str],
    file_types: Sequence[str] = APPENDIX_FILE_TYPES,
    threshold: float = 0.8,
    min_scans: int = 50,
) -> EngineCorrelationResult:
    """Run the §7.2 correlation analysis overall and per file type."""
    reports = list(store.iter_reports())
    return EngineCorrelationResult(
        overall=correlation_analysis(reports, engine_names, threshold),
        per_type=per_type_analyses(reports, engine_names, file_types,
                                   threshold, min_scans),
    )
