"""Unit tests for label aggregation strategies (repro.core.aggregation)."""

import pytest

from repro.core.aggregation import (
    PercentageAggregator,
    ThresholdAggregator,
    TrustedEnginesAggregator,
    WeightedVoteAggregator,
)
from repro.errors import ConfigError

from conftest import make_report

NAMES = ("a", "b", "c", "d", "e")


class TestThreshold:
    def test_boundary_inclusive(self):
        report = make_report(labels=[1, 1, 0, 0, 0])
        assert ThresholdAggregator(2).is_malicious(report)
        assert not ThresholdAggregator(3).is_malicious(report)

    def test_label_coding(self):
        report = make_report(labels=[1, 0, 0, 0, 0])
        assert ThresholdAggregator(1).label(report) == "M"
        assert ThresholdAggregator(2).label(report) == "B"

    def test_invalid_threshold(self):
        with pytest.raises(ConfigError):
            ThresholdAggregator(0)


class TestPercentage:
    def test_fraction_of_responding_engines(self):
        # 2 of 4 responding engines flag it: 50 %.
        report = make_report(labels=[1, 1, 0, 0, -1])
        assert PercentageAggregator(0.5).is_malicious(report)
        assert not PercentageAggregator(0.51).is_malicious(report)

    def test_no_responders_is_benign(self):
        report = make_report(labels=[-1, -1, -1, -1, -1])
        assert not PercentageAggregator(0.5).is_malicious(report)

    def test_fraction_bounds(self):
        with pytest.raises(ConfigError):
            PercentageAggregator(0.0)
        with pytest.raises(ConfigError):
            PercentageAggregator(1.1)


class TestTrustedEngines:
    def test_counts_only_trusted(self):
        report = make_report(labels=[1, 1, 1, 0, 0])
        agg = TrustedEnginesAggregator(["d", "e"], NAMES, threshold=1)
        assert not agg.is_malicious(report)
        agg2 = TrustedEnginesAggregator(["a", "d"], NAMES, threshold=1)
        assert agg2.is_malicious(report)

    def test_threshold_within_trusted_set(self):
        report = make_report(labels=[1, 1, 0, 0, 0])
        agg = TrustedEnginesAggregator(["a", "b", "c"], NAMES, threshold=2)
        assert agg.is_malicious(report)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError):
            TrustedEnginesAggregator(["ghost"], NAMES)

    def test_empty_set_rejected(self):
        with pytest.raises(ConfigError):
            TrustedEnginesAggregator([], NAMES)

    def test_undetected_is_not_a_vote(self):
        report = make_report(labels=[-1, 0, 0, 0, 0])
        agg = TrustedEnginesAggregator(["a"], NAMES, threshold=1)
        assert not agg.is_malicious(report)


class TestWeightedVote:
    def test_score_threshold(self):
        report = make_report(labels=[1, 1, 0, 0, 0])
        agg = WeightedVoteAggregator({"a": 0.6, "b": 0.5}, NAMES,
                                     threshold=1.0)
        assert agg.is_malicious(report)
        agg2 = WeightedVoteAggregator({"a": 0.3, "b": 0.3}, NAMES,
                                      threshold=1.0)
        assert not agg2.is_malicious(report)

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigError):
            WeightedVoteAggregator({"a": -1.0}, NAMES, threshold=1.0)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError):
            WeightedVoteAggregator({"zzz": 1.0}, NAMES, threshold=1.0)

    def test_from_correlation_groups_downweights_families(self):
        # a, b, c form one correlated family: together they count as one.
        agg = WeightedVoteAggregator.from_correlation_groups(
            [["a", "b", "c"]], NAMES, threshold=2.0
        )
        family_only = make_report(labels=[1, 1, 1, 0, 0])
        assert not agg.is_malicious(family_only)  # score 1.0 < 2.0
        family_plus_two = make_report(labels=[1, 1, 1, 1, 1])
        assert agg.is_malicious(family_plus_two)  # 1.0 + 2.0 >= 2.0

    def test_nonpositive_threshold_rejected(self):
        with pytest.raises(ConfigError):
            WeightedVoteAggregator({"a": 1.0}, NAMES, threshold=0.0)
