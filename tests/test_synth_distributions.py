"""Unit tests for workload samplers (repro.synth.distributions)."""

import random

import pytest

from repro.errors import ConfigError
from repro.synth import distributions as dist


class TestWeightedChoice:
    def test_respects_weights(self):
        rng = random.Random(0)
        choice = dist.WeightedChoice(["a", "b"], [9.0, 1.0])
        draws = [choice.sample(rng) for _ in range(2000)]
        share_a = draws.count("a") / len(draws)
        assert share_a == pytest.approx(0.9, abs=0.03)

    def test_zero_weight_never_drawn(self):
        rng = random.Random(1)
        choice = dist.WeightedChoice(["a", "b"], [1.0, 0.0])
        assert all(choice.sample(rng) == "a" for _ in range(200))

    def test_validation(self):
        with pytest.raises(ConfigError):
            dist.WeightedChoice(["a"], [1.0, 2.0])
        with pytest.raises(ConfigError):
            dist.WeightedChoice([], [])
        with pytest.raises(ConfigError):
            dist.WeightedChoice(["a"], [-1.0])
        with pytest.raises(ConfigError):
            dist.WeightedChoice(["a", "b"], [0.0, 0.0])


class TestDurations:
    def test_lognormal_median(self):
        rng = random.Random(2)
        draws = [dist.lognormal_minutes(rng, 5.0, 1.0) for _ in range(4000)]
        draws.sort()
        median_days = draws[len(draws) // 2] / 1440
        assert median_days == pytest.approx(5.0, rel=0.15)

    def test_lognormal_minimum_one_minute(self):
        rng = random.Random(3)
        assert all(dist.lognormal_minutes(rng, 0.001, 2.0) >= 1
                   for _ in range(100))

    def test_lognormal_validation(self):
        with pytest.raises(ConfigError):
            dist.lognormal_minutes(random.Random(0), 0.0, 1.0)

    def test_lognormal_bytes_floor(self):
        rng = random.Random(4)
        assert all(dist.lognormal_bytes(rng, 100, sigma=3.0) >= 16
                   for _ in range(200))


class TestParetoCount:
    def test_bounds(self):
        rng = random.Random(5)
        for _ in range(500):
            v = dist.pareto_count(rng, minimum=5, alpha=1.5, cap=100)
            assert 5 <= v <= 100

    def test_heavy_tail_exists(self):
        rng = random.Random(6)
        draws = [dist.pareto_count(rng, 5, 1.2, 10_000) for _ in range(3000)]
        assert max(draws) > 100

    def test_alpha_validation(self):
        with pytest.raises(ConfigError):
            dist.pareto_count(random.Random(0), 5, 0.0, 10)


class TestReportCounts:
    def test_single_report_share_matches_fig1(self):
        rng = random.Random(7)
        draws = [dist.report_count(rng) for _ in range(20_000)]
        share = draws.count(1) / len(draws)
        assert share == pytest.approx(dist.SINGLE_REPORT_SHARE, abs=0.01)

    def test_multi_counts_at_least_two(self):
        rng = random.Random(8)
        assert all(dist.multi_report_count(rng) >= 2 for _ in range(2000))

    def test_two_report_share_of_multi(self):
        rng = random.Random(9)
        draws = [dist.multi_report_count(rng) for _ in range(20_000)]
        share2 = draws.count(2) / len(draws)
        assert share2 == pytest.approx(0.69, abs=0.02)

    def test_tail_boost_shifts_mass_up(self):
        rng_a = random.Random(10)
        rng_b = random.Random(10)
        plain = [dist.multi_report_count(rng_a, 1.0) for _ in range(8000)]
        boosted = [dist.multi_report_count(rng_b, 2.0) for _ in range(8000)]
        assert (sum(boosted) / len(boosted)) > (sum(plain) / len(plain))

    def test_zero_multi_prob_always_one(self):
        rng = random.Random(11)
        assert all(dist.report_count(rng, multi_prob=0.0) == 1
                   for _ in range(100))
