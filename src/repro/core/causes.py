"""Flip-cause attribution (§5.5, Observation 7).

For every adjacent scan pair of a sample where the AV-Rank changed, this
analysis decomposes the change into per-engine events and attributes each
to one of the paper's three causes:

* **engine update** — the engine's verdict flipped *and* its signature
  version changed between the two scans (~60 % of flips in the paper);
* **engine latency / cloud** — the verdict flipped with no visible
  version change (detection delivered through a cloud lookup or an
  engine learning outside its update cycle);
* **engine activity** — the engine responded in one scan but not the
  other, shifting the positives count without any verdict flip.

Attribution works purely from report data (labels + versions), exactly as
the paper's own check did — it never peeks at simulator internals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.vt.reports import ScanReport

_UNDETECTED_BYTE = 2


@dataclass(frozen=True)
class CauseBreakdown:
    """Counts of per-engine events behind AV-Rank changes."""

    update_flips: int
    latency_flips: int
    activity_events: int
    changed_pairs: int
    total_pairs: int

    @property
    def total_flips(self) -> int:
        return self.update_flips + self.latency_flips

    @property
    def update_share(self) -> float:
        """Share of verdict flips with a co-occurring engine update —
        the paper measured ~60 %."""
        total = self.total_flips
        return self.update_flips / total if total else float("nan")

    @property
    def activity_share(self) -> float:
        """Activity events as a share of all per-engine events."""
        events = self.total_flips + self.activity_events
        return self.activity_events / events if events else float("nan")


def attribute_causes(
    sample_reports: Iterable[tuple[str, Sequence[ScanReport]]],
) -> CauseBreakdown:
    """Attribute causes across all adjacent scan pairs of a dataset."""
    update_flips = 0
    latency_flips = 0
    activity_events = 0
    changed_pairs = 0
    total_pairs = 0
    for _, reports in sample_reports:
        for previous, current in zip(reports, reports[1:], strict=False):
            total_pairs += 1
            if current.positives != previous.positives:
                changed_pairs += 1
            prev_labels = np.frombuffer(previous.labels, dtype=np.uint8)
            cur_labels = np.frombuffer(current.labels, dtype=np.uint8)
            prev_resp = prev_labels != _UNDETECTED_BYTE
            cur_resp = cur_labels != _UNDETECTED_BYTE
            both = prev_resp & cur_resp
            flipped = both & (prev_labels != cur_labels)
            if flipped.any():
                prev_versions = np.asarray(previous.versions, dtype=np.int64)
                cur_versions = np.asarray(current.versions, dtype=np.int64)
                updated = flipped & (prev_versions != cur_versions)
                update_flips += int(updated.sum())
                latency_flips += int((flipped & ~updated).sum())
            activity_events += int((prev_resp != cur_resp).sum())
    return CauseBreakdown(
        update_flips=update_flips,
        latency_flips=latency_flips,
        activity_events=activity_events,
        changed_pairs=changed_pairs,
        total_pairs=total_pairs,
    )
