"""Tests for the markdown report generator (repro.analysis.report)."""

import pytest

from repro.analysis.report import build_report, write_report


@pytest.fixture(scope="module")
def report_text(experiment):
    return build_report(experiment)


class TestBuildReport:
    def test_all_sections_present(self, report_text):
        for heading in (
            "# VirusTotal label-dynamics reproduction report",
            "## Dataset overview (§4)",
            "## Label dynamics (§5)",
            "## Stabilisation (§6)",
            "## Individual engines (§7)",
            "## Measurement-window sensitivity (§8)",
            "## Calibration vs paper",
        ):
            assert heading in report_text, heading

    def test_tables_and_figures_rendered(self, report_text):
        for landmark in (
            "05/2021 Reports",          # Table 2
            "File Type",                # Table 3 / Fig 6
            "Figure 1",
            "Observation 1",
            "Spearman rho",             # Fig 7
            "gray peak",                # Fig 8
            "Observation 8",
            "flippiest engines",        # Fig 10
            "groups:",                  # Fig 11
            "calibration report",
        ):
            assert landmark in report_text, landmark

    def test_code_blocks_balanced(self, report_text):
        assert report_text.count("```") % 2 == 0

    def test_scenario_header_mentions_counts(self, report_text,
                                             experiment):
        assert f"{experiment.store.sample_count:,} samples" in report_text


class TestWriteReport:
    def test_writes_file(self, experiment, tmp_path):
        path = write_report(experiment, tmp_path / "report.md")
        assert path.exists()
        assert path.read_text().startswith("# VirusTotal")
