"""Tests for latent ground truth (repro.synth.groundtruth)."""

import random
from collections import Counter

from repro.synth.groundtruth import (
    FAMILY_POOLS,
    MEDIAN_SIZE_BYTES,
    family_for,
)
from repro.vt.filetypes import CATEGORIES, FILE_TYPES


class TestFamilyPools:
    def test_every_category_has_a_pool(self):
        assert set(FAMILY_POOLS) == set(CATEGORIES)

    def test_pools_are_nonempty_and_lowercase(self):
        for pool in FAMILY_POOLS.values():
            assert pool
            for family in pool:
                assert family == family.lower()

    def test_every_category_has_a_size(self):
        assert set(MEDIAN_SIZE_BYTES) == set(CATEGORIES)
        assert all(v > 0 for v in MEDIAN_SIZE_BYTES.values())


class TestFamilyFor:
    def test_family_matches_category_pool(self):
        rng = random.Random(1)
        for _ in range(100):
            family = family_for(rng, "Win32 EXE")
            assert family in FAMILY_POOLS["pe"]

    def test_zipf_skew(self):
        """The first families of each pool dominate draws."""
        rng = random.Random(2)
        counts = Counter(family_for(rng, "ELF executable")
                         for _ in range(3000))
        pool = FAMILY_POOLS["elf"]
        head = sum(counts[f] for f in pool[:3])
        tail = sum(counts[f] for f in pool[-3:])
        assert head > 2 * tail

    def test_deterministic_per_stream(self):
        a = [family_for(random.Random(7), "PDF") for _ in range(3)]
        b = [family_for(random.Random(7), "PDF") for _ in range(3)]
        assert a == b

    def test_all_file_types_resolvable(self):
        rng = random.Random(3)
        for name in list(FILE_TYPES)[:30]:
            assert family_for(rng, name)
