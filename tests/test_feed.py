"""Unit tests for the premium feed (repro.vt.feed)."""

import pytest

from repro.errors import (
    ArchiveExpiredError,
    FeedNotAttachedError,
    PermissionError_,
)
from repro.vt import clock
from repro.vt.feed import FeedArchive, PremiumFeed
from repro.vt.samples import Sample, sha256_of
from repro.vt.service import VirusTotalService


@pytest.fixture()
def service():
    return VirusTotalService(seed=8)


def _upload(service, token, when):
    s = Sample(
        sha256=sha256_of(token),
        file_type="TXT",
        malicious=False,
        first_seen=when,
    )
    return service.upload(s, when)


class TestLifecycle:
    def test_feed_requires_premium(self, service):
        with pytest.raises(PermissionError_):
            PremiumFeed(service, premium=False)

    def test_detached_feed_sees_nothing(self, service):
        feed = PremiumFeed(service)
        _upload(service, "a", 100)
        assert feed.pending() == 0

    def test_attach_detach(self, service):
        feed = PremiumFeed(service)
        feed.attach()
        _upload(service, "a", 100)
        feed.detach()
        _upload(service, "b", 200)
        assert feed.pending() == 1

    def test_context_manager(self, service):
        with PremiumFeed(service) as feed:
            _upload(service, "a", 100)
            assert feed.pending() == 1
        _upload(service, "b", 200)
        assert feed.pending() == 1

    def test_double_attach_is_idempotent(self, service):
        feed = PremiumFeed(service)
        feed.attach()
        feed.attach()
        _upload(service, "a", 100)
        assert feed.pending() == 1


class TestPolling:
    def test_poll_drains_buffer(self, service):
        with PremiumFeed(service) as feed:
            _upload(service, "a", 100)
            _upload(service, "b", 150)
            batch = feed.poll()
            assert len(batch) == 2
            assert feed.pending() == 0

    def test_poll_with_minute_bound(self, service):
        with PremiumFeed(service) as feed:
            _upload(service, "a", 100)
            _upload(service, "b", 200)
            early = feed.poll(until_minute=150)
            assert [r.scan_time for r in early] == [100]
            assert feed.pending() == 1

    def test_counters(self, service):
        with PremiumFeed(service) as feed:
            _upload(service, "a", 100)
            feed.poll()
            assert feed.batches_served == 1
            assert feed.reports_served == 1

    def test_never_attached_poll_raises(self, service):
        feed = PremiumFeed(service)
        with pytest.raises(FeedNotAttachedError):
            feed.poll()

    def test_poll_after_detach_is_allowed(self, service):
        feed = PremiumFeed(service)
        feed.attach()
        _upload(service, "a", 100)
        feed.detach()
        assert [r.scan_time for r in feed.poll()] == [100]

    def test_bound_exactly_at_report_minute_excludes_it(self, service):
        with PremiumFeed(service) as feed:
            _upload(service, "a", 100)
            assert feed.poll(until_minute=100) == []
            assert feed.pending() == 1
            assert [r.scan_time for r in feed.poll(until_minute=101)] == [100]

    def test_poll_zero_bound(self, service):
        with PremiumFeed(service) as feed:
            _upload(service, "a", 0)
            assert [r.scan_time for r in feed.poll(until_minute=1)] == [0]

    def test_cursor_advances_with_bounded_polls(self, service):
        with PremiumFeed(service) as feed:
            assert feed.cursor == 0
            feed.poll(until_minute=50)
            assert feed.cursor == 50
            feed.poll(until_minute=30)  # never regresses
            assert feed.cursor == 50
            feed.poll()  # unbounded drains don't move the minute cursor
            assert feed.cursor == 50

    def test_drop_before_discards_and_counts(self, service):
        with PremiumFeed(service) as feed:
            _upload(service, "a", 10)
            _upload(service, "b", 20)
            _upload(service, "c", 30)
            assert feed.drop_before(25) == 2
            assert feed.cursor == 25
            assert [r.scan_time for r in feed.poll()] == [30]


class TestFeedArchive:
    def test_records_per_minute_batches(self, service):
        with FeedArchive(service) as archive:
            _upload(service, "a", 100)
            _upload(service, "b", 100)
            _upload(service, "c", 105)
        assert len(archive.batch(100)) == 2
        assert len(archive.batch(105)) == 1
        assert archive.batch(101) == []
        assert archive.minutes_retained() == 2

    def test_batch_returns_a_copy(self, service):
        with FeedArchive(service) as archive:
            _upload(service, "a", 100)
        archive.batch(100).clear()
        assert len(archive.batch(100)) == 1

    def test_retention_evicts_old_minutes(self, service):
        with FeedArchive(service, retention_minutes=50) as archive:
            _upload(service, "a", 10)
            _upload(service, "b", 100)
            assert archive.horizon == 100
            assert archive.oldest_available == 50
            with pytest.raises(ArchiveExpiredError):
                archive.batch(10)
            assert len(archive.batch(100)) == 1

    def test_expiry_error_carries_bounds(self, service):
        with FeedArchive(service, retention_minutes=50) as archive:
            _upload(service, "a", 100)
        with pytest.raises(ArchiveExpiredError) as excinfo:
            archive.batch(0)
        assert excinfo.value.minute == 0
        assert excinfo.value.horizon == 50

    def test_boundary_minute_is_served_not_raised(self, service):
        """The retention interval is closed: ``batch(oldest_available)``
        must succeed (regression — pruning and serving once derived the
        floor independently, leaving the exact boundary to luck)."""
        with FeedArchive(service, retention_minutes=50) as archive:
            _upload(service, "a", 50)
            _upload(service, "b", 100)
        assert archive.oldest_available == 50
        assert [r.scan_time for r in archive.batch(50)] == [50]

    def test_boundary_edges(self, service):
        """Every edge of the window: floor−1 raises, floor and floor+1
        and the horizon itself are served."""
        with FeedArchive(service, retention_minutes=50) as archive:
            _upload(service, "a", 49)
            _upload(service, "b", 50)
            _upload(service, "c", 51)
            _upload(service, "d", 100)
        floor = archive.oldest_available
        assert floor == 50
        with pytest.raises(ArchiveExpiredError) as excinfo:
            archive.batch(floor - 1)
        assert excinfo.value.minute == floor - 1
        assert excinfo.value.horizon == floor
        assert len(archive.batch(floor)) == 1
        assert len(archive.batch(floor + 1)) == 1
        assert len(archive.batch(archive.horizon)) == 1

    def test_boundary_minute_pruning_matches_serving(self, service):
        """A batch recorded at what later becomes exactly the floor is
        retained, and everything strictly below it is pruned."""
        with FeedArchive(service, retention_minutes=50) as archive:
            for minute in range(0, 101, 10):
                _upload(service, str(minute), minute)
        assert archive.oldest_available == 50
        retained = {m for m in range(0, 101, 10)
                    if m >= archive.oldest_available}
        assert archive.minutes_retained() == len(retained)
        for minute in sorted(retained):
            assert len(archive.batch(minute)) == 1

    def test_from_store_replays_frozen_reports(self, service):
        from repro.store import ReportStore

        store = ReportStore()
        with FeedArchive(service) as live:
            _upload(service, "a", 100)
            _upload(service, "b", 100)
            _upload(service, "c", 105)
            for minute in (100, 105):
                store.ingest_batch(live.batch(minute))
        rebuilt = FeedArchive.from_store(store)
        assert rebuilt.horizon == live.horizon
        assert rebuilt.oldest_available == live.oldest_available
        assert len(rebuilt.batch(100)) == 2
        assert len(rebuilt.batch(105)) == 1

    def test_from_store_applies_retention(self, service):
        from repro.store import ReportStore

        store = ReportStore()
        with FeedArchive(service) as live:
            _upload(service, "a", 10)
            _upload(service, "b", 100)
            for minute in (10, 100):
                store.ingest_batch(live.batch(minute))
        rebuilt = FeedArchive.from_store(store, retention_minutes=50)
        assert rebuilt.oldest_available == 50
        with pytest.raises(ArchiveExpiredError):
            rebuilt.batch(10)
        assert len(rebuilt.batch(100)) == 1

    def test_serviceless_archive_cannot_attach(self):
        archive = FeedArchive(None)
        with pytest.raises(FeedNotAttachedError):
            archive.attach()

    def test_detached_archive_records_nothing(self, service):
        archive = FeedArchive(service)
        _upload(service, "a", 100)
        assert archive.minutes_retained() == 0

    def test_archive_and_feed_coexist(self, service):
        archive = FeedArchive(service)
        archive.attach()
        with PremiumFeed(service) as feed:
            _upload(service, "a", 100)
            assert feed.pending() == 1
        assert len(archive.batch(100)) == 1


class TestMinuteBatches:
    def test_batches_grouped_by_minute(self, service):
        with PremiumFeed(service) as feed:
            _upload(service, "a", 100)
            _upload(service, "b", 100)
            _upload(service, "c", 105)
            batches = list(feed.minute_batches())
        assert [(m, len(b)) for m, b in batches] == [(100, 2), (105, 1)]

    def test_batches_drain_the_buffer(self, service):
        with PremiumFeed(service) as feed:
            _upload(service, "a", 100)
            list(feed.minute_batches())
            assert feed.pending() == 0

    def test_out_of_order_reports_detected(self, service):
        feed = PremiumFeed(service)
        feed.attach()
        _upload(service, "a", clock.minutes(days=2))
        _upload(service, "b", clock.minutes(days=1))
        with pytest.raises(AssertionError):
            list(feed.minute_batches())
