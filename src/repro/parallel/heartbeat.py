"""Heartbeat machinery: liveness signalling between workers and driver.

Clock policy: this module is the parallel layer's *sanctioned owner* of
wall-clock reads.  The determinism contract (reprolint RPL001) bans
``time.monotonic`` in library code because simulation results must not
depend on the host clock — but heartbeats, deadlines and retry backoff
exist precisely to meter real elapsed time, the same justification as
:mod:`repro.obs.timing` and :mod:`repro.serve.ratelimit`.  Everything
time-dependent in the executor layer goes through the :data:`ClockFn`
values defined here (tests inject fakes), and
``repro/parallel/heartbeat.py`` is carved out via the RPL001
:class:`~repro.lint.config.PathPolicy` — a structural exclusion, not a
per-line pragma, because the whole file is the sanctioned surface.

Simulation output never depends on any value read here: heartbeats only
decide *scheduling* (when to steal or retry a range), and every shard's
bytes are a pure function of ``(config, range)`` — the digest gate holds
whatever the host clock does.

Two halves:

* :class:`HeartbeatEmitter` runs inside a worker.  The shard event loop
  calls :meth:`HeartbeatEmitter.beat` every few hundred events; the
  emitter throttles that to at most one message per ``interval`` seconds
  so long-running shards stay visibly alive without flooding the result
  queue.
* :class:`HeartbeatMonitor` runs in the driver.  It tracks the last
  signal per shard assignment and reports which assignments have gone
  silent past the deadline — the trigger for work-stealing.
"""

from __future__ import annotations

import time
from typing import Callable

#: A clock: zero-arg callable returning monotonic seconds.
ClockFn = Callable[[], float]


def monotonic_clock() -> float:
    """The default executor clock (host monotonic seconds)."""
    return time.monotonic()


class HeartbeatEmitter:
    """Worker-side throttled liveness signal.

    ``send`` is called with a monotonically increasing sequence number at
    most once per ``interval`` seconds, however often :meth:`beat` is
    invoked.  An ``interval`` of ``None`` (or <= 0) disables emission
    entirely — the zero-overhead path the heartbeat benchmark measures
    against.
    """

    __slots__ = ("_send", "_interval", "_clock", "_next_due", "seq")

    def __init__(self, send: Callable[[int], None],
                 interval: float | None,
                 clock: ClockFn | None = None) -> None:
        self._send = send
        self._interval = interval if interval and interval > 0 else None
        self._clock: ClockFn = clock if clock is not None else monotonic_clock
        self._next_due = (self._clock() + self._interval
                          if self._interval is not None else 0.0)
        self.seq = 0

    def beat(self) -> bool:
        """Maybe emit one heartbeat; returns whether one was sent."""
        if self._interval is None:
            return False
        now = self._clock()
        if now < self._next_due:
            return False
        self._next_due = now + self._interval
        self.seq += 1
        self._send(self.seq)
        return True


class HeartbeatMonitor:
    """Driver-side liveness ledger, one entry per active assignment.

    Keys are opaque (the scheduler uses ``(shard_key, attempt)``).  The
    monitor answers two questions: how far behind is a signal
    (:meth:`lag`), and which assignments are silent past the deadline
    (:meth:`overdue`).
    """

    def __init__(self, deadline: float) -> None:
        if deadline <= 0:
            raise ValueError(f"heartbeat deadline must be > 0, "
                             f"got {deadline}")
        self.deadline = deadline
        self._last_seen: dict[object, float] = {}

    def track(self, key: object, now: float) -> None:
        """Start (or restart) watching one assignment."""
        self._last_seen[key] = now

    def signal(self, key: object, now: float) -> float | None:
        """Record a liveness signal; returns the lag it cleared, or
        ``None`` if the assignment is not tracked (late/stale signal)."""
        last = self._last_seen.get(key)
        if last is None:
            return None
        self._last_seen[key] = now
        return max(0.0, now - last)

    def forget(self, key: object) -> None:
        self._last_seen.pop(key, None)

    def overdue(self, now: float) -> list:
        """Assignments silent for longer than the deadline (sorted for
        deterministic handling order)."""
        return sorted(
            (key for key, last in self._last_seen.items()
             if now - last > self.deadline),
            key=repr,
        )

    def tracked(self) -> int:
        return len(self._last_seen)
