"""Collector resilience: overhead when healthy, exactness under chaos.

Two claims are measured:

1. **The disabled fault layer costs nothing.**  ``chaos_wrap`` with no
   plan (or a plan that can never fire) returns the *original* feed,
   store and client objects — structurally zero indirection — and the
   wall-clock of a collection run with an explicitly disabled plan
   matches the no-plan run.
2. **Chaos costs bounded overhead and loses nothing.**  Under the
   standard fault plan (multi-day outage, transients, duplicates,
   corruption, store write failures) the collector's recovery machinery
   reproduces the fault-free dataset exactly.
"""

from __future__ import annotations

import time

from repro.collect import run_collection
from repro.faults import FaultPlan, chaos_wrap, standard_chaos_plan
from repro.store.reportstore import ReportStore
from repro.synth.scenario import tiny_scenario
from repro.vt.clock import MINUTES_PER_DAY
from repro.vt.feed import PremiumFeed
from repro.vt.service import VirusTotalService

from conftest import run_once, say

UNTIL = 45 * MINUTES_PER_DAY
SAMPLES = 600


def _collect(plan=None):
    return run_collection(tiny_scenario(n_samples=SAMPLES, seed=3),
                          plan=plan, until_minute=UNTIL)


def _best_of(fn, repeats=3):
    best, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _series(store):
    return {sha: tuple((r.scan_time, r.positives) for r in reports)
            for sha, reports in store.iter_sample_reports()}


def test_collector_resilience(benchmark):
    # Structural zero-overhead: disabled wrapping is the identity.
    service = VirusTotalService(seed=0)
    feed, store = PremiumFeed(service), ReportStore()
    assert chaos_wrap(feed, store, None, None) == (feed, store, None)
    assert chaos_wrap(feed, store, None, FaultPlan()) == (feed, store, None)

    t_clean, clean = _best_of(lambda: _collect(None))
    t_disabled, disabled = _best_of(lambda: _collect(FaultPlan()))
    assert disabled.chaos_feed is None  # ran on the raw objects

    plan = standard_chaos_plan(seed=1)
    t_chaos, chaos = _best_of(lambda: _collect(plan), repeats=1)
    run_once(benchmark, lambda: _collect(plan))

    # The headline: chaos in, exact dataset out.
    assert chaos.store.report_count == clean.store.report_count
    assert _series(chaos.store) == _series(clean.store)
    assert chaos.stats.pending_gap_minutes == 0

    minutes = clean.stats.minutes_processed
    ratio = t_disabled / t_clean
    say()
    say(f"Collector resilience ({SAMPLES} samples, "
        f"{minutes:,} simulated minutes)")
    say(f"  no fault plan        : {t_clean:6.2f}s "
        f"({t_clean / minutes * 1e6:6.2f} us/minute)")
    say(f"  disabled fault plan  : {t_disabled:6.2f}s "
        f"({ratio:4.2f}x of no-plan — wrapping bypassed)")
    say(f"  standard chaos plan  : {t_chaos:6.2f}s "
        f"({t_chaos / t_clean:4.2f}x; outage {chaos.stats.outage_minutes:,} min, "
        f"{chaos.stats.transient_errors} transients, "
        f"{chaos.stats.minutes_backfilled:,} minutes backfilled, "
        f"{chaos.stats.dead_letters} dead letters)")
    say(f"  chaos dataset == fault-free dataset: "
        f"{chaos.store.report_count:,} reports, series exact")

    # Timing guard, deliberately loose (CI runners are noisy): the real
    # zero-overhead guarantee is the identity assertions above.
    assert ratio < 1.5
