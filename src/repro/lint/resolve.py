"""Import-aware name resolution for the rule visitors.

The banned-construct rules match *fully-qualified* names, so aliased
imports cannot dodge them: ``from time import time as now`` makes a bare
``now`` resolve to ``time.time``, and ``import datetime as dt`` makes
``dt.datetime.now`` resolve to ``datetime.datetime.now``.  Resolution is
purely syntactic — a name rebound by a later assignment will still
resolve to its import, which errs on the side of flagging (a linter's
correct bias) and costs nothing on this codebase.
"""

from __future__ import annotations

import ast


class ImportMap:
    """Maps a module's local names to the dotted names they import."""

    __slots__ = ("_names",)

    def __init__(self) -> None:
        self._names: dict[str, str] = {}

    @classmethod
    def from_module(cls, tree: ast.Module) -> "ImportMap":
        imports = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    # ``import a.b`` binds ``a`` → a; ``import a.b as c``
                    # binds ``c`` → a.b.
                    target = alias.name if alias.asname else local
                    imports._names[local] = target
            elif isinstance(node, ast.ImportFrom):
                module = ("." * node.level) + (node.module or "")
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    imports._names[local] = f"{module}.{alias.name}"
        return imports

    def qualname(self, node: ast.expr) -> str | None:
        """The dotted import-resolved name of an expression, if any."""
        if isinstance(node, ast.Name):
            return self._names.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.qualname(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None
