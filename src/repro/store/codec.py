"""Binary record codec for scan reports.

The paper's pipeline achieved a 10.06× compression rate by (i) storing
only the fields its analyses need, (ii) splitting rarely-changing sample
metadata from per-scan results, and (iii) compressing.  This codec is step
(i) and (ii): a :class:`~repro.vt.reports.ScanReport` becomes a compact
struct-packed record; step (iii), zlib over blocks of records, lives in
:mod:`repro.store.shard`.

For the Table 2 accounting ("GB of raw reports per month") the codec can
also *estimate* the size the same report would occupy as the verbose JSON
the real API returns — engine names, detection strings, category fields —
without ever materialising that JSON for every report.
"""

from __future__ import annotations

import json
import struct
import zlib
from array import array
from typing import Sequence

from repro.errors import CorruptRecordError
from repro.store import columnar
from repro.vt.reports import ScanReport

#: Fixed header: scan_time, positives, total, first/last submission,
#: last_analysis, times_submitted, n_engines, file-type length.
_HEADER = struct.Struct("<qHHqqqIHH")

_MAGIC = b"RPR1"

#: Block layouts a shard can freeze records into.  ``row`` is the
#: original RPR1 framing (one length-prefixed record after another);
#: ``columnar`` is the RPR3 layout of :mod:`repro.store.columnar`
#: (dictionary/delta-encoded columns).  Both decode back to identical
#: record bytes, so the store digest is layout-independent.
BLOCK_FORMAT_ROW = "row"
BLOCK_FORMAT_COLUMNAR = "columnar"
BLOCK_FORMATS = (BLOCK_FORMAT_ROW, BLOCK_FORMAT_COLUMNAR)


def resolve_block_format(value: str) -> str:
    """Validate a block-format name (the config/CLI entry point)."""
    if value not in BLOCK_FORMATS:
        raise CorruptRecordError(
            f"unknown block format {value!r}; expected one of {BLOCK_FORMATS}")
    return value


def encode_report(report: ScanReport) -> bytes:
    """Pack a report into the compact binary record format."""
    ftype = report.file_type.encode("utf-8")
    n = len(report.labels)
    header = _HEADER.pack(
        report.scan_time,
        report.positives,
        report.total,
        report.first_submission_date,
        report.last_submission_date,
        report.last_analysis_date,
        report.times_submitted,
        n,
        len(ftype),
    )
    sha = bytes.fromhex(report.sha256)
    versions = array("I", report.versions).tobytes()
    return b"".join((header, sha, ftype, report.labels, versions))


def decode_report(blob: bytes) -> ScanReport:
    """Unpack a record produced by :func:`encode_report`."""
    try:
        (scan_time, positives, total, first_sub, last_sub, last_ana,
         times_submitted, n, ftype_len) = _HEADER.unpack_from(blob, 0)
        offset = _HEADER.size
        sha = blob[offset:offset + 32].hex()
        offset += 32
        ftype = blob[offset:offset + ftype_len].decode("utf-8")
        offset += ftype_len
        labels = blob[offset:offset + n]
        offset += n
        versions = array("I")
        versions.frombytes(blob[offset:offset + 4 * n])
    except (struct.error, ValueError) as exc:
        raise CorruptRecordError(f"undecodable report record: {exc}") from exc
    if len(labels) != n or len(versions) != n:
        raise CorruptRecordError("truncated report record")
    return ScanReport(
        sha256=sha,
        file_type=ftype,
        scan_time=scan_time,
        positives=positives,
        total=total,
        labels=bytes(labels),
        versions=tuple(versions),
        first_submission_date=first_sub,
        last_submission_date=last_sub,
        last_analysis_date=last_ana,
        times_submitted=times_submitted,
    )


def peek_sha(record: bytes) -> str:
    """Extract the sample hash from an encoded record without decoding it.

    Index rebuilds on load touch every record; this avoids full decodes.
    """
    return record[_HEADER.size:_HEADER.size + 32].hex()


def peek_meta(record: bytes) -> tuple[str, int, int]:
    """Extract ``(sha256, scan_time, first_submission_date)`` cheaply."""
    scan_time, _, _, first_sub = struct.unpack_from("<qHHq", record, 0)
    return peek_sha(record), scan_time, first_sub


def record_size(report: ScanReport) -> int:
    """Exact encoded size of a report record in bytes."""
    return (_HEADER.size + 32 + len(report.file_type.encode("utf-8"))
            + len(report.labels) * 5)


#: Measured average JSON bytes per engine entry in a real v3 file report
#: (engine name, category, result string, update date, version).
_JSON_BYTES_PER_ENGINE = 160
#: Fixed JSON overhead: hashes (md5/sha1/sha256), sizes, type fields,
#: submitter metadata, certificate info, envelope.
_JSON_FIXED_OVERHEAD = 2200


def verbose_json_size(report: ScanReport) -> int:
    """Estimated size of the same report as the real API's verbose JSON.

    Used only for Table 2 style accounting; calibrated so a 70-engine
    report weighs ~13 KB, matching the paper's ~64 bytes-per-report-GB
    arithmetic after their 10× compression.
    """
    return _JSON_FIXED_OVERHEAD + _JSON_BYTES_PER_ENGINE * len(report.labels)


def render_verbose_json(report: ScanReport, engine_names: Sequence[str]) -> str:
    """Materialise a verbose JSON rendering (for tests and debugging).

    This is what :func:`verbose_json_size` approximates; rendering every
    report would dominate runtime, so production paths never call this.
    """
    results = {}
    for result in report.iter_results(engine_names):
        results[result.engine] = {
            "category": ("malicious" if result.detected
                         else "undetected" if not result.responded
                         else "harmless"),
            "engine_name": result.engine,
            "engine_version": str(result.version),
            "engine_update": str(report.scan_time),
            "method": "blacklist",
            "result": result.detection_name,
        }
    doc = {
        "data": {
            "id": report.sha256,
            "type": "file",
            "attributes": {
                "sha256": report.sha256,
                "type_description": report.file_type,
                "last_analysis_date": report.last_analysis_date,
                "last_submission_date": report.last_submission_date,
                "first_submission_date": report.first_submission_date,
                "times_submitted": report.times_submitted,
                "last_analysis_stats": {
                    "malicious": report.positives,
                    "undetected": len(report.labels) - report.total,
                    "harmless": report.total - report.positives,
                },
                "last_analysis_results": results,
            },
        }
    }
    return json.dumps(doc)


def encode_block(records: list[bytes],
                 block_format: str = BLOCK_FORMAT_ROW) -> bytes:
    """Frame a list of records into one uncompressed block payload.

    ``block_format`` selects the layout; either way
    :func:`decode_block` recovers the identical record bytes.
    """
    if block_format == BLOCK_FORMAT_COLUMNAR:
        return columnar.encode_columnar(
            columnar.ColumnarBatch.from_records(records))
    if block_format != BLOCK_FORMAT_ROW:
        raise CorruptRecordError(f"unknown block format {block_format!r}")
    parts = [_MAGIC, struct.pack("<I", len(records))]
    for record in records:
        parts.append(struct.pack("<I", len(record)))
        parts.append(record)
    return b"".join(parts)


def decode_block(payload: bytes) -> list[bytes]:
    """Split a block payload back into its records.

    Dispatches on the payload magic, so row (RPR1) and columnar (RPR3)
    blocks are both accepted transparently.
    """
    if payload[:4] == columnar.COLUMNAR_MAGIC:
        return columnar.decode_columnar_records(payload)
    if payload[:4] != _MAGIC:
        raise CorruptRecordError("bad block magic")
    (count,) = struct.unpack_from("<I", payload, 4)
    offset = 8
    records = []
    for _ in range(count):
        if offset + 4 > len(payload):
            raise CorruptRecordError("truncated block")
        (size,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        record = payload[offset:offset + size]
        if len(record) != size:
            raise CorruptRecordError("truncated record in block")
        records.append(record)
        offset += size
    return records


def block_format_of(payload: bytes) -> str:
    """The layout of an uncompressed block payload, by magic."""
    if payload[:4] == columnar.COLUMNAR_MAGIC:
        return BLOCK_FORMAT_COLUMNAR
    if payload[:4] == _MAGIC:
        return BLOCK_FORMAT_ROW
    raise CorruptRecordError("bad block magic")


def decode_batch(payload: bytes) -> "columnar.ColumnarBatch":
    """Decode an uncompressed block payload into a columnar batch.

    Row blocks are bulk-parsed into columns; columnar blocks decode
    natively.
    """
    if payload[:4] == columnar.COLUMNAR_MAGIC:
        return columnar.decode_columnar(payload)
    return columnar.ColumnarBatch.from_records(decode_block(payload))


def _partial_decompress(compressed, limit: int) -> bytes:
    """Decompress at most ``limit`` output bytes of a zlib stream."""
    decomp = zlib.decompressobj()
    chunks = []
    produced = 0
    data = compressed
    while produced < limit:
        chunk = decomp.decompress(data, limit - produced)
        if not chunk and not decomp.unconsumed_tail:
            break
        chunks.append(chunk)
        produced += len(chunk)
        data = decomp.unconsumed_tail
        if not data:
            break
    return b"".join(chunks)


def peek_block_format(compressed) -> str:
    """The layout of a *compressed* block, decompressing only the magic."""
    try:
        head = _partial_decompress(compressed, 4)
    except zlib.error as exc:
        raise CorruptRecordError(f"undecodable block: {exc}") from exc
    return block_format_of(head)


def decode_compressed_batch(compressed,
                            planes: bool = True) -> "columnar.ColumnarBatch":
    """Decode a zlib-compressed block payload into a columnar batch.

    With ``planes=False`` on a columnar block, only the prefix holding
    the fixed columns is decompressed — the label/version planes, which
    dominate the decompressed size, are never inflated.  This is the
    fast path under the streaming series kernels.  Row blocks always
    decompress fully (their layout interleaves everything).
    """
    try:
        if planes:
            return decode_batch(zlib.decompress(compressed))
        head = _partial_decompress(compressed, columnar.META_PREFIX_PROBE)
        if head[:4] != columnar.COLUMNAR_MAGIC:
            return decode_batch(zlib.decompress(compressed))
        meta_end = columnar.meta_section_end(head)
        if meta_end > len(head):
            head += _partial_decompress(compressed, meta_end)[len(head):]
        return columnar.decode_columnar(head[:meta_end], planes=False)
    except zlib.error as exc:
        raise CorruptRecordError(f"undecodable block: {exc}") from exc
