"""The reprolint rules: RPL001-RPL007.

Each rule is a small class with a ``code``, a ``name`` and a
``check(module)`` generator yielding raw findings; :class:`MetricRule`
(RPL005) additionally implements ``finish()`` for its whole-program
kind table.  Rules match import-resolved qualified names
(:mod:`repro.lint.resolve`), so aliased imports and attribute chains are
covered, and because *references* are matched — not just calls —
``functools.partial(time.time)`` style indirection is caught too.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterable, Iterator

#: What one rule reports before pragma filtering: (line, col, message).
RawFinding = tuple[int, int, str]


# ---------------------------------------------------------------------------
# Shared machinery
# ---------------------------------------------------------------------------


class Rule:
    """Base class: one determinism-contract rule."""

    code: str = ""
    name: str = ""

    def check(self, module) -> Iterator[RawFinding]:
        raise NotImplementedError

    def finish(self) -> Iterable[tuple[str, RawFinding]]:
        """Cross-file findings, as ``(path, raw_finding)``; default none."""
        return ()


def _references(module, banned: dict[str, str]) -> Iterator[RawFinding]:
    """Yield a finding for every reference resolving into ``banned``.

    ``banned`` maps qualified names to message templates; a key ending in
    ``.*`` matches the bare module and any attribute under it.  Matching
    references rather than calls means values passed to
    ``functools.partial`` (or stored in tables) are flagged at the point
    of reference.
    """
    exact = {q: msg for q, msg in banned.items() if not q.endswith(".*")}
    prefixes = {q[:-2]: msg for q, msg in banned.items() if q.endswith(".*")}
    inside_match: set[int] = set()
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.Name, ast.Attribute)):
            continue
        if id(node) in inside_match:
            continue
        qual = module.imports.qualname(node)
        if qual is None:
            continue
        message = exact.get(qual)
        if message is None:
            for prefix, msg in prefixes.items():
                if qual == prefix or qual.startswith(prefix + "."):
                    message = msg
                    break
        if message is not None:
            # ast.walk visits parents before children, so marking this
            # match's descendants keeps `secrets.token_hex` from also
            # reporting the inner `secrets` Name against `secrets.*`.
            inside_match.update(id(sub) for sub in ast.walk(node)
                                if sub is not node)
            yield (node.lineno, node.col_offset,
                   message.format(qual=qual))


# ---------------------------------------------------------------------------
# RPL001 — wall-clock reads
# ---------------------------------------------------------------------------


class WallClockRule(Rule):
    """Wall-clock reads belong in the injectable clock modules only.

    ``repro.vt.clock`` owns simulated time and ``repro.obs.timing`` owns
    the real/tick/sim span clocks; everywhere else a wall-clock read
    breaks fixed-seed reproducibility (or, for the monotonic family,
    smuggles wall durations into what should be injected time).
    """

    code = "RPL001"
    name = "wall-clock-read"

    _MESSAGE = ("wall-clock read {qual} — inject a clock "
                "(repro.vt.clock.SimulationClock / repro.obs.timing) instead")

    BANNED = {
        "time.time": _MESSAGE,
        "time.time_ns": _MESSAGE,
        "time.monotonic": _MESSAGE,
        "time.monotonic_ns": _MESSAGE,
        "time.perf_counter": _MESSAGE,
        "time.perf_counter_ns": _MESSAGE,
        "datetime.datetime.now": _MESSAGE,
        "datetime.datetime.utcnow": _MESSAGE,
        "datetime.datetime.today": _MESSAGE,
        "datetime.date.today": _MESSAGE,
    }

    def check(self, module) -> Iterator[RawFinding]:
        return _references(module, self.BANNED)


# ---------------------------------------------------------------------------
# RPL002 — global / unseeded randomness
# ---------------------------------------------------------------------------

#: ``random`` module-level convenience functions (the hidden global
#: Mersenne Twister — order-dependent, cross-test leaking state).
_RANDOM_MODULE_FNS = (
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "betavariate", "expovariate",
    "gammavariate", "gauss", "lognormvariate", "normalvariate",
    "vonmisesvariate", "paretovariate", "weibullvariate", "getrandbits",
    "seed", "setstate", "getstate",
)

#: ``numpy.random`` legacy module-level functions (same global-state
#: problem, numpy flavour).
_NUMPY_RANDOM_FNS = (
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "seed", "bytes",
    "normal", "uniform", "poisson", "binomial", "beta", "gamma",
    "exponential", "standard_normal", "get_state", "set_state",
)


_GLOBAL_RANDOM_MSG = ("global random state via {qual} — use a keyed "
                      "random.Random(f\"{{seed}}:...\") stream instead")

_UNSEEDED_BANNED = dict(
    [(f"random.{fn}", _GLOBAL_RANDOM_MSG) for fn in _RANDOM_MODULE_FNS]
    + [(f"numpy.random.{fn}", _GLOBAL_RANDOM_MSG)
       for fn in _NUMPY_RANDOM_FNS]
    + [("random.SystemRandom",
        "random.SystemRandom is OS entropy via {qual} — "
        "use a keyed random.Random stream instead")]
)


class UnseededRandomRule(Rule):
    """Randomness must come from a keyed, explicitly seeded stream.

    The house idiom is ``random.Random(f"{seed}:{purpose}:{key}")`` /
    ``numpy.random.default_rng(seed)``: every stream is a pure function
    of (seed, key), so resume, shard and replay all converge.  The global
    ``random`` module functions and argless constructors are banned.
    """

    code = "RPL002"
    name = "unseeded-random"

    BANNED = _UNSEEDED_BANNED

    #: Constructors that are fine *with* a seed but banned argless.
    SEEDABLE = {
        "random.Random": ("random.Random() without a seed — key it: "
                          "random.Random(f\"{seed}:purpose:key\")"),
        "numpy.random.default_rng": (
            "numpy.random.default_rng() without a seed — pass the "
            "scenario seed explicitly"),
    }

    def check(self, module) -> Iterator[RawFinding]:
        yield from _references(module, self.BANNED)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = module.imports.qualname(node.func)
            message = self.SEEDABLE.get(qual) if qual else None
            if message is not None and not node.args and not node.keywords:
                yield (node.lineno, node.col_offset, message)


# ---------------------------------------------------------------------------
# RPL003 — entropy sources
# ---------------------------------------------------------------------------


class EntropyRule(Rule):
    """OS entropy has no place on the simulation path.

    Identifiers must be content-derived (sha256 of the payload, keyed
    hashes of (seed, index)) so two runs agree byte-for-byte.
    """

    code = "RPL003"
    name = "entropy-source"

    _MESSAGE = ("entropy source {qual} — derive identifiers from content "
                "or (seed, key) hashes instead")

    BANNED = {
        "uuid.uuid1": _MESSAGE,
        "uuid.uuid4": _MESSAGE,
        "os.urandom": _MESSAGE,
        "os.getrandom": _MESSAGE,
        "secrets.*": _MESSAGE,
    }

    def check(self, module) -> Iterator[RawFinding]:
        return _references(module, self.BANNED)


# ---------------------------------------------------------------------------
# RPL004 — unordered iteration
# ---------------------------------------------------------------------------

#: Call qualnames whose result order is filesystem- or hash-dependent.
_UNORDERED_CALLS = {
    "glob.glob": "glob.glob()",
    "glob.iglob": "glob.iglob()",
    "os.listdir": "os.listdir()",
    "os.scandir": "os.scandir()",
}

#: Wrappers that preserve (lack of) order — unwrap and keep checking.
_ORDER_PRESERVING = ("enumerate", "reversed", "list", "tuple", "iter")

#: Consumers whose result does not depend on input order — a
#: comprehension fed straight into one of these is exempt.
_ORDER_INSENSITIVE = ("sorted", "set", "frozenset", "sum", "max", "min",
                      "any", "all", "len")


class UnorderedIterationRule(Rule):
    """Iterating a set / directory listing feeds hash or filesystem order
    into loops whose outputs (digests, stores, exports) must be stable —
    wrap the iterable in ``sorted()``.

    Matching is syntactic: set displays, set comprehensions,
    ``set()``/``frozenset()`` constructors, ``glob``/``listdir``/
    ``scandir`` calls and ``.iterdir()`` method calls, iterated directly
    by a ``for`` statement or a comprehension.  (Dict iteration is
    insertion-ordered and therefore exempt.)
    """

    code = "RPL004"
    name = "unordered-iteration"

    def check(self, module) -> Iterator[RawFinding]:
        exempt = self._order_insensitive_comprehensions(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters = [node.iter]
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                if id(node) in exempt:
                    continue
                iters = [gen.iter for gen in node.generators]
            else:
                continue
            for expr in iters:
                reason = self._unordered_reason(expr, module.imports)
                if reason is not None:
                    yield (expr.lineno, expr.col_offset,
                           f"iteration over {reason} has no stable order "
                           f"— wrap it in sorted()")

    @staticmethod
    def _order_insensitive_comprehensions(tree: ast.Module) -> frozenset[int]:
        """ids of comprehensions fed directly to an order-insensitive
        consumer (``sorted(x for x in ...)`` needs no inner ordering);
        set comprehensions are order-insensitive producers outright."""
        exempt = []
        for node in ast.walk(tree):
            if isinstance(node, ast.SetComp):
                exempt.append(id(node))
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in _ORDER_INSENSITIVE):
                exempt.extend(
                    id(arg) for arg in node.args
                    if isinstance(arg, (ast.ListComp, ast.SetComp,
                                        ast.DictComp, ast.GeneratorExp)))
        return frozenset(exempt)

    def _unordered_reason(self, node: ast.expr, imports) -> str | None:
        # Unwrap order-preserving wrappers: enumerate(set(...)) is still
        # unordered underneath.
        while (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
               and node.func.id in _ORDER_PRESERVING and node.args):
            node = node.args[0]
        if isinstance(node, ast.Set):
            return "a set display"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and \
                    node.func.id in ("set", "frozenset"):
                return f"{node.func.id}()"
            qual = imports.qualname(node.func)
            if qual in _UNORDERED_CALLS:
                return _UNORDERED_CALLS[qual]
            if isinstance(node.func, ast.Attribute) and \
                    node.func.attr in ("iterdir", "glob", "rglob"):
                return f".{node.func.attr}()"
        return None


# ---------------------------------------------------------------------------
# RPL005 — metric-name discipline
# ---------------------------------------------------------------------------

#: The naming grammar every metric name must match.
METRIC_NAME_RE = re.compile(r"^[a-z0-9_.]+$")

#: Registry instrument methods and the kind each one registers.
_INSTRUMENT_KINDS = {
    "counter": "counter",
    "gauge": "gauge",
    "histogram": "histogram",
    "span": "histogram",  # span() times into a histogram of the same name
}


@dataclass
class _MetricSite:
    path: str
    line: int
    col: int
    name: str
    kind: str


class MetricRule(Rule):
    """The :class:`repro.obs.registry.MetricsRegistry` one-kind-per-name
    invariant, checked before runtime over *all* call sites at once.

    Three checks: the metric name must be a string literal (a computed
    name defeats static accounting and invites cardinality explosions);
    it must match ``[a-z0-9_.]+`` (the grammar both exporters assume);
    and a whole-program symbol table asserts each name keeps exactly one
    instrument kind across every call site — the invariant the registry
    enforces per-process at runtime, widened here to call sites that may
    never share a process.
    """

    code = "RPL005"
    name = "metric-discipline"

    def __init__(self) -> None:
        self._sites: list[_MetricSite] = []

    def check(self, module) -> Iterator[RawFinding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            kind = self._instrument_kind(node.func)
            if kind is None:
                continue
            if not node.args:
                continue
            name_arg = node.args[0]
            if not (isinstance(name_arg, ast.Constant)
                    and isinstance(name_arg.value, str)):
                yield (name_arg.lineno, name_arg.col_offset,
                       "metric name must be a string literal "
                       "(computed names defeat static accounting)")
                continue
            name = name_arg.value
            if not METRIC_NAME_RE.match(name):
                yield (name_arg.lineno, name_arg.col_offset,
                       f"metric name {name!r} violates the naming grammar "
                       f"[a-z0-9_.]+")
                continue
            self._sites.append(_MetricSite(
                module.path, name_arg.lineno, name_arg.col_offset,
                name, kind))

    @staticmethod
    def _instrument_kind(func: ast.expr) -> str | None:
        if isinstance(func, ast.Attribute):
            if func.attr == "traced":
                return "histogram"  # @traced(name) records a span histogram
            return _INSTRUMENT_KINDS.get(func.attr)
        if isinstance(func, ast.Name) and func.id == "traced":
            return "histogram"
        return None

    def finish(self) -> Iterable[tuple[str, RawFinding]]:
        yield from metric_kind_conflicts(
            [(s.path, s.line, s.col, s.name, s.kind) for s in self._sites])


def metric_kind_conflicts(
        sites: Iterable[tuple[str, int, int, str, str]],
) -> Iterator[tuple[str, RawFinding]]:
    """The RPL005 whole-program kind table over ``(path, line, col,
    name, kind)`` sites — shared by the per-run rule instance and the
    incremental engine, which rebuilds the table from cached
    per-file sites."""
    canonical: dict[str, tuple[str, int, int, str, str]] = {}
    for site in sorted(sites):
        path, line, col, name, kind = site
        first = canonical.setdefault(name, site)
        if kind != first[4]:
            yield (path, (
                line, col,
                f"metric {name!r} registered as a {kind} here "
                f"but as a {first[4]} at {first[0]}:{first[1]} — "
                f"one instrument kind per name"))


# ---------------------------------------------------------------------------
# RPL006 — swallowed exceptions in the resilience layers
# ---------------------------------------------------------------------------


class SwallowRule(Rule):
    """``except: pass`` in collect/faults silently voids the convergence
    guarantee — every failure there must be counted, dead-lettered or
    re-raised.
    """

    code = "RPL006"
    name = "swallowed-exception"

    def check(self, module) -> Iterator[RawFinding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield (node.lineno, node.col_offset,
                       "bare except: catches everything, including "
                       "KeyboardInterrupt — name the exception type")
                continue
            if self._is_broad(node.type) and self._swallows(node.body):
                yield (node.lineno, node.col_offset,
                       "except Exception: pass swallows failures the "
                       "resilience layer must count or dead-letter")

    @staticmethod
    def _is_broad(type_node: ast.expr) -> bool:
        return (isinstance(type_node, ast.Name)
                and type_node.id in ("Exception", "BaseException"))

    @staticmethod
    def _swallows(body: list[ast.stmt]) -> bool:
        return all(
            isinstance(stmt, ast.Pass)
            or (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant))
            for stmt in body)


# ---------------------------------------------------------------------------
# RPL007 — process fan-out outside the executor layer
# ---------------------------------------------------------------------------


class PoolRule(Rule):
    """``repro.parallel.executors`` is the single owner of process
    fan-out: it pins the start method, detects and replaces dead
    workers, and hands results to the scheduler that merges them
    deterministically.  A pool or worker process constructed anywhere
    else bypasses all three guarantees.
    """

    code = "RPL007"
    name = "rogue-pool"

    _TARGETS = ("Pool", "Process")

    def check(self, module) -> Iterator[RawFinding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            offender = self._offender(node.func, module.imports)
            if offender is not None:
                yield (node.lineno, node.col_offset,
                       f"{offender} constructed outside "
                       f"repro.parallel.executors — route fan-out through "
                       f"run_parallel()")

    def _offender(self, func: ast.expr, imports) -> str | None:
        qual = imports.qualname(func)
        if qual is not None:
            tail = qual.rsplit(".", 1)[-1]
            if tail in self._TARGETS and (
                    qual.startswith("multiprocessing")
                    or ".multiprocessing." in qual):
                return qual
            if qual.startswith("multiprocessing"):
                return None  # other multiprocessing attrs are fine
        # ctx.Pool(...) — any attribute named Pool/Process is treated as
        # a pool construction; contexts are the common carrier and no
        # other object in this codebase exposes those names.
        if isinstance(func, ast.Attribute) and func.attr in self._TARGETS \
                and qual is None:
            return f".{func.attr}()"
        return None


#: Rule registry, in code order — the engine instantiates fresh
#: instances per run so cross-file state never leaks between runs.
RULE_CLASSES: tuple[type[Rule], ...] = (
    WallClockRule,
    UnseededRandomRule,
    EntropyRule,
    UnorderedIterationRule,
    MetricRule,
    SwallowRule,
    PoolRule,
)
