"""Figure 11 / §7.2.1 / Observation 11: overall engine correlation.

Paper: 17 engines participate in strong (rho > 0.8) correlations overall;
headline pairs Paloalto-APEX (0.9933), Avast-AVG (0.9814),
Webroot-CrowdStrike (0.9754), BitDefender-FireEye (0.9520),
Emsisoft-FireEye (0.9189), Babable-F-Prot (0.9698).
"""

from __future__ import annotations

from functools import partial

from repro.analysis.rendering import render_fig11
from repro.core.correlation import correlation_analysis

from conftest import run_once, say

PAPER_PAIRS = (
    ("Paloalto", "APEX"),
    ("Avast", "AVG"),
    ("Webroot", "CrowdStrike"),
    ("BitDefender", "FireEye"),
    ("Emsisoft", "FireEye"),
    ("Babable", "F-Prot"),
)


def test_fig11_engine_correlation(benchmark, bench_data):
    reports = list(bench_data.store.iter_reports())
    analysis = run_once(
        benchmark,
        partial(correlation_analysis, reports, bench_data.engine_names),
    )
    say()
    say(render_fig11(analysis))

    for first, second in PAPER_PAIRS:
        rho = analysis.rho_of(first, second)
        assert rho > 0.8, f"{first}-{second} rho={rho:.3f}"

    # Independent majors stay below the strong threshold.
    for first, second in (("Kaspersky", "Sophos"),
                          ("Microsoft", "DrWeb"),
                          ("Symantec", "Tencent")):
        assert analysis.rho_of(first, second) < 0.8

    # Engine participation near the paper's 17.
    involved = analysis.involved_engines()
    assert 10 <= len(involved) <= 34

    # The BitDefender OEM family resolves into one group.
    groups = analysis.groups()
    bdf = next((g for g in groups if "BitDefender" in g), None)
    assert bdf is not None
    assert {"FireEye", "MAX", "Ad-Aware"} <= set(bdf)
