"""Methodology comparison: organic observation vs snapshot campaigns.

The paper's headline disagreements with Zhu et al. (hazard-flip
prevalence, threshold ranges) trace back to *how the data was collected*:
organic submissions vs daily rescans of a fixed set.  This module runs
the same dynamics measurements over both collection modes against
identical ground truth, quantifying exactly what each protocol sees.

Used by ``benchmarks/bench_baseline_snapshot_protocol.py`` and available
to users who want to understand what their own collection cadence hides.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.experiment import ExperimentData, run_experiment
from repro.core.avrank import collect_series, split_stable_dynamic
from repro.core.flips import FlipStats, analyze_flips
from repro.store.reportstore import ReportStore
from repro.synth.population import PopulationGenerator
from repro.synth.scenario import ScenarioConfig
from repro.vt.snapshots import SnapshotCampaign


@dataclass(frozen=True)
class ProtocolView:
    """Dynamics statistics as seen by one collection protocol."""

    protocol: str
    n_samples: int
    n_reports: int
    dynamic_fraction: float
    flips_per_sample: float
    hazards_per_1000_samples: float
    hazard_share_of_flips: float
    mean_observed_delta: float


def _view(
    protocol: str, store: ReportStore, engine_names: tuple[str, ...]
) -> ProtocolView:
    series = collect_series(store.iter_sample_reports())
    stable, dynamic = split_stable_dynamic(series)
    multi = len(stable) + len(dynamic)
    flips: FlipStats = analyze_flips(store.iter_sample_reports(),
                                     engine_names)
    deltas = [s.delta_overall for s in series if s.multi]
    return ProtocolView(
        protocol=protocol,
        n_samples=store.sample_count,
        n_reports=store.report_count,
        dynamic_fraction=(len(dynamic) / multi) if multi else 0.0,
        flips_per_sample=(flips.total_flips / flips.sample_count
                          if flips.sample_count else 0.0),
        hazards_per_1000_samples=(1000.0 * flips.total_hazards
                                  / flips.sample_count
                                  if flips.sample_count else 0.0),
        hazard_share_of_flips=(flips.total_hazards / flips.total_flips
                               if flips.total_flips else 0.0),
        mean_observed_delta=(sum(deltas) / len(deltas)) if deltas else 0.0,
    )


@dataclass(frozen=True)
class ProtocolComparison:
    """Side-by-side organic vs snapshot views over shared ground truth."""

    organic: ProtocolView
    snapshot: ProtocolView

    def render(self) -> str:
        rows = [
            ("samples", self.organic.n_samples, self.snapshot.n_samples),
            ("reports", self.organic.n_reports, self.snapshot.n_reports),
            ("dynamic fraction",
             f"{self.organic.dynamic_fraction:.1%}",
             f"{self.snapshot.dynamic_fraction:.1%}"),
            ("flips per sample",
             f"{self.organic.flips_per_sample:.2f}",
             f"{self.snapshot.flips_per_sample:.2f}"),
            ("hazards per 1000 samples",
             f"{self.organic.hazards_per_1000_samples:.2f}",
             f"{self.snapshot.hazards_per_1000_samples:.2f}"),
            ("hazard share of flips",
             f"{self.organic.hazard_share_of_flips:.3%}",
             f"{self.snapshot.hazard_share_of_flips:.3%}"),
            ("mean observed Delta",
             f"{self.organic.mean_observed_delta:.2f}",
             f"{self.snapshot.mean_observed_delta:.2f}"),
        ]
        width = max(len(str(r[0])) for r in rows)
        lines = [f"  {'metric':<{width}}  {'organic':>12}  {'snapshot':>12}"]
        for name, organic, snapshot in rows:
            lines.append(f"  {name:<{width}}  {organic!s:>12}  "
                         f"{snapshot!s:>12}")
        return "\n".join(lines)


def compare_protocols(
    config: ScenarioConfig,
    snapshot_samples: int = 300,
    cadence_days: float = 1.0,
    duration_days: float = 120.0,
    campaign_start_day: float = 30.0,
) -> ProtocolComparison:
    """Observe one ground-truth population through both protocols.

    The organic view is the scenario's own submission stream; the
    snapshot view takes ``snapshot_samples`` of the population that
    appeared *before the campaign start* (Zhu et al. enrolled recent
    samples) and rescans them on a fixed cadence against the same
    service, so both protocols share ground truth.
    """
    organic: ExperimentData = run_experiment(config)
    organic_view = _view("organic", organic.store, organic.engine_names)

    campaign = SnapshotCampaign(
        organic.service,
        cadence_days=cadence_days,
        duration_days=duration_days,
    )
    # Rescan the *same* registered samples the organic run observed, so
    # both protocols see identical ground truth (plans included); enrol
    # only samples already submitted by the campaign start.
    start_minutes = campaign_start_day * 24 * 60
    roster = []
    for spec in PopulationGenerator(config):
        if not 0 <= spec.sample.first_seen <= start_minutes:
            continue
        roster.append(organic.service.get_sample(spec.sample.sha256))
        if len(roster) >= snapshot_samples:
            break
    snapshot_store = campaign.run(roster, start_day=campaign_start_day)
    snapshot_store.close()
    snapshot_view = _view("snapshot", snapshot_store,
                          organic.engine_names)
    return ProtocolComparison(organic=organic_view, snapshot=snapshot_view)
