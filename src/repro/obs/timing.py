"""Clocks and span timers for the observability layer.

Span timing needs a *time source*, and the right source depends on what
the caller is measuring:

* :class:`MonotonicClock` — ``time.perf_counter``; wall-clock phase
  profiling in production runs.  Durations are real but, by nature, not
  reproducible.
* :class:`TickClock` — a deterministic counter that advances a fixed
  tick per reading.  Under test, every span's recorded duration becomes
  a pure function of how many clock readings happened inside it, so
  metric exports containing timer histograms are byte-reproducible.
* :class:`SimClock` — reads simulated time from any object with a
  ``now`` attribute (e.g. :class:`repro.vt.clock.SimulationClock`), so a
  span's "duration" is measured in simulator minutes.  Deterministic by
  construction, and the natural unit for pipeline latencies inside a
  scenario run.

A clock is just a zero-argument callable returning a float; anything
matching that shape can be injected into a
:class:`~repro.obs.registry.MetricsRegistry`.
"""

from __future__ import annotations

import functools
import time
from typing import Callable

Clock = Callable[[], float]


class MonotonicClock:
    """Wall time via ``time.perf_counter`` (the default clock)."""

    __slots__ = ()

    def __call__(self) -> float:
        return time.perf_counter()


class TickClock:
    """A deterministic clock: each reading advances by a fixed tick.

    Two runs that read the clock the same number of times see the same
    timestamps, which makes span-duration histograms reproducible — the
    "sim-clock mode" of the metric golden tests.
    """

    __slots__ = ("tick", "now")

    def __init__(self, tick: float = 0.001, start: float = 0.0) -> None:
        self.tick = tick
        self.now = start

    def __call__(self) -> float:
        current = self.now
        self.now += self.tick
        return current


class SimClock:
    """Reads simulated time off a clock-like object's ``now`` attribute."""

    __slots__ = ("source",)

    def __init__(self, source) -> None:
        self.source = source

    def __call__(self) -> float:
        return float(self.source.now)


class Span:
    """Context manager that times a region into a histogram."""

    __slots__ = ("_histogram", "_clock", "_started")

    def __init__(self, histogram, clock: Clock) -> None:
        self._histogram = histogram
        self._clock = clock
        self._started: float | None = None

    def __enter__(self) -> "Span":
        self._started = self._clock()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(self._clock() - self._started)


class NullSpan:
    """The no-op span a disabled registry hands out (one shared instance)."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


NULL_SPAN = NullSpan()


def traced(name: str, registry=None, **labels):
    """Decorator: time every call of the function as a registry span.

    ``registry=None`` resolves the process-wide registry *at call time*
    (:func:`repro.obs.get_registry`), so enabling observability later
    retroactively lights up every ``@traced`` function; while the global
    registry is the disabled null object, the wrapper costs one no-op
    context manager per call.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            reg = registry
            if reg is None:
                from repro.obs import get_registry

                reg = get_registry()
            with reg.span(name, **labels):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
