"""Elastic executor fault tolerance: recovery cost and heartbeat overhead.

Measures what the chaos acceptance gate only asserts:

* **recovery latency** — wall-clock of a chaos-battered run (standard
  executor fault plan: crashes, hangs, corrupted payloads) vs the
  fault-free run on the same executor, with the scheduler's own
  accounting (retries, lost workers, stolen ranges) alongside;
* **heartbeat overhead** — wall-clock with a tight heartbeat cadence vs
  heartbeats effectively disabled; the budget is ≤5%;
* and, as everywhere else, the digest contract: every run — faulted or
  not, fork or spawn — must reproduce the serial digest.

Dual mode:

* under pytest-benchmark (``pytest benchmarks/ --benchmark-only``) the
  sweep runs once at the harness scale;
* as a script (``python benchmarks/bench_executor_faults.py``) it writes
  a schema'd ``BENCH_executor.json`` — the artifact the CI benchmarks
  job uploads.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.experiment import run_experiment
from repro.faults import standard_executor_chaos_plan
from repro.parallel import ExecutorPolicy, fork_available
from repro.synth.scenario import paper_scenario

try:  # pytest mode — absent when run as a plain script
    from conftest import run_once, say
except ImportError:  # pragma: no cover - script mode
    run_once = None

    def say(*args: object) -> None:
        print(*args)

#: Schema identifier for the benchmark artifact.
RESULTS_SCHEMA = "repro-bench/1"

#: Script-mode defaults (CI pins its own size).
DEFAULT_SAMPLES = 20_000
DEFAULT_WORKERS = 4
DEFAULT_SEED = 1

#: Heartbeat overhead budget: tight cadence may cost at most 5% wall.
HEARTBEAT_OVERHEAD_BUDGET = 1.05

#: Chaos deadlines tuned so injected hangs are detected quickly without
#: making steals trigger on ordinary shard latency.
CHAOS_DEADLINE = 1.5
CHAOS_HANG_SECONDS = 2.5


def _timed_run(config, workers: int, executor) -> tuple[float, object]:
    started = time.perf_counter()
    data = run_experiment(config, workers=workers, executor=executor)
    return time.perf_counter() - started, data


def run_fault_recovery(config, serial_digest: str, kind: str,
                       workers: int, seed: int) -> dict:
    """Fault-free vs standard-chaos wall on one executor kind."""
    clean_wall, clean = _timed_run(config, workers, kind)
    chaos_policy = ExecutorPolicy(
        kind=kind,
        heartbeat_deadline=CHAOS_DEADLINE,
        fault_plan=standard_executor_chaos_plan(
            seed=seed, hang_seconds=CHAOS_HANG_SECONDS),
    )
    chaos_wall, chaos = _timed_run(config, workers, chaos_policy)
    report = chaos.executor_report
    return {
        "name": f"executor_{kind}_fault_recovery",
        "executor": kind,
        "workers": workers,
        "clean_wall_seconds": round(clean_wall, 3),
        "chaos_wall_seconds": round(chaos_wall, 3),
        "recovery_latency_seconds": round(chaos_wall - clean_wall, 3),
        "recovery_overhead": round(chaos_wall / clean_wall, 3),
        "shards": report.tasks,
        "attempts": report.attempts,
        "retried": report.retried,
        "workers_lost": report.workers_lost,
        "workers_respawned": report.workers_respawned,
        "ranges_stolen": report.ranges_stolen,
        "corrupt_payloads": report.corrupt_payloads,
        "duplicate_results": report.duplicate_results,
        "heartbeats": report.heartbeats,
        "clean_digest_matches_serial": clean.store.digest() == serial_digest,
        "chaos_digest_matches_serial": chaos.store.digest() == serial_digest,
    }


def run_heartbeat_overhead(config, kind: str, workers: int) -> dict:
    """Tight heartbeat cadence vs heartbeats effectively off.

    The emitter throttles inside the worker's progress callback, so the
    cost under test is one clock read per ``PROGRESS_EVERY`` events plus
    one queue put per interval — the budget is ≤5% wall.
    """
    quiet_policy = ExecutorPolicy(kind=kind, heartbeat_deadline=1e6)
    quiet_wall, _ = _timed_run(config, workers, quiet_policy)
    tight_policy = ExecutorPolicy(kind=kind, heartbeat_deadline=1e6,
                                  heartbeat_interval=0.05)
    tight_wall, tight = _timed_run(config, workers, tight_policy)
    overhead = tight_wall / quiet_wall
    return {
        "name": f"executor_{kind}_heartbeat_overhead",
        "executor": kind,
        "workers": workers,
        "quiet_wall_seconds": round(quiet_wall, 3),
        "tight_wall_seconds": round(tight_wall, 3),
        "heartbeats": tight.executor_report.heartbeats,
        "heartbeat_overhead": round(overhead, 3),
        "budget": HEARTBEAT_OVERHEAD_BUDGET,
        "within_budget": overhead <= HEARTBEAT_OVERHEAD_BUDGET,
    }


def run_suite(n_samples: int, seed: int, workers: int) -> dict:
    config = paper_scenario(n_samples=n_samples, seed=seed)
    serial_digest = run_experiment(config).store.digest()
    kinds = ["fork", "spawn"] if fork_available() else ["spawn"]
    entries = [run_fault_recovery(config, serial_digest, kind, workers, seed)
               for kind in kinds]
    heartbeat = run_heartbeat_overhead(config, kinds[0], workers)
    return {
        "schema": RESULTS_SCHEMA,
        "suite": "executor_faults",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "scenario": {
            "preset": "paper",
            "n_samples": n_samples,
            "seed": seed,
            "block_records": config.block_records,
        },
        "benchmarks": entries + [heartbeat],
        "equivalent": all(e["chaos_digest_matches_serial"]
                          and e["clean_digest_matches_serial"]
                          for e in entries),
        "heartbeat_within_budget": heartbeat["within_budget"],
    }


def render(results: dict) -> None:
    scenario = results["scenario"]
    say()
    say(f"Executor fault bench (paper mix, n={scenario['n_samples']:,}, "
        f"seed={scenario['seed']}, {results['cpu_count']} CPUs)")
    for entry in results["benchmarks"]:
        if "recovery_overhead" in entry:
            ok = ("ok" if entry["chaos_digest_matches_serial"]
                  else "DIGEST MISMATCH")
            say(f"  {entry['executor']:<10s} clean "
                f"{entry['clean_wall_seconds']:6.2f}s  chaos "
                f"{entry['chaos_wall_seconds']:6.2f}s  "
                f"({entry['recovery_overhead']:.2f}x; "
                f"{entry['retried']} retried, "
                f"{entry['workers_lost']} lost, "
                f"{entry['ranges_stolen']} stolen, "
                f"{entry['corrupt_payloads']} corrupt; digest {ok})")
        else:
            ok = "ok" if entry["within_budget"] else "OVER BUDGET"
            say(f"  {entry['executor']:<10s} heartbeat overhead "
                f"{entry['heartbeat_overhead']:.3f}x "
                f"({entry['heartbeats']} beats; budget "
                f"{entry['budget']:.2f}x: {ok})")


def test_executor_faults(benchmark):
    """pytest-benchmark entry point: the suite at harness scale."""
    from conftest import BENCH_SAMPLES, BENCH_SEED

    n = min(BENCH_SAMPLES, 10_000)
    results = run_once(
        benchmark, lambda: run_suite(n, BENCH_SEED, workers=4))
    render(results)
    assert results["equivalent"], "chaos digest diverged from serial"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark executor fault recovery and heartbeat "
                    "overhead; write a schema'd BENCH_executor.json.")
    parser.add_argument("--samples", type=int,
                        default=int(os.environ.get(
                            "REPRO_BENCH_EXECUTOR_SAMPLES",
                            str(DEFAULT_SAMPLES))),
                        help=f"population size (default: {DEFAULT_SAMPLES})")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    parser.add_argument("--output", default="BENCH_executor.json",
                        help="artifact path (default: BENCH_executor.json)")
    args = parser.parse_args(argv)

    results = run_suite(args.samples, args.seed, args.workers)
    render(results)
    Path(args.output).write_text(json.dumps(results, indent=2) + "\n",
                                 encoding="utf-8")
    say(f"\nwrote {args.output}")

    if not results["equivalent"]:
        say("FAIL: chaos digest diverged from serial")
        return 1
    if not results["heartbeat_within_budget"]:
        # Report loudly but don't fail CI on a noisy shared runner.
        say("WARN: heartbeat overhead exceeded its 5% budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
